/**
 * @file
 * Runtime-parameterized signed fixed-point arithmetic.
 *
 * The VIBNN hardware path computes everything in B-bit two's-complement
 * fixed point (the paper's bit-length optimization, Section 5.2 / Figure
 * 18, sweeps B and settles on 8). Because B is a *runtime* experiment
 * parameter here, the format is a value object rather than a template:
 * FixedPointFormat describes (total bits, fraction bits) and provides
 * conversion, saturating arithmetic, and the exact truncation semantics
 * the datapath models need. Raw values are carried in int64_t, which
 * comfortably holds any product of two <= 24-bit operands plus adder-tree
 * growth before requantization.
 */

#ifndef VIBNN_FIXED_FIXED_POINT_HH
#define VIBNN_FIXED_FIXED_POINT_HH

#include <cstdint>
#include <string>

namespace vibnn::fixed
{

/** How to map real values onto the grid. */
enum class RoundMode
{
    /** Round to nearest, ties away from zero (hardware rounders). */
    Nearest,
    /** Truncate toward negative infinity (a plain bit drop). */
    Floor,
};

/** Signed two's-complement fixed-point format Q(total, frac). */
class FixedPointFormat
{
  public:
    /**
     * @param total_bits Total width including sign, 2..32.
     * @param frac_bits Fraction bits, 0..total_bits-1.
     */
    FixedPointFormat(int total_bits, int frac_bits);

    int totalBits() const { return totalBits_; }
    int fracBits() const { return fracBits_; }
    int intBits() const { return totalBits_ - fracBits_; }

    /** Largest representable raw value: 2^(total-1) - 1. */
    std::int64_t rawMax() const { return rawMax_; }
    /** Smallest representable raw value: -2^(total-1). */
    std::int64_t rawMin() const { return rawMin_; }

    /** Real value of one LSB: 2^-frac. */
    double resolution() const { return resolution_; }
    /** Largest representable real value. */
    double realMax() const { return rawMax_ * resolution_; }
    /** Smallest representable real value. */
    double realMin() const { return rawMin_ * resolution_; }

    /** Quantize a real value to a raw fixed-point integer, saturating. */
    std::int64_t fromReal(double value,
                          RoundMode mode = RoundMode::Nearest) const;

    /** Real value of a raw fixed-point integer. */
    double toReal(std::int64_t raw) const;

    /** Clamp an int64 intermediate into the representable raw range. */
    std::int64_t saturate(std::int64_t raw) const;

    /** Saturating add of two raw values in this format. */
    std::int64_t add(std::int64_t a, std::int64_t b) const;

    /** Saturating subtract. */
    std::int64_t sub(std::int64_t a, std::int64_t b) const;

    /**
     * Multiply two raw values in this format and requantize the product
     * back into the format (the product has 2*frac fraction bits; we
     * shift right by frac with the chosen rounding, then saturate). This
     * mirrors a hardware multiplier followed by a rounding stage.
     */
    std::int64_t mul(std::int64_t a, std::int64_t b,
                     RoundMode mode = RoundMode::Floor) const;

    /** Quantize real -> raw -> real in one call (the "what the hardware
     *  sees" helper used everywhere in the quantized network). */
    double quantize(double value, RoundMode mode = RoundMode::Nearest) const;

    /** Human-readable name, e.g. "Q8.4". */
    std::string name() const;

    bool operator==(const FixedPointFormat &other) const = default;

  private:
    int totalBits_;
    int fracBits_;
    std::int64_t rawMax_;
    std::int64_t rawMin_;
    double resolution_;
};

/**
 * A raw value paired with its format — convenience wrapper for code that
 * passes scalars around (tests, examples). The hot datapath loops use raw
 * int64 + a shared format instead to avoid per-element format copies.
 */
class Fixed
{
  public:
    Fixed(const FixedPointFormat &format, double real_value)
        : format_(format), raw_(format.fromReal(real_value)) {}

    static Fixed
    fromRaw(const FixedPointFormat &format, std::int64_t raw)
    {
        Fixed f(format, 0.0);
        f.raw_ = format.saturate(raw);
        return f;
    }

    std::int64_t raw() const { return raw_; }
    double real() const { return format_.toReal(raw_); }
    const FixedPointFormat &format() const { return format_; }

    Fixed
    operator+(const Fixed &other) const
    {
        return fromRaw(format_, format_.add(raw_, other.raw_));
    }

    Fixed
    operator-(const Fixed &other) const
    {
        return fromRaw(format_, format_.sub(raw_, other.raw_));
    }

    Fixed
    operator*(const Fixed &other) const
    {
        return fromRaw(format_, format_.mul(raw_, other.raw_));
    }

  private:
    FixedPointFormat format_;
    std::int64_t raw_;
};

} // namespace vibnn::fixed

#endif // VIBNN_FIXED_FIXED_POINT_HH
