#include "fixed/fixed_point.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/table.hh"

namespace vibnn::fixed
{

FixedPointFormat::FixedPointFormat(int total_bits, int frac_bits)
    : totalBits_(total_bits), fracBits_(frac_bits)
{
    VIBNN_ASSERT(total_bits >= 2 && total_bits <= 32,
                 "fixed-point width out of range: " << total_bits);
    VIBNN_ASSERT(frac_bits >= 0 && frac_bits < total_bits,
                 "fraction bits out of range: " << frac_bits);
    rawMax_ = (std::int64_t{1} << (total_bits - 1)) - 1;
    rawMin_ = -(std::int64_t{1} << (total_bits - 1));
    resolution_ = std::ldexp(1.0, -frac_bits);
}

std::int64_t
FixedPointFormat::fromReal(double value, RoundMode mode) const
{
    const double scaled = value / resolution_;
    double rounded;
    switch (mode) {
      case RoundMode::Nearest:
        rounded = std::round(scaled);
        break;
      case RoundMode::Floor:
      default:
        rounded = std::floor(scaled);
        break;
    }
    if (rounded >= static_cast<double>(rawMax_))
        return rawMax_;
    if (rounded <= static_cast<double>(rawMin_))
        return rawMin_;
    return static_cast<std::int64_t>(rounded);
}

double
FixedPointFormat::toReal(std::int64_t raw) const
{
    return static_cast<double>(raw) * resolution_;
}

std::int64_t
FixedPointFormat::saturate(std::int64_t raw) const
{
    return std::clamp(raw, rawMin_, rawMax_);
}

std::int64_t
FixedPointFormat::add(std::int64_t a, std::int64_t b) const
{
    return saturate(a + b);
}

std::int64_t
FixedPointFormat::sub(std::int64_t a, std::int64_t b) const
{
    return saturate(a - b);
}

std::int64_t
FixedPointFormat::mul(std::int64_t a, std::int64_t b, RoundMode mode) const
{
    std::int64_t product = a * b; // fits: |a|,|b| <= 2^31
    std::int64_t shifted;
    if (fracBits_ == 0) {
        shifted = product;
    } else if (mode == RoundMode::Nearest) {
        const std::int64_t half = std::int64_t{1} << (fracBits_ - 1);
        // Round half away from zero.
        if (product >= 0)
            shifted = (product + half) >> fracBits_;
        else
            shifted = -((-product + half) >> fracBits_);
    } else {
        // Arithmetic shift right == floor for two's complement.
        shifted = product >> fracBits_;
    }
    return saturate(shifted);
}

double
FixedPointFormat::quantize(double value, RoundMode mode) const
{
    return toReal(fromReal(value, mode));
}

std::string
FixedPointFormat::name() const
{
    return strfmt("Q%d.%d", totalBits_, fracBits_);
}

} // namespace vibnn::fixed
