/**
 * @file
 * Bulk quantization helpers: quantize float vectors/matrices to a
 * fixed-point grid and measure the induced error. Used when lowering a
 * trained BNN's variational parameters onto the accelerator (Section 5.2
 * of the paper) and by the Figure 18 bit-length sweep.
 */

#ifndef VIBNN_FIXED_QUANTIZE_HH
#define VIBNN_FIXED_QUANTIZE_HH

#include <cstdint>
#include <vector>

#include "fixed/fixed_point.hh"

namespace vibnn::fixed
{

/** Quantize every element in place (real -> grid -> real). */
void quantizeInPlace(std::vector<float> &values,
                     const FixedPointFormat &format);

/** Quantize to raw integer codes. */
std::vector<std::int64_t> quantizeToRaw(const std::vector<float> &values,
                                        const FixedPointFormat &format);

/** Reconstruct reals from raw codes. */
std::vector<float> dequantize(const std::vector<std::int64_t> &raw,
                              const FixedPointFormat &format);

/** Quantization error metrics. */
struct QuantizationError
{
    double maxAbs = 0.0;
    double rms = 0.0;
    /** Fraction of elements that hit the saturation rails. */
    double saturationRate = 0.0;
};

/** Measure the error introduced by quantizing values to the format. */
QuantizationError measureQuantizationError(const std::vector<float> &values,
                                           const FixedPointFormat &format);

/**
 * Choose the fraction-bit count that minimizes RMS error for the given
 * data at a fixed total width — a tiny "calibration" pass mirroring what
 * one does before deploying on the FPGA.
 */
int bestFracBits(const std::vector<float> &values, int total_bits);

} // namespace vibnn::fixed

#endif // VIBNN_FIXED_QUANTIZE_HH
