#include "fixed/quantize.hh"

#include <cmath>

namespace vibnn::fixed
{

void
quantizeInPlace(std::vector<float> &values, const FixedPointFormat &format)
{
    for (auto &v : values)
        v = static_cast<float>(format.quantize(v));
}

std::vector<std::int64_t>
quantizeToRaw(const std::vector<float> &values,
              const FixedPointFormat &format)
{
    std::vector<std::int64_t> raw;
    raw.reserve(values.size());
    for (float v : values)
        raw.push_back(format.fromReal(v));
    return raw;
}

std::vector<float>
dequantize(const std::vector<std::int64_t> &raw,
           const FixedPointFormat &format)
{
    std::vector<float> values;
    values.reserve(raw.size());
    for (std::int64_t r : raw)
        values.push_back(static_cast<float>(format.toReal(r)));
    return values;
}

QuantizationError
measureQuantizationError(const std::vector<float> &values,
                         const FixedPointFormat &format)
{
    QuantizationError error;
    if (values.empty())
        return error;

    double sq_sum = 0.0;
    std::size_t saturated = 0;
    for (float v : values) {
        const std::int64_t raw = format.fromReal(v);
        if (raw == format.rawMax() || raw == format.rawMin())
            ++saturated;
        const double err = static_cast<double>(v) - format.toReal(raw);
        error.maxAbs = std::max(error.maxAbs, std::fabs(err));
        sq_sum += err * err;
    }
    error.rms = std::sqrt(sq_sum / static_cast<double>(values.size()));
    error.saturationRate =
        static_cast<double>(saturated) / static_cast<double>(values.size());
    return error;
}

int
bestFracBits(const std::vector<float> &values, int total_bits)
{
    int best = total_bits - 1;
    double best_rms = -1.0;
    for (int frac = 0; frac < total_bits; ++frac) {
        FixedPointFormat format(total_bits, frac);
        const double rms = measureQuantizationError(values, format).rms;
        if (best_rms < 0.0 || rms < best_rms) {
            best_rms = rms;
            best = frac;
        }
    }
    return best;
}

} // namespace vibnn::fixed
