/**
 * @file
 * A dense (fully-connected) layer with plain point-estimate weights —
 * the building block of the conventional FNN baseline. The Bayesian
 * counterpart lives in bnn/variational_dense.hh.
 */

#ifndef VIBNN_NN_DENSE_HH
#define VIBNN_NN_DENSE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "nn/tensor.hh"

namespace vibnn::nn
{

/** Gradient buffers for one dense layer. */
struct DenseGradients
{
    Matrix weight;
    std::vector<float> bias;

    void resize(std::size_t out_dim, std::size_t in_dim);
    void zero();
    void accumulate(const DenseGradients &other);
    void scale(float factor);
};

/** Fully-connected layer y = W x + b. */
class DenseLayer
{
  public:
    /**
     * @param in_dim Input feature count.
     * @param out_dim Output feature count.
     * @param rng Initialization source (He-uniform fan-in init).
     */
    DenseLayer(std::size_t in_dim, std::size_t out_dim, Rng &rng);

    std::size_t inDim() const { return weight_.cols(); }
    std::size_t outDim() const { return weight_.rows(); }

    /** Forward: out must hold outDim() floats. */
    void forward(const float *x, float *out) const;

    /**
     * Backward for one sample.
     * @param x The input that produced this activation.
     * @param dy Gradient w.r.t. this layer's output.
     * @param grads Accumulated (+=) parameter gradients.
     * @param dx If non-null, receives gradient w.r.t. x.
     */
    void backward(const float *x, const float *dy, DenseGradients &grads,
                  float *dx) const;

    /** Apply a parameter step: p += delta (delta laid out like grads). */
    void applyDelta(const DenseGradients &delta);

    Matrix &weight() { return weight_; }
    const Matrix &weight() const { return weight_; }
    std::vector<float> &bias() { return bias_; }
    const std::vector<float> &bias() const { return bias_; }

  private:
    Matrix weight_;
    std::vector<float> bias_;
};

} // namespace vibnn::nn

#endif // VIBNN_NN_DENSE_HH
