/**
 * @file
 * Activation functions. The accelerator implements ReLU (Section 5.1);
 * softmax exists for the software classification head.
 */

#ifndef VIBNN_NN_ACTIVATIONS_HH
#define VIBNN_NN_ACTIVATIONS_HH

#include <cstddef>
#include <vector>

namespace vibnn::nn
{

/** In-place ReLU. */
void reluForward(float *values, std::size_t count);

/** ReLU backward: dx = dy where pre-activation > 0, else 0. */
void reluBackward(const float *pre_activation, const float *dy, float *dx,
                  std::size_t count);

/** Numerically stable in-place softmax. */
void softmax(float *values, std::size_t count);

/** softplus(x) = ln(1 + exp(x)), stable for large |x|. */
float softplus(float x);

/** d softplus / dx = logistic(x). */
float logistic(float x);

} // namespace vibnn::nn

#endif // VIBNN_NN_ACTIVATIONS_HH
