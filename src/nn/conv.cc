/**
 * @file
 * Convolution and pooling kernels (see conv.hh).
 */

#include "nn/conv.hh"

#include <cassert>
#include <cmath>
#include <limits>

namespace vibnn::nn
{

namespace
{

/** Output extent of a strided window sweep, 0 when it cannot fit. */
std::size_t
sweptExtent(std::size_t in, std::size_t pad, std::size_t window,
            std::size_t stride)
{
    const std::size_t padded = in + 2 * pad;
    if (window == 0 || stride == 0 || padded < window)
        return 0;
    return (padded - window) / stride + 1;
}

} // namespace

std::size_t
ConvSpec::outHeight() const
{
    return sweptExtent(inHeight, pad, kernel, stride);
}

std::size_t
ConvSpec::outWidth() const
{
    return sweptExtent(inWidth, pad, kernel, stride);
}

bool
ConvSpec::valid() const
{
    return inChannels > 0 && outChannels > 0 && kernel > 0 && stride > 0 &&
           pad < kernel && outHeight() > 0 && outWidth() > 0;
}

void
im2col(const ConvSpec &spec, const float *x, Matrix &patches)
{
    const std::size_t out_h = spec.outHeight();
    const std::size_t out_w = spec.outWidth();
    const std::size_t patch = spec.patchSize();
    if (patches.rows() != out_h * out_w || patches.cols() != patch)
        patches = Matrix(out_h * out_w, patch);

    for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
            float *row = patches.row(oy * out_w + ox);
            std::size_t k = 0;
            for (std::size_t c = 0; c < spec.inChannels; ++c) {
                const float *plane =
                    x + c * spec.inHeight * spec.inWidth;
                for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
                    // Signed arithmetic: the padded coordinate may be
                    // negative at the border.
                    const std::ptrdiff_t iy =
                        static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                        static_cast<std::ptrdiff_t>(spec.pad);
                    for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(ox * spec.stride +
                                                        kx) -
                            static_cast<std::ptrdiff_t>(spec.pad);
                        const bool inside =
                            iy >= 0 &&
                            iy < static_cast<std::ptrdiff_t>(
                                     spec.inHeight) &&
                            ix >= 0 &&
                            ix < static_cast<std::ptrdiff_t>(spec.inWidth);
                        row[k++] =
                            inside ? plane[iy * spec.inWidth + ix] : 0.0f;
                    }
                }
            }
        }
    }
}

void
col2imAccumulate(const ConvSpec &spec, const Matrix &d_patches, float *dx)
{
    const std::size_t out_h = spec.outHeight();
    const std::size_t out_w = spec.outWidth();
    assert(d_patches.rows() == out_h * out_w);
    assert(d_patches.cols() == spec.patchSize());

    for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
            const float *row = d_patches.row(oy * out_w + ox);
            std::size_t k = 0;
            for (std::size_t c = 0; c < spec.inChannels; ++c) {
                float *plane = dx + c * spec.inHeight * spec.inWidth;
                for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
                    const std::ptrdiff_t iy =
                        static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                        static_cast<std::ptrdiff_t>(spec.pad);
                    for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(ox * spec.stride +
                                                        kx) -
                            static_cast<std::ptrdiff_t>(spec.pad);
                        const bool inside =
                            iy >= 0 &&
                            iy < static_cast<std::ptrdiff_t>(
                                     spec.inHeight) &&
                            ix >= 0 &&
                            ix < static_cast<std::ptrdiff_t>(spec.inWidth);
                        if (inside)
                            plane[iy * spec.inWidth + ix] += row[k];
                        ++k;
                    }
                }
            }
        }
    }
}

void
ConvGradients::resize(const ConvSpec &spec)
{
    weight = Matrix(spec.outChannels, spec.patchSize());
    bias.assign(spec.outChannels, 0.0f);
}

void
ConvGradients::zero()
{
    weight.fill(0.0f);
    std::fill(bias.begin(), bias.end(), 0.0f);
}

Conv2dLayer::Conv2dLayer(const ConvSpec &spec, Rng &rng)
    : spec_(spec), weight_(spec.outChannels, spec.patchSize()),
      bias_(spec.outChannels, 0.0f)
{
    assert(spec_.valid());
    // He-uniform over the receptive-field fan-in, the same policy the
    // dense substrate uses.
    const float bound =
        std::sqrt(6.0f / static_cast<float>(spec_.patchSize()));
    for (auto &w : weight_.data())
        w = static_cast<float>(rng.uniform(-bound, bound));
}

void
Conv2dLayer::forward(const float *x, float *out, ConvScratch &scratch)
    const
{
    im2col(spec_, x, scratch.patches);
    const std::size_t positions = spec_.positions();
    const std::size_t patch = spec_.patchSize();
    for (std::size_t oc = 0; oc < spec_.outChannels; ++oc) {
        const float *w = weight_.row(oc);
        float *plane = out + oc * positions;
        for (std::size_t p = 0; p < positions; ++p) {
            const float *v = scratch.patches.row(p);
            float acc = bias_[oc];
            for (std::size_t k = 0; k < patch; ++k)
                acc += w[k] * v[k];
            plane[p] = acc;
        }
    }
}

void
Conv2dLayer::backward(const float *dy, ConvScratch &scratch,
                      ConvGradients &grads, float *dx) const
{
    const std::size_t positions = spec_.positions();
    const std::size_t patch = spec_.patchSize();
    assert(scratch.patches.rows() == positions);

    const bool want_dx = dx != nullptr;
    if (want_dx) {
        if (scratch.dPatches.rows() != positions ||
            scratch.dPatches.cols() != patch)
            scratch.dPatches = Matrix(positions, patch);
        scratch.dPatches.fill(0.0f);
    }

    for (std::size_t oc = 0; oc < spec_.outChannels; ++oc) {
        const float *w = weight_.row(oc);
        const float *g = dy + oc * positions;
        float *dw = grads.weight.row(oc);
        float bias_acc = 0.0f;
        for (std::size_t p = 0; p < positions; ++p) {
            const float gp = g[p];
            bias_acc += gp;
            const float *v = scratch.patches.row(p);
            for (std::size_t k = 0; k < patch; ++k)
                dw[k] += gp * v[k];
            if (want_dx) {
                float *dv = scratch.dPatches.row(p);
                for (std::size_t k = 0; k < patch; ++k)
                    dv[k] += gp * w[k];
            }
        }
        grads.bias[oc] += bias_acc;
    }

    if (want_dx) {
        std::fill(dx, dx + spec_.inputSize(), 0.0f);
        col2imAccumulate(spec_, scratch.dPatches, dx);
    }
}

void
Conv2dLayer::applyDelta(const ConvGradients &delta)
{
    assert(delta.weight.size() == weight_.size());
    for (std::size_t i = 0; i < weight_.size(); ++i)
        weight_.data()[i] += delta.weight.data()[i];
    for (std::size_t i = 0; i < bias_.size(); ++i)
        bias_[i] += delta.bias[i];
}

std::size_t
PoolSpec::outHeight() const
{
    return sweptExtent(inHeight, 0, window, stride);
}

std::size_t
PoolSpec::outWidth() const
{
    return sweptExtent(inWidth, 0, window, stride);
}

bool
PoolSpec::valid() const
{
    return channels > 0 && window > 0 && stride > 0 && outHeight() > 0 &&
           outWidth() > 0;
}

MaxPool2dLayer::MaxPool2dLayer(const PoolSpec &spec) : spec_(spec)
{
    assert(spec_.valid());
}

void
MaxPool2dLayer::forward(const float *x, float *out, PoolScratch &scratch)
    const
{
    const std::size_t out_h = spec_.outHeight();
    const std::size_t out_w = spec_.outWidth();
    scratch.argmax.resize(spec_.outputSize());

    std::size_t o = 0;
    for (std::size_t c = 0; c < spec_.channels; ++c) {
        const float *plane = x + c * spec_.inHeight * spec_.inWidth;
        const std::size_t plane_base =
            c * spec_.inHeight * spec_.inWidth;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
            for (std::size_t ox = 0; ox < out_w; ++ox) {
                float best = -std::numeric_limits<float>::infinity();
                std::size_t best_idx = 0;
                for (std::size_t wy = 0; wy < spec_.window; ++wy) {
                    const std::size_t iy = oy * spec_.stride + wy;
                    if (iy >= spec_.inHeight)
                        break;
                    for (std::size_t wx = 0; wx < spec_.window; ++wx) {
                        const std::size_t ix = ox * spec_.stride + wx;
                        if (ix >= spec_.inWidth)
                            break;
                        const float v = plane[iy * spec_.inWidth + ix];
                        if (v > best) {
                            best = v;
                            best_idx = iy * spec_.inWidth + ix;
                        }
                    }
                }
                out[o] = best;
                scratch.argmax[o] = plane_base + best_idx;
                ++o;
            }
        }
    }
}

void
MaxPool2dLayer::backward(const float *dy, const PoolScratch &scratch,
                         float *dx) const
{
    assert(scratch.argmax.size() == spec_.outputSize());
    std::fill(dx, dx + spec_.inputSize(), 0.0f);
    for (std::size_t o = 0; o < scratch.argmax.size(); ++o)
        dx[scratch.argmax[o]] += dy[o];
}

} // namespace vibnn::nn
