#include "nn/uncertainty.hh"

#include <algorithm>
#include <cmath>

namespace vibnn::nn
{

double
predictiveEntropy(const float *probs, std::size_t count)
{
    double entropy = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        const double p = probs[i];
        if (p > 0.0)
            entropy -= p * std::log(p);
    }
    return entropy;
}

double
meanSampleEntropy(const float *sample_probs, std::size_t samples,
                  std::size_t count)
{
    if (samples == 0)
        return 0.0;
    double total = 0.0;
    for (std::size_t s = 0; s < samples; ++s)
        total += predictiveEntropy(sample_probs + s * count, count);
    return total / static_cast<double>(samples);
}

double
mutualInformation(const float *mean_probs, const float *sample_probs,
                  std::size_t samples, std::size_t count)
{
    const double mi = predictiveEntropy(mean_probs, count) -
        meanSampleEntropy(sample_probs, samples, count);
    return mi > 0.0 ? mi : 0.0;
}

float
maxProbability(const float *probs, std::size_t count)
{
    if (count == 0)
        return 0.0f;
    return *std::max_element(probs, probs + count);
}

std::vector<ClassScore>
topK(const float *probs, std::size_t count, std::size_t k)
{
    std::vector<ClassScore> ranking(count);
    for (std::size_t i = 0; i < count; ++i)
        ranking[i] = {i, probs[i]};
    k = std::min(k, count);
    std::partial_sort(ranking.begin(), ranking.begin() + k,
                      ranking.end(),
                      [](const ClassScore &a, const ClassScore &b) {
                          if (a.prob != b.prob)
                              return a.prob > b.prob;
                          return a.classIndex < b.classIndex;
                      });
    ranking.resize(k);
    return ranking;
}

} // namespace vibnn::nn
