/**
 * @file
 * Conventional multi-layer perceptron (the paper's FNN baseline):
 * dense layers with ReLU hidden activations, optional dropout, and a
 * softmax cross-entropy head. This is the deterministic counterpart the
 * BNN is compared against in Tables 6/7 and Figures 16/17.
 */

#ifndef VIBNN_NN_MLP_HH
#define VIBNN_NN_MLP_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "nn/dense.hh"

namespace vibnn::nn
{

/** Per-thread scratch space for forward/backward passes. */
struct MlpWorkspace
{
    /** Post-activation values per layer boundary (activations[0] = x). */
    std::vector<std::vector<float>> activations;
    /** Pre-activation values per layer. */
    std::vector<std::vector<float>> preActivations;
    /** Dropout keep masks per hidden layer (already inverse-scaled). */
    std::vector<std::vector<float>> dropoutMasks;
    /** Gradient accumulators per layer. */
    std::vector<DenseGradients> gradients;
    /** Backprop scratch. */
    std::vector<float> deltaA, deltaB;

    /** Sum the loss over samples accumulated since zeroGrads(). */
    double lossSum = 0.0;
    std::size_t sampleCount = 0;
};

/** Feed-forward ReLU network with optional dropout. */
class Mlp
{
  public:
    /**
     * @param layer_sizes Sizes including input and output, e.g.
     *        {784, 200, 200, 10}.
     * @param rng Initialization source.
     * @param dropout_rate Drop probability on hidden activations during
     *        training (0 disables).
     */
    Mlp(const std::vector<std::size_t> &layer_sizes, Rng &rng,
        float dropout_rate = 0.0f);

    std::size_t inputDim() const { return layerSizes_.front(); }
    std::size_t outputDim() const { return layerSizes_.back(); }
    const std::vector<std::size_t> &layerSizes() const
    {
        return layerSizes_;
    }

    /** Create a workspace sized for this network. */
    MlpWorkspace makeWorkspace() const;

    /** Zero a workspace's gradient accumulators. */
    void zeroGrads(MlpWorkspace &ws) const;

    /** Inference forward pass (no dropout); logits must hold
     *  outputDim() floats. */
    void forward(const float *x, float *logits) const;

    /**
     * Training pass: forward with dropout, softmax cross-entropy, full
     * backward; gradients accumulate into ws.
     * @return The sample's loss.
     */
    double trainSample(const float *x, std::size_t target,
                       MlpWorkspace &ws, Rng &dropout_rng);

    /** Total number of scalar parameters. */
    std::size_t paramCount() const;

    /** Copy parameters into a flat array (weights then bias per layer). */
    void gatherParams(std::vector<float> &flat) const;

    /** Load parameters from a flat array. */
    void scatterParams(const std::vector<float> &flat);

    /** Flatten accumulated gradients (averaged over samples). */
    void gatherGrads(const MlpWorkspace &ws, std::vector<float> &flat)
        const;

    /** Classify one sample. */
    std::size_t predict(const float *x) const;

    const std::vector<DenseLayer> &layers() const { return layers_; }
    float dropoutRate() const { return dropoutRate_; }

  private:
    std::vector<std::size_t> layerSizes_;
    std::vector<DenseLayer> layers_;
    float dropoutRate_;
};

} // namespace vibnn::nn

#endif // VIBNN_NN_MLP_HH
