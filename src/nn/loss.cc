#include "nn/loss.hh"

#include <cmath>

#include "common/logging.hh"
#include "nn/activations.hh"

namespace vibnn::nn
{

double
softmaxCrossEntropy(float *logits, std::size_t count, std::size_t target,
                    float *grad_out)
{
    VIBNN_ASSERT(target < count, "target class out of range");
    softmax(logits, count);
    const float p = logits[target];
    const double loss = -std::log(std::max(p, 1e-12f));
    if (grad_out) {
        for (std::size_t i = 0; i < count; ++i)
            grad_out[i] = logits[i] - (i == target ? 1.0f : 0.0f);
    }
    return loss;
}

} // namespace vibnn::nn
