/**
 * @file
 * First-order optimizers operating on flat parameter/gradient arrays.
 * Training happens offline on the host (the paper trains on CPU/GPU and
 * ships (mu, sigma) to the FPGA), so these are standard SGD-with-momentum
 * and Adam.
 */

#ifndef VIBNN_NN_OPTIMIZER_HH
#define VIBNN_NN_OPTIMIZER_HH

#include <cstddef>
#include <vector>

namespace vibnn::nn
{

/** Optimizer interface over a flat parameter vector. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /**
     * Apply one update step.
     * @param params Parameter array (updated in place).
     * @param grads Gradient array of equal length.
     * @param count Element count.
     */
    virtual void step(float *params, const float *grads,
                      std::size_t count) = 0;

    /** Reset internal state (moments). */
    virtual void reset() = 0;
};

/** SGD with classical momentum. */
class SgdOptimizer : public Optimizer
{
  public:
    SgdOptimizer(float learning_rate, float momentum = 0.0f);

    void step(float *params, const float *grads,
              std::size_t count) override;
    void reset() override;

    float learningRate() const { return learningRate_; }
    void setLearningRate(float lr) { learningRate_ = lr; }

  private:
    float learningRate_;
    float momentum_;
    std::vector<float> velocity_;
};

/**
 * Adam (Kingma & Ba) with bias correction.
 *
 * Besides the classic flat step(), the optimizer exposes a segmented
 * in-place protocol for model storage that lives in many tensors:
 * ensureState() sizes the moment vectors once, beginStep() advances
 * the shared timestep, and stepRange() updates one parameter segment
 * at its offset in the flat layout — so a trainer can step each
 * layer's own storage without ever gathering parameters into one
 * vector. A full beginStep + stepRange sweep is bit-identical to one
 * step() over the concatenated arrays (the inner loop is the same
 * kernel either way), and the moments persist across minibatches as
 * long as the total parameter count is stable.
 */
class AdamOptimizer : public Optimizer
{
  public:
    explicit AdamOptimizer(float learning_rate, float beta1 = 0.9f,
                           float beta2 = 0.999f, float epsilon = 1e-8f);

    void step(float *params, const float *grads,
              std::size_t count) override;
    void reset() override;

    /** Size the moment vectors for `count` total parameters; resets
     *  moments and timestep only when the size actually changes. */
    void ensureState(std::size_t count);

    /** Advance the shared timestep and cache its bias corrections for
     *  the stepRange() calls of this step. */
    void beginStep();

    /**
     * Update the segment living at [offset, offset + count) of the
     * flat parameter layout, in place. `gradScale` multiplies every
     * gradient before the moment updates (minibatch averaging without
     * a scaled copy of the gradient buffer).
     */
    void stepRange(float *params, const float *grads, std::size_t count,
                   std::size_t offset, float gradScale = 1.0f);

    float learningRate() const { return learningRate_; }
    void setLearningRate(float lr) { learningRate_ = lr; }

  private:
    float learningRate_;
    float beta1_, beta2_, epsilon_;
    float bc1_ = 1.0f, bc2_ = 1.0f;
    std::vector<float> m_, v_;
    std::size_t t_ = 0;
};

} // namespace vibnn::nn

#endif // VIBNN_NN_OPTIMIZER_HH
