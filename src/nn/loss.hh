/**
 * @file
 * Classification loss: softmax cross-entropy with the standard fused
 * gradient (probabilities minus one-hot target).
 */

#ifndef VIBNN_NN_LOSS_HH
#define VIBNN_NN_LOSS_HH

#include <cstddef>

namespace vibnn::nn
{

/**
 * Compute softmax cross-entropy for one sample.
 *
 * @param logits Raw network outputs (modified in place into
 *        probabilities).
 * @param count Number of classes.
 * @param target Index of the true class.
 * @param grad_out If non-null, receives dLoss/dlogits (p - onehot).
 * @return The cross-entropy loss value.
 */
double softmaxCrossEntropy(float *logits, std::size_t count,
                           std::size_t target, float *grad_out);

} // namespace vibnn::nn

#endif // VIBNN_NN_LOSS_HH
