#include "nn/activations.hh"

#include <algorithm>
#include <cmath>

namespace vibnn::nn
{

void
reluForward(float *values, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        values[i] = std::max(0.0f, values[i]);
}

void
reluBackward(const float *pre_activation, const float *dy, float *dx,
             std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        dx[i] = pre_activation[i] > 0.0f ? dy[i] : 0.0f;
}

void
softmax(float *values, std::size_t count)
{
    if (count == 0)
        return;
    float peak = values[0];
    for (std::size_t i = 1; i < count; ++i)
        peak = std::max(peak, values[i]);
    float total = 0.0f;
    for (std::size_t i = 0; i < count; ++i) {
        values[i] = std::exp(values[i] - peak);
        total += values[i];
    }
    const float inv = 1.0f / total;
    for (std::size_t i = 0; i < count; ++i)
        values[i] *= inv;
}

float
softplus(float x)
{
    if (x > 20.0f)
        return x;
    if (x < -20.0f)
        return std::exp(x);
    return std::log1p(std::exp(x));
}

float
logistic(float x)
{
    if (x >= 0.0f) {
        const float z = std::exp(-x);
        return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
}

} // namespace vibnn::nn
