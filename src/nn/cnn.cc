/**
 * @file
 * ConvNet assembly, forward/backward plumbing and trainer (see cnn.hh).
 */

#include "nn/cnn.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "nn/activations.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"

namespace vibnn::nn
{

ConvNetConfig
ConvNetConfig::lenetLike(std::size_t classes)
{
    ConvNetConfig cfg;
    cfg.blocks = {
        {8, 5, 1, 2, true, 2},  // 1x28x28 -> 8x28x28 -> 8x14x14
        {16, 5, 1, 2, true, 2}, // -> 16x14x14 -> 16x7x7
    };
    cfg.denseHidden = {64};
    cfg.numClasses = classes;
    return cfg;
}

ConvNet::ConvNet(const ConvNetConfig &config, Rng &rng) : config_(config)
{
    std::size_t channels = config.inChannels;
    std::size_t height = config.imageHeight;
    std::size_t width = config.imageWidth;

    for (const auto &block : config.blocks) {
        ConvSpec spec;
        spec.inChannels = channels;
        spec.inHeight = height;
        spec.inWidth = width;
        spec.outChannels = block.outChannels;
        spec.kernel = block.kernel;
        spec.stride = block.stride;
        spec.pad = block.pad;
        VIBNN_ASSERT(spec.valid(), "invalid conv block geometry");

        stages_.push_back(Stage::Conv);
        stageIndex_.push_back(convs_.size());
        stageOutSize_.push_back(spec.outputSize());
        stageRelu_.push_back(true);
        convs_.emplace_back(spec, rng);

        channels = spec.outChannels;
        height = spec.outHeight();
        width = spec.outWidth();

        if (block.pool) {
            PoolSpec pool;
            pool.channels = channels;
            pool.inHeight = height;
            pool.inWidth = width;
            pool.window = block.poolWindow;
            pool.stride = block.poolWindow;
            VIBNN_ASSERT(pool.valid(), "invalid pool geometry");

            stages_.push_back(Stage::Pool);
            stageIndex_.push_back(pools_.size());
            stageOutSize_.push_back(pool.outputSize());
            stageRelu_.push_back(false);
            pools_.emplace_back(pool);

            height = pool.outHeight();
            width = pool.outWidth();
        }
    }

    std::size_t flat = channels * height * width;
    for (std::size_t hidden : config.denseHidden) {
        stages_.push_back(Stage::Dense);
        stageIndex_.push_back(dense_.size());
        stageOutSize_.push_back(hidden);
        stageRelu_.push_back(true);
        dense_.emplace_back(flat, hidden, rng);
        flat = hidden;
    }
    stages_.push_back(Stage::Dense);
    stageIndex_.push_back(dense_.size());
    stageOutSize_.push_back(config.numClasses);
    stageRelu_.push_back(false);
    dense_.emplace_back(flat, config.numClasses, rng);
}

std::size_t
ConvNet::inputDim() const
{
    return config_.inChannels * config_.imageHeight * config_.imageWidth;
}

ConvNetWorkspace
ConvNet::makeWorkspace() const
{
    ConvNetWorkspace ws;
    ws.buffers.resize(stages_.size() + 1);
    ws.buffers[0].resize(inputDim());
    ws.preActs.resize(stages_.size());
    std::size_t widest = inputDim();
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        ws.buffers[s + 1].resize(stageOutSize_[s]);
        if (stageRelu_[s])
            ws.preActs[s].resize(stageOutSize_[s]);
        widest = std::max(widest, stageOutSize_[s]);
    }
    ws.convScratch.resize(convs_.size());
    ws.poolScratch.resize(pools_.size());
    ws.convGrads.resize(convs_.size());
    for (std::size_t i = 0; i < convs_.size(); ++i)
        ws.convGrads[i].resize(convs_[i].spec());
    ws.denseGrads.resize(dense_.size());
    for (std::size_t i = 0; i < dense_.size(); ++i)
        ws.denseGrads[i].resize(dense_[i].outDim(), dense_[i].inDim());
    ws.deltaA.resize(widest);
    ws.deltaB.resize(widest);
    return ws;
}

void
ConvNet::zeroGrads(ConvNetWorkspace &ws) const
{
    for (auto &g : ws.convGrads)
        g.zero();
    for (auto &g : ws.denseGrads)
        g.zero();
    ws.lossSum = 0.0;
    ws.sampleCount = 0;
}

void
ConvNet::forward(const float *x, float *logits, ConvNetWorkspace &ws)
    const
{
    std::copy(x, x + inputDim(), ws.buffers[0].begin());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const float *in = ws.buffers[s].data();
        float *out = ws.buffers[s + 1].data();
        switch (stages_[s]) {
          case Stage::Conv:
            convs_[stageIndex_[s]].forward(in, out,
                                           ws.convScratch[stageIndex_[s]]);
            break;
          case Stage::Pool:
            pools_[stageIndex_[s]].forward(in, out,
                                           ws.poolScratch[stageIndex_[s]]);
            break;
          case Stage::Dense:
            {
                const auto &layer = dense_[stageIndex_[s]];
                layer.forward(in, out);
                break;
            }
        }
        if (stageRelu_[s]) {
            std::copy(out, out + stageOutSize_[s], ws.preActs[s].begin());
            reluForward(out, stageOutSize_[s]);
        }
    }
    std::copy(ws.buffers.back().begin(), ws.buffers.back().end(), logits);
}

double
ConvNet::trainSample(const float *x, std::size_t target,
                     ConvNetWorkspace &ws)
{
    std::vector<float> logits(outputDim());
    forward(x, logits.data(), ws);

    float *delta = ws.deltaA.data();
    const double loss =
        softmaxCrossEntropy(logits.data(), outputDim(), target, delta);
    ws.lossSum += loss;
    ws.sampleCount += 1;

    // Walk the stages backward, ping-ponging delta buffers. `delta`
    // always holds d loss / d (stage output, post-ReLU).
    float *next_delta = ws.deltaB.data();
    for (std::size_t s = stages_.size(); s-- > 0;) {
        if (stageRelu_[s]) {
            reluBackward(ws.preActs[s].data(), delta, delta,
                         stageOutSize_[s]);
        }
        const float *in = ws.buffers[s].data();
        const bool want_dx = s > 0;
        switch (stages_[s]) {
          case Stage::Conv:
            convs_[stageIndex_[s]].backward(
                delta, ws.convScratch[stageIndex_[s]],
                ws.convGrads[stageIndex_[s]],
                want_dx ? next_delta : nullptr);
            break;
          case Stage::Pool:
            pools_[stageIndex_[s]].backward(
                delta, ws.poolScratch[stageIndex_[s]], next_delta);
            break;
          case Stage::Dense:
            dense_[stageIndex_[s]].backward(
                in, delta, ws.denseGrads[stageIndex_[s]],
                want_dx ? next_delta : nullptr);
            break;
        }
        std::swap(delta, next_delta);
    }
    return loss;
}

std::size_t
ConvNet::predict(const float *x, ConvNetWorkspace &ws) const
{
    std::vector<float> logits(outputDim());
    forward(x, logits.data(), ws);
    return argmax(logits.data(), logits.size());
}

std::size_t
ConvNet::paramCount() const
{
    std::size_t n = 0;
    for (const auto &c : convs_)
        n += c.weight().size() + c.bias().size();
    for (const auto &d : dense_)
        n += d.weight().size() + d.bias().size();
    return n;
}

void
ConvNet::gatherParams(std::vector<float> &flat) const
{
    flat.clear();
    flat.reserve(paramCount());
    for (const auto &c : convs_) {
        flat.insert(flat.end(), c.weight().data().begin(),
                    c.weight().data().end());
        flat.insert(flat.end(), c.bias().begin(), c.bias().end());
    }
    for (const auto &d : dense_) {
        flat.insert(flat.end(), d.weight().data().begin(),
                    d.weight().data().end());
        flat.insert(flat.end(), d.bias().begin(), d.bias().end());
    }
}

void
ConvNet::scatterParams(const std::vector<float> &flat)
{
    VIBNN_ASSERT(flat.size() == paramCount(), "parameter size mismatch");
    std::size_t at = 0;
    auto take = [&](float *dst, std::size_t n) {
        std::copy(flat.begin() + at, flat.begin() + at + n, dst);
        at += n;
    };
    for (auto &c : convs_) {
        take(c.weight().data().data(), c.weight().size());
        take(c.bias().data(), c.bias().size());
    }
    for (auto &d : dense_) {
        take(d.weight().data().data(), d.weight().size());
        take(d.bias().data(), d.bias().size());
    }
}

void
ConvNet::gatherGrads(const ConvNetWorkspace &ws, std::vector<float> &flat)
    const
{
    const float inv =
        ws.sampleCount > 0
            ? 1.0f / static_cast<float>(ws.sampleCount)
            : 0.0f;
    flat.clear();
    flat.reserve(paramCount());
    auto append = [&](const float *src, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            flat.push_back(src[i] * inv);
    };
    for (std::size_t i = 0; i < convs_.size(); ++i) {
        append(ws.convGrads[i].weight.data().data(),
               ws.convGrads[i].weight.size());
        append(ws.convGrads[i].bias.data(), ws.convGrads[i].bias.size());
    }
    for (std::size_t i = 0; i < dense_.size(); ++i) {
        append(ws.denseGrads[i].weight.data().data(),
               ws.denseGrads[i].weight.size());
        append(ws.denseGrads[i].bias.data(), ws.denseGrads[i].bias.size());
    }
}

double
evaluateAccuracy(const ConvNet &net, const DataView &data)
{
    if (data.count == 0)
        return 0.0;
    ConvNetWorkspace ws = net.makeWorkspace();
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.count; ++i) {
        if (net.predict(data.sample(i), ws) ==
            static_cast<std::size_t>(data.labels[i])) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.count);
}

TrainHistory
trainConvNet(ConvNet &net, const DataView &train, const TrainConfig &config)
{
    VIBNN_ASSERT(train.count > 0, "empty training set");
    VIBNN_ASSERT(train.dim == net.inputDim(), "feature dim mismatch");

    TrainHistory history;
    Rng rng(config.seed);
    AdamOptimizer optimizer(config.learningRate);

    ConvNetWorkspace ws = net.makeWorkspace();
    std::vector<float> params, grads;
    std::vector<std::size_t> order(train.count);
    std::iota(order.begin(), order.end(), 0);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t seen = 0;

        for (std::size_t start = 0; start < train.count;
             start += config.batchSize) {
            const std::size_t end =
                std::min(start + config.batchSize, train.count);
            net.zeroGrads(ws);
            for (std::size_t k = start; k < end; ++k) {
                const std::size_t i = order[k];
                epoch_loss += net.trainSample(
                    train.sample(i),
                    static_cast<std::size_t>(train.labels[i]), ws);
            }
            seen += end - start;
            net.gatherGrads(ws, grads);
            net.gatherParams(params);
            optimizer.step(params.data(), grads.data(), params.size());
            net.scatterParams(params);
        }

        const double mean_loss = epoch_loss / static_cast<double>(seen);
        history.trainLoss.push_back(mean_loss);
        double acc = -1.0;
        if (config.evalSet)
            acc = evaluateAccuracy(net, *config.evalSet);
        history.evalAccuracy.push_back(acc);
        if (config.onEpoch)
            config.onEpoch(epoch, mean_loss, acc);
    }
    return history;
}

} // namespace vibnn::nn
