/**
 * @file
 * Uncertainty measures over Monte-Carlo ensemble probabilities.
 *
 * The whole point of serving a BNN instead of a point estimate is the
 * calibrated predictive distribution (paper equation (6)): the ensemble
 * mean probs carry the prediction, and the spread across the T sampled
 * networks carries the uncertainty. These helpers compute the standard
 * decompositions from raw probability buffers, so the software models
 * (bnn::BayesianMlp / bnn::BayesianConvNet), the hardware paths
 * (accel::McEngine) and the serving layer (serve::InferenceSession)
 * all report identical metrics from the same numbers:
 *
 *   predictive entropy   H[mean_s p_s]        total uncertainty
 *   expected entropy     mean_s H[p_s]        aleatoric part
 *   mutual information   H[mean] - mean H     epistemic part (BALD)
 *   max-prob confidence  max_c mean p(c)      the argmax's probability
 *
 * All entropies are in nats.
 */

#ifndef VIBNN_NN_UNCERTAINTY_HH
#define VIBNN_NN_UNCERTAINTY_HH

#include <cstddef>
#include <vector>

namespace vibnn::nn
{

/** Shannon entropy -sum p ln p of one distribution (zero-prob classes
 *  contribute nothing). */
double predictiveEntropy(const float *probs, std::size_t count);

/**
 * Mean per-sample entropy (1/S) sum_s H[p_s] — the aleatoric term of
 * the BALD decomposition.
 * @param sample_probs S x count row-major per-sample distributions.
 */
double meanSampleEntropy(const float *sample_probs, std::size_t samples,
                         std::size_t count);

/**
 * Mutual information between prediction and posterior weights (BALD):
 * H[mean distribution] - mean per-sample entropy, clamped at 0 (the
 * analytic value is nonnegative; float roundoff can dip below).
 * @param mean_probs The ensemble mean distribution (count entries).
 * @param sample_probs S x count row-major per-sample distributions.
 */
double mutualInformation(const float *mean_probs,
                         const float *sample_probs, std::size_t samples,
                         std::size_t count);

/** Max-probability confidence: the probability mass of the argmax. */
float maxProbability(const float *probs, std::size_t count);

/** One (class, probability) entry of a top-k ranking. */
struct ClassScore
{
    std::size_t classIndex = 0;
    float prob = 0.0f;
};

/** The k most probable classes, descending by probability (ties keep
 *  the lower class index first); k is clamped to count. */
std::vector<ClassScore> topK(const float *probs, std::size_t count,
                             std::size_t k);

} // namespace vibnn::nn

#endif // VIBNN_NN_UNCERTAINTY_HH
