/**
 * @file
 * Elman RNN forward/BPTT kernels and trainer (see rnn.hh).
 */

#include "nn/rnn.hh"

#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"

namespace vibnn::nn
{

void
RnnGradients::resize(const RnnConfig &config)
{
    wx = Matrix(config.hiddenDim, config.inputDim);
    wh = Matrix(config.hiddenDim, config.hiddenDim);
    wy = Matrix(config.numClasses, config.hiddenDim);
    bh.assign(config.hiddenDim, 0.0f);
    by.assign(config.numClasses, 0.0f);
}

void
RnnGradients::zero()
{
    wx.fill(0.0f);
    wh.fill(0.0f);
    wy.fill(0.0f);
    std::fill(bh.begin(), bh.end(), 0.0f);
    std::fill(by.begin(), by.end(), 0.0f);
}

double
RnnGradients::norm() const
{
    double sum = 0.0;
    for (const auto *m : {&wx, &wh, &wy}) {
        for (float v : m->data())
            sum += static_cast<double>(v) * v;
    }
    for (const auto *v : {&bh, &by}) {
        for (float x : *v)
            sum += static_cast<double>(x) * x;
    }
    return std::sqrt(sum);
}

void
RnnGradients::scale(float factor)
{
    for (auto *m : {&wx, &wh, &wy}) {
        for (auto &v : m->data())
            v *= factor;
    }
    for (auto *v : {&bh, &by}) {
        for (auto &x : *v)
            x *= factor;
    }
}

ElmanRnn::ElmanRnn(const RnnConfig &config, Rng &rng)
    : config_(config), wx_(config.hiddenDim, config.inputDim),
      wh_(config.hiddenDim, config.hiddenDim),
      wy_(config.numClasses, config.hiddenDim),
      bh_(config.hiddenDim, 0.0f), by_(config.numClasses, 0.0f)
{
    VIBNN_ASSERT(config.inputDim > 0 && config.hiddenDim > 0 &&
                     config.numClasses > 0 && config.seqLen > 0,
                 "degenerate RNN geometry");
    const float in_bound =
        std::sqrt(6.0f / static_cast<float>(config.inputDim));
    for (auto &v : wx_.data())
        v = static_cast<float>(rng.uniform(-in_bound, in_bound));
    // Small recurrent init keeps the spectral radius < 1 so the
    // untrained network neither explodes nor saturates.
    const float rec_bound =
        0.5f / std::sqrt(static_cast<float>(config.hiddenDim));
    for (auto &v : wh_.data())
        v = static_cast<float>(rng.uniform(-rec_bound, rec_bound));
    const float out_bound =
        std::sqrt(6.0f / static_cast<float>(config.hiddenDim));
    for (auto &v : wy_.data())
        v = static_cast<float>(rng.uniform(-out_bound, out_bound));
}

RnnWorkspace
ElmanRnn::makeWorkspace() const
{
    RnnWorkspace ws;
    ws.hidden.assign(config_.seqLen,
                     std::vector<float>(config_.hiddenDim, 0.0f));
    ws.grads.resize(config_);
    ws.deltaH.resize(config_.hiddenDim);
    ws.deltaPre.resize(config_.hiddenDim);
    return ws;
}

void
ElmanRnn::zeroGrads(RnnWorkspace &ws) const
{
    ws.grads.zero();
    ws.lossSum = 0.0;
    ws.sampleCount = 0;
}

void
ElmanRnn::forward(const float *xs, float *logits, RnnWorkspace &ws) const
{
    const std::size_t h_dim = config_.hiddenDim;
    for (std::size_t t = 0; t < config_.seqLen; ++t) {
        const float *x = xs + t * config_.inputDim;
        const std::vector<float> *prev =
            t > 0 ? &ws.hidden[t - 1] : nullptr;
        auto &h = ws.hidden[t];
        for (std::size_t i = 0; i < h_dim; ++i) {
            float acc = bh_[i];
            const float *wx_row = wx_.row(i);
            for (std::size_t j = 0; j < config_.inputDim; ++j)
                acc += wx_row[j] * x[j];
            if (prev) {
                const float *wh_row = wh_.row(i);
                for (std::size_t j = 0; j < h_dim; ++j)
                    acc += wh_row[j] * (*prev)[j];
            }
            h[i] = std::tanh(acc);
        }
    }
    matVec(wy_, ws.hidden.back().data(), by_.data(), logits);
}

double
ElmanRnn::trainSequence(const float *xs, std::size_t target,
                        RnnWorkspace &ws)
{
    std::vector<float> logits(config_.numClasses);
    forward(xs, logits.data(), ws);

    std::vector<float> dy(config_.numClasses);
    const double loss = softmaxCrossEntropy(
        logits.data(), config_.numClasses, target, dy.data());
    ws.lossSum += loss;
    ws.sampleCount += 1;

    const std::size_t h_dim = config_.hiddenDim;
    // Classifier gradients and dL/dh_{T-1}.
    const auto &h_last = ws.hidden.back();
    for (std::size_t c = 0; c < config_.numClasses; ++c) {
        ws.grads.by[c] += dy[c];
        float *gy = ws.grads.wy.row(c);
        for (std::size_t j = 0; j < h_dim; ++j)
            gy[j] += dy[c] * h_last[j];
    }
    matTVec(wy_, dy.data(), ws.deltaH.data());

    // BPTT.
    for (std::size_t t = config_.seqLen; t-- > 0;) {
        const auto &h = ws.hidden[t];
        const float *x = xs + t * config_.inputDim;
        for (std::size_t i = 0; i < h_dim; ++i)
            ws.deltaPre[i] = ws.deltaH[i] * (1.0f - h[i] * h[i]);

        for (std::size_t i = 0; i < h_dim; ++i) {
            const float g = ws.deltaPre[i];
            if (g == 0.0f)
                continue;
            ws.grads.bh[i] += g;
            float *gx = ws.grads.wx.row(i);
            for (std::size_t j = 0; j < config_.inputDim; ++j)
                gx[j] += g * x[j];
            if (t > 0) {
                const auto &prev = ws.hidden[t - 1];
                float *gh = ws.grads.wh.row(i);
                for (std::size_t j = 0; j < h_dim; ++j)
                    gh[j] += g * prev[j];
            }
        }
        if (t > 0)
            matTVec(wh_, ws.deltaPre.data(), ws.deltaH.data());
    }
    return loss;
}

std::size_t
ElmanRnn::predict(const float *xs, RnnWorkspace &ws) const
{
    std::vector<float> logits(config_.numClasses);
    forward(xs, logits.data(), ws);
    return argmax(logits.data(), logits.size());
}

std::size_t
ElmanRnn::paramCount() const
{
    return wx_.size() + wh_.size() + wy_.size() + bh_.size() + by_.size();
}

void
ElmanRnn::gatherParams(std::vector<float> &flat) const
{
    flat.clear();
    flat.reserve(paramCount());
    for (const auto *m : {&wx_, &wh_, &wy_})
        flat.insert(flat.end(), m->data().begin(), m->data().end());
    flat.insert(flat.end(), bh_.begin(), bh_.end());
    flat.insert(flat.end(), by_.begin(), by_.end());
}

void
ElmanRnn::scatterParams(const std::vector<float> &flat)
{
    VIBNN_ASSERT(flat.size() == paramCount(), "parameter size mismatch");
    std::size_t at = 0;
    auto take = [&](float *dst, std::size_t n) {
        std::copy(flat.begin() + at, flat.begin() + at + n, dst);
        at += n;
    };
    for (auto *m : {&wx_, &wh_, &wy_})
        take(m->data().data(), m->size());
    take(bh_.data(), bh_.size());
    take(by_.data(), by_.size());
}

void
ElmanRnn::gatherGrads(const RnnWorkspace &ws, std::vector<float> &flat)
    const
{
    const float inv =
        ws.sampleCount > 0 ? 1.0f / static_cast<float>(ws.sampleCount)
                           : 0.0f;
    flat.clear();
    flat.reserve(paramCount());
    auto append = [&](const float *src, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            flat.push_back(src[i] * inv);
    };
    append(ws.grads.wx.data().data(), ws.grads.wx.size());
    append(ws.grads.wh.data().data(), ws.grads.wh.size());
    append(ws.grads.wy.data().data(), ws.grads.wy.size());
    append(ws.grads.bh.data(), ws.grads.bh.size());
    append(ws.grads.by.data(), ws.grads.by.size());
}

double
evaluateAccuracy(const ElmanRnn &net, const DataView &data)
{
    if (data.count == 0)
        return 0.0;
    RnnWorkspace ws = net.makeWorkspace();
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.count; ++i) {
        if (net.predict(data.sample(i), ws) ==
            static_cast<std::size_t>(data.labels[i])) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.count);
}

TrainHistory
trainRnn(ElmanRnn &net, const DataView &train, const TrainConfig &config)
{
    VIBNN_ASSERT(train.count > 0, "empty training set");
    VIBNN_ASSERT(train.dim == net.inputDim(), "sequence dim mismatch");

    TrainHistory history;
    Rng rng(config.seed);
    AdamOptimizer optimizer(config.learningRate);
    constexpr double clip_norm = 5.0;

    RnnWorkspace ws = net.makeWorkspace();
    std::vector<float> params, grads;
    std::vector<std::size_t> order(train.count);
    std::iota(order.begin(), order.end(), 0);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t seen = 0;

        for (std::size_t start = 0; start < train.count;
             start += config.batchSize) {
            const std::size_t end =
                std::min(start + config.batchSize, train.count);
            net.zeroGrads(ws);
            for (std::size_t k = start; k < end; ++k) {
                const std::size_t i = order[k];
                epoch_loss += net.trainSequence(
                    train.sample(i),
                    static_cast<std::size_t>(train.labels[i]), ws);
            }
            seen += end - start;

            // Clip the accumulated gradient's norm before averaging
            // (the mean-scaling in gatherGrads is norm-preserving up
            // to the constant factor, so clip on the raw accumulator).
            const double norm =
                ws.grads.norm() / static_cast<double>(end - start);
            if (norm > clip_norm) {
                ws.grads.scale(
                    static_cast<float>(clip_norm / norm));
            }

            net.gatherGrads(ws, grads);
            net.gatherParams(params);
            optimizer.step(params.data(), grads.data(), params.size());
            net.scatterParams(params);
        }

        const double mean_loss = epoch_loss / static_cast<double>(seen);
        history.trainLoss.push_back(mean_loss);
        double acc = -1.0;
        if (config.evalSet)
            acc = evaluateAccuracy(net, *config.evalSet);
        history.evalAccuracy.push_back(acc);
        if (config.onEpoch)
            config.onEpoch(epoch, mean_loss, acc);
    }
    return history;
}

} // namespace vibnn::nn
