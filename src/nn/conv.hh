/**
 * @file
 * 2-D convolution and max-pooling layers — the substrate for the CNN
 * extension.
 *
 * The paper's Section 1 notes that VIBNN's design principles "are
 * orthogonal to the optimization techniques on convolutional layers ...
 * and can be applied to CNNs and RNNs as well". This module provides the
 * point-estimate convolution building blocks (the conventional-CNN
 * baseline); the Bayesian counterpart lives in bnn/variational_conv.hh.
 *
 * Layout conventions: feature maps are CHW (channel-major, row-major
 * within a channel), single-sample — matching the rest of the nn
 * substrate, which processes one sample at a time. Convolutions are
 * lowered to a patch (im2col) matrix so the inner loops are dense
 * dot-products; the identical lowering is what maps a convolution onto
 * the accelerator's PE dot-product datapath (each output pixel becomes a
 * "neuron" with inChannels * kernel^2 inputs).
 */

#ifndef VIBNN_NN_CONV_HH
#define VIBNN_NN_CONV_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "nn/tensor.hh"

namespace vibnn::nn
{

/** Geometry of a square-kernel 2-D convolution over CHW maps. */
struct ConvSpec
{
    /** Input channel count. */
    std::size_t inChannels = 1;
    /** Input map height. */
    std::size_t inHeight = 0;
    /** Input map width. */
    std::size_t inWidth = 0;
    /** Output channel (filter) count. */
    std::size_t outChannels = 1;
    /** Square kernel side. */
    std::size_t kernel = 3;
    /** Stride (same in both dimensions). */
    std::size_t stride = 1;
    /** Zero padding (same on all four sides). */
    std::size_t pad = 0;

    /** Output map height: (inHeight + 2 pad - kernel) / stride + 1. */
    std::size_t outHeight() const;
    /** Output map width. */
    std::size_t outWidth() const;
    /** Flattened receptive-field size: inChannels * kernel^2. */
    std::size_t patchSize() const
    {
        return inChannels * kernel * kernel;
    }
    /** Total input element count (inChannels * inHeight * inWidth). */
    std::size_t inputSize() const
    {
        return inChannels * inHeight * inWidth;
    }
    /** Output pixel positions per channel. */
    std::size_t positions() const { return outHeight() * outWidth(); }
    /** Total output element count. */
    std::size_t outputSize() const
    {
        return outChannels * positions();
    }
    /** True when the geometry produces at least one output pixel and
     *  the kernel fits inside the padded input. */
    bool valid() const;
};

/**
 * im2col lowering: patches must be (positions() x patchSize()); row p
 * holds the receptive field of output position p (channel-major,
 * then kernel row, then kernel column), with zeros where the field
 * overhangs the padded border.
 */
void im2col(const ConvSpec &spec, const float *x, Matrix &patches);

/**
 * Transpose of im2col: scatter-accumulate patch-space gradients back to
 * input-space. dx must hold inputSize() floats and is accumulated into
 * (+=), so callers zero it first.
 */
void col2imAccumulate(const ConvSpec &spec, const Matrix &d_patches,
                      float *dx);

/** Gradient buffers for one convolution layer. */
struct ConvGradients
{
    /** d loss / d weight, (outChannels x patchSize). */
    Matrix weight;
    /** d loss / d bias, outChannels entries. */
    std::vector<float> bias;

    void resize(const ConvSpec &spec);
    void zero();
};

/** Per-sample scratch for convolution forward/backward. */
struct ConvScratch
{
    /** im2col patch matrix of the last forward input. */
    Matrix patches;
    /** Patch-space gradient (backward only). */
    Matrix dPatches;
};

/**
 * Point-estimate convolution layer: out[oc][p] =
 * dot(weight[oc], patch[p]) + bias[oc].
 */
class Conv2dLayer
{
  public:
    /**
     * @param spec Geometry (must be valid()).
     * @param rng Initialization source (He-uniform over the fan-in).
     */
    Conv2dLayer(const ConvSpec &spec, Rng &rng);

    const ConvSpec &spec() const { return spec_; }

    /**
     * Forward pass.
     * @param x Input maps, spec().inputSize() floats.
     * @param out Output maps, spec().outputSize() floats.
     * @param scratch Holds the patch matrix for a later backward.
     */
    void forward(const float *x, float *out, ConvScratch &scratch) const;

    /**
     * Backward for one sample. Requires the scratch of the matching
     * forward call.
     * @param dy Gradient w.r.t. the output maps.
     * @param grads Accumulated (+=) parameter gradients.
     * @param dx If non-null, receives (overwrites) gradient w.r.t. x.
     */
    void backward(const float *dy, ConvScratch &scratch,
                  ConvGradients &grads, float *dx) const;

    /** Apply a parameter step: p += delta. */
    void applyDelta(const ConvGradients &delta);

    Matrix &weight() { return weight_; }
    const Matrix &weight() const { return weight_; }
    std::vector<float> &bias() { return bias_; }
    const std::vector<float> &bias() const { return bias_; }

  private:
    ConvSpec spec_;
    Matrix weight_;
    std::vector<float> bias_;
};

/** Geometry of a non-overlapping-capable max pool over CHW maps. */
struct PoolSpec
{
    /** Channel count (pass-through). */
    std::size_t channels = 1;
    /** Input map height. */
    std::size_t inHeight = 0;
    /** Input map width. */
    std::size_t inWidth = 0;
    /** Square window side. */
    std::size_t window = 2;
    /** Stride; defaults to the window (non-overlapping). */
    std::size_t stride = 2;

    std::size_t outHeight() const;
    std::size_t outWidth() const;
    std::size_t inputSize() const
    {
        return channels * inHeight * inWidth;
    }
    std::size_t outputSize() const
    {
        return channels * outHeight() * outWidth();
    }
    bool valid() const;
};

/** Per-sample scratch for max pooling (argmax indices for backward). */
struct PoolScratch
{
    /** Flat input index of each output's maximum. */
    std::vector<std::size_t> argmax;
};

/** Max-pooling layer (no parameters). */
class MaxPool2dLayer
{
  public:
    explicit MaxPool2dLayer(const PoolSpec &spec);

    const PoolSpec &spec() const { return spec_; }

    /** Forward: out must hold spec().outputSize() floats. */
    void forward(const float *x, float *out, PoolScratch &scratch) const;

    /**
     * Backward: routes each output gradient to the input position that
     * won the max (ties break to the first scanned). dx is overwritten.
     */
    void backward(const float *dy, const PoolScratch &scratch,
                  float *dx) const;

  private:
    PoolSpec spec_;
};

} // namespace vibnn::nn

#endif // VIBNN_NN_CONV_HH
