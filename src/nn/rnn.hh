/**
 * @file
 * Elman recurrent network — the substrate for the RNN extension.
 *
 * The paper's Section 1 claims VIBNN's principles "can be applied to
 * CNNs and RNNs as well" (its reference [19] is Fortunato et al.'s
 * Bayesian Recurrent Neural Networks). This module provides the
 * point-estimate recurrent classifier used as the baseline; the
 * Bayesian counterpart lives in bnn/bayesian_rnn.hh.
 *
 * Model: h_t = tanh(Wx x_t + Wh h_{t-1} + bh), h_{-1} = 0, and a linear
 * classifier on the final hidden state. Training is full
 * backpropagation-through-time with gradient-norm clipping (the
 * standard guard against the recurrent exploding-gradient problem).
 * Sequences are presented as flat rows of seqLen * inputDim floats so
 * they ride the same DataView plumbing as every other model here.
 */

#ifndef VIBNN_NN_RNN_HH
#define VIBNN_NN_RNN_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "nn/tensor.hh"
#include "nn/trainer.hh"

namespace vibnn::nn
{

/** Recurrent-classifier topology. */
struct RnnConfig
{
    /** Features per timestep. */
    std::size_t inputDim = 4;
    /** Hidden state width. */
    std::size_t hiddenDim = 24;
    /** Output classes. */
    std::size_t numClasses = 3;
    /** Timesteps per sequence. */
    std::size_t seqLen = 16;

    /** Flat sample width (seqLen * inputDim). */
    std::size_t flatDim() const { return seqLen * inputDim; }
};

/** Parameter gradients of one RNN. */
struct RnnGradients
{
    Matrix wx, wh, wy;
    std::vector<float> bh, by;

    void resize(const RnnConfig &config);
    void zero();
    /** Global L2 norm over all entries. */
    double norm() const;
    /** Scale every entry (for norm clipping). */
    void scale(float factor);
};

/** Per-sequence scratch: hidden trajectory and backprop buffers. */
struct RnnWorkspace
{
    /** hidden[t] = h_t for t in [0, seqLen); plus h_{-1} zeros. */
    std::vector<std::vector<float>> hidden;
    RnnGradients grads;
    std::vector<float> deltaH, deltaPre;
    double lossSum = 0.0;
    std::size_t sampleCount = 0;
};

/** Point-estimate Elman recurrent classifier. */
class ElmanRnn
{
  public:
    ElmanRnn(const RnnConfig &config, Rng &rng);

    const RnnConfig &config() const { return config_; }
    std::size_t inputDim() const { return config_.flatDim(); }
    std::size_t outputDim() const { return config_.numClasses; }

    RnnWorkspace makeWorkspace() const;
    void zeroGrads(RnnWorkspace &ws) const;

    /** Forward a flat sequence; logits must hold numClasses floats. */
    void forward(const float *xs, float *logits, RnnWorkspace &ws) const;

    /** Forward + softmax cross-entropy + BPTT; accumulates grads. */
    double trainSequence(const float *xs, std::size_t target,
                         RnnWorkspace &ws);

    std::size_t predict(const float *xs, RnnWorkspace &ws) const;

    /** Flat parameter plumbing: wx, wh, wy, bh, by. */
    std::size_t paramCount() const;
    void gatherParams(std::vector<float> &flat) const;
    void scatterParams(const std::vector<float> &flat);
    void gatherGrads(const RnnWorkspace &ws, std::vector<float> &flat)
        const;

    Matrix &wx() { return wx_; }
    Matrix &wh() { return wh_; }
    Matrix &wy() { return wy_; }
    const Matrix &wx() const { return wx_; }
    const Matrix &wh() const { return wh_; }
    const Matrix &wy() const { return wy_; }

  private:
    RnnConfig config_;
    Matrix wx_, wh_, wy_;
    std::vector<float> bh_, by_;
};

/** Sequence-classification accuracy. */
double evaluateAccuracy(const ElmanRnn &net, const DataView &data);

/** Train with Adam and gradient clipping; per-epoch history. */
TrainHistory trainRnn(ElmanRnn &net, const DataView &train,
                      const TrainConfig &config);

} // namespace vibnn::nn

#endif // VIBNN_NN_RNN_HH
