#include "nn/optimizer.hh"

#include <cmath>

#include "accel/kernels/kernels.hh"

namespace vibnn::nn
{

SgdOptimizer::SgdOptimizer(float learning_rate, float momentum)
    : learningRate_(learning_rate), momentum_(momentum)
{
}

void
SgdOptimizer::step(float *params, const float *grads, std::size_t count)
{
    if (momentum_ == 0.0f) {
        for (std::size_t i = 0; i < count; ++i)
            params[i] -= learningRate_ * grads[i];
        return;
    }
    if (velocity_.size() != count)
        velocity_.assign(count, 0.0f);
    for (std::size_t i = 0; i < count; ++i) {
        velocity_[i] = momentum_ * velocity_[i] - learningRate_ * grads[i];
        params[i] += velocity_[i];
    }
}

void
SgdOptimizer::reset()
{
    velocity_.clear();
}

AdamOptimizer::AdamOptimizer(float learning_rate, float beta1, float beta2,
                             float epsilon)
    : learningRate_(learning_rate), beta1_(beta1), beta2_(beta2),
      epsilon_(epsilon)
{
}

void
AdamOptimizer::ensureState(std::size_t count)
{
    if (m_.size() != count) {
        m_.assign(count, 0.0f);
        v_.assign(count, 0.0f);
        t_ = 0;
    }
}

void
AdamOptimizer::beginStep()
{
    ++t_;
    bc1_ = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    bc2_ = 1.0f - std::pow(beta2_, static_cast<float>(t_));
}

void
AdamOptimizer::stepRange(float *params, const float *grads,
                         std::size_t count, std::size_t offset,
                         float gradScale)
{
    accel::kernels::AdamStepArgs args;
    args.lr = learningRate_;
    args.beta1 = beta1_;
    args.beta2 = beta2_;
    args.epsilon = epsilon_;
    args.bc1 = bc1_;
    args.bc2 = bc2_;
    args.gradScale = gradScale;
    accel::kernels::activeKernels().adamStepF32(
        params, grads, m_.data() + offset, v_.data() + offset, count,
        args);
}

void
AdamOptimizer::step(float *params, const float *grads, std::size_t count)
{
    ensureState(count);
    beginStep();
    stepRange(params, grads, count, 0);
}

void
AdamOptimizer::reset()
{
    m_.clear();
    v_.clear();
    t_ = 0;
}

} // namespace vibnn::nn
