#include "nn/optimizer.hh"

#include <cmath>

namespace vibnn::nn
{

SgdOptimizer::SgdOptimizer(float learning_rate, float momentum)
    : learningRate_(learning_rate), momentum_(momentum)
{
}

void
SgdOptimizer::step(float *params, const float *grads, std::size_t count)
{
    if (momentum_ == 0.0f) {
        for (std::size_t i = 0; i < count; ++i)
            params[i] -= learningRate_ * grads[i];
        return;
    }
    if (velocity_.size() != count)
        velocity_.assign(count, 0.0f);
    for (std::size_t i = 0; i < count; ++i) {
        velocity_[i] = momentum_ * velocity_[i] - learningRate_ * grads[i];
        params[i] += velocity_[i];
    }
}

void
SgdOptimizer::reset()
{
    velocity_.clear();
}

AdamOptimizer::AdamOptimizer(float learning_rate, float beta1, float beta2,
                             float epsilon)
    : learningRate_(learning_rate), beta1_(beta1), beta2_(beta2),
      epsilon_(epsilon)
{
}

void
AdamOptimizer::step(float *params, const float *grads, std::size_t count)
{
    if (m_.size() != count) {
        m_.assign(count, 0.0f);
        v_.assign(count, 0.0f);
        t_ = 0;
    }
    ++t_;
    const float bc1 =
        1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 =
        1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < count; ++i) {
        m_[i] = beta1_ * m_[i] + (1.0f - beta1_) * grads[i];
        v_[i] = beta2_ * v_[i] + (1.0f - beta2_) * grads[i] * grads[i];
        const float m_hat = m_[i] / bc1;
        const float v_hat = v_[i] / bc2;
        params[i] -= learningRate_ * m_hat /
            (std::sqrt(v_hat) + epsilon_);
    }
}

void
AdamOptimizer::reset()
{
    m_.clear();
    v_.clear();
    t_ = 0;
}

} // namespace vibnn::nn
