/**
 * @file
 * Conventional convolutional network — the deterministic baseline for
 * the Bayesian-CNN extension (paper Section 1 claims VIBNN's principles
 * carry over to CNNs; this module and bnn/bayesian_cnn.hh substantiate
 * that claim end-to-end).
 *
 * Topology: a sequence of conv(+ReLU)(+max-pool) blocks followed by a
 * dense ReLU head and a softmax classifier, configured by ConvNetConfig.
 * Like Mlp, the model processes one sample at a time and exposes flat
 * parameter plumbing for the shared optimizers.
 */

#ifndef VIBNN_NN_CNN_HH
#define VIBNN_NN_CNN_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "nn/conv.hh"
#include "nn/dense.hh"
#include "nn/trainer.hh"

namespace vibnn::nn
{

/** One conv(+pool) stage of a ConvNet. */
struct ConvBlockConfig
{
    /** Filters in this block. */
    std::size_t outChannels = 8;
    /** Square kernel side. */
    std::size_t kernel = 5;
    /** Convolution stride. */
    std::size_t stride = 1;
    /** Zero padding. */
    std::size_t pad = 2;
    /** Append a max-pool after the ReLU. */
    bool pool = true;
    /** Pool window (and stride — non-overlapping). */
    std::size_t poolWindow = 2;
};

/** Whole-network topology. */
struct ConvNetConfig
{
    std::size_t inChannels = 1;
    std::size_t imageHeight = 28;
    std::size_t imageWidth = 28;
    /** Conv stages, applied in order. */
    std::vector<ConvBlockConfig> blocks;
    /** Hidden dense sizes after flattening (each followed by ReLU). */
    std::vector<std::size_t> denseHidden;
    /** Output classes. */
    std::size_t numClasses = 10;

    /** A LeNet-ish default: 2 conv/pool blocks + one hidden layer. */
    static ConvNetConfig lenetLike(std::size_t classes = 10);
};

/** Per-sample workspace: activations at every stage boundary. */
struct ConvNetWorkspace
{
    /** Buffers between stages; buffers[0] is the input copy. */
    std::vector<std::vector<float>> buffers;
    /** Pre-activation copies for ReLU backward, one per ReLU stage
     *  (indexed like stages; empty vectors for non-ReLU stages). */
    std::vector<std::vector<float>> preActs;
    std::vector<ConvScratch> convScratch;
    std::vector<PoolScratch> poolScratch;
    std::vector<ConvGradients> convGrads;
    std::vector<DenseGradients> denseGrads;
    /** Backprop ping-pong scratch. */
    std::vector<float> deltaA, deltaB;
    double lossSum = 0.0;
    std::size_t sampleCount = 0;
};

/** Feed-forward convolutional classifier. */
class ConvNet
{
  public:
    ConvNet(const ConvNetConfig &config, Rng &rng);

    const ConvNetConfig &config() const { return config_; }
    /** Flat input size (inChannels * H * W). */
    std::size_t inputDim() const;
    std::size_t outputDim() const { return config_.numClasses; }

    ConvNetWorkspace makeWorkspace() const;
    void zeroGrads(ConvNetWorkspace &ws) const;

    /** Inference forward; logits must hold outputDim() floats. */
    void forward(const float *x, float *logits,
                 ConvNetWorkspace &ws) const;

    /** Forward + softmax cross-entropy + backward; accumulates grads
     *  into ws and returns the sample loss. */
    double trainSample(const float *x, std::size_t target,
                       ConvNetWorkspace &ws);

    /** Classify one sample. */
    std::size_t predict(const float *x, ConvNetWorkspace &ws) const;

    /** Flat parameter plumbing (convs first, then dense; weights then
     *  bias within a layer). */
    std::size_t paramCount() const;
    void gatherParams(std::vector<float> &flat) const;
    void scatterParams(const std::vector<float> &flat);
    void gatherGrads(const ConvNetWorkspace &ws, std::vector<float> &flat)
        const;

    const std::vector<Conv2dLayer> &convLayers() const { return convs_; }
    const std::vector<DenseLayer> &denseLayers() const { return dense_; }

  private:
    /** Stage kinds in execution order. */
    enum class Stage { Conv, Pool, Dense };

    ConvNetConfig config_;
    std::vector<Stage> stages_;
    /** Per-stage index into convs_/pools_/dense_. */
    std::vector<std::size_t> stageIndex_;
    /** Element count flowing out of each stage. */
    std::vector<std::size_t> stageOutSize_;
    /** True when the stage output passes through ReLU (all convs and
     *  all dense layers except the final classifier). */
    std::vector<bool> stageRelu_;
    std::vector<Conv2dLayer> convs_;
    std::vector<MaxPool2dLayer> pools_;
    std::vector<DenseLayer> dense_;
};

/** Classification accuracy of a ConvNet on a dataset. */
double evaluateAccuracy(const ConvNet &net, const DataView &data);

/** Train a ConvNet with Adam; returns the per-epoch history. */
TrainHistory trainConvNet(ConvNet &net, const DataView &train,
                          const TrainConfig &config);

} // namespace vibnn::nn

#endif // VIBNN_NN_CNN_HH
