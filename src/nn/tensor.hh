/**
 * @file
 * Minimal dense-matrix support for the neural-network substrate.
 *
 * The networks in this project are fully-connected MLPs (the paper's
 * target class), so a row-major float matrix with a handful of BLAS-1/2
 * kernels is all the tensor machinery required. Keeping it hand-rolled
 * (rather than pulling a BLAS) matches the "everything from scratch"
 * reproduction contract and is plenty fast for the 784-200-200-10
 * workloads at laptop scale.
 */

#ifndef VIBNN_NN_TENSOR_HH
#define VIBNN_NN_TENSOR_HH

#include <cstddef>
#include <vector>

namespace vibnn::nn
{

/** Row-major float matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    float *row(std::size_t r) { return data_.data() + r * cols_; }
    const float *row(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    std::vector<float> &data() { return data_; }
    const std::vector<float> &data() const { return data_; }

    /** Set every element to value. */
    void fill(float value);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** y += alpha * x (vectors of equal length). */
void axpy(float alpha, const std::vector<float> &x, std::vector<float> &y);

/** out = W * x + b, where W is (out_dim x in_dim). */
void matVec(const Matrix &w, const float *x, const float *b, float *out);

/** out = W^T * dy — backward pass input-gradient kernel. */
void matTVec(const Matrix &w, const float *dy, float *out);

/** Rank-1 update: W += alpha * dy * x^T. */
void rankOneUpdate(Matrix &w, float alpha, const float *dy, const float *x);

/** Index of the maximum element of a vector (first on ties). */
std::size_t argmax(const float *values, std::size_t count);

} // namespace vibnn::nn

#endif // VIBNN_NN_TENSOR_HH
