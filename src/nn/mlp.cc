#include "nn/mlp.hh"

#include <cmath>

#include "common/logging.hh"
#include "nn/activations.hh"
#include "nn/loss.hh"

namespace vibnn::nn
{

Mlp::Mlp(const std::vector<std::size_t> &layer_sizes, Rng &rng,
         float dropout_rate)
    : layerSizes_(layer_sizes), dropoutRate_(dropout_rate)
{
    VIBNN_ASSERT(layer_sizes.size() >= 2, "need input and output layers");
    VIBNN_ASSERT(dropout_rate >= 0.0f && dropout_rate < 1.0f,
                 "dropout rate must be in [0, 1)");
    for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i)
        layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], rng);
}

MlpWorkspace
Mlp::makeWorkspace() const
{
    MlpWorkspace ws;
    ws.activations.resize(layerSizes_.size());
    ws.preActivations.resize(layers_.size());
    ws.dropoutMasks.resize(layers_.size());
    ws.gradients.resize(layers_.size());
    std::size_t widest = 0;
    for (std::size_t i = 0; i < layerSizes_.size(); ++i) {
        ws.activations[i].resize(layerSizes_[i]);
        widest = std::max(widest, layerSizes_[i]);
    }
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        ws.preActivations[i].resize(layers_[i].outDim());
        ws.dropoutMasks[i].resize(layers_[i].outDim());
        ws.gradients[i].resize(layers_[i].outDim(), layers_[i].inDim());
    }
    ws.deltaA.resize(widest);
    ws.deltaB.resize(widest);
    return ws;
}

void
Mlp::zeroGrads(MlpWorkspace &ws) const
{
    for (auto &g : ws.gradients)
        g.zero();
    ws.lossSum = 0.0;
    ws.sampleCount = 0;
}

void
Mlp::forward(const float *x, float *logits) const
{
    std::vector<float> buf_a(x, x + inputDim());
    std::vector<float> buf_b;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        buf_b.resize(layers_[i].outDim());
        layers_[i].forward(buf_a.data(), buf_b.data());
        if (i + 1 < layers_.size())
            reluForward(buf_b.data(), buf_b.size());
        buf_a.swap(buf_b);
    }
    std::copy(buf_a.begin(), buf_a.end(), logits);
}

double
Mlp::trainSample(const float *x, std::size_t target, MlpWorkspace &ws,
                 Rng &dropout_rng)
{
    // Forward with cached activations and dropout.
    std::copy(x, x + inputDim(), ws.activations[0].begin());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        layers_[i].forward(ws.activations[i].data(),
                           ws.preActivations[i].data());
        auto &out = ws.activations[i + 1];
        std::copy(ws.preActivations[i].begin(),
                  ws.preActivations[i].end(), out.begin());
        if (i + 1 < layers_.size()) {
            reluForward(out.data(), out.size());
            if (dropoutRate_ > 0.0f) {
                const float keep_scale = 1.0f / (1.0f - dropoutRate_);
                for (std::size_t j = 0; j < out.size(); ++j) {
                    const bool keep = !dropout_rng.bernoulli(dropoutRate_);
                    ws.dropoutMasks[i][j] = keep ? keep_scale : 0.0f;
                    out[j] *= ws.dropoutMasks[i][j];
                }
            }
        }
    }

    // Loss and output gradient.
    auto &logits = ws.activations.back();
    float *delta = ws.deltaA.data();
    const double loss =
        softmaxCrossEntropy(logits.data(), logits.size(), target, delta);
    ws.lossSum += loss;
    ++ws.sampleCount;

    // Backward.
    for (std::size_t ii = layers_.size(); ii-- > 0;) {
        float *dx = ws.deltaB.data();
        layers_[ii].backward(ws.activations[ii].data(), delta,
                             ws.gradients[ii],
                             ii > 0 ? dx : nullptr);
        if (ii > 0) {
            // Through dropout mask, then ReLU.
            if (dropoutRate_ > 0.0f) {
                for (std::size_t j = 0; j < layers_[ii].inDim(); ++j)
                    dx[j] *= ws.dropoutMasks[ii - 1][j];
            }
            reluBackward(ws.preActivations[ii - 1].data(), dx,
                         ws.deltaA.data(), layers_[ii].inDim());
            delta = ws.deltaA.data();
        }
    }
    return loss;
}

std::size_t
Mlp::paramCount() const
{
    std::size_t count = 0;
    for (const auto &layer : layers_)
        count += layer.weight().size() + layer.bias().size();
    return count;
}

void
Mlp::gatherParams(std::vector<float> &flat) const
{
    flat.resize(paramCount());
    std::size_t k = 0;
    for (const auto &layer : layers_) {
        for (float w : layer.weight().data())
            flat[k++] = w;
        for (float b : layer.bias())
            flat[k++] = b;
    }
}

void
Mlp::scatterParams(const std::vector<float> &flat)
{
    VIBNN_ASSERT(flat.size() == paramCount(), "flat parameter mismatch");
    std::size_t k = 0;
    for (auto &layer : layers_) {
        for (float &w : layer.weight().data())
            w = flat[k++];
        for (float &b : layer.bias())
            b = flat[k++];
    }
}

void
Mlp::gatherGrads(const MlpWorkspace &ws, std::vector<float> &flat) const
{
    flat.resize(paramCount());
    const float inv = ws.sampleCount > 0
                          ? 1.0f / static_cast<float>(ws.sampleCount)
                          : 1.0f;
    std::size_t k = 0;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        for (float g : ws.gradients[i].weight.data())
            flat[k++] = g * inv;
        for (float g : ws.gradients[i].bias)
            flat[k++] = g * inv;
    }
}

std::size_t
Mlp::predict(const float *x) const
{
    std::vector<float> logits(outputDim());
    forward(x, logits.data());
    return argmax(logits.data(), logits.size());
}

} // namespace vibnn::nn
