#include "nn/dense.hh"

#include <cmath>

#include "common/logging.hh"

namespace vibnn::nn
{

void
DenseGradients::resize(std::size_t out_dim, std::size_t in_dim)
{
    weight = Matrix(out_dim, in_dim);
    bias.assign(out_dim, 0.0f);
}

void
DenseGradients::zero()
{
    weight.fill(0.0f);
    std::fill(bias.begin(), bias.end(), 0.0f);
}

void
DenseGradients::accumulate(const DenseGradients &other)
{
    VIBNN_ASSERT(weight.size() == other.weight.size(),
                 "gradient shape mismatch");
    auto &dst = weight.data();
    const auto &src = other.weight.data();
    for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] += src[i];
    for (std::size_t i = 0; i < bias.size(); ++i)
        bias[i] += other.bias[i];
}

void
DenseGradients::scale(float factor)
{
    for (auto &g : weight.data())
        g *= factor;
    for (auto &g : bias)
        g *= factor;
}

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, Rng &rng)
    : weight_(out_dim, in_dim), bias_(out_dim, 0.0f)
{
    // He-uniform initialization, appropriate for ReLU networks.
    const float bound =
        std::sqrt(6.0f / static_cast<float>(in_dim));
    for (auto &w : weight_.data())
        w = static_cast<float>(rng.uniform(-bound, bound));
}

void
DenseLayer::forward(const float *x, float *out) const
{
    matVec(weight_, x, bias_.data(), out);
}

void
DenseLayer::backward(const float *x, const float *dy,
                     DenseGradients &grads, float *dx) const
{
    rankOneUpdate(grads.weight, 1.0f, dy, x);
    for (std::size_t r = 0; r < outDim(); ++r)
        grads.bias[r] += dy[r];
    if (dx)
        matTVec(weight_, dy, dx);
}

void
DenseLayer::applyDelta(const DenseGradients &delta)
{
    auto &w = weight_.data();
    const auto &dw = delta.weight.data();
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] += dw[i];
    for (std::size_t i = 0; i < bias_.size(); ++i)
        bias_[i] += delta.bias[i];
}

} // namespace vibnn::nn
