#include "nn/tensor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vibnn::nn
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

void
Matrix::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
axpy(float alpha, const std::vector<float> &x, std::vector<float> &y)
{
    VIBNN_ASSERT(x.size() == y.size(), "axpy size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += alpha * x[i];
}

void
matVec(const Matrix &w, const float *x, const float *b, float *out)
{
    const std::size_t rows = w.rows();
    const std::size_t cols = w.cols();
    for (std::size_t r = 0; r < rows; ++r) {
        const float *wr = w.row(r);
        float acc = b ? b[r] : 0.0f;
        for (std::size_t c = 0; c < cols; ++c)
            acc += wr[c] * x[c];
        out[r] = acc;
    }
}

void
matTVec(const Matrix &w, const float *dy, float *out)
{
    const std::size_t rows = w.rows();
    const std::size_t cols = w.cols();
    std::fill(out, out + cols, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
        const float *wr = w.row(r);
        const float g = dy[r];
        if (g == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols; ++c)
            out[c] += wr[c] * g;
    }
}

void
rankOneUpdate(Matrix &w, float alpha, const float *dy, const float *x)
{
    const std::size_t rows = w.rows();
    const std::size_t cols = w.cols();
    for (std::size_t r = 0; r < rows; ++r) {
        float *wr = w.row(r);
        const float g = alpha * dy[r];
        if (g == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols; ++c)
            wr[c] += g * x[c];
    }
}

std::size_t
argmax(const float *values, std::size_t count)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < count; ++i)
        if (values[i] > values[best])
            best = i;
    return best;
}

} // namespace vibnn::nn
