#include "nn/trainer.hh"

#include <numeric>

#include "common/logging.hh"

namespace vibnn::nn
{

double
evaluateAccuracy(const Mlp &net, const DataView &data)
{
    if (data.count == 0)
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.count; ++i) {
        if (net.predict(data.sample(i)) ==
            static_cast<std::size_t>(data.labels[i])) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.count);
}

TrainHistory
trainMlp(Mlp &net, const DataView &train, const TrainConfig &config)
{
    VIBNN_ASSERT(train.count > 0, "empty training set");
    VIBNN_ASSERT(train.dim == net.inputDim(), "feature dim mismatch");

    TrainHistory history;
    Rng rng(config.seed);
    AdamOptimizer optimizer(config.learningRate);

    MlpWorkspace ws = net.makeWorkspace();
    std::vector<float> params, grads;
    std::vector<std::size_t> order(train.count);
    std::iota(order.begin(), order.end(), 0);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t seen = 0;

        for (std::size_t start = 0; start < train.count;
             start += config.batchSize) {
            const std::size_t end =
                std::min(start + config.batchSize, train.count);
            net.zeroGrads(ws);
            for (std::size_t k = start; k < end; ++k) {
                const std::size_t i = order[k];
                epoch_loss += net.trainSample(
                    train.sample(i),
                    static_cast<std::size_t>(train.labels[i]), ws, rng);
            }
            seen += end - start;
            net.gatherGrads(ws, grads);
            net.gatherParams(params);
            optimizer.step(params.data(), grads.data(), params.size());
            net.scatterParams(params);
        }

        const double mean_loss =
            epoch_loss / static_cast<double>(seen);
        history.trainLoss.push_back(mean_loss);
        double acc = -1.0;
        if (config.evalSet)
            acc = evaluateAccuracy(net, *config.evalSet);
        history.evalAccuracy.push_back(acc);
        if (config.onEpoch)
            config.onEpoch(epoch, mean_loss, acc);
    }
    return history;
}

} // namespace vibnn::nn
