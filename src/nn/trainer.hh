/**
 * @file
 * Minibatch trainer and evaluation helpers shared by the FNN and (via a
 * callback seam) the BNN benches. Records per-epoch accuracy so the
 * convergence study (Figure 17) can be replayed from the history.
 */

#ifndef VIBNN_NN_TRAINER_HH
#define VIBNN_NN_TRAINER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.hh"
#include "nn/mlp.hh"
#include "nn/optimizer.hh"

namespace vibnn::nn
{

/** Labeled dataset view: features are rows of X. */
struct DataView
{
    /** Sample count. */
    std::size_t count = 0;
    /** Feature dimension. */
    std::size_t dim = 0;
    /** Row-major features, count x dim. */
    const float *features = nullptr;
    /** Labels, count entries. */
    const int *labels = nullptr;

    const float *sample(std::size_t i) const { return features + i * dim; }
};

/** Training hyper-parameters. */
struct TrainConfig
{
    std::size_t epochs = 10;
    std::size_t batchSize = 32;
    float learningRate = 1e-3f;
    std::uint64_t seed = 1;
    /** Evaluate on this set after each epoch when non-null. */
    const DataView *evalSet = nullptr;
    /** Optional per-epoch callback (epoch, trainLoss, evalAccuracy). */
    std::function<void(std::size_t, double, double)> onEpoch;
};

/** Per-epoch training history. */
struct TrainHistory
{
    std::vector<double> trainLoss;
    std::vector<double> evalAccuracy;
};

/** Classification accuracy of an MLP on a dataset. */
double evaluateAccuracy(const Mlp &net, const DataView &data);

/** Train an MLP with Adam; returns the per-epoch history. */
TrainHistory trainMlp(Mlp &net, const DataView &train,
                      const TrainConfig &config);

} // namespace vibnn::nn

#endif // VIBNN_NN_TRAINER_HH
