/**
 * @file
 * Variational 2-D convolution layer — the Bayesian-CNN extension.
 *
 * The paper (Section 1) states that VIBNN's design principles "are
 * orthogonal to the optimization techniques on convolutional layers ...
 * and can be applied to CNNs and RNNs as well". This layer realizes the
 * claim: every filter weight carries a factorized Gaussian posterior
 * (mu, rho) with sigma = softplus(rho), exactly as in the dense case,
 * and a sampled filter w = mu + sigma * eps is drawn once per forward
 * pass (a weight sample is shared across all output positions — the
 * weight-sharing semantics a hardware weight generator would implement:
 * one GRN per physical parameter per Monte-Carlo pass).
 *
 * Two training estimators mirror bnn/variational_dense.hh:
 *  - direct: per-weight eps, backprop through the sampled filter — the
 *    computation the accelerator performs at inference;
 *  - local reparameterization (LRT): per-output-position eps with
 *    mean = conv(mu, x) and variance = conv(sigma^2, x^2). For
 *    convolutions the LRT drops the cross-position correlation induced
 *    by weight sharing (the standard practice, cf. variational dropout
 *    literature); the gradient it estimates is still unbiased for the
 *    factorized per-activation posterior and is what makes host-side
 *    training tractable. The equivalence tests bound the moment gap.
 */

#ifndef VIBNN_BNN_VARIATIONAL_CONV_HH
#define VIBNN_BNN_VARIATIONAL_CONV_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "nn/conv.hh"
#include "nn/tensor.hh"

namespace vibnn::bnn
{

/** Gradient buffers for a variational convolution layer. */
struct VariationalConvGradients
{
    nn::Matrix muWeight, rhoWeight;
    std::vector<float> muBias, rhoBias;

    void resize(const nn::ConvSpec &spec);
    void zero();
};

/** Per-sample scratch for one variational convolution layer. */
struct VariationalConvScratch
{
    /** im2col patches of the last forward input. */
    nn::Matrix patches;
    /** Element-wise squared patches (LRT variance path). */
    nn::Matrix patchesSquared;
    /** Direct mode: per-weight eps (outChannels x patchSize). */
    nn::Matrix epsWeight;
    std::vector<float> epsBias;
    /** LRT mode: per-output eps and std-dev (outChannels*positions). */
    std::vector<float> activationEps, activationStd;
    /** Materialized filter sample for the current output channel. */
    std::vector<float> weightSample;
    /** Patch-space gradient (backward). */
    nn::Matrix dPatches;
};

/** Convolution layer with Gaussian-posterior filters. */
class VariationalConv2d
{
  public:
    /**
     * @param spec Geometry (must be valid()).
     * @param rng Initialization source.
     * @param rho_init Initial rho (sigma = softplus(rho_init)).
     */
    VariationalConv2d(const nn::ConvSpec &spec, Rng &rng,
                      float rho_init = -5.0f);

    const nn::ConvSpec &spec() const { return spec_; }

    /** Mean-field forward using mu only (no sampling). */
    void meanForward(const float *x, float *out,
                     VariationalConvScratch &scratch) const;

    /**
     * Direct-sampling forward: draws one eps per filter weight from
     * `eps` (any callable returning doubles targeting N(0,1)),
     * materializes w = mu + sigma*eps, and convolves. One filter
     * sample serves every output position.
     */
    template <typename EpsFn>
    void
    sampleForward(const float *x, float *out,
                  VariationalConvScratch &scratch, EpsFn &&eps) const
    {
        prepareScratch(scratch);
        nn::im2col(spec_, x, scratch.patches);
        const std::size_t positions = spec_.positions();
        const std::size_t patch = spec_.patchSize();
        for (std::size_t oc = 0; oc < spec_.outChannels; ++oc) {
            const float *mu = muWeight_.row(oc);
            const float *rho = rhoWeight_.row(oc);
            float *er = scratch.epsWeight.row(oc);
            float *w = scratch.weightSample.data();
            for (std::size_t k = 0; k < patch; ++k) {
                const float e = static_cast<float>(eps());
                er[k] = e;
                w[k] = mu[k] + sigmaOf(rho[k]) * e;
            }
            const float eb = static_cast<float>(eps());
            scratch.epsBias[oc] = eb;
            const float b = muBias_[oc] + sigmaOf(rhoBias_[oc]) * eb;
            float *plane = out + oc * positions;
            for (std::size_t p = 0; p < positions; ++p) {
                const float *v = scratch.patches.row(p);
                float acc = b;
                for (std::size_t k = 0; k < patch; ++k)
                    acc += w[k] * v[k];
                plane[p] = acc;
            }
        }
    }

    /** Backward for the direct estimator (uses scratch.epsWeight and
     *  scratch.patches from the matching forward). dx overwritten when
     *  non-null. */
    void sampleBackward(const float *dy, VariationalConvScratch &scratch,
                        VariationalConvGradients &grads, float *dx) const;

    /** LRT forward: out = conv(mu, x) + sqrt(conv(sigma^2, x^2)) e. */
    void lrtForward(const float *x, float *out,
                    VariationalConvScratch &scratch, Rng &rng) const;

    /** Backward for the LRT estimator. */
    void lrtBackward(const float *dy, VariationalConvScratch &scratch,
                     VariationalConvGradients &grads, float *dx) const;

    /** KL(q || N(0, prior_sigma^2)) over the layer's parameters. */
    double klDivergence(float prior_sigma) const;

    /** Accumulate d(KL)/d(params) scaled by `scale` into grads. */
    void klBackward(float prior_sigma, float scale,
                    VariationalConvGradients &grads) const;

    /** sigma = softplus(rho). */
    static float sigmaOf(float rho);

    /** Scalar parameter count (mu and rho, weights and biases). */
    std::size_t paramCount() const;

    nn::Matrix &muWeight() { return muWeight_; }
    const nn::Matrix &muWeight() const { return muWeight_; }
    nn::Matrix &rhoWeight() { return rhoWeight_; }
    const nn::Matrix &rhoWeight() const { return rhoWeight_; }
    std::vector<float> &muBias() { return muBias_; }
    const std::vector<float> &muBias() const { return muBias_; }
    std::vector<float> &rhoBias() { return rhoBias_; }
    const std::vector<float> &rhoBias() const { return rhoBias_; }

    /** Size scratch buffers for this layer. */
    void prepareScratch(VariationalConvScratch &scratch) const;

  private:
    nn::ConvSpec spec_;
    nn::Matrix muWeight_, rhoWeight_;
    std::vector<float> muBias_, rhoBias_;
};

} // namespace vibnn::bnn

#endif // VIBNN_BNN_VARIATIONAL_CONV_HH
