#include "bnn/bayesian_mlp.hh"

#include <cmath>

#include "common/logging.hh"
#include "nn/activations.hh"
#include "nn/loss.hh"
#include "nn/uncertainty.hh"

namespace vibnn::bnn
{

BayesianMlp::BayesianMlp(const std::vector<std::size_t> &layer_sizes,
                         Rng &rng, float rho_init)
    : layerSizes_(layer_sizes)
{
    VIBNN_ASSERT(layer_sizes.size() >= 2, "need input and output layers");
    for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
        layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], rng,
                             rho_init);
    }
}

BnnWorkspace
BayesianMlp::makeWorkspace() const
{
    BnnWorkspace ws;
    ensureWorkspace(ws);
    return ws;
}

void
BayesianMlp::ensureWorkspace(BnnWorkspace &ws) const
{
    bool compatible = ws.activations.size() == layerSizes_.size() &&
        ws.gradients.size() == layers_.size();
    for (std::size_t i = 0; compatible && i < layerSizes_.size(); ++i)
        compatible = ws.activations[i].size() == layerSizes_[i];
    for (std::size_t i = 0; compatible && i < layers_.size(); ++i) {
        compatible = ws.gradients[i].muWeight.rows() ==
                layers_[i].outDim() &&
            ws.gradients[i].muWeight.cols() == layers_[i].inDim();
    }
    if (compatible)
        return;
    ws.activations.resize(layerSizes_.size());
    ws.preActivations.resize(layers_.size());
    ws.layerScratch.resize(layers_.size());
    ws.gradients.resize(layers_.size());
    std::size_t widest = 0;
    for (std::size_t i = 0; i < layerSizes_.size(); ++i) {
        ws.activations[i].resize(layerSizes_[i]);
        widest = std::max(widest, layerSizes_[i]);
    }
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        ws.preActivations[i].resize(layers_[i].outDim());
        ws.gradients[i].resize(layers_[i].outDim(), layers_[i].inDim());
        layers_[i].prepareScratch(ws.layerScratch[i]);
    }
    ws.deltaA.resize(widest);
    ws.deltaB.resize(widest);
}

void
BayesianMlp::zeroGrads(BnnWorkspace &ws) const
{
    ensureWorkspace(ws);
    for (auto &g : ws.gradients)
        g.zero();
    ws.lossSum = 0.0;
    ws.sampleCount = 0;
}

void
BayesianMlp::softmaxInPlace(float *values, std::size_t count)
{
    nn::softmax(values, count);
}

double
BayesianMlp::trainSample(const float *x, std::size_t target,
                         BnnWorkspace &ws, Rng &rng, bool use_lrt)
{
    ensureWorkspace(ws);
    std::copy(x, x + inputDim(), ws.activations[0].begin());

    for (std::size_t i = 0; i < layers_.size(); ++i) {
        float *pre = ws.preActivations[i].data();
        if (use_lrt) {
            layers_[i].lrtForward(ws.activations[i].data(), pre,
                                  ws.layerScratch[i], rng);
        } else {
            auto eps = [&rng] { return rng.gaussian(); };
            layers_[i].sampleForward(ws.activations[i].data(), pre,
                                     ws.layerScratch[i], eps);
        }
        auto &out = ws.activations[i + 1];
        std::copy(pre, pre + out.size(), out.begin());
        if (i + 1 < layers_.size())
            nn::reluForward(out.data(), out.size());
    }

    auto &logits = ws.activations.back();
    float *delta = ws.deltaA.data();
    const double loss = nn::softmaxCrossEntropy(
        logits.data(), logits.size(), target, delta);
    ws.lossSum += loss;
    ++ws.sampleCount;

    for (std::size_t ii = layers_.size(); ii-- > 0;) {
        float *dx = ii > 0 ? ws.deltaB.data() : nullptr;
        if (use_lrt) {
            layers_[ii].lrtBackward(ws.activations[ii].data(), delta,
                                    ws.layerScratch[ii],
                                    ws.gradients[ii], dx);
        } else {
            layers_[ii].sampleBackward(ws.activations[ii].data(), delta,
                                       ws.layerScratch[ii],
                                       ws.gradients[ii], dx);
        }
        if (ii > 0) {
            nn::reluBackward(ws.preActivations[ii - 1].data(), dx,
                             ws.deltaA.data(), layers_[ii].inDim());
            delta = ws.deltaA.data();
        }
    }
    return loss;
}

double
BayesianMlp::accumulateKl(BnnWorkspace &ws, float prior_sigma,
                          float scale) const
{
    double kl = 0.0;
    for (std::size_t i = 0; i < layers_.size(); ++i)
        kl += layers_[i].klValueAndGrad(prior_sigma, scale,
                                        ws.gradients[i]);
    return kl;
}

double
BayesianMlp::klDivergence(float prior_sigma) const
{
    double kl = 0.0;
    for (const auto &layer : layers_)
        kl += layer.klDivergence(prior_sigma);
    return kl;
}

std::size_t
BayesianMlp::mcClassify(const float *x, std::size_t num_samples,
                        Rng &rng) const
{
    std::vector<float> probs(outputDim());
    auto eps = [&rng] { return rng.gaussian(); };
    mcPredict(x, num_samples, probs.data(), eps);
    return nn::argmax(probs.data(), probs.size());
}

std::size_t
BayesianMlp::mcClassify(const float *x, std::size_t num_samples,
                        grng::GaussianGenerator &gen) const
{
    std::vector<float> probs(outputDim());
    auto eps = [&gen] { return gen.next(); };
    mcPredict(x, num_samples, probs.data(), eps);
    return nn::argmax(probs.data(), probs.size());
}

double
BayesianMlp::predictiveEntropy(const float *x, std::size_t num_samples,
                               Rng &rng) const
{
    std::vector<float> probs(outputDim());
    auto eps = [&rng] { return rng.gaussian(); };
    mcPredict(x, num_samples, probs.data(), eps);
    return nn::predictiveEntropy(probs.data(), probs.size());
}

void
BayesianMlp::meanForward(const float *x, float *logits) const
{
    std::vector<float> buf_a(x, x + inputDim());
    std::vector<float> buf_b;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        buf_b.resize(layers_[i].outDim());
        layers_[i].meanForward(buf_a.data(), buf_b.data());
        if (i + 1 < layers_.size())
            nn::reluForward(buf_b.data(), buf_b.size());
        buf_a.swap(buf_b);
    }
    std::copy(buf_a.begin(), buf_a.end(), logits);
}

std::size_t
BayesianMlp::paramCount() const
{
    std::size_t count = 0;
    for (const auto &layer : layers_) {
        count += 2 * layer.muWeight().size();
        count += 2 * layer.muBias().size();
    }
    return count;
}

void
BayesianMlp::gatherParams(std::vector<float> &flat) const
{
    flat.resize(paramCount());
    std::size_t k = 0;
    for (const auto &layer : layers_) {
        for (float v : layer.muWeight().data())
            flat[k++] = v;
        for (float v : layer.rhoWeight().data())
            flat[k++] = v;
        for (float v : layer.muBias())
            flat[k++] = v;
        for (float v : layer.rhoBias())
            flat[k++] = v;
    }
}

void
BayesianMlp::scatterParams(const std::vector<float> &flat)
{
    VIBNN_ASSERT(flat.size() == paramCount(), "flat parameter mismatch");
    std::size_t k = 0;
    for (auto &layer : layers_) {
        for (float &v : layer.muWeight().data())
            v = flat[k++];
        for (float &v : layer.rhoWeight().data())
            v = flat[k++];
        for (float &v : layer.muBias())
            v = flat[k++];
        for (float &v : layer.rhoBias())
            v = flat[k++];
    }
}

void
BayesianMlp::gatherGrads(const BnnWorkspace &ws,
                         std::vector<float> &flat) const
{
    flat.resize(paramCount());
    const float inv = ws.sampleCount > 0
                          ? 1.0f / static_cast<float>(ws.sampleCount)
                          : 1.0f;
    std::size_t k = 0;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        for (float g : ws.gradients[i].muWeight.data())
            flat[k++] = g * inv;
        for (float g : ws.gradients[i].rhoWeight.data())
            flat[k++] = g * inv;
        for (float g : ws.gradients[i].muBias)
            flat[k++] = g * inv;
        for (float g : ws.gradients[i].rhoBias)
            flat[k++] = g * inv;
    }
}

std::vector<ParamSegment>
BayesianMlp::paramSegments(std::vector<VariationalGradients> &grads)
{
    VIBNN_ASSERT(grads.size() == layers_.size(),
                 "gradient buffers do not match layer count");
    std::vector<ParamSegment> segments;
    segments.reserve(4 * layers_.size());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        auto &layer = layers_[i];
        auto &g = grads[i];
        segments.push_back({layer.muWeight().data().data(),
                            g.muWeight.data().data(),
                            layer.muWeight().size()});
        segments.push_back({layer.rhoWeight().data().data(),
                            g.rhoWeight.data().data(),
                            layer.rhoWeight().size()});
        segments.push_back({layer.muBias().data(), g.muBias.data(),
                            layer.muBias().size()});
        segments.push_back({layer.rhoBias().data(), g.rhoBias.data(),
                            layer.rhoBias().size()});
    }
    return segments;
}

} // namespace vibnn::bnn
