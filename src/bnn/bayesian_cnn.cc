/**
 * @file
 * Bayesian convolutional network assembly and trainer (see
 * bayesian_cnn.hh).
 */

#include "bnn/bayesian_cnn.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "nn/activations.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "nn/uncertainty.hh"

namespace vibnn::bnn
{

namespace
{

/** Placeholder eps source for forward modes that never sample. */
struct NullEps
{
    double operator()() const { return 0.0; }
};

} // namespace

BayesianConvNet::BayesianConvNet(const nn::ConvNetConfig &config, Rng &rng,
                                 float rho_init)
    : config_(config)
{
    std::size_t channels = config.inChannels;
    std::size_t height = config.imageHeight;
    std::size_t width = config.imageWidth;

    for (const auto &block : config.blocks) {
        nn::ConvSpec spec;
        spec.inChannels = channels;
        spec.inHeight = height;
        spec.inWidth = width;
        spec.outChannels = block.outChannels;
        spec.kernel = block.kernel;
        spec.stride = block.stride;
        spec.pad = block.pad;
        VIBNN_ASSERT(spec.valid(), "invalid conv block geometry");

        stages_.push_back(Stage::Conv);
        stageIndex_.push_back(convs_.size());
        stageOutSize_.push_back(spec.outputSize());
        stageRelu_.push_back(true);
        convs_.emplace_back(spec, rng, rho_init);

        channels = spec.outChannels;
        height = spec.outHeight();
        width = spec.outWidth();

        if (block.pool) {
            nn::PoolSpec pool;
            pool.channels = channels;
            pool.inHeight = height;
            pool.inWidth = width;
            pool.window = block.poolWindow;
            pool.stride = block.poolWindow;
            VIBNN_ASSERT(pool.valid(), "invalid pool geometry");

            stages_.push_back(Stage::Pool);
            stageIndex_.push_back(pools_.size());
            stageOutSize_.push_back(pool.outputSize());
            stageRelu_.push_back(false);
            pools_.emplace_back(pool);

            height = pool.outHeight();
            width = pool.outWidth();
        }
    }

    std::size_t flat = channels * height * width;
    for (std::size_t hidden : config.denseHidden) {
        stages_.push_back(Stage::Dense);
        stageIndex_.push_back(dense_.size());
        stageOutSize_.push_back(hidden);
        stageRelu_.push_back(true);
        dense_.emplace_back(flat, hidden, rng, rho_init);
        flat = hidden;
    }
    stages_.push_back(Stage::Dense);
    stageIndex_.push_back(dense_.size());
    stageOutSize_.push_back(config.numClasses);
    stageRelu_.push_back(false);
    dense_.emplace_back(flat, config.numClasses, rng, rho_init);
}

std::size_t
BayesianConvNet::inputDim() const
{
    return config_.inChannels * config_.imageHeight * config_.imageWidth;
}

BcnnWorkspace
BayesianConvNet::makeWorkspace() const
{
    BcnnWorkspace ws;
    ws.buffers.resize(stages_.size() + 1);
    ws.buffers[0].resize(inputDim());
    ws.preActs.resize(stages_.size());
    std::size_t widest = inputDim();
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        ws.buffers[s + 1].resize(stageOutSize_[s]);
        if (stageRelu_[s])
            ws.preActs[s].resize(stageOutSize_[s]);
        widest = std::max(widest, stageOutSize_[s]);
    }
    ws.convScratch.resize(convs_.size());
    for (std::size_t i = 0; i < convs_.size(); ++i)
        convs_[i].prepareScratch(ws.convScratch[i]);
    ws.poolScratch.resize(pools_.size());
    ws.denseScratch.resize(dense_.size());
    for (std::size_t i = 0; i < dense_.size(); ++i)
        dense_[i].prepareScratch(ws.denseScratch[i]);
    ws.convGrads.resize(convs_.size());
    for (std::size_t i = 0; i < convs_.size(); ++i)
        ws.convGrads[i].resize(convs_[i].spec());
    ws.denseGrads.resize(dense_.size());
    for (std::size_t i = 0; i < dense_.size(); ++i)
        ws.denseGrads[i].resize(dense_[i].outDim(), dense_[i].inDim());
    ws.deltaA.resize(widest);
    ws.deltaB.resize(widest);
    return ws;
}

void
BayesianConvNet::zeroGrads(BcnnWorkspace &ws) const
{
    for (auto &g : ws.convGrads)
        g.zero();
    for (auto &g : ws.denseGrads)
        g.zero();
    ws.lossSum = 0.0;
    ws.sampleCount = 0;
}

void
BayesianConvNet::meanForward(const float *x, float *logits,
                             BcnnWorkspace &ws) const
{
    NullEps *none = nullptr;
    forwardImpl(x, logits, ws, ForwardMode::Mean, nullptr, none);
}

void
BayesianConvNet::backwardImpl(float *delta, float *next_delta,
                              BcnnWorkspace &ws, bool use_lrt) const
{
    for (std::size_t s = stages_.size(); s-- > 0;) {
        if (stageRelu_[s]) {
            nn::reluBackward(ws.preActs[s].data(), delta, delta,
                             stageOutSize_[s]);
        }
        const float *in = ws.buffers[s].data();
        const bool want_dx = s > 0;
        const std::size_t idx = stageIndex_[s];
        switch (stages_[s]) {
          case Stage::Conv:
            if (use_lrt) {
                convs_[idx].lrtBackward(delta, ws.convScratch[idx],
                                        ws.convGrads[idx],
                                        want_dx ? next_delta : nullptr);
            } else {
                convs_[idx].sampleBackward(delta, ws.convScratch[idx],
                                           ws.convGrads[idx],
                                           want_dx ? next_delta : nullptr);
            }
            break;
          case Stage::Pool:
            pools_[idx].backward(delta, ws.poolScratch[idx], next_delta);
            break;
          case Stage::Dense:
            if (use_lrt) {
                dense_[idx].lrtBackward(in, delta, ws.denseScratch[idx],
                                        ws.denseGrads[idx],
                                        want_dx ? next_delta : nullptr);
            } else {
                dense_[idx].sampleBackward(
                    in, delta, ws.denseScratch[idx], ws.denseGrads[idx],
                    want_dx ? next_delta : nullptr);
            }
            break;
        }
        std::swap(delta, next_delta);
    }
}

double
BayesianConvNet::trainSample(const float *x, std::size_t target,
                             BcnnWorkspace &ws, Rng &rng, bool use_lrt)
{
    std::vector<float> logits(outputDim());
    if (use_lrt) {
        NullEps *none = nullptr;
        forwardImpl(x, logits.data(), ws, ForwardMode::Lrt, &rng, none);
    } else {
        auto eps = [&rng]() { return rng.gaussian(); };
        forwardImpl(x, logits.data(), ws, ForwardMode::Direct, nullptr,
                    &eps);
    }

    float *delta = ws.deltaA.data();
    const double loss = nn::softmaxCrossEntropy(logits.data(), outputDim(),
                                                target, delta);
    ws.lossSum += loss;
    ws.sampleCount += 1;
    backwardImpl(delta, ws.deltaB.data(), ws, use_lrt);
    return loss;
}

double
BayesianConvNet::accumulateKl(BcnnWorkspace &ws, float prior_sigma,
                              float scale) const
{
    double kl = 0.0;
    for (std::size_t i = 0; i < convs_.size(); ++i) {
        kl += convs_[i].klDivergence(prior_sigma);
        convs_[i].klBackward(prior_sigma, scale, ws.convGrads[i]);
    }
    for (std::size_t i = 0; i < dense_.size(); ++i) {
        kl += dense_[i].klDivergence(prior_sigma);
        dense_[i].klBackward(prior_sigma, scale, ws.denseGrads[i]);
    }
    return kl;
}

double
BayesianConvNet::klDivergence(float prior_sigma) const
{
    double kl = 0.0;
    for (const auto &c : convs_)
        kl += c.klDivergence(prior_sigma);
    for (const auto &d : dense_)
        kl += d.klDivergence(prior_sigma);
    return kl;
}

std::size_t
BayesianConvNet::mcClassify(const float *x, std::size_t num_samples,
                            BcnnWorkspace &ws, Rng &rng) const
{
    std::vector<float> probs(outputDim());
    auto eps = [&rng]() { return rng.gaussian(); };
    mcPredict(x, num_samples, probs.data(), ws, eps);
    return nn::argmax(probs.data(), probs.size());
}

double
BayesianConvNet::predictiveEntropy(const float *x,
                                   std::size_t num_samples,
                                   BcnnWorkspace &ws, Rng &rng) const
{
    std::vector<float> probs(outputDim());
    auto eps = [&rng]() { return rng.gaussian(); };
    mcPredict(x, num_samples, probs.data(), ws, eps);
    return nn::predictiveEntropy(probs.data(), probs.size());
}

std::size_t
BayesianConvNet::paramCount() const
{
    std::size_t n = 0;
    for (const auto &c : convs_)
        n += c.paramCount();
    for (const auto &d : dense_) {
        n += 2 * (d.muWeight().size() + d.muBias().size());
    }
    return n;
}

void
BayesianConvNet::gatherParams(std::vector<float> &flat) const
{
    flat.clear();
    flat.reserve(paramCount());
    auto block = [&](const nn::Matrix &w, const std::vector<float> &b) {
        flat.insert(flat.end(), w.data().begin(), w.data().end());
        flat.insert(flat.end(), b.begin(), b.end());
    };
    for (const auto &c : convs_) {
        block(c.muWeight(), c.muBias());
        block(c.rhoWeight(), c.rhoBias());
    }
    for (const auto &d : dense_) {
        block(d.muWeight(), d.muBias());
        block(d.rhoWeight(), d.rhoBias());
    }
}

void
BayesianConvNet::scatterParams(const std::vector<float> &flat)
{
    VIBNN_ASSERT(flat.size() == paramCount(), "parameter size mismatch");
    std::size_t at = 0;
    auto take = [&](float *dst, std::size_t n) {
        std::copy(flat.begin() + at, flat.begin() + at + n, dst);
        at += n;
    };
    auto block = [&](nn::Matrix &w, std::vector<float> &b) {
        take(w.data().data(), w.size());
        take(b.data(), b.size());
    };
    for (auto &c : convs_) {
        block(c.muWeight(), c.muBias());
        block(c.rhoWeight(), c.rhoBias());
    }
    for (auto &d : dense_) {
        block(d.muWeight(), d.muBias());
        block(d.rhoWeight(), d.rhoBias());
    }
}

void
BayesianConvNet::gatherGrads(const BcnnWorkspace &ws,
                             std::vector<float> &flat) const
{
    const float inv =
        ws.sampleCount > 0 ? 1.0f / static_cast<float>(ws.sampleCount)
                           : 0.0f;
    flat.clear();
    flat.reserve(paramCount());
    auto append = [&](const float *src, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            flat.push_back(src[i] * inv);
    };
    for (std::size_t i = 0; i < convs_.size(); ++i) {
        const auto &g = ws.convGrads[i];
        append(g.muWeight.data().data(), g.muWeight.size());
        append(g.muBias.data(), g.muBias.size());
        append(g.rhoWeight.data().data(), g.rhoWeight.size());
        append(g.rhoBias.data(), g.rhoBias.size());
    }
    for (std::size_t i = 0; i < dense_.size(); ++i) {
        const auto &g = ws.denseGrads[i];
        append(g.muWeight.data().data(), g.muWeight.size());
        append(g.muBias.data(), g.muBias.size());
        append(g.rhoWeight.data().data(), g.rhoWeight.size());
        append(g.rhoBias.data(), g.rhoBias.size());
    }
}

void
BayesianConvNet::softmaxInPlace(float *values, std::size_t count)
{
    nn::softmax(values, count);
}

double
evaluateBcnnAccuracy(const BayesianConvNet &net, const nn::DataView &data,
                     std::size_t mc_samples, std::uint64_t seed)
{
    if (data.count == 0)
        return 0.0;
    Rng rng(seed);
    BcnnWorkspace ws = net.makeWorkspace();
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.count; ++i) {
        if (net.mcClassify(data.sample(i), mc_samples, ws, rng) ==
            static_cast<std::size_t>(data.labels[i])) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.count);
}

nn::TrainHistory
trainBcnn(BayesianConvNet &net, const nn::DataView &train,
          const BnnTrainConfig &config)
{
    VIBNN_ASSERT(train.count > 0, "empty training set");
    VIBNN_ASSERT(train.dim == net.inputDim(), "feature dim mismatch");

    nn::TrainHistory history;
    Rng rng(config.seed);
    nn::AdamOptimizer optimizer(config.learningRate);

    BcnnWorkspace ws = net.makeWorkspace();
    std::vector<float> params, grads;
    std::vector<std::size_t> order(train.count);
    std::iota(order.begin(), order.end(), 0);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t seen = 0;

        for (std::size_t start = 0; start < train.count;
             start += config.batchSize) {
            const std::size_t end =
                std::min(start + config.batchSize, train.count);
            const std::size_t batch = end - start;
            net.zeroGrads(ws);
            for (std::size_t k = start; k < end; ++k) {
                const std::size_t i = order[k];
                epoch_loss += net.trainSample(
                    train.sample(i),
                    static_cast<std::size_t>(train.labels[i]), ws, rng,
                    config.useLocalReparameterization);
            }
            seen += batch;

            // Same KL minibatch weighting as trainBnn: gatherGrads
            // divides by the batch sample count, so pre-scale by
            // batch/N to land at KL/N overall.
            const float kl_scale = config.klWeight *
                static_cast<float>(batch) /
                static_cast<float>(train.count);
            const double kl =
                net.accumulateKl(ws, config.priorSigma, kl_scale);
            epoch_loss += kl * batch / train.count;

            net.gatherGrads(ws, grads);
            net.gatherParams(params);
            optimizer.step(params.data(), grads.data(), params.size());
            net.scatterParams(params);
        }

        const double mean_loss = epoch_loss / static_cast<double>(seen);
        history.trainLoss.push_back(mean_loss);
        double acc = -1.0;
        if (config.evalSet) {
            acc = evaluateBcnnAccuracy(net, *config.evalSet,
                                       config.evalSamples,
                                       config.seed + 977 + epoch);
        }
        history.evalAccuracy.push_back(acc);
        if (config.onEpoch)
            config.onEpoch(epoch, mean_loss, acc);
    }
    return history;
}

} // namespace vibnn::bnn
