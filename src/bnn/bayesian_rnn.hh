/**
 * @file
 * Bayesian Elman RNN — the recurrent instantiation of the paper's BNN
 * model (the paper cites Fortunato et al.'s Bayesian Recurrent Neural
 * Networks as a motivating deployment, and claims in Section 1 that
 * VIBNN's principles apply to RNNs).
 *
 * Every parameter block (Wx, Wh, Wy, bh, by) carries a factorized
 * Gaussian posterior. Following Fortunato et al., one weight sample is
 * drawn *per sequence* and shared across all timesteps — exactly the
 * traffic pattern a hardware weight generator would serve (one GRN per
 * physical parameter per Monte-Carlo pass, reused as the PE array
 * time-multiplexes over the unrolled sequence). Training is the direct
 * Bayes-by-Backprop estimator: BPTT through the sampled weights, then
 * the chain rule maps sampled-weight gradients back to (mu, rho).
 */

#ifndef VIBNN_BNN_BAYESIAN_RNN_HH
#define VIBNN_BNN_BAYESIAN_RNN_HH

#include <cstddef>
#include <vector>

#include "bnn/bnn_trainer.hh"
#include "bnn/variational_matrix.hh"
#include "common/rng.hh"
#include "nn/rnn.hh"

namespace vibnn::bnn
{

/** Per-sequence scratch: sampled weights, eps records, BPTT buffers. */
struct BrnnWorkspace
{
    /** Sampled weights for the current pass. */
    nn::Matrix wx, wh, wy, bh, by;
    /** The eps draws that produced them. */
    nn::Matrix epsWx, epsWh, epsWy, epsBh, epsBy;
    /** Sampled-weight gradients (BPTT output). */
    nn::Matrix dWx, dWh, dWy, dBh, dBy;
    /** Parameter-space gradients. */
    nn::Matrix gMuWx, gRhoWx, gMuWh, gRhoWh, gMuWy, gRhoWy;
    nn::Matrix gMuBh, gRhoBh, gMuBy, gRhoBy;
    /** Hidden trajectory. */
    std::vector<std::vector<float>> hidden;
    std::vector<float> deltaH, deltaPre;
    double lossSum = 0.0;
    std::size_t sampleCount = 0;
};

/** Bayesian recurrent classifier. */
class BayesianRnn
{
  public:
    BayesianRnn(const nn::RnnConfig &config, Rng &rng,
                float rho_init = -5.0f);

    const nn::RnnConfig &config() const { return config_; }
    std::size_t inputDim() const { return config_.flatDim(); }
    std::size_t outputDim() const { return config_.numClasses; }

    BrnnWorkspace makeWorkspace() const;
    void zeroGrads(BrnnWorkspace &ws) const;

    /**
     * Run one sampled forward pass: draws one weight sample from `eps`
     * (shared across timesteps), fills ws.hidden, writes logits.
     */
    template <typename EpsFn>
    void
    sampledForward(const float *xs, float *logits, BrnnWorkspace &ws,
                   EpsFn &&eps) const
    {
        wx_.sample(ws.wx, ws.epsWx, eps);
        wh_.sample(ws.wh, ws.epsWh, eps);
        wy_.sample(ws.wy, ws.epsWy, eps);
        bh_.sample(ws.bh, ws.epsBh, eps);
        by_.sample(ws.by, ws.epsBy, eps);
        runForward(xs, logits, ws);
    }

    /** Mean-field deterministic forward (mu only). */
    void meanForward(const float *xs, float *logits,
                     BrnnWorkspace &ws) const;

    /**
     * One training sequence: sampled forward, softmax cross-entropy,
     * BPTT through the sampled weights, chain rule into (mu, rho).
     */
    double trainSequence(const float *xs, std::size_t target,
                         BrnnWorkspace &ws, Rng &rng);

    /** Monte-Carlo predictive distribution (paper equation (6)). */
    template <typename EpsFn>
    void
    mcPredict(const float *xs, std::size_t num_samples, float *probs,
              BrnnWorkspace &ws, EpsFn &&eps) const
    {
        std::vector<float> acc(outputDim(), 0.0f);
        std::vector<float> logits(outputDim());
        for (std::size_t s = 0; s < num_samples; ++s) {
            sampledForward(xs, logits.data(), ws, eps);
            softmaxInPlace(logits.data(), logits.size());
            for (std::size_t i = 0; i < acc.size(); ++i)
                acc[i] += logits[i];
        }
        const float inv = 1.0f / static_cast<float>(num_samples);
        for (std::size_t i = 0; i < acc.size(); ++i)
            probs[i] = acc[i] * inv;
    }

    /** argmax of mcPredict with rng.gaussian() epsilons. */
    std::size_t mcClassify(const float *xs, std::size_t num_samples,
                           BrnnWorkspace &ws, Rng &rng) const;

    /** Total KL divergence to the prior. */
    double klDivergence(float prior_sigma) const;

    /** Add scaled KL gradients into ws; returns the KL value. */
    double accumulateKl(BrnnWorkspace &ws, float prior_sigma,
                        float scale) const;

    /** Flat parameter plumbing: per block mu then rho, blocks in
     *  (wx, wh, wy, bh, by) order. */
    std::size_t paramCount() const;
    void gatherParams(std::vector<float> &flat) const;
    void scatterParams(const std::vector<float> &flat);
    void gatherGrads(const BrnnWorkspace &ws, std::vector<float> &flat)
        const;

    VariationalMatrix &wxBlock() { return wx_; }
    VariationalMatrix &whBlock() { return wh_; }
    const VariationalMatrix &wxBlock() const { return wx_; }
    const VariationalMatrix &whBlock() const { return wh_; }

  private:
    /** Forward with whatever weights sit in ws.{wx, wh, wy, bh, by}. */
    void runForward(const float *xs, float *logits,
                    BrnnWorkspace &ws) const;

    static void softmaxInPlace(float *values, std::size_t count);

    nn::RnnConfig config_;
    VariationalMatrix wx_, wh_, wy_, bh_, by_;
};

/** MC-ensemble sequence-classification accuracy. */
double evaluateBrnnAccuracy(const BayesianRnn &net,
                            const nn::DataView &data,
                            std::size_t mc_samples, std::uint64_t seed);

/** Train with Bayes-by-Backprop (direct estimator) + gradient clip. */
nn::TrainHistory trainBrnn(BayesianRnn &net, const nn::DataView &train,
                           const BnnTrainConfig &config);

} // namespace vibnn::bnn

#endif // VIBNN_BNN_BAYESIAN_RNN_HH
