/**
 * @file
 * Variational parameter block (see variational_matrix.hh).
 */

#include "bnn/variational_matrix.hh"

#include <cmath>

namespace vibnn::bnn
{

VariationalMatrix::VariationalMatrix(std::size_t rows, std::size_t cols,
                                     Rng &rng, float init_bound,
                                     float rho_init)
    : mu_(rows, cols), rho_(rows, cols)
{
    if (init_bound > 0.0f) {
        for (auto &m : mu_.data())
            m = static_cast<float>(rng.uniform(-init_bound, init_bound));
    }
    for (auto &r : rho_.data())
        r = rho_init + static_cast<float>(rng.uniform(-0.2, 0.2));
}

void
VariationalMatrix::ensureShape(nn::Matrix &m) const
{
    if (m.rows() != mu_.rows() || m.cols() != mu_.cols())
        m = nn::Matrix(mu_.rows(), mu_.cols());
}

void
VariationalMatrix::meanInto(nn::Matrix &w) const
{
    ensureShape(w);
    w.data() = mu_.data();
}

void
VariationalMatrix::accumulateSampleGrad(const nn::Matrix &dw,
                                        const nn::Matrix &eps,
                                        nn::Matrix &g_mu,
                                        nn::Matrix &g_rho) const
{
    for (std::size_t i = 0; i < mu_.size(); ++i) {
        const float g = dw.data()[i];
        g_mu.data()[i] += g;
        g_rho.data()[i] +=
            g * eps.data()[i] * nn::logistic(rho_.data()[i]);
    }
}

double
VariationalMatrix::klDivergence(float prior_sigma) const
{
    const double p2 = static_cast<double>(prior_sigma) * prior_sigma;
    const double log_p = std::log(static_cast<double>(prior_sigma));
    double kl = 0.0;
    for (std::size_t i = 0; i < mu_.size(); ++i) {
        const double s = nn::softplus(rho_.data()[i]);
        const double m = mu_.data()[i];
        kl += log_p - std::log(s) + (s * s + m * m) / (2.0 * p2) - 0.5;
    }
    return kl;
}

void
VariationalMatrix::klBackward(float prior_sigma, float scale,
                              nn::Matrix &g_mu, nn::Matrix &g_rho) const
{
    const float inv_p2 = 1.0f / (prior_sigma * prior_sigma);
    for (std::size_t i = 0; i < mu_.size(); ++i) {
        const float s = nn::softplus(rho_.data()[i]);
        g_mu.data()[i] += scale * mu_.data()[i] * inv_p2;
        g_rho.data()[i] += scale * (s * inv_p2 - 1.0f / s) *
            nn::logistic(rho_.data()[i]);
    }
}

} // namespace vibnn::bnn
