#include "bnn/bnn_trainer.hh"

#include <atomic>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "nn/activations.hh"
#include "nn/loss.hh"

namespace vibnn::bnn
{

namespace ak = accel::kernels;

double
evaluateBnnAccuracy(const BayesianMlp &net, const nn::DataView &data,
                    std::size_t mc_samples, std::uint64_t seed,
                    ThreadPool *pool)
{
    if (data.count == 0)
        return 0.0;
    if (!pool)
        pool = &ThreadPool::global();
    std::atomic<std::size_t> correct{0};
    pool->parallelFor(data.count, [&](std::size_t i) {
        // Per-image stream keyed on (seed, i): any thread may classify
        // any image and the draws are identical — accuracy cannot
        // depend on the pool size or partition.
        std::uint64_t state = seed + (i + 1) * 0x9E3779B97F4A7C15ULL;
        Rng rng(splitmix64Next(state));
        if (net.mcClassify(data.sample(i), mc_samples, rng) ==
            static_cast<std::size_t>(data.labels[i]))
            correct.fetch_add(1, std::memory_order_relaxed);
    });
    return static_cast<double>(correct.load()) /
        static_cast<double>(data.count);
}

nn::TrainHistory
trainBnn(BayesianMlp &net, const nn::DataView &train,
         const BnnTrainConfig &config)
{
    VIBNN_ASSERT(train.count > 0, "empty training set");
    VIBNN_ASSERT(train.dim == net.inputDim(), "feature dim mismatch");

    nn::TrainHistory history;
    Rng rng(config.seed);
    nn::AdamOptimizer optimizer(config.learningRate);
    optimizer.ensureState(net.paramCount());

    BnnWorkspace ws = net.makeWorkspace();
    // The optimizer steps the layers' own storage through these
    // segments — no per-minibatch gather/scatter copies, identical
    // trajectory (the segmented sweep is the same arithmetic in the
    // same flat order).
    const std::vector<ParamSegment> segments =
        net.paramSegments(ws.gradients);
    std::vector<std::size_t> order(train.count);
    std::iota(order.begin(), order.end(), 0);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t seen = 0;

        for (std::size_t start = 0; start < train.count;
             start += config.batchSize) {
            const std::size_t end =
                std::min(start + config.batchSize, train.count);
            const std::size_t batch = end - start;
            net.zeroGrads(ws);
            for (std::size_t k = start; k < end; ++k) {
                const std::size_t i = order[k];
                epoch_loss += net.trainSample(
                    train.sample(i),
                    static_cast<std::size_t>(train.labels[i]), ws, rng,
                    config.useLocalReparameterization);
            }
            seen += batch;

            // KL weighting: the step divides every gradient by the
            // batch sample count, so pre-scale by batch/N to land at
            // KL/N per sample overall (uniform minibatch weighting).
            const float kl_scale = config.klWeight *
                static_cast<float>(batch) /
                static_cast<float>(train.count);
            const double kl =
                net.accumulateKl(ws, config.priorSigma, kl_scale);
            epoch_loss += kl * batch / train.count;

            const float inv = ws.sampleCount > 0
                ? 1.0f / static_cast<float>(ws.sampleCount)
                : 1.0f;
            optimizer.beginStep();
            std::size_t offset = 0;
            for (const auto &seg : segments) {
                optimizer.stepRange(seg.params, seg.grads, seg.count,
                                    offset, inv);
                offset += seg.count;
            }
        }

        const double mean_loss = epoch_loss / static_cast<double>(seen);
        history.trainLoss.push_back(mean_loss);
        double acc = -1.0;
        if (config.evalSet) {
            acc = evaluateBnnAccuracy(net, *config.evalSet,
                                      config.evalSamples,
                                      config.seed + 977 + epoch);
        }
        history.evalAccuracy.push_back(acc);
        if (config.onEpoch)
            config.onEpoch(epoch, mean_loss, acc);
    }
    return history;
}

// ------------------------------------------------------- batched engine

namespace
{

/** Run piece(lo, hi) over [0, rows) — sharded on the pool when one is
 *  given. Pieces touch disjoint output rows and each element's
 *  arithmetic is identical in every partition, so any pool (or none)
 *  produces bit-identical results. */
template <typename Fn>
void
shardRows(ThreadPool *pool, std::size_t rows, Fn &&piece)
{
    if (!pool || pool->parties() <= 1 || rows < 2) {
        piece(static_cast<std::size_t>(0), rows);
        return;
    }
    const std::size_t parts = std::min(rows, pool->parties());
    pool->parallelFor(parts, [&](std::size_t p) {
        piece(rows * p / parts, rows * (p + 1) / parts);
    });
}

} // namespace

struct BnnBatchTrainer::Impl
{
    BayesianMlp &net;
    BnnBatchedTrainConfig cfg;
    const ak::KernelOps &ops;
    ThreadPool *pool;
    grng::PhiloxGrng philox;
    nn::AdamOptimizer opt;
    std::vector<VariationalGradients> grads;
    std::vector<ParamSegment> segments;

    /** Per-layer derived planes and per-minibatch scratch. */
    struct Layer
    {
        std::size_t in = 0, out = 0;
        // Derived from (mu, rho) by refreshParams().
        ak::AlignedVector<float> sigmaW, sigmaB;     // softplus(rho)
        ak::AlignedVector<float> sigmaSqW, sigmaSqB; // LRT variance GEMM
        // QAT raw planes (weight grid) + the dequantized bias.
        ak::AlignedVector<std::int32_t> rawMuW, rawSigmaW, rawMuB;
        ak::AlignedVector<float> bQuant;
        // Per-step noise and sampled weights (direct/QAT).
        ak::AlignedVector<float> epsW, epsB, wEff, bEff;
        ak::AlignedVector<std::int32_t> rawEpsW, rawW;
        // Per-minibatch activations (batch-major rows).
        ak::AlignedVector<float> pre, act;            // batch x out
        ak::AlignedVector<float> mean, var, sd, eps;  // batch x out (LRT)
        ak::AlignedVector<float> xsq;                 // batch x in (LRT)
        ak::AlignedVector<float> dvar;                // batch x out (LRT)
        ak::AlignedVector<float> dxa, dxb;            // batch x in
        // Weight-shaped backward scratch.
        ak::AlignedVector<float> gw, gbScratch;       // out x in, out
    };
    std::vector<Layer> layers;

    ak::AlignedVector<float> x0;       // batch x inputDim
    ak::AlignedVector<float> deltaA, deltaB;
    ak::AlignedVector<double> dscratch;
    std::vector<std::size_t> labels;
    std::size_t cap = 0;

    ak::SampleParams qatSample;

    Impl(BayesianMlp &n, const BnnBatchedTrainConfig &c)
        : net(n), cfg(c),
          ops(c.kernels ? *c.kernels : ak::activeKernels()),
          pool(c.pool), philox(c.seed), opt(c.learningRate)
    {
        VIBNN_ASSERT(!cfg.quantizeAware ||
                         cfg.estimator ==
                             BnnEstimator::DirectWeightSample,
                     "QAT requires the direct weight-sample estimator");
        const auto &ls = net.layers();
        grads.resize(ls.size());
        layers.resize(ls.size());
        for (std::size_t l = 0; l < ls.size(); ++l) {
            Layer &st = layers[l];
            st.in = ls[l].inDim();
            st.out = ls[l].outDim();
            grads[l].resize(st.out, st.in);
            const std::size_t w = st.out * st.in;
            st.sigmaW.resize(w);
            st.sigmaB.resize(st.out);
            if (cfg.estimator == BnnEstimator::LocalReparam) {
                st.sigmaSqW.resize(w);
                st.sigmaSqB.resize(st.out);
            } else {
                st.epsW.resize(w);
                st.epsB.resize(st.out);
                st.wEff.resize(w);
                st.bEff.resize(st.out);
                st.gw.resize(w);
                st.gbScratch.resize(st.out);
            }
            if (cfg.quantizeAware) {
                st.rawMuW.resize(w);
                st.rawSigmaW.resize(w);
                st.rawMuB.resize(st.out);
                st.bQuant.resize(st.out);
                st.rawEpsW.resize(w);
                st.rawW.resize(w);
            }
            if (cfg.estimator == BnnEstimator::LocalReparam) {
                st.gw.resize(w); // dvar^T xsq accumulator
                st.gbScratch.resize(st.out);
            }
        }
        segments = net.paramSegments(grads);
        opt.ensureState(net.paramCount());

        qatSample.epsShift = cfg.qatEps.fracBits();
        qatSample.wMin = static_cast<std::int32_t>(cfg.qatWeight.rawMin());
        qatSample.wMax = static_cast<std::int32_t>(cfg.qatWeight.rawMax());
        qatSample.sigmaAbsMax = -cfg.qatWeight.rawMin();
        qatSample.epsAbsMax = -cfg.qatEps.rawMin();

        refreshParams();
    }

    void
    ensureBatch(std::size_t batch)
    {
        if (batch <= cap)
            return;
        cap = batch;
        std::size_t max_dim = net.inputDim();
        for (const Layer &st : layers)
            max_dim = std::max(max_dim, st.out);
        x0.resize(cap * net.inputDim());
        deltaA.resize(cap * max_dim);
        deltaB.resize(cap * max_dim);
        labels.resize(cap);
        for (Layer &st : layers) {
            st.pre.resize(cap * st.out);
            st.act.resize(cap * st.out);
            if (cfg.estimator == BnnEstimator::LocalReparam) {
                st.mean.resize(cap * st.out);
                st.var.resize(cap * st.out);
                st.sd.resize(cap * st.out);
                st.eps.resize(cap * st.out);
                st.dvar.resize(cap * st.out);
                st.xsq.resize(cap * st.in);
                st.dxb.resize(cap * st.in);
            }
            st.dxa.resize(cap * st.in);
        }
    }

    /** Fill `dst` with n standard normals: from the host Rng when
     *  given (trajectory parity with the per-sample trainer), else
     *  sequentially off the Philox block stream. Always serial — the
     *  draw order never depends on the pool. */
    void
    drawEps(float *dst, std::size_t n, Rng *host_rng)
    {
        if (host_rng) {
            for (std::size_t i = 0; i < n; ++i)
                dst[i] = static_cast<float>(host_rng->gaussian());
            return;
        }
        if (dscratch.size() < n)
            dscratch.resize(n);
        philox.fill(dscratch.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = static_cast<float>(dscratch[i]);
    }

    void
    refreshParams()
    {
        const auto &ls = net.layers();
        for (std::size_t l = 0; l < ls.size(); ++l) {
            Layer &st = layers[l];
            const float *rhoW = ls[l].rhoWeight().data().data();
            const float *rhoB = ls[l].rhoBias().data();
            const std::size_t w = st.out * st.in;
            for (std::size_t i = 0; i < w; ++i)
                st.sigmaW[i] = VariationalDense::sigmaOf(rhoW[i]);
            for (std::size_t i = 0; i < st.out; ++i)
                st.sigmaB[i] = VariationalDense::sigmaOf(rhoB[i]);
            if (cfg.estimator == BnnEstimator::LocalReparam) {
                for (std::size_t i = 0; i < w; ++i)
                    st.sigmaSqW[i] = st.sigmaW[i] * st.sigmaW[i];
                for (std::size_t i = 0; i < st.out; ++i)
                    st.sigmaSqB[i] = st.sigmaB[i] * st.sigmaB[i];
            }
            if (cfg.quantizeAware) {
                const auto &wf = cfg.qatWeight;
                ops.quantizeFloat(
                    ls[l].muWeight().data().data(), st.rawMuW.data(), w,
                    wf.fracBits(),
                    static_cast<std::int32_t>(wf.rawMin()),
                    static_cast<std::int32_t>(wf.rawMax()));
                ops.quantizeFloat(
                    st.sigmaW.data(), st.rawSigmaW.data(), w,
                    wf.fracBits(),
                    static_cast<std::int32_t>(wf.rawMin()),
                    static_cast<std::int32_t>(wf.rawMax()));
                ops.quantizeFloat(
                    ls[l].muBias().data(), st.rawMuB.data(), st.out,
                    wf.fracBits(),
                    static_cast<std::int32_t>(wf.rawMin()),
                    static_cast<std::int32_t>(wf.rawMax()));
                const float res =
                    static_cast<float>(wf.resolution());
                for (std::size_t i = 0; i < st.out; ++i)
                    st.bQuant[i] =
                        static_cast<float>(st.rawMuB[i]) * res;
            }
        }
    }

    const float *
    inputOf(std::size_t l) const
    {
        return l == 0 ? x0.data() : layers[l - 1].act.data();
    }

    void
    gatherInputs(const nn::DataView &data, const std::size_t *idx,
                 std::size_t batch)
    {
        const std::size_t dim = net.inputDim();
        for (std::size_t b = 0; b < batch; ++b) {
            const float *src = data.sample(idx[b]);
            float *dst = x0.data() + b * dim;
            if (cfg.quantizeAware) {
                // The executor quantizes inputs round-to-nearest onto
                // the activation grid; emulate that exactly.
                for (std::size_t c = 0; c < dim; ++c)
                    dst[c] = static_cast<float>(cfg.qatActivation.quantize(
                        static_cast<double>(src[c]),
                        fixed::RoundMode::Nearest));
            } else {
                std::copy(src, src + dim, dst);
            }
            labels[b] =
                static_cast<std::size_t>(data.labels[idx[b]]);
        }
    }

    /** Sampled weights of one direct/QAT layer from the current
     *  parameter planes and the layer's stored eps. */
    void
    materializeWeights(std::size_t l)
    {
        Layer &st = layers[l];
        const auto &layer = net.layers()[l];
        const std::size_t w = st.out * st.in;
        if (cfg.quantizeAware) {
            // Raw-domain draw, exactly DatapathKernel::sampleWeight:
            // w = sat(mu_raw + ((sigma_raw * eps_raw) >> epsFrac)).
            ops.sampleWeights(st.rawMuW.data(), st.rawSigmaW.data(),
                              st.rawEpsW.data(), st.rawW.data(), w,
                              qatSample);
            const float res =
                static_cast<float>(cfg.qatWeight.resolution());
            for (std::size_t i = 0; i < w; ++i)
                st.wEff[i] = static_cast<float>(st.rawW[i]) * res;
            // The accelerator's GEMM bias is the quantized mu bias
            // (deterministic — see BatchedRunner).
            std::copy(st.bQuant.begin(), st.bQuant.end(),
                      st.bEff.begin());
            return;
        }
        const float *muW = layer.muWeight().data().data();
        const float *muB = layer.muBias().data();
        for (std::size_t i = 0; i < w; ++i)
            st.wEff[i] = muW[i] + st.sigmaW[i] * st.epsW[i];
        for (std::size_t i = 0; i < st.out; ++i)
            st.bEff[i] = muB[i] + st.sigmaB[i] * st.epsB[i];
    }

    /** Forward through layer l for `batch` rows. `redraw` pulls fresh
     *  eps; false reuses the stored block (finite-difference probes). */
    void
    forwardLayer(std::size_t l, std::size_t batch, bool redraw,
                 Rng *host_rng)
    {
        Layer &st = layers[l];
        const auto &layer = net.layers()[l];
        const float *x = inputOf(l);
        const bool last = l + 1 == layers.size();

        if (cfg.estimator == BnnEstimator::LocalReparam) {
            for (std::size_t t = 0; t < batch * st.in; ++t)
                st.xsq[t] = x[t] * x[t];
            ak::GemmF32Args gm;
            gm.a = x;
            gm.lda = st.in;
            gm.b = layer.muWeight().data().data();
            gm.ldb = st.in;
            gm.c = st.mean.data();
            gm.ldc = st.out;
            gm.m = batch;
            gm.n = st.out;
            gm.k = st.in;
            gm.bias = layer.muBias().data();
            shardRows(pool, batch, [&](std::size_t lo, std::size_t hi) {
                ak::GemmF32Args part = gm;
                part.a = gm.a + lo * gm.lda;
                part.c = gm.c + lo * gm.ldc;
                part.m = hi - lo;
                ops.gemmBatchF32(part);
            });
            ak::GemmF32Args gv = gm;
            gv.a = st.xsq.data();
            gv.b = st.sigmaSqW.data();
            gv.c = st.var.data();
            gv.bias = st.sigmaSqB.data();
            shardRows(pool, batch, [&](std::size_t lo, std::size_t hi) {
                ak::GemmF32Args part = gv;
                part.a = gv.a + lo * gv.lda;
                part.c = gv.c + lo * gv.ldc;
                part.m = hi - lo;
                ops.gemmBatchF32(part);
            });
            if (redraw)
                drawEps(st.eps.data(), batch * st.out, host_rng);
            for (std::size_t t = 0; t < batch * st.out; ++t) {
                const float sd =
                    std::sqrt(std::max(st.var[t], 1e-16f));
                st.sd[t] = sd;
                st.pre[t] = st.mean[t] + sd * st.eps[t];
            }
        } else {
            if (redraw) {
                drawEps(st.epsW.data(), st.out * st.in, host_rng);
                drawEps(st.epsB.data(), st.out, host_rng);
                if (cfg.quantizeAware) {
                    const auto &ef = cfg.qatEps;
                    ops.quantizeFloat(
                        st.epsW.data(), st.rawEpsW.data(),
                        st.out * st.in, ef.fracBits(),
                        static_cast<std::int32_t>(ef.rawMin()),
                        static_cast<std::int32_t>(ef.rawMax()));
                    // The STE chain differentiates through the
                    // quantized eps the datapath actually multiplies.
                    const float res =
                        static_cast<float>(ef.resolution());
                    for (std::size_t i = 0; i < st.out * st.in; ++i)
                        st.epsW[i] =
                            static_cast<float>(st.rawEpsW[i]) * res;
                }
            }
            materializeWeights(l);
            ak::GemmF32Args gm;
            gm.a = x;
            gm.lda = st.in;
            gm.b = st.wEff.data();
            gm.ldb = st.in;
            gm.c = st.pre.data();
            gm.ldc = st.out;
            gm.m = batch;
            gm.n = st.out;
            gm.k = st.in;
            gm.bias = st.bEff.data();
            shardRows(pool, batch, [&](std::size_t lo, std::size_t hi) {
                ak::GemmF32Args part = gm;
                part.a = gm.a + lo * gm.lda;
                part.c = gm.c + lo * gm.ldc;
                part.m = hi - lo;
                ops.gemmBatchF32(part);
            });
        }

        // act = relu(pre) on hidden layers, a plain copy (the loss
        // input) on the last; QAT floor-quantizes onto the activation
        // grid exactly like finishNeuron / finishOutputNeuron.
        float *act = st.act.data();
        const float *pre = st.pre.data();
        const std::size_t n = batch * st.out;
        if (last) {
            std::copy(pre, pre + n, act);
        } else {
            for (std::size_t t = 0; t < n; ++t)
                act[t] = pre[t] > 0.0f ? pre[t] : 0.0f;
        }
        if (cfg.quantizeAware) {
            for (std::size_t t = 0; t < n; ++t)
                act[t] = static_cast<float>(cfg.qatActivation.quantize(
                    static_cast<double>(act[t]),
                    fixed::RoundMode::Floor));
        }
    }

    double
    forward(const nn::DataView &data, const std::size_t *idx,
            std::size_t batch, Rng *host_rng, bool redraw,
            bool want_delta)
    {
        ensureBatch(batch);
        // Resolve the delta pointer only after ensureBatch may have
        // reallocated the arena.
        float *delta_out = want_delta ? deltaA.data() : nullptr;
        gatherInputs(data, idx, batch);
        for (std::size_t l = 0; l < layers.size(); ++l)
            forwardLayer(l, batch, redraw, host_rng);

        Layer &lastL = layers.back();
        const std::size_t out = lastL.out;
        double loss = 0.0;
        for (std::size_t b = 0; b < batch; ++b) {
            float *logits = lastL.act.data() + b * out;
            float *grad =
                delta_out ? delta_out + b * out : nullptr;
            loss += nn::softmaxCrossEntropy(logits, out, labels[b],
                                            grad);
        }
        return loss;
    }

    void
    backward(std::size_t batch)
    {
        float *cur = deltaA.data();
        float *prev = deltaB.data();
        for (std::size_t l = layers.size(); l-- > 0;) {
            Layer &st = layers[l];
            auto &layer = net.layers()[l];
            VariationalGradients &g = grads[l];
            const float *x = inputOf(l);
            const std::size_t w = st.out * st.in;
            const float *rhoW = layer.rhoWeight().data().data();
            const float *rhoB = layer.rhoBias().data();

            if (cfg.estimator == BnnEstimator::LocalReparam) {
                for (std::size_t t = 0; t < batch * st.out; ++t)
                    st.dvar[t] =
                        cur[t] * st.eps[t] / (2.0f * st.sd[t]);

                // dMu / dMuBias straight off dy.
                ak::GemmF32Args ga;
                ga.a = cur;
                ga.lda = st.out;
                ga.b = x;
                ga.ldb = st.in;
                ga.c = g.muWeight.data().data();
                ga.ldc = st.in;
                ga.m = batch;
                ga.n = st.out;
                ga.k = st.in;
                ga.colSums = g.muBias.data();
                shardRows(pool, st.out,
                          [&](std::size_t lo, std::size_t hi) {
                              ak::GemmF32Args part = ga;
                              part.a = ga.a + lo;
                              part.c = ga.c + lo * ga.ldc;
                              part.colSums = ga.colSums + lo;
                              part.n = hi - lo;
                              ops.gemmAtBF32(part);
                          });

                // dVar contracted against x^2, then chained to rho.
                std::fill(st.gw.begin(), st.gw.begin() + w, 0.0f);
                std::fill(st.gbScratch.begin(), st.gbScratch.end(),
                          0.0f);
                ak::GemmF32Args gb = ga;
                gb.a = st.dvar.data();
                gb.b = st.xsq.data();
                gb.c = st.gw.data();
                gb.colSums = st.gbScratch.data();
                shardRows(pool, st.out,
                          [&](std::size_t lo, std::size_t hi) {
                              ak::GemmF32Args part = gb;
                              part.a = gb.a + lo;
                              part.c = gb.c + lo * gb.ldc;
                              part.colSums = gb.colSums + lo;
                              part.n = hi - lo;
                              ops.gemmAtBF32(part);
                          });
                float *grhoW = g.rhoWeight.data().data();
                for (std::size_t i = 0; i < w; ++i)
                    grhoW[i] += st.gw[i] * 2.0f * st.sigmaW[i] *
                        nn::logistic(rhoW[i]);
                for (std::size_t i = 0; i < st.out; ++i)
                    g.rhoBias[i] += st.gbScratch[i] * 2.0f *
                        st.sigmaB[i] * nn::logistic(rhoB[i]);

                if (l > 0) {
                    ak::GemmF32Args da;
                    da.a = cur;
                    da.lda = st.out;
                    da.b = layer.muWeight().data().data();
                    da.ldb = st.in;
                    da.c = st.dxa.data();
                    da.ldc = st.in;
                    da.m = batch;
                    da.n = st.out;
                    da.k = st.in;
                    shardRows(pool, batch,
                              [&](std::size_t lo, std::size_t hi) {
                                  ak::GemmF32Args part = da;
                                  part.a = da.a + lo * da.lda;
                                  part.c = da.c + lo * da.ldc;
                                  part.m = hi - lo;
                                  ops.gemmABF32(part);
                              });
                    ak::GemmF32Args db = da;
                    db.a = st.dvar.data();
                    db.b = st.sigmaSqW.data();
                    db.c = st.dxb.data();
                    shardRows(pool, batch,
                              [&](std::size_t lo, std::size_t hi) {
                                  ak::GemmF32Args part = db;
                                  part.a = db.a + lo * db.lda;
                                  part.c = db.c + lo * db.ldc;
                                  part.m = hi - lo;
                                  ops.gemmABF32(part);
                              });
                    const float *prev_pre = layers[l - 1].pre.data();
                    for (std::size_t t = 0; t < batch * st.in; ++t) {
                        const float d =
                            st.dxa[t] + st.dxb[t] * 2.0f * x[t];
                        prev[t] = prev_pre[t] > 0.0f ? d : 0.0f;
                    }
                }
            } else {
                // Raw dW = dy^T x (+ column sums for the bias grad).
                std::fill(st.gw.begin(), st.gw.begin() + w, 0.0f);
                std::fill(st.gbScratch.begin(), st.gbScratch.end(),
                          0.0f);
                ak::GemmF32Args ga;
                ga.a = cur;
                ga.lda = st.out;
                ga.b = x;
                ga.ldb = st.in;
                ga.c = st.gw.data();
                ga.ldc = st.in;
                ga.m = batch;
                ga.n = st.out;
                ga.k = st.in;
                ga.colSums = st.gbScratch.data();
                shardRows(pool, st.out,
                          [&](std::size_t lo, std::size_t hi) {
                              ak::GemmF32Args part = ga;
                              part.a = ga.a + lo;
                              part.c = ga.c + lo * ga.ldc;
                              part.colSums = ga.colSums + lo;
                              part.n = hi - lo;
                              ops.gemmAtBF32(part);
                          });
                float *gmuW = g.muWeight.data().data();
                float *grhoW = g.rhoWeight.data().data();
                for (std::size_t i = 0; i < w; ++i) {
                    // Straight-through in QAT: the quantizers pass the
                    // gradient to the underlying mu/rho unchanged.
                    gmuW[i] += st.gw[i];
                    grhoW[i] += st.gw[i] * st.epsW[i] *
                        nn::logistic(rhoW[i]);
                }
                for (std::size_t i = 0; i < st.out; ++i) {
                    g.muBias[i] += st.gbScratch[i];
                    if (!cfg.quantizeAware)
                        g.rhoBias[i] += st.gbScratch[i] * st.epsB[i] *
                            nn::logistic(rhoB[i]);
                    // QAT: the datapath bias is deterministic (mu
                    // only), so rhoBias sees no data gradient.
                }

                if (l > 0) {
                    ak::GemmF32Args da;
                    da.a = cur;
                    da.lda = st.out;
                    da.b = st.wEff.data();
                    da.ldb = st.in;
                    da.c = st.dxa.data();
                    da.ldc = st.in;
                    da.m = batch;
                    da.n = st.out;
                    da.k = st.in;
                    shardRows(pool, batch,
                              [&](std::size_t lo, std::size_t hi) {
                                  ak::GemmF32Args part = da;
                                  part.a = da.a + lo * da.lda;
                                  part.c = da.c + lo * da.ldc;
                                  part.m = hi - lo;
                                  ops.gemmABF32(part);
                              });
                    const float *prev_pre = layers[l - 1].pre.data();
                    for (std::size_t t = 0; t < batch * st.in; ++t)
                        prev[t] =
                            prev_pre[t] > 0.0f ? st.dxa[t] : 0.0f;
                }
            }
            std::swap(cur, prev);
        }
    }
};

BnnBatchTrainer::BnnBatchTrainer(BayesianMlp &net,
                                 const BnnBatchedTrainConfig &config)
    : impl_(std::make_unique<Impl>(net, config))
{
}

BnnBatchTrainer::~BnnBatchTrainer() = default;

void
BnnBatchTrainer::refreshParams()
{
    impl_->refreshParams();
}

void
BnnBatchTrainer::zeroGrads()
{
    for (auto &g : impl_->grads)
        g.zero();
}

double
BnnBatchTrainer::forwardBackward(const nn::DataView &data,
                                 const std::size_t *indices,
                                 std::size_t batch, Rng *host_rng)
{
    VIBNN_ASSERT(batch > 0, "empty minibatch");
    const double loss = impl_->forward(data, indices, batch, host_rng,
                                       /*redraw=*/true,
                                       /*want_delta=*/true);
    impl_->backward(batch);
    return loss;
}

double
BnnBatchTrainer::forwardLoss(const nn::DataView &data,
                             const std::size_t *indices,
                             std::size_t batch)
{
    VIBNN_ASSERT(batch > 0, "empty minibatch");
    return impl_->forward(data, indices, batch, nullptr,
                          /*redraw=*/false, /*want_delta=*/false);
}

double
BnnBatchTrainer::applyKlAndStep(std::size_t batch,
                                std::size_t dataset_size)
{
    Impl &im = *impl_;
    const float kl_scale = im.cfg.klWeight * static_cast<float>(batch) /
        static_cast<float>(dataset_size);
    double kl = 0.0;
    const auto &ls = im.net.layers();
    for (std::size_t l = 0; l < ls.size(); ++l)
        kl += ls[l].klValueAndGrad(im.cfg.priorSigma, kl_scale,
                                   im.grads[l]);

    const float inv = 1.0f / static_cast<float>(batch);
    im.opt.beginStep();
    std::size_t offset = 0;
    for (const auto &seg : im.segments) {
        im.opt.stepRange(seg.params, seg.grads, seg.count, offset, inv);
        offset += seg.count;
    }
    im.refreshParams();
    return kl;
}

const std::vector<VariationalGradients> &
BnnBatchTrainer::gradients() const
{
    return impl_->grads;
}

nn::AdamOptimizer &
BnnBatchTrainer::optimizer()
{
    return impl_->opt;
}

nn::TrainHistory
trainBnnBatched(BayesianMlp &net, const nn::DataView &train,
                const BnnBatchedTrainConfig &config)
{
    VIBNN_ASSERT(train.count > 0, "empty training set");
    VIBNN_ASSERT(train.dim == net.inputDim(), "feature dim mismatch");

    BnnBatchedTrainConfig cfg = config;
    if (cfg.quantizeAware)
        cfg.estimator = BnnEstimator::DirectWeightSample;

    nn::TrainHistory history;
    BnnBatchTrainer engine(net, cfg);
    Rng rng(cfg.seed);
    std::vector<std::size_t> order(train.count);
    std::iota(order.begin(), order.end(), 0);

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t seen = 0;

        for (std::size_t start = 0; start < train.count;
             start += cfg.batchSize) {
            const std::size_t end =
                std::min(start + cfg.batchSize, train.count);
            const std::size_t batch = end - start;
            engine.zeroGrads();
            epoch_loss += engine.forwardBackward(
                train, order.data() + start, batch,
                cfg.hostRngEps ? &rng : nullptr);
            const double kl = engine.applyKlAndStep(batch, train.count);
            epoch_loss += kl * batch / train.count;
            seen += batch;
        }

        const double mean_loss = epoch_loss / static_cast<double>(seen);
        history.trainLoss.push_back(mean_loss);
        double acc = -1.0;
        if (cfg.evalSet) {
            acc = evaluateBnnAccuracy(net, *cfg.evalSet,
                                      cfg.evalSamples,
                                      cfg.seed + 977 + epoch, cfg.pool);
        }
        history.evalAccuracy.push_back(acc);
        if (cfg.onEpoch)
            cfg.onEpoch(epoch, mean_loss, acc);
    }
    return history;
}

nn::TrainHistory
qatFineTune(BayesianMlp &net, const nn::DataView &train,
            BnnBatchedTrainConfig config)
{
    config.quantizeAware = true;
    config.estimator = BnnEstimator::DirectWeightSample;
    return trainBnnBatched(net, train, config);
}

} // namespace vibnn::bnn
