#include "bnn/bnn_trainer.hh"

#include <numeric>

#include "common/logging.hh"
#include "nn/optimizer.hh"

namespace vibnn::bnn
{

double
evaluateBnnAccuracy(const BayesianMlp &net, const nn::DataView &data,
                    std::size_t mc_samples, std::uint64_t seed)
{
    if (data.count == 0)
        return 0.0;
    Rng rng(seed);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.count; ++i) {
        if (net.mcClassify(data.sample(i), mc_samples, rng) ==
            static_cast<std::size_t>(data.labels[i])) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.count);
}

nn::TrainHistory
trainBnn(BayesianMlp &net, const nn::DataView &train,
         const BnnTrainConfig &config)
{
    VIBNN_ASSERT(train.count > 0, "empty training set");
    VIBNN_ASSERT(train.dim == net.inputDim(), "feature dim mismatch");

    nn::TrainHistory history;
    Rng rng(config.seed);
    nn::AdamOptimizer optimizer(config.learningRate);

    BnnWorkspace ws = net.makeWorkspace();
    std::vector<float> params, grads;
    std::vector<std::size_t> order(train.count);
    std::iota(order.begin(), order.end(), 0);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t seen = 0;

        for (std::size_t start = 0; start < train.count;
             start += config.batchSize) {
            const std::size_t end =
                std::min(start + config.batchSize, train.count);
            const std::size_t batch = end - start;
            net.zeroGrads(ws);
            for (std::size_t k = start; k < end; ++k) {
                const std::size_t i = order[k];
                epoch_loss += net.trainSample(
                    train.sample(i),
                    static_cast<std::size_t>(train.labels[i]), ws, rng,
                    config.useLocalReparameterization);
            }
            seen += batch;

            // KL weighting: gatherGrads divides everything by the batch
            // sample count, so pre-scale by batch/N to land at KL/N per
            // sample overall (uniform minibatch weighting).
            const float kl_scale = config.klWeight *
                static_cast<float>(batch) /
                static_cast<float>(train.count);
            const double kl =
                net.accumulateKl(ws, config.priorSigma, kl_scale);
            epoch_loss += kl * batch / train.count;

            net.gatherGrads(ws, grads);
            net.gatherParams(params);
            optimizer.step(params.data(), grads.data(), params.size());
            net.scatterParams(params);
        }

        const double mean_loss = epoch_loss / static_cast<double>(seen);
        history.trainLoss.push_back(mean_loss);
        double acc = -1.0;
        if (config.evalSet) {
            acc = evaluateBnnAccuracy(net, *config.evalSet,
                                      config.evalSamples,
                                      config.seed + 977 + epoch);
        }
        history.evalAccuracy.push_back(acc);
        if (config.onEpoch)
            config.onEpoch(epoch, mean_loss, acc);
    }
    return history;
}

} // namespace vibnn::bnn
