/**
 * @file
 * Bayesian multi-layer perceptron: variational dense layers with ReLU
 * hidden activations and Monte-Carlo ensemble inference (the paper's
 * equations (3)-(6)). This is the software model whose trained
 * (mu, sigma) parameters get lowered onto the accelerator.
 */

#ifndef VIBNN_BNN_BAYESIAN_MLP_HH
#define VIBNN_BNN_BAYESIAN_MLP_HH

#include <cstddef>
#include <vector>

#include "bnn/variational_dense.hh"
#include "common/rng.hh"
#include "grng/generator.hh"

namespace vibnn::bnn
{

/** One contiguous (parameter, gradient) span of the flat layout — the
 *  seam that lets an optimizer step layer storage in place instead of
 *  round-tripping through gather/scatter copies. */
struct ParamSegment
{
    float *params = nullptr;
    float *grads = nullptr;
    std::size_t count = 0;
};

/** Per-thread scratch for a full-network pass. */
struct BnnWorkspace
{
    std::vector<std::vector<float>> activations;
    std::vector<std::vector<float>> preActivations;
    std::vector<VariationalScratch> layerScratch;
    std::vector<VariationalGradients> gradients;
    std::vector<float> deltaA, deltaB;
    double lossSum = 0.0;
    std::size_t sampleCount = 0;
};

/** Feed-forward Bayesian neural network. */
class BayesianMlp
{
  public:
    /**
     * @param layer_sizes Sizes including input and output.
     * @param rng Initialization source.
     * @param rho_init Initial rho for all layers.
     */
    BayesianMlp(const std::vector<std::size_t> &layer_sizes, Rng &rng,
                float rho_init = -5.0f);

    std::size_t inputDim() const { return layerSizes_.front(); }
    std::size_t outputDim() const { return layerSizes_.back(); }
    const std::vector<std::size_t> &layerSizes() const
    {
        return layerSizes_;
    }

    BnnWorkspace makeWorkspace() const;
    void zeroGrads(BnnWorkspace &ws) const;

    /**
     * One training sample: sampled forward (direct or LRT per the flag),
     * softmax cross-entropy, backward; gradients accumulate into ws.
     */
    double trainSample(const float *x, std::size_t target,
                       BnnWorkspace &ws, Rng &rng, bool use_lrt);

    /** Add KL gradients (scaled) into ws; returns the KL value. */
    double accumulateKl(BnnWorkspace &ws, float prior_sigma,
                        float scale) const;

    /** Total KL divergence to the prior. */
    double klDivergence(float prior_sigma) const;

    /**
     * Monte-Carlo predictive distribution (equation (6)): average the
     * softmax outputs of `num_samples` sampled networks, with eps drawn
     * from `eps`. probs must hold outputDim() floats.
     */
    template <typename EpsFn>
    void
    mcPredict(const float *x, std::size_t num_samples, float *probs,
              EpsFn &&eps) const
    {
        thread_local BnnWorkspace ws;
        ensureWorkspace(ws);
        std::vector<float> acc(outputDim(), 0.0f);
        std::vector<float> logits(outputDim());
        for (std::size_t s = 0; s < num_samples; ++s) {
            sampledForward(x, logits.data(), ws, eps);
            softmaxInPlace(logits.data(), logits.size());
            for (std::size_t i = 0; i < acc.size(); ++i)
                acc[i] += logits[i];
        }
        const float inv = 1.0f / static_cast<float>(num_samples);
        for (std::size_t i = 0; i < acc.size(); ++i)
            probs[i] = acc[i] * inv;
    }

    /** argmax of mcPredict. */
    std::size_t mcClassify(const float *x, std::size_t num_samples,
                           Rng &rng) const;

    /** argmax using a GaussianGenerator as the eps source (the hardware
     *  simulation path uses the accel module instead; this is the
     *  software-with-hardware-GRNG configuration). */
    std::size_t mcClassify(const float *x, std::size_t num_samples,
                           grng::GaussianGenerator &gen) const;

    /** Predictive entropy of the MC ensemble (uncertainty measure). */
    double predictiveEntropy(const float *x, std::size_t num_samples,
                             Rng &rng) const;

    /** Mean-field deterministic forward (mu only). */
    void meanForward(const float *x, float *logits) const;

    /** One sampled forward pass with cached nothing (inference only). */
    template <typename EpsFn>
    void
    sampledForward(const float *x, float *logits, BnnWorkspace &ws,
                   EpsFn &&eps) const
    {
        std::copy(x, x + inputDim(), ws.activations[0].begin());
        for (std::size_t i = 0; i < layers_.size(); ++i) {
            layers_[i].sampleForward(ws.activations[i].data(),
                                     ws.activations[i + 1].data(),
                                     ws.layerScratch[i], eps);
            if (i + 1 < layers_.size()) {
                auto &a = ws.activations[i + 1];
                for (auto &v : a)
                    v = v > 0.0f ? v : 0.0f;
            }
        }
        std::copy(ws.activations.back().begin(),
                  ws.activations.back().end(), logits);
    }

    std::vector<VariationalDense> &layers() { return layers_; }
    const std::vector<VariationalDense> &layers() const { return layers_; }

    /** Flat parameter plumbing for the optimizer (mu then rho blocks,
     *  weights then biases, layer by layer). */
    std::size_t paramCount() const;
    void gatherParams(std::vector<float> &flat) const;
    void scatterParams(const std::vector<float> &flat);
    void gatherGrads(const BnnWorkspace &ws, std::vector<float> &flat)
        const;

    /** The same flat layout as gatherParams/gatherGrads, but as views
     *  into the layers' own storage paired with `grads` — the segment
     *  offsets are stable as long as the architecture is. */
    std::vector<ParamSegment>
    paramSegments(std::vector<VariationalGradients> &grads);

  private:
    void ensureWorkspace(BnnWorkspace &ws) const;
    static void softmaxInPlace(float *values, std::size_t count);

    std::vector<std::size_t> layerSizes_;
    std::vector<VariationalDense> layers_;
};

} // namespace vibnn::bnn

#endif // VIBNN_BNN_BAYESIAN_MLP_HH
