/**
 * @file
 * Bayesian RNN kernels and trainer (see bayesian_rnn.hh).
 */

#include "bnn/bayesian_rnn.hh"

#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "nn/activations.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"

namespace vibnn::bnn
{

BayesianRnn::BayesianRnn(const nn::RnnConfig &config, Rng &rng,
                         float rho_init)
    : config_(config),
      wx_(config.hiddenDim, config.inputDim, rng,
          std::sqrt(6.0f / static_cast<float>(config.inputDim)),
          rho_init),
      wh_(config.hiddenDim, config.hiddenDim, rng,
          0.5f / std::sqrt(static_cast<float>(config.hiddenDim)),
          rho_init),
      wy_(config.numClasses, config.hiddenDim, rng,
          std::sqrt(6.0f / static_cast<float>(config.hiddenDim)),
          rho_init),
      bh_(config.hiddenDim, 1, rng, 0.0f, rho_init),
      by_(config.numClasses, 1, rng, 0.0f, rho_init)
{
    VIBNN_ASSERT(config.inputDim > 0 && config.hiddenDim > 0 &&
                     config.numClasses > 0 && config.seqLen > 0,
                 "degenerate RNN geometry");
}

BrnnWorkspace
BayesianRnn::makeWorkspace() const
{
    BrnnWorkspace ws;
    ws.hidden.assign(config_.seqLen,
                     std::vector<float>(config_.hiddenDim, 0.0f));
    ws.deltaH.resize(config_.hiddenDim);
    ws.deltaPre.resize(config_.hiddenDim);

    auto shape = [](nn::Matrix &m, const VariationalMatrix &block) {
        m = nn::Matrix(block.rows(), block.cols());
    };
    shape(ws.dWx, wx_);
    shape(ws.dWh, wh_);
    shape(ws.dWy, wy_);
    shape(ws.dBh, bh_);
    shape(ws.dBy, by_);
    shape(ws.gMuWx, wx_);
    shape(ws.gRhoWx, wx_);
    shape(ws.gMuWh, wh_);
    shape(ws.gRhoWh, wh_);
    shape(ws.gMuWy, wy_);
    shape(ws.gRhoWy, wy_);
    shape(ws.gMuBh, bh_);
    shape(ws.gRhoBh, bh_);
    shape(ws.gMuBy, by_);
    shape(ws.gRhoBy, by_);
    return ws;
}

void
BayesianRnn::zeroGrads(BrnnWorkspace &ws) const
{
    for (auto *m : {&ws.gMuWx, &ws.gRhoWx, &ws.gMuWh, &ws.gRhoWh,
                    &ws.gMuWy, &ws.gRhoWy, &ws.gMuBh, &ws.gRhoBh,
                    &ws.gMuBy, &ws.gRhoBy})
        m->fill(0.0f);
    ws.lossSum = 0.0;
    ws.sampleCount = 0;
}

void
BayesianRnn::runForward(const float *xs, float *logits,
                        BrnnWorkspace &ws) const
{
    const std::size_t h_dim = config_.hiddenDim;
    for (std::size_t t = 0; t < config_.seqLen; ++t) {
        const float *x = xs + t * config_.inputDim;
        const std::vector<float> *prev =
            t > 0 ? &ws.hidden[t - 1] : nullptr;
        auto &h = ws.hidden[t];
        for (std::size_t i = 0; i < h_dim; ++i) {
            float acc = ws.bh.at(i, 0);
            const float *wx_row = ws.wx.row(i);
            for (std::size_t j = 0; j < config_.inputDim; ++j)
                acc += wx_row[j] * x[j];
            if (prev) {
                const float *wh_row = ws.wh.row(i);
                for (std::size_t j = 0; j < h_dim; ++j)
                    acc += wh_row[j] * (*prev)[j];
            }
            h[i] = std::tanh(acc);
        }
    }
    const auto &h_last = ws.hidden.back();
    for (std::size_t c = 0; c < config_.numClasses; ++c) {
        float acc = ws.by.at(c, 0);
        const float *wy_row = ws.wy.row(c);
        for (std::size_t j = 0; j < h_dim; ++j)
            acc += wy_row[j] * h_last[j];
        logits[c] = acc;
    }
}

void
BayesianRnn::meanForward(const float *xs, float *logits,
                         BrnnWorkspace &ws) const
{
    wx_.meanInto(ws.wx);
    wh_.meanInto(ws.wh);
    wy_.meanInto(ws.wy);
    bh_.meanInto(ws.bh);
    by_.meanInto(ws.by);
    runForward(xs, logits, ws);
}

double
BayesianRnn::trainSequence(const float *xs, std::size_t target,
                           BrnnWorkspace &ws, Rng &rng)
{
    std::vector<float> logits(config_.numClasses);
    auto eps = [&rng]() { return rng.gaussian(); };
    sampledForward(xs, logits.data(), ws, eps);

    std::vector<float> dy(config_.numClasses);
    const double loss = nn::softmaxCrossEntropy(
        logits.data(), config_.numClasses, target, dy.data());
    ws.lossSum += loss;
    ws.sampleCount += 1;

    // BPTT through the *sampled* weights, into dW buffers.
    for (auto *m : {&ws.dWx, &ws.dWh, &ws.dWy, &ws.dBh, &ws.dBy})
        m->fill(0.0f);

    const std::size_t h_dim = config_.hiddenDim;
    const auto &h_last = ws.hidden.back();
    for (std::size_t c = 0; c < config_.numClasses; ++c) {
        ws.dBy.at(c, 0) += dy[c];
        float *gy = ws.dWy.row(c);
        for (std::size_t j = 0; j < h_dim; ++j)
            gy[j] += dy[c] * h_last[j];
    }
    nn::matTVec(ws.wy, dy.data(), ws.deltaH.data());

    for (std::size_t t = config_.seqLen; t-- > 0;) {
        const auto &h = ws.hidden[t];
        const float *x = xs + t * config_.inputDim;
        for (std::size_t i = 0; i < h_dim; ++i)
            ws.deltaPre[i] = ws.deltaH[i] * (1.0f - h[i] * h[i]);

        for (std::size_t i = 0; i < h_dim; ++i) {
            const float g = ws.deltaPre[i];
            if (g == 0.0f)
                continue;
            ws.dBh.at(i, 0) += g;
            float *gx = ws.dWx.row(i);
            for (std::size_t j = 0; j < config_.inputDim; ++j)
                gx[j] += g * x[j];
            if (t > 0) {
                const auto &prev = ws.hidden[t - 1];
                float *gh = ws.dWh.row(i);
                for (std::size_t j = 0; j < h_dim; ++j)
                    gh[j] += g * prev[j];
            }
        }
        if (t > 0)
            nn::matTVec(ws.wh, ws.deltaPre.data(), ws.deltaH.data());
    }

    // Chain rule into parameter space.
    wx_.accumulateSampleGrad(ws.dWx, ws.epsWx, ws.gMuWx, ws.gRhoWx);
    wh_.accumulateSampleGrad(ws.dWh, ws.epsWh, ws.gMuWh, ws.gRhoWh);
    wy_.accumulateSampleGrad(ws.dWy, ws.epsWy, ws.gMuWy, ws.gRhoWy);
    bh_.accumulateSampleGrad(ws.dBh, ws.epsBh, ws.gMuBh, ws.gRhoBh);
    by_.accumulateSampleGrad(ws.dBy, ws.epsBy, ws.gMuBy, ws.gRhoBy);
    return loss;
}

std::size_t
BayesianRnn::mcClassify(const float *xs, std::size_t num_samples,
                        BrnnWorkspace &ws, Rng &rng) const
{
    std::vector<float> probs(outputDim());
    auto eps = [&rng]() { return rng.gaussian(); };
    mcPredict(xs, num_samples, probs.data(), ws, eps);
    return nn::argmax(probs.data(), probs.size());
}

double
BayesianRnn::klDivergence(float prior_sigma) const
{
    return wx_.klDivergence(prior_sigma) + wh_.klDivergence(prior_sigma) +
        wy_.klDivergence(prior_sigma) + bh_.klDivergence(prior_sigma) +
        by_.klDivergence(prior_sigma);
}

double
BayesianRnn::accumulateKl(BrnnWorkspace &ws, float prior_sigma,
                          float scale) const
{
    wx_.klBackward(prior_sigma, scale, ws.gMuWx, ws.gRhoWx);
    wh_.klBackward(prior_sigma, scale, ws.gMuWh, ws.gRhoWh);
    wy_.klBackward(prior_sigma, scale, ws.gMuWy, ws.gRhoWy);
    bh_.klBackward(prior_sigma, scale, ws.gMuBh, ws.gRhoBh);
    by_.klBackward(prior_sigma, scale, ws.gMuBy, ws.gRhoBy);
    return klDivergence(prior_sigma);
}

std::size_t
BayesianRnn::paramCount() const
{
    return 2 * (wx_.count() + wh_.count() + wy_.count() + bh_.count() +
                by_.count());
}

void
BayesianRnn::gatherParams(std::vector<float> &flat) const
{
    flat.clear();
    flat.reserve(paramCount());
    for (const auto *block : {&wx_, &wh_, &wy_, &bh_, &by_}) {
        flat.insert(flat.end(), block->mu().data().begin(),
                    block->mu().data().end());
        flat.insert(flat.end(), block->rho().data().begin(),
                    block->rho().data().end());
    }
}

void
BayesianRnn::scatterParams(const std::vector<float> &flat)
{
    VIBNN_ASSERT(flat.size() == paramCount(), "parameter size mismatch");
    std::size_t at = 0;
    auto take = [&](std::vector<float> &dst) {
        std::copy(flat.begin() + at,
                  flat.begin() + at + static_cast<std::ptrdiff_t>(
                                          dst.size()),
                  dst.begin());
        at += dst.size();
    };
    for (auto *block : {&wx_, &wh_, &wy_, &bh_, &by_}) {
        take(block->mu().data());
        take(block->rho().data());
    }
}

void
BayesianRnn::gatherGrads(const BrnnWorkspace &ws,
                         std::vector<float> &flat) const
{
    const float inv =
        ws.sampleCount > 0 ? 1.0f / static_cast<float>(ws.sampleCount)
                           : 0.0f;
    flat.clear();
    flat.reserve(paramCount());
    auto append = [&](const nn::Matrix &m) {
        for (float v : m.data())
            flat.push_back(v * inv);
    };
    append(ws.gMuWx);
    append(ws.gRhoWx);
    append(ws.gMuWh);
    append(ws.gRhoWh);
    append(ws.gMuWy);
    append(ws.gRhoWy);
    append(ws.gMuBh);
    append(ws.gRhoBh);
    append(ws.gMuBy);
    append(ws.gRhoBy);
}

void
BayesianRnn::softmaxInPlace(float *values, std::size_t count)
{
    nn::softmax(values, count);
}

double
evaluateBrnnAccuracy(const BayesianRnn &net, const nn::DataView &data,
                     std::size_t mc_samples, std::uint64_t seed)
{
    if (data.count == 0)
        return 0.0;
    Rng rng(seed);
    BrnnWorkspace ws = net.makeWorkspace();
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.count; ++i) {
        if (net.mcClassify(data.sample(i), mc_samples, ws, rng) ==
            static_cast<std::size_t>(data.labels[i])) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.count);
}

nn::TrainHistory
trainBrnn(BayesianRnn &net, const nn::DataView &train,
          const BnnTrainConfig &config)
{
    VIBNN_ASSERT(train.count > 0, "empty training set");
    VIBNN_ASSERT(train.dim == net.inputDim(), "sequence dim mismatch");

    nn::TrainHistory history;
    Rng rng(config.seed);
    nn::AdamOptimizer optimizer(config.learningRate);

    BrnnWorkspace ws = net.makeWorkspace();
    std::vector<float> params, grads;
    std::vector<std::size_t> order(train.count);
    std::iota(order.begin(), order.end(), 0);
    constexpr double clip_norm = 5.0;

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t seen = 0;

        for (std::size_t start = 0; start < train.count;
             start += config.batchSize) {
            const std::size_t end =
                std::min(start + config.batchSize, train.count);
            const std::size_t batch = end - start;
            net.zeroGrads(ws);
            for (std::size_t k = start; k < end; ++k) {
                const std::size_t i = order[k];
                epoch_loss += net.trainSequence(
                    train.sample(i),
                    static_cast<std::size_t>(train.labels[i]), ws, rng);
            }
            seen += batch;

            const float kl_scale = config.klWeight *
                static_cast<float>(batch) /
                static_cast<float>(train.count);
            const double kl =
                net.accumulateKl(ws, config.priorSigma, kl_scale);
            epoch_loss += kl * batch / train.count;

            net.gatherGrads(ws, grads);
            // Clip the averaged gradient norm (recurrent nets spike).
            double norm = 0.0;
            for (float g : grads)
                norm += static_cast<double>(g) * g;
            norm = std::sqrt(norm);
            if (norm > clip_norm) {
                const float s = static_cast<float>(clip_norm / norm);
                for (auto &g : grads)
                    g *= s;
            }
            net.gatherParams(params);
            optimizer.step(params.data(), grads.data(), params.size());
            net.scatterParams(params);
        }

        const double mean_loss = epoch_loss / static_cast<double>(seen);
        history.trainLoss.push_back(mean_loss);
        double acc = -1.0;
        if (config.evalSet) {
            acc = evaluateBrnnAccuracy(net, *config.evalSet,
                                       config.evalSamples,
                                       config.seed + 977 + epoch);
        }
        history.evalAccuracy.push_back(acc);
        if (config.onEpoch)
            config.onEpoch(epoch, mean_loss, acc);
    }
    return history;
}

} // namespace vibnn::bnn
