/**
 * @file
 * Bayesian convolutional network: variational conv(+pool) blocks with a
 * variational dense head and Monte-Carlo ensemble inference — the CNN
 * instantiation of the paper's BNN model (Section 1 notes VIBNN's
 * principles apply to CNNs; every sampled parameter here is exactly one
 * GRN drawn per Monte-Carlo pass, i.e. the same weight-generator traffic
 * pattern the accelerator serves for MLPs).
 */

#ifndef VIBNN_BNN_BAYESIAN_CNN_HH
#define VIBNN_BNN_BAYESIAN_CNN_HH

#include <cstddef>
#include <vector>

#include "bnn/bnn_trainer.hh"
#include "bnn/variational_conv.hh"
#include "bnn/variational_dense.hh"
#include "common/rng.hh"
#include "nn/cnn.hh"

namespace vibnn::bnn
{

/** Per-sample workspace for a full Bayesian-CNN pass. */
struct BcnnWorkspace
{
    /** Buffers between stages; buffers[0] is the input copy. */
    std::vector<std::vector<float>> buffers;
    /** Pre-activation copies for ReLU backward (sized per ReLU stage). */
    std::vector<std::vector<float>> preActs;
    std::vector<VariationalConvScratch> convScratch;
    std::vector<nn::PoolScratch> poolScratch;
    std::vector<VariationalScratch> denseScratch;
    std::vector<VariationalConvGradients> convGrads;
    std::vector<VariationalGradients> denseGrads;
    std::vector<float> deltaA, deltaB;
    double lossSum = 0.0;
    std::size_t sampleCount = 0;
};

/** Feed-forward Bayesian convolutional classifier. */
class BayesianConvNet
{
  public:
    /**
     * @param config Topology (shared with the point-estimate ConvNet).
     * @param rng Initialization source.
     * @param rho_init Initial rho for all layers.
     */
    BayesianConvNet(const nn::ConvNetConfig &config, Rng &rng,
                    float rho_init = -5.0f);

    const nn::ConvNetConfig &config() const { return config_; }
    std::size_t inputDim() const;
    std::size_t outputDim() const { return config_.numClasses; }

    BcnnWorkspace makeWorkspace() const;
    void zeroGrads(BcnnWorkspace &ws) const;

    /**
     * One training sample: sampled forward (direct or LRT), softmax
     * cross-entropy, backward; gradients accumulate into ws.
     */
    double trainSample(const float *x, std::size_t target,
                       BcnnWorkspace &ws, Rng &rng, bool use_lrt);

    /** Add KL gradients (scaled) into ws; returns the KL value. */
    double accumulateKl(BcnnWorkspace &ws, float prior_sigma,
                        float scale) const;

    /** Total KL divergence to the prior. */
    double klDivergence(float prior_sigma) const;

    /**
     * One sampled forward pass; eps is any callable returning doubles
     * targeting N(0,1) — an Rng lambda or a hardware GRNG.
     */
    template <typename EpsFn>
    void
    sampledForward(const float *x, float *logits, BcnnWorkspace &ws,
                   EpsFn &&eps) const
    {
        forwardImpl(x, logits, ws, ForwardMode::Direct, nullptr, &eps);
    }

    /** Mean-field deterministic forward (mu only). */
    void meanForward(const float *x, float *logits,
                     BcnnWorkspace &ws) const;

    /**
     * Monte-Carlo predictive distribution (paper equation (6)):
     * average softmax outputs of num_samples sampled networks.
     */
    template <typename EpsFn>
    void
    mcPredict(const float *x, std::size_t num_samples, float *probs,
              BcnnWorkspace &ws, EpsFn &&eps) const
    {
        std::vector<float> acc(outputDim(), 0.0f);
        std::vector<float> logits(outputDim());
        for (std::size_t s = 0; s < num_samples; ++s) {
            sampledForward(x, logits.data(), ws, eps);
            softmaxInPlace(logits.data(), logits.size());
            for (std::size_t i = 0; i < acc.size(); ++i)
                acc[i] += logits[i];
        }
        const float inv = 1.0f / static_cast<float>(num_samples);
        for (std::size_t i = 0; i < acc.size(); ++i)
            probs[i] = acc[i] * inv;
    }

    /** argmax of mcPredict using rng.gaussian() as the eps source. */
    std::size_t mcClassify(const float *x, std::size_t num_samples,
                           BcnnWorkspace &ws, Rng &rng) const;

    /** Predictive entropy of the MC ensemble (uncertainty measure). */
    double predictiveEntropy(const float *x, std::size_t num_samples,
                             BcnnWorkspace &ws, Rng &rng) const;

    /** Flat parameter plumbing (convs then dense; per layer mu-weight,
     *  mu-bias, rho-weight, rho-bias). */
    std::size_t paramCount() const;
    void gatherParams(std::vector<float> &flat) const;
    void scatterParams(const std::vector<float> &flat);
    void gatherGrads(const BcnnWorkspace &ws, std::vector<float> &flat)
        const;

    const std::vector<VariationalConv2d> &convLayers() const
    {
        return convs_;
    }
    const std::vector<VariationalDense> &denseLayers() const
    {
        return dense_;
    }

  private:
    enum class Stage { Conv, Pool, Dense };
    enum class ForwardMode { Mean, Direct, Lrt };

    /** Shared forward walker. Exactly one of rng / eps is used
     *  depending on the mode. */
    template <typename EpsFn>
    void
    forwardImpl(const float *x, float *logits, BcnnWorkspace &ws,
                ForwardMode mode, Rng *rng, EpsFn *eps) const
    {
        std::copy(x, x + inputDim(), ws.buffers[0].begin());
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            const float *in = ws.buffers[s].data();
            float *out = ws.buffers[s + 1].data();
            runStage(s, in, out, ws, mode, rng, eps);
            if (stageRelu_[s]) {
                std::copy(out, out + stageOutSize_[s],
                          ws.preActs[s].begin());
                for (std::size_t i = 0; i < stageOutSize_[s]; ++i)
                    out[i] = out[i] > 0.0f ? out[i] : 0.0f;
            }
        }
        std::copy(ws.buffers.back().begin(), ws.buffers.back().end(),
                  logits);
    }

    template <typename EpsFn>
    void
    runStage(std::size_t s, const float *in, float *out,
             BcnnWorkspace &ws, ForwardMode mode, Rng *rng, EpsFn *eps)
        const
    {
        const std::size_t idx = stageIndex_[s];
        switch (stages_[s]) {
          case Stage::Conv:
            if (mode == ForwardMode::Mean)
                convs_[idx].meanForward(in, out, ws.convScratch[idx]);
            else if (mode == ForwardMode::Lrt)
                convs_[idx].lrtForward(in, out, ws.convScratch[idx],
                                       *rng);
            else
                convs_[idx].sampleForward(in, out, ws.convScratch[idx],
                                          *eps);
            break;
          case Stage::Pool:
            pools_[idx].forward(in, out, ws.poolScratch[idx]);
            break;
          case Stage::Dense:
            if (mode == ForwardMode::Mean)
                dense_[idx].meanForward(in, out);
            else if (mode == ForwardMode::Lrt)
                dense_[idx].lrtForward(in, out, ws.denseScratch[idx],
                                       *rng);
            else
                dense_[idx].sampleForward(in, out, ws.denseScratch[idx],
                                          *eps);
            break;
        }
    }

    void backwardImpl(float *delta, float *next_delta, BcnnWorkspace &ws,
                      bool use_lrt) const;

    static void softmaxInPlace(float *values, std::size_t count);

    nn::ConvNetConfig config_;
    std::vector<Stage> stages_;
    std::vector<std::size_t> stageIndex_;
    std::vector<std::size_t> stageOutSize_;
    std::vector<bool> stageRelu_;
    std::vector<VariationalConv2d> convs_;
    std::vector<nn::MaxPool2dLayer> pools_;
    std::vector<VariationalDense> dense_;
};

/** MC-ensemble classification accuracy of a Bayesian CNN. */
double evaluateBcnnAccuracy(const BayesianConvNet &net,
                            const nn::DataView &data,
                            std::size_t mc_samples, std::uint64_t seed);

/** Train a Bayesian CNN with Bayes-by-Backprop (reuses BnnTrainConfig;
 *  the useLocalReparameterization flag selects the estimator). */
nn::TrainHistory trainBcnn(BayesianConvNet &net, const nn::DataView &train,
                           const BnnTrainConfig &config);

} // namespace vibnn::bnn

#endif // VIBNN_BNN_BAYESIAN_CNN_HH
