/**
 * @file
 * Variational dense layer — the Bayesian building block of VIBNN
 * (paper Section 2).
 *
 * Every weight and bias carries a factorized Gaussian posterior
 * q(w; theta) with theta = (mu, rho) and sigma = softplus(rho) =
 * ln(1 + exp(rho)) (paper equation between (1) and (2)). A concrete
 * weight sample is w = mu + sigma * eps with eps ~ N(0, 1) (equation
 * (2)); that sampling step is precisely what the hardware GRNGs feed.
 *
 * Training follows Bayes-by-Backprop (Blundell et al., the paper's
 * reference [9]) with a closed-form KL to a zero-mean Gaussian prior.
 * Two estimators are implemented:
 *
 *  - direct: sample eps per weight, backprop through w (the textbook
 *    estimator; exactly the computation the accelerator performs at
 *    inference time);
 *  - local reparameterization: sample per-activation instead, using
 *    mean = mu x and variance = sigma^2 x^2 — mathematically the same
 *    posterior over pre-activations but O(fan-out) samples instead of
 *    O(weights), which is what makes host-side training tractable on
 *    one core.
 */

#ifndef VIBNN_BNN_VARIATIONAL_DENSE_HH
#define VIBNN_BNN_VARIATIONAL_DENSE_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "nn/tensor.hh"

namespace vibnn::bnn
{

/** Gradient buffers for a variational layer. */
struct VariationalGradients
{
    nn::Matrix muWeight, rhoWeight;
    std::vector<float> muBias, rhoBias;

    void resize(std::size_t out_dim, std::size_t in_dim);
    void zero();
};

/** Scratch for one sample's forward/backward through one layer. */
struct VariationalScratch
{
    /** Direct mode: sampled eps per weight / bias. */
    nn::Matrix epsWeight;
    std::vector<float> epsBias;
    /** LRT mode: per-activation eps and std-dev. */
    std::vector<float> activationEps, activationStd;
    /** Cached squared input (LRT). */
    std::vector<float> inputSquared;
};

/** Dense layer with Gaussian-posterior weights. */
class VariationalDense
{
  public:
    /**
     * @param in_dim Inputs.
     * @param out_dim Outputs.
     * @param rng Initialization source.
     * @param rho_init Initial rho (sigma = softplus(rho_init)).
     */
    VariationalDense(std::size_t in_dim, std::size_t out_dim, Rng &rng,
                     float rho_init = -5.0f);

    std::size_t inDim() const { return muWeight_.cols(); }
    std::size_t outDim() const { return muWeight_.rows(); }

    /** Mean-field forward using mu only (no sampling). */
    void meanForward(const float *x, float *out) const;

    /**
     * Direct-sampling forward: draws eps from `eps_source` (any callable
     * returning doubles targeting N(0,1) — an Rng lambda or a hardware
     * GRNG), materializes w = mu + sigma*eps into scratch, computes out.
     */
    template <typename EpsFn>
    void
    sampleForward(const float *x, float *out, VariationalScratch &scratch,
                  EpsFn &&eps) const
    {
        prepareScratch(scratch);
        const std::size_t rows = outDim(), cols = inDim();
        for (std::size_t r = 0; r < rows; ++r) {
            const float *mu = muWeight_.row(r);
            const float *rho = rhoWeight_.row(r);
            float *er = scratch.epsWeight.row(r);
            float acc;
            {
                const float e = static_cast<float>(eps());
                scratch.epsBias[r] = e;
                acc = muBias_[r] + sigmaOf(rhoBias_[r]) * e;
            }
            for (std::size_t c = 0; c < cols; ++c) {
                const float e = static_cast<float>(eps());
                er[c] = e;
                acc += (mu[c] + sigmaOf(rho[c]) * e) * x[c];
            }
            out[r] = acc;
        }
    }

    /** Backward for the direct estimator (uses scratch.epsWeight). */
    void sampleBackward(const float *x, const float *dy,
                        const VariationalScratch &scratch,
                        VariationalGradients &grads, float *dx) const;

    /** LRT forward: out = (mu x + b_mu) + sqrt(sigma^2 x^2 + sb^2) e. */
    void lrtForward(const float *x, float *out,
                    VariationalScratch &scratch, Rng &rng) const;

    /** Backward for the LRT estimator. */
    void lrtBackward(const float *x, const float *dy,
                     const VariationalScratch &scratch,
                     VariationalGradients &grads, float *dx) const;

    /**
     * KL(q || N(0, prior_sigma^2)) summed over the layer's weights and
     * biases (closed form for Gaussians).
     */
    double klDivergence(float prior_sigma) const;

    /** Accumulate d(KL)/d(params) scaled by `scale` into grads. */
    void klBackward(float prior_sigma, float scale,
                    VariationalGradients &grads) const;

    /** Fused klDivergence + klBackward: one pass over the parameters
     *  (softplus evaluated once per element instead of twice).
     *  Bit-identical to calling the two separately. */
    double klValueAndGrad(float prior_sigma, float scale,
                          VariationalGradients &grads) const;

    /** sigma = softplus(rho). */
    static float sigmaOf(float rho);

    nn::Matrix &muWeight() { return muWeight_; }
    const nn::Matrix &muWeight() const { return muWeight_; }
    nn::Matrix &rhoWeight() { return rhoWeight_; }
    const nn::Matrix &rhoWeight() const { return rhoWeight_; }
    std::vector<float> &muBias() { return muBias_; }
    const std::vector<float> &muBias() const { return muBias_; }
    std::vector<float> &rhoBias() { return rhoBias_; }
    const std::vector<float> &rhoBias() const { return rhoBias_; }

    /** Size scratch buffers for this layer. */
    void prepareScratch(VariationalScratch &scratch) const;

  private:
    nn::Matrix muWeight_, rhoWeight_;
    std::vector<float> muBias_, rhoBias_;
};

} // namespace vibnn::bnn

#endif // VIBNN_BNN_VARIATIONAL_DENSE_HH
