/**
 * @file
 * Variational convolution kernels (see variational_conv.hh).
 */

#include "bnn/variational_conv.hh"

#include <cassert>
#include <cmath>

#include "nn/activations.hh"

namespace vibnn::bnn
{

void
VariationalConvGradients::resize(const nn::ConvSpec &spec)
{
    muWeight = nn::Matrix(spec.outChannels, spec.patchSize());
    rhoWeight = nn::Matrix(spec.outChannels, spec.patchSize());
    muBias.assign(spec.outChannels, 0.0f);
    rhoBias.assign(spec.outChannels, 0.0f);
}

void
VariationalConvGradients::zero()
{
    muWeight.fill(0.0f);
    rhoWeight.fill(0.0f);
    std::fill(muBias.begin(), muBias.end(), 0.0f);
    std::fill(rhoBias.begin(), rhoBias.end(), 0.0f);
}

VariationalConv2d::VariationalConv2d(const nn::ConvSpec &spec, Rng &rng,
                                     float rho_init)
    : spec_(spec), muWeight_(spec.outChannels, spec.patchSize()),
      rhoWeight_(spec.outChannels, spec.patchSize()),
      muBias_(spec.outChannels, 0.0f), rhoBias_(spec.outChannels, rho_init)
{
    assert(spec_.valid());
    const float bound =
        std::sqrt(6.0f / static_cast<float>(spec_.patchSize()));
    for (auto &mu : muWeight_.data())
        mu = static_cast<float>(rng.uniform(-bound, bound));
    for (auto &rho : rhoWeight_.data())
        rho = rho_init + static_cast<float>(rng.uniform(-0.2, 0.2));
}

float
VariationalConv2d::sigmaOf(float rho)
{
    return nn::softplus(rho);
}

std::size_t
VariationalConv2d::paramCount() const
{
    return 2 * (muWeight_.size() + muBias_.size());
}

void
VariationalConv2d::prepareScratch(VariationalConvScratch &scratch) const
{
    const std::size_t patch = spec_.patchSize();
    if (scratch.epsWeight.rows() != spec_.outChannels ||
        scratch.epsWeight.cols() != patch) {
        scratch.epsWeight = nn::Matrix(spec_.outChannels, patch);
    }
    scratch.epsBias.resize(spec_.outChannels);
    scratch.activationEps.resize(spec_.outputSize());
    scratch.activationStd.resize(spec_.outputSize());
    scratch.weightSample.resize(patch);
}

void
VariationalConv2d::meanForward(const float *x, float *out,
                               VariationalConvScratch &scratch) const
{
    nn::im2col(spec_, x, scratch.patches);
    const std::size_t positions = spec_.positions();
    const std::size_t patch = spec_.patchSize();
    for (std::size_t oc = 0; oc < spec_.outChannels; ++oc) {
        const float *mu = muWeight_.row(oc);
        float *plane = out + oc * positions;
        for (std::size_t p = 0; p < positions; ++p) {
            const float *v = scratch.patches.row(p);
            float acc = muBias_[oc];
            for (std::size_t k = 0; k < patch; ++k)
                acc += mu[k] * v[k];
            plane[p] = acc;
        }
    }
}

void
VariationalConv2d::sampleBackward(const float *dy,
                                  VariationalConvScratch &scratch,
                                  VariationalConvGradients &grads,
                                  float *dx) const
{
    const std::size_t positions = spec_.positions();
    const std::size_t patch = spec_.patchSize();
    assert(scratch.patches.rows() == positions);

    const bool want_dx = dx != nullptr;
    if (want_dx) {
        if (scratch.dPatches.rows() != positions ||
            scratch.dPatches.cols() != patch)
            scratch.dPatches = nn::Matrix(positions, patch);
        scratch.dPatches.fill(0.0f);
    }

    for (std::size_t oc = 0; oc < spec_.outChannels; ++oc) {
        const float *mu = muWeight_.row(oc);
        const float *rho = rhoWeight_.row(oc);
        const float *er = scratch.epsWeight.row(oc);
        const float *g = dy + oc * positions;
        float *gmu = grads.muWeight.row(oc);
        float *grho = grads.rhoWeight.row(oc);

        // Shared-weight chain rule: dL/dw[k] = sum_p dy[p] patch[p][k].
        float bias_acc = 0.0f;
        for (std::size_t p = 0; p < positions; ++p) {
            const float gp = g[p];
            bias_acc += gp;
            if (gp == 0.0f && !want_dx)
                continue;
            const float *v = scratch.patches.row(p);
            float *dv = want_dx ? scratch.dPatches.row(p) : nullptr;
            for (std::size_t k = 0; k < patch; ++k) {
                const float dw = gp * v[k];
                gmu[k] += dw;
                grho[k] += dw * er[k] * nn::logistic(rho[k]);
                if (dv) {
                    const float w = mu[k] + sigmaOf(rho[k]) * er[k];
                    dv[k] += gp * w;
                }
            }
        }
        grads.muBias[oc] += bias_acc;
        grads.rhoBias[oc] += bias_acc * scratch.epsBias[oc] *
            nn::logistic(rhoBias_[oc]);
    }

    if (want_dx) {
        std::fill(dx, dx + spec_.inputSize(), 0.0f);
        nn::col2imAccumulate(spec_, scratch.dPatches, dx);
    }
}

void
VariationalConv2d::lrtForward(const float *x, float *out,
                              VariationalConvScratch &scratch, Rng &rng)
    const
{
    prepareScratch(scratch);
    nn::im2col(spec_, x, scratch.patches);
    const std::size_t positions = spec_.positions();
    const std::size_t patch = spec_.patchSize();

    if (scratch.patchesSquared.rows() != positions ||
        scratch.patchesSquared.cols() != patch)
        scratch.patchesSquared = nn::Matrix(positions, patch);
    for (std::size_t i = 0; i < scratch.patches.size(); ++i) {
        const float v = scratch.patches.data()[i];
        scratch.patchesSquared.data()[i] = v * v;
    }

    for (std::size_t oc = 0; oc < spec_.outChannels; ++oc) {
        const float *mu = muWeight_.row(oc);
        const float *rho = rhoWeight_.row(oc);
        const float sb = sigmaOf(rhoBias_[oc]);
        float *plane = out + oc * positions;
        for (std::size_t p = 0; p < positions; ++p) {
            const float *v = scratch.patches.row(p);
            const float *v2 = scratch.patchesSquared.row(p);
            float mean = muBias_[oc];
            float var = sb * sb;
            for (std::size_t k = 0; k < patch; ++k) {
                mean += mu[k] * v[k];
                const float s = sigmaOf(rho[k]);
                var += s * s * v2[k];
            }
            const float sd = std::sqrt(std::max(var, 1e-16f));
            const float e = static_cast<float>(rng.gaussian());
            const std::size_t flat = oc * positions + p;
            scratch.activationEps[flat] = e;
            scratch.activationStd[flat] = sd;
            plane[p] = mean + sd * e;
        }
    }
}

void
VariationalConv2d::lrtBackward(const float *dy,
                               VariationalConvScratch &scratch,
                               VariationalConvGradients &grads,
                               float *dx) const
{
    const std::size_t positions = spec_.positions();
    const std::size_t patch = spec_.patchSize();
    assert(scratch.patches.rows() == positions);
    assert(scratch.activationEps.size() == spec_.outputSize());

    const bool want_dx = dx != nullptr;
    if (want_dx) {
        if (scratch.dPatches.rows() != positions ||
            scratch.dPatches.cols() != patch)
            scratch.dPatches = nn::Matrix(positions, patch);
        scratch.dPatches.fill(0.0f);
    }

    for (std::size_t oc = 0; oc < spec_.outChannels; ++oc) {
        const float *mu = muWeight_.row(oc);
        const float *rho = rhoWeight_.row(oc);
        const float *g = dy + oc * positions;
        float *gmu = grads.muWeight.row(oc);
        float *grho = grads.rhoWeight.row(oc);
        const float lb = nn::logistic(rhoBias_[oc]);
        const float sb = sigmaOf(rhoBias_[oc]);

        for (std::size_t p = 0; p < positions; ++p) {
            const float gp = g[p];
            const std::size_t flat = oc * positions + p;
            // dL/dvar = g eps / (2 sd); dL/dmean = g.
            const float dvar = gp * scratch.activationEps[flat] /
                (2.0f * scratch.activationStd[flat]);
            grads.muBias[oc] += gp;
            grads.rhoBias[oc] += dvar * 2.0f * sb * lb;
            if (gp == 0.0f && !want_dx)
                continue;
            const float *v = scratch.patches.row(p);
            const float *v2 = scratch.patchesSquared.row(p);
            float *dv = want_dx ? scratch.dPatches.row(p) : nullptr;
            for (std::size_t k = 0; k < patch; ++k) {
                gmu[k] += gp * v[k];
                const float s = sigmaOf(rho[k]);
                grho[k] += dvar * 2.0f * s * v2[k] * nn::logistic(rho[k]);
                if (dv)
                    dv[k] += gp * mu[k] + dvar * s * s * 2.0f * v[k];
            }
        }
    }

    if (want_dx) {
        std::fill(dx, dx + spec_.inputSize(), 0.0f);
        nn::col2imAccumulate(spec_, scratch.dPatches, dx);
    }
}

double
VariationalConv2d::klDivergence(float prior_sigma) const
{
    const double p2 = static_cast<double>(prior_sigma) * prior_sigma;
    const double log_p = std::log(static_cast<double>(prior_sigma));
    double kl = 0.0;

    auto accumulate = [&](float mu, float rho) {
        const double s = sigmaOf(rho);
        kl += log_p - std::log(s) +
            (s * s + static_cast<double>(mu) * mu) / (2.0 * p2) - 0.5;
    };

    const auto &mw = muWeight_.data();
    const auto &rw = rhoWeight_.data();
    for (std::size_t i = 0; i < mw.size(); ++i)
        accumulate(mw[i], rw[i]);
    for (std::size_t i = 0; i < muBias_.size(); ++i)
        accumulate(muBias_[i], rhoBias_[i]);
    return kl;
}

void
VariationalConv2d::klBackward(float prior_sigma, float scale,
                              VariationalConvGradients &grads) const
{
    const float inv_p2 = 1.0f / (prior_sigma * prior_sigma);

    auto grad_pair = [&](float mu, float rho, float &gmu, float &grho) {
        const float s = sigmaOf(rho);
        gmu += scale * mu * inv_p2;
        grho += scale * (s * inv_p2 - 1.0f / s) * nn::logistic(rho);
    };

    const auto &mw = muWeight_.data();
    const auto &rw = rhoWeight_.data();
    auto &gm = grads.muWeight.data();
    auto &gr = grads.rhoWeight.data();
    for (std::size_t i = 0; i < mw.size(); ++i)
        grad_pair(mw[i], rw[i], gm[i], gr[i]);
    for (std::size_t i = 0; i < muBias_.size(); ++i)
        grad_pair(muBias_[i], rhoBias_[i], grads.muBias[i],
                  grads.rhoBias[i]);
}

} // namespace vibnn::bnn
