#include "bnn/variational_dense.hh"

#include <cmath>

#include "common/logging.hh"
#include "nn/activations.hh"

namespace vibnn::bnn
{

void
VariationalGradients::resize(std::size_t out_dim, std::size_t in_dim)
{
    muWeight = nn::Matrix(out_dim, in_dim);
    rhoWeight = nn::Matrix(out_dim, in_dim);
    muBias.assign(out_dim, 0.0f);
    rhoBias.assign(out_dim, 0.0f);
}

void
VariationalGradients::zero()
{
    muWeight.fill(0.0f);
    rhoWeight.fill(0.0f);
    std::fill(muBias.begin(), muBias.end(), 0.0f);
    std::fill(rhoBias.begin(), rhoBias.end(), 0.0f);
}

VariationalDense::VariationalDense(std::size_t in_dim, std::size_t out_dim,
                                   Rng &rng, float rho_init)
    : muWeight_(out_dim, in_dim), rhoWeight_(out_dim, in_dim),
      muBias_(out_dim, 0.0f), rhoBias_(out_dim, rho_init)
{
    const float bound = std::sqrt(6.0f / static_cast<float>(in_dim));
    for (auto &mu : muWeight_.data())
        mu = static_cast<float>(rng.uniform(-bound, bound));
    for (auto &rho : rhoWeight_.data())
        rho = rho_init + static_cast<float>(rng.uniform(-0.2, 0.2));
}

float
VariationalDense::sigmaOf(float rho)
{
    return nn::softplus(rho);
}

void
VariationalDense::prepareScratch(VariationalScratch &scratch) const
{
    if (scratch.epsWeight.rows() != outDim() ||
        scratch.epsWeight.cols() != inDim()) {
        scratch.epsWeight = nn::Matrix(outDim(), inDim());
    }
    scratch.epsBias.resize(outDim());
    scratch.activationEps.resize(outDim());
    scratch.activationStd.resize(outDim());
    scratch.inputSquared.resize(inDim());
}

void
VariationalDense::meanForward(const float *x, float *out) const
{
    nn::matVec(muWeight_, x, muBias_.data(), out);
}

void
VariationalDense::sampleBackward(const float *x, const float *dy,
                                 const VariationalScratch &scratch,
                                 VariationalGradients &grads,
                                 float *dx) const
{
    const std::size_t rows = outDim(), cols = inDim();
    if (dx)
        std::fill(dx, dx + cols, 0.0f);

    for (std::size_t r = 0; r < rows; ++r) {
        const float g = dy[r];
        const float *mu = muWeight_.row(r);
        const float *rho = rhoWeight_.row(r);
        const float *er = scratch.epsWeight.row(r);
        float *gmu = grads.muWeight.row(r);
        float *grho = grads.rhoWeight.row(r);

        // Bias: dL/dw_b = g; w_b = mu_b + sigma_b eps_b.
        grads.muBias[r] += g;
        grads.rhoBias[r] +=
            g * scratch.epsBias[r] * nn::logistic(rhoBias_[r]);

        if (g == 0.0f && !dx)
            continue;
        for (std::size_t c = 0; c < cols; ++c) {
            const float dw = g * x[c];
            gmu[c] += dw;
            grho[c] += dw * er[c] * nn::logistic(rho[c]);
            if (dx) {
                const float w = mu[c] + sigmaOf(rho[c]) * er[c];
                dx[c] += w * g;
            }
        }
    }
}

void
VariationalDense::lrtForward(const float *x, float *out,
                             VariationalScratch &scratch, Rng &rng) const
{
    prepareScratch(scratch);
    const std::size_t rows = outDim(), cols = inDim();
    for (std::size_t c = 0; c < cols; ++c)
        scratch.inputSquared[c] = x[c] * x[c];

    for (std::size_t r = 0; r < rows; ++r) {
        const float *mu = muWeight_.row(r);
        const float *rho = rhoWeight_.row(r);
        float mean = muBias_[r];
        const float sb = sigmaOf(rhoBias_[r]);
        float var = sb * sb;
        for (std::size_t c = 0; c < cols; ++c) {
            mean += mu[c] * x[c];
            const float s = sigmaOf(rho[c]);
            var += s * s * scratch.inputSquared[c];
        }
        const float sd = std::sqrt(std::max(var, 1e-16f));
        const float e = static_cast<float>(rng.gaussian());
        scratch.activationEps[r] = e;
        scratch.activationStd[r] = sd;
        out[r] = mean + sd * e;
    }
}

void
VariationalDense::lrtBackward(const float *x, const float *dy,
                              const VariationalScratch &scratch,
                              VariationalGradients &grads, float *dx) const
{
    const std::size_t rows = outDim(), cols = inDim();
    if (dx)
        std::fill(dx, dx + cols, 0.0f);

    for (std::size_t r = 0; r < rows; ++r) {
        const float g = dy[r];
        const float *mu = muWeight_.row(r);
        const float *rho = rhoWeight_.row(r);
        float *gmu = grads.muWeight.row(r);
        float *grho = grads.rhoWeight.row(r);

        // dL/dvar = g * eps / (2 sd); dL/dmean = g.
        const float dvar =
            g * scratch.activationEps[r] /
            (2.0f * scratch.activationStd[r]);

        grads.muBias[r] += g;
        {
            const float sb = sigmaOf(rhoBias_[r]);
            grads.rhoBias[r] +=
                dvar * 2.0f * sb * nn::logistic(rhoBias_[r]);
        }

        for (std::size_t c = 0; c < cols; ++c) {
            gmu[c] += g * x[c];
            const float s = sigmaOf(rho[c]);
            grho[c] += dvar * 2.0f * s * scratch.inputSquared[c] *
                nn::logistic(rho[c]);
            if (dx) {
                dx[c] += g * mu[c] +
                    dvar * s * s * 2.0f * x[c];
            }
        }
    }
}

double
VariationalDense::klDivergence(float prior_sigma) const
{
    // KL(N(mu, s^2) || N(0, p^2)) =
    //   ln(p/s) + (s^2 + mu^2) / (2 p^2) - 1/2, summed elementwise.
    const double p2 = static_cast<double>(prior_sigma) * prior_sigma;
    const double log_p = std::log(static_cast<double>(prior_sigma));
    double kl = 0.0;

    auto accumulate = [&](float mu, float rho) {
        const double s = sigmaOf(rho);
        kl += log_p - std::log(s) +
            (s * s + static_cast<double>(mu) * mu) / (2.0 * p2) - 0.5;
    };

    const auto &mw = muWeight_.data();
    const auto &rw = rhoWeight_.data();
    for (std::size_t i = 0; i < mw.size(); ++i)
        accumulate(mw[i], rw[i]);
    for (std::size_t i = 0; i < muBias_.size(); ++i)
        accumulate(muBias_[i], rhoBias_[i]);
    return kl;
}

void
VariationalDense::klBackward(float prior_sigma, float scale,
                             VariationalGradients &grads) const
{
    const float inv_p2 = 1.0f / (prior_sigma * prior_sigma);

    auto grad_pair = [&](float mu, float rho, float &gmu, float &grho) {
        const float s = sigmaOf(rho);
        // dKL/dmu = mu / p^2 ; dKL/dsigma = sigma/p^2 - 1/sigma.
        gmu += scale * mu * inv_p2;
        grho += scale * (s * inv_p2 - 1.0f / s) * nn::logistic(rho);
    };

    const auto &mw = muWeight_.data();
    const auto &rw = rhoWeight_.data();
    auto &gm = grads.muWeight.data();
    auto &gr = grads.rhoWeight.data();
    for (std::size_t i = 0; i < mw.size(); ++i)
        grad_pair(mw[i], rw[i], gm[i], gr[i]);
    for (std::size_t i = 0; i < muBias_.size(); ++i)
        grad_pair(muBias_[i], rhoBias_[i], grads.muBias[i],
                  grads.rhoBias[i]);
}

double
VariationalDense::klValueAndGrad(float prior_sigma, float scale,
                                 VariationalGradients &grads) const
{
    const double p2 = static_cast<double>(prior_sigma) * prior_sigma;
    const double log_p = std::log(static_cast<double>(prior_sigma));
    const float inv_p2 = 1.0f / (prior_sigma * prior_sigma);
    double kl = 0.0;

    auto fused = [&](float mu, float rho, float &gmu, float &grho) {
        const float s = sigmaOf(rho);
        kl += log_p - std::log(static_cast<double>(s)) +
            (static_cast<double>(s) * s +
             static_cast<double>(mu) * mu) /
                (2.0 * p2) -
            0.5;
        gmu += scale * mu * inv_p2;
        grho += scale * (s * inv_p2 - 1.0f / s) * nn::logistic(rho);
    };

    const auto &mw = muWeight_.data();
    const auto &rw = rhoWeight_.data();
    auto &gm = grads.muWeight.data();
    auto &gr = grads.rhoWeight.data();
    for (std::size_t i = 0; i < mw.size(); ++i)
        fused(mw[i], rw[i], gm[i], gr[i]);
    for (std::size_t i = 0; i < muBias_.size(); ++i)
        fused(muBias_[i], rhoBias_[i], grads.muBias[i],
              grads.rhoBias[i]);
    return kl;
}

} // namespace vibnn::bnn
