/**
 * @file
 * Bayes-by-Backprop training (paper reference [9]) and MC-ensemble
 * evaluation. The minimized objective is the negative ELBO:
 *     E_q[-log p(D|w)] + KL(q || prior) / (dataset size)
 * with the KL term distributed evenly over minibatches, the weighting
 * used by Blundell et al.
 *
 * Two training paths share that objective:
 *
 *  - trainBnn: the historical per-sample loop (scalar forward/backward
 *    per image). Kept as the semantic reference; its optimizer now
 *    steps layer storage in place through the segmented Adam protocol
 *    instead of gather/scatter copies, with an unchanged trajectory.
 *
 *  - trainBnnBatched: the minibatch engine. Forward and backward run
 *    as whole-minibatch f32 GEMM on the SIMD kernel layer
 *    (gemmBatchF32 / gemmAtBF32 / gemmABF32), eps comes as one block
 *    per minibatch from the splittable Philox stream (drawn serially
 *    up front, then consumed by GEMMs sharded over disjoint rows — so
 *    results are bit-identical for any ThreadPool partition, the PR 6
 *    contract), the KL term is a single fused pass per layer, and the
 *    Adam step walks the layers' own storage. The same engine hosts
 *    quantization-aware fine-tuning: forward through the eq-(15)
 *    fixed-point grids (raw-domain weight draws via the integer
 *    sampleWeights kernel, floor-quantized activations) with
 *    straight-through gradients, so a net can be tuned for exactly
 *    the arithmetic the compiled QuantizedProgram will execute.
 */

#ifndef VIBNN_BNN_BNN_TRAINER_HH
#define VIBNN_BNN_BNN_TRAINER_HH

#include <functional>
#include <memory>

#include "accel/kernels/kernels.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/thread_pool.hh"
#include "fixed/fixed_point.hh"
#include "grng/philox.hh"
#include "nn/optimizer.hh"
#include "nn/trainer.hh"

namespace vibnn::bnn
{

/** BNN training hyper-parameters. */
struct BnnTrainConfig
{
    std::size_t epochs = 10;
    std::size_t batchSize = 32;
    float learningRate = 1e-3f;
    /** Standard deviation of the zero-mean Gaussian prior. */
    float priorSigma = 0.3f;
    /**
     * Multiplier on the KL term (1 = the exact ELBO). Values < 1
     * temper the prior — standard practice when the dataset is tiny
     * and the exact posterior would stay at the prior.
     */
    float klWeight = 1.0f;
    /** Use the local reparameterization estimator (fast path); the
     *  direct per-weight estimator matches the hardware's sampling
     *  semantics and is used by the equivalence tests. */
    bool useLocalReparameterization = true;
    /** MC samples per prediction during evaluation. */
    std::size_t evalSamples = 8;
    std::uint64_t seed = 1;
    const nn::DataView *evalSet = nullptr;
    std::function<void(std::size_t, double, double)> onEpoch;
};

/**
 * MC-ensemble classification accuracy, parallelized over images on
 * `pool` (nullptr = the process-wide pool). Every image draws from its
 * own splitmix64-derived Rng stream keyed on (seed, image index), so
 * the result is deterministic and independent of the thread count or
 * partition.
 */
double evaluateBnnAccuracy(const BayesianMlp &net, const nn::DataView &data,
                           std::size_t mc_samples, std::uint64_t seed,
                           ThreadPool *pool = nullptr);

/** Train a BNN; returns per-epoch history (loss includes the scaled
 *  KL term; evalAccuracy uses MC-ensemble prediction). */
nn::TrainHistory trainBnn(BayesianMlp &net, const nn::DataView &train,
                          const BnnTrainConfig &config);

/** Gradient estimator of the batched trainer. */
enum class BnnEstimator
{
    /** Per-activation noise (one eps per pre-activation): mean/var
     *  GEMMs over (mu, sigma^2) — the fast host-training path. */
    LocalReparam,
    /** Per-weight noise shared across the minibatch (one sampled
     *  weight tensor per step) — the estimator whose forward is
     *  exactly the accelerator's sampling semantics, and the one QAT
     *  uses. */
    DirectWeightSample,
};

/** Hyper-parameters of the batched (and QAT) training path. */
struct BnnBatchedTrainConfig
{
    std::size_t epochs = 10;
    std::size_t batchSize = 32;
    float learningRate = 1e-3f;
    float priorSigma = 0.3f;
    float klWeight = 1.0f;
    BnnEstimator estimator = BnnEstimator::LocalReparam;
    std::size_t evalSamples = 8;
    std::uint64_t seed = 1;
    const nn::DataView *evalSet = nullptr;
    std::function<void(std::size_t, double, double)> onEpoch;

    /**
     * Draw eps from the epoch loop's host Rng (the same xoshiro stream
     * trainBnn uses) instead of the splittable Philox block stream.
     * At batchSize = 1 with the LRT estimator this makes the batched
     * trainer consume exactly the per-sample trainer's draws — the
     * trajectory-parity pin. Production runs leave this off.
     */
    bool hostRngEps = false;

    /** Worker pool for sharding the GEMMs over minibatch/output rows;
     *  nullptr = serial. Any pool yields bit-identical results. */
    ThreadPool *pool = nullptr;

    /** Kernel tier override (benches sweep tiers in-process);
     *  nullptr = activeKernels(). */
    const accel::kernels::KernelOps *kernels = nullptr;

    /**
     * Quantization-aware fine-tuning: run forward through the eq-(15)
     * fixed-point grids — mu/sigma/eps quantized to raw integers, the
     * weight draw computed in the raw domain exactly like
     * DatapathKernel::sampleWeight, activations floor-quantized onto
     * the activation grid like finishNeuron — with straight-through
     * gradients onto the underlying (mu, rho). Forces the
     * DirectWeightSample estimator (the LRT moments have no raw-domain
     * counterpart on the datapath).
     */
    bool quantizeAware = false;
    /** The eq-(15) grids; callers deploying to an AcceleratorConfig
     *  pass its activationFormat()/weightFormat()/epsFormat(). */
    fixed::FixedPointFormat qatActivation{8, 4};
    fixed::FixedPointFormat qatWeight{8, 6};
    fixed::FixedPointFormat qatEps{8, 5};
};

/**
 * The minibatch forward/backward engine behind trainBnnBatched,
 * exposed so tests can drive single steps (finite-difference gradient
 * checks) and benches can reuse one instance across configurations.
 * Typical cycle per minibatch:
 *     engine.zeroGrads();
 *     loss = engine.forwardBackward(data, indices, batch, hostRng);
 *     kl = engine.applyKlAndStep(batch, data.count);
 * applyKlAndStep leaves the net's parameters updated in place and
 * refreshes the derived per-step planes for the next minibatch.
 */
class BnnBatchTrainer
{
  public:
    BnnBatchTrainer(BayesianMlp &net, const BnnBatchedTrainConfig &config);
    ~BnnBatchTrainer();

    /** Recompute the derived parameter planes (sigma, sigma^2, QAT
     *  raw tensors) from the net's current (mu, rho). Called by
     *  applyKlAndStep; call manually after external param edits. */
    void refreshParams();

    void zeroGrads();

    /** Forward + backward over one minibatch (rows `indices[0..batch)`
     *  of `data`); accumulates parameter gradients, returns the summed
     *  data loss. Fresh eps from `host_rng` when given, else from the
     *  Philox block stream. */
    double forwardBackward(const nn::DataView &data,
                           const std::size_t *indices, std::size_t batch,
                           Rng *host_rng = nullptr);

    /** Forward only, REUSING the eps of the last forwardBackward —
     *  the loss surface finite-difference checks probe. */
    double forwardLoss(const nn::DataView &data,
                       const std::size_t *indices, std::size_t batch);

    /** Add the KL term (value returned, gradients scaled by
     *  klWeight * batch / datasetSize), then step every layer's
     *  storage in place (gradScale 1/batch) and refresh the derived
     *  planes. */
    double applyKlAndStep(std::size_t batch, std::size_t dataset_size);

    /** Accumulated gradients (pre-KL until applyKlAndStep). */
    const std::vector<VariationalGradients> &gradients() const;

    nn::AdamOptimizer &optimizer();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Train on the batched engine; returns the same history shape as
 *  trainBnn. */
nn::TrainHistory trainBnnBatched(BayesianMlp &net,
                                 const nn::DataView &train,
                                 const BnnBatchedTrainConfig &config);

/** Post-training quantization-aware fine-tuning: trainBnnBatched with
 *  quantizeAware forced on (and therefore the direct estimator), so
 *  the net's (mu, rho) adapt to the eq-(15) grids they will be
 *  compiled onto. */
nn::TrainHistory qatFineTune(BayesianMlp &net, const nn::DataView &train,
                             BnnBatchedTrainConfig config);

} // namespace vibnn::bnn

#endif // VIBNN_BNN_BNN_TRAINER_HH
