/**
 * @file
 * Bayes-by-Backprop training loop (paper reference [9]) and MC-ensemble
 * evaluation. The minimized objective is the negative ELBO:
 *     E_q[-log p(D|w)] + KL(q || prior) / (dataset size)
 * with the KL term distributed evenly over minibatches, the weighting
 * used by Blundell et al.
 */

#ifndef VIBNN_BNN_BNN_TRAINER_HH
#define VIBNN_BNN_BNN_TRAINER_HH

#include <functional>

#include "bnn/bayesian_mlp.hh"
#include "nn/trainer.hh"

namespace vibnn::bnn
{

/** BNN training hyper-parameters. */
struct BnnTrainConfig
{
    std::size_t epochs = 10;
    std::size_t batchSize = 32;
    float learningRate = 1e-3f;
    /** Standard deviation of the zero-mean Gaussian prior. */
    float priorSigma = 0.3f;
    /**
     * Multiplier on the KL term (1 = the exact ELBO). Values < 1
     * temper the prior — standard practice when the dataset is tiny
     * and the exact posterior would stay at the prior.
     */
    float klWeight = 1.0f;
    /** Use the local reparameterization estimator (fast path); the
     *  direct per-weight estimator matches the hardware's sampling
     *  semantics and is used by the equivalence tests. */
    bool useLocalReparameterization = true;
    /** MC samples per prediction during evaluation. */
    std::size_t evalSamples = 8;
    std::uint64_t seed = 1;
    const nn::DataView *evalSet = nullptr;
    std::function<void(std::size_t, double, double)> onEpoch;
};

/** MC-ensemble classification accuracy. */
double evaluateBnnAccuracy(const BayesianMlp &net, const nn::DataView &data,
                           std::size_t mc_samples, std::uint64_t seed);

/** Train a BNN; returns per-epoch history (loss includes the scaled
 *  KL term; evalAccuracy uses MC-ensemble prediction). */
nn::TrainHistory trainBnn(BayesianMlp &net, const nn::DataView &train,
                          const BnnTrainConfig &config);

} // namespace vibnn::bnn

#endif // VIBNN_BNN_BNN_TRAINER_HH
