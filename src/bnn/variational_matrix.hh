/**
 * @file
 * A reusable factorized-Gaussian parameter block: a matrix of (mu, rho)
 * pairs with sigma = softplus(rho), sampling, closed-form KL to a
 * zero-mean Gaussian prior, and the chain-rule mapping from a sampled-
 * weight gradient back to (mu, rho) space. The Bayesian RNN composes
 * its recurrences from these; the dense/conv layers keep their fused
 * implementations for speed.
 */

#ifndef VIBNN_BNN_VARIATIONAL_MATRIX_HH
#define VIBNN_BNN_VARIATIONAL_MATRIX_HH

#include <cstddef>

#include "common/rng.hh"
#include "nn/activations.hh"
#include "nn/tensor.hh"

namespace vibnn::bnn
{

/** Factorized Gaussian posterior over a rows x cols parameter block. */
class VariationalMatrix
{
  public:
    VariationalMatrix() = default;

    /**
     * @param rows Block rows.
     * @param cols Block columns (1 for bias vectors).
     * @param rng Initialization source.
     * @param init_bound mu ~ U(-bound, bound); 0 keeps mu at zero.
     * @param rho_init Initial rho, jittered +-0.2.
     */
    VariationalMatrix(std::size_t rows, std::size_t cols, Rng &rng,
                      float init_bound, float rho_init = -5.0f);

    std::size_t rows() const { return mu_.rows(); }
    std::size_t cols() const { return mu_.cols(); }
    std::size_t count() const { return mu_.size(); }

    /**
     * Draw one weight sample: w = mu + softplus(rho) * eps, recording
     * eps for the backward mapping. w and eps are resized as needed.
     */
    template <typename EpsFn>
    void
    sample(nn::Matrix &w, nn::Matrix &eps, EpsFn &&draw) const
    {
        ensureShape(w);
        ensureShape(eps);
        for (std::size_t i = 0; i < mu_.size(); ++i) {
            const float e = static_cast<float>(draw());
            eps.data()[i] = e;
            w.data()[i] =
                mu_.data()[i] + nn::softplus(rho_.data()[i]) * e;
        }
    }

    /** Deterministic mean weights (eps = 0). */
    void meanInto(nn::Matrix &w) const;

    /**
     * Map a sampled-weight gradient to parameter space:
     * d mu += dw, d rho += dw * eps * logistic(rho).
     */
    void accumulateSampleGrad(const nn::Matrix &dw, const nn::Matrix &eps,
                              nn::Matrix &g_mu, nn::Matrix &g_rho) const;

    /** KL(q || N(0, prior^2)) over the block. */
    double klDivergence(float prior_sigma) const;

    /** Accumulate scaled KL gradients. */
    void klBackward(float prior_sigma, float scale, nn::Matrix &g_mu,
                    nn::Matrix &g_rho) const;

    nn::Matrix &mu() { return mu_; }
    const nn::Matrix &mu() const { return mu_; }
    nn::Matrix &rho() { return rho_; }
    const nn::Matrix &rho() const { return rho_; }

  private:
    void ensureShape(nn::Matrix &m) const;

    nn::Matrix mu_, rho_;
};

} // namespace vibnn::bnn

#endif // VIBNN_BNN_VARIATIONAL_MATRIX_HH
