/**
 * @file
 * Counter-based splittable Gaussian generator (Philox-4x32-10 +
 * Box-Muller).
 *
 * Every stateful generator in this project (RLF walks, Wallace pools)
 * forces the eps stream to be produced sequentially: sample i cannot
 * exist until samples 0..i-1 have been stepped through. That serializes
 * weight sampling — the dominant cost of a Monte-Carlo round — onto one
 * worker even when the executor has a work pool. A counter-based
 * generator removes the constraint: sample i is a pure function of
 * (seed, i), so any worker can produce any subrange of any round's
 * stream (splittable per (op, round, offset) once the caller maps those
 * coordinates onto stream offsets), and rekeying for a new round is two
 * register writes instead of a reconstruction.
 *
 * The counter transform is Philox-4x32-10 (Salmon et al., SC'11): ten
 * rounds of 32x32->64 multiplies and XORs over a 128-bit counter under
 * a 64-bit key, passing BigCrush. Each counter block yields two
 * doubles via Box-Muller, so sample i consumes block i/2, phase i%2 —
 * random access never recomputes more than one neighbor phase.
 */

#ifndef VIBNN_GRNG_PHILOX_HH
#define VIBNN_GRNG_PHILOX_HH

#include <cstdint>

#include "grng/generator.hh"

namespace vibnn::grng
{

/** Counter-based splittable GRNG: Philox-4x32-10 + Box-Muller. */
class PhiloxGrng : public GaussianGenerator
{
  public:
    explicit PhiloxGrng(std::uint64_t seed);

    double next() override;
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;

    bool fillFixed(std::int32_t *out, std::size_t n,
                   const fixed::FixedPointFormat &format) override;

    bool splittable() const override { return true; }
    void fillFixedAt(std::uint64_t offset, std::int32_t *out,
                     std::size_t n,
                     const fixed::FixedPointFormat &format) override;
    void seekTo(std::uint64_t offset) override { pos_ = offset; }
    bool reseed(std::uint64_t seed) override;

    std::string name() const override { return "Philox"; }

    /** Current sequential stream position (samples consumed). */
    std::uint64_t streamPos() const { return pos_; }

  private:
    /** Both Box-Muller phases of counter block `block`. */
    void sampleBlock(std::uint64_t block, double out2[2]) const;

    /** Both phases of `block` via the one-block cache: the sequential
     *  phase-at-a-time consumer (next()) pays the Philox + Box-Muller
     *  transform once per PAIR instead of once per sample (~2x). Pure
     *  memoization of a deterministic function of (key, block), so
     *  stream values are unchanged. Only the single-threaded next()
     *  path may use it: fillAt() must stay stateless because
     *  fillFixedAt() runs concurrently from multiple shards. */
    const double *ensureBlock(std::uint64_t block) const;

    /** Stateless (and therefore concurrency-safe) core shared by
     *  fill()/fillFixedAt(): samples `offset .. offset + n` of the
     *  keyed stream. Touches no generator state, not even the pair
     *  cache — sampleBlockFusedAt shards one generator across pool
     *  threads through this path. */
    void fillAt(std::uint64_t offset, double *out, std::size_t n) const;

    std::uint32_t key0_;
    std::uint32_t key1_;
    std::uint64_t pos_ = 0;

    /** One-block Box-Muller pair cache (invalid until the first use;
     *  rekeying invalidates — the same block index means different
     *  values under a new key). */
    mutable bool cacheValid_ = false;
    mutable std::uint64_t cachedBlock_ = 0;
    mutable double cachedPair_[2] = {0.0, 0.0};
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_PHILOX_HH
