/**
 * @file
 * BNN-oriented hardware Wallace GRNG (Section 4.2.2, Figures 9-10).
 *
 * The hardware realization differs from the software algorithm in three
 * ways, all dictated by FPGA resource limits:
 *
 *  1. Pool values live in block RAM as fixed-point words, and the
 *     divide-by-two inside the Hadamard transform is a plain arithmetic
 *     right shift (truncation). The transform is therefore only
 *     *approximately* energy preserving; truncation slowly bleeds pool
 *     energy, which is one source of the instability Table 1 reports
 *     for the naive design.
 *
 *  2. Addressing is sequential (a counter), because spending a second
 *     RNG on random pool addresses would defeat the purpose. Without
 *     further measures the same four pool slots would recombine with
 *     each other forever — quadruple orbits that cycle almost
 *     periodically and fail every randomness test (the Wallace-NSS rows
 *     of Table 1 / Figure 15).
 *
 *  3. The *sharing and shifting* scheme fixes (2): N Wallace units run
 *     side by side, and the 4N outputs of a cycle are rotated by one
 *     position before write-back, so each unit receives one value from
 *     its ring neighbour every cycle. Values migrate through all units,
 *     making N small pools act as one large pool; stability improves by
 *     the (paper-reported) 2x memory saving at equal quality.
 *
 * Setting `sharingAndShifting = false` produces the paper's Wallace-NSS
 * baseline.
 */

#ifndef VIBNN_GRNG_BNN_WALLACE_HH
#define VIBNN_GRNG_BNN_WALLACE_HH

#include <cstdint>
#include <vector>

#include "fixed/fixed_point.hh"
#include "grng/generator.hh"

namespace vibnn::grng
{

/** Configuration of the hardware Wallace generator. */
struct BnnWallaceConfig
{
    /** Number of Wallace units operating in parallel. */
    int units = 8;
    /** Pool entries per unit; must be a positive multiple of 4. */
    int poolSize = 256;
    /** Fixed-point format of pool entries (paper uses 16-bit words). */
    fixed::FixedPointFormat format{16, 11};
    /** Enable the sharing & shifting scheme; false = Wallace-NSS. */
    bool sharingAndShifting = true;
    /**
     * Vary the shift amount per cycle with a small controller LFSR
     * (a barrel rotator instead of fixed wiring). With the paper's
     * literal shift-by-one the system is linear time-invariant, so a
     * ~0.5 anti-correlation spike survives at the pool-recycling lag
     * of *some* output port no matter how the phase is chosen —
     * software Wallace only escapes it by randomizing addresses. The
     * variable shift smears the revisit across all units, spreading
     * that correlation below the noise floor at ~10 LUTs of cost; it
     * is the minimal completion of the paper's scheme that actually
     * achieves the Figure 15 claim. Set false for the literal
     * fixed-shift design (ablation A2 compares them).
     */
    bool variableShift = true;
    /**
     * Advance the shared address counter by two extra entries after each
     * full pool pass. Without it the pool decomposes into closed
     * four-entry address blocks that only ever recombine with
     * themselves (ring-shifted across units); the phase rotation makes
     * quadruples straddle old block boundaries so values migrate
     * through the whole logical pool — the "all small pools constitute
     * a large pool" property claimed for the sharing & shifting scheme.
     * Hardware cost: one increment on a counter that already exists.
     * Disabled automatically for the NSS baseline.
     */
    bool passPhaseRotation = true;
    /** Normalize the initial pool image (free at ROM-generation time). */
    bool normalizeInitialPool = true;
    std::uint64_t seed = 1;
};

/** Hardware-style Wallace generator: N units, fixed point, ring shift. */
class BnnWallaceGrng : public GaussianGenerator
{
  public:
    explicit BnnWallaceGrng(const BnnWallaceConfig &config);

    double next() override;

    /** Block fill: runs whole hardware cycles directly into `out`. */
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;

    std::string name() const override;

    const BnnWallaceConfig &config() const { return config_; }

    /**
     * Run one hardware cycle: every unit reads four pool entries at the
     * shared address counter, transforms them, and the (optionally
     * rotated) results are written back. Appends the 4*units outputs of
     * this cycle to `out` in unit-interleaved order (consecutive samples
     * come from different units, matching the hardware output wiring).
     * Values are real (dequantized) numbers.
     */
    void nextCycle(std::vector<double> &out);

    /** Total pool energy (sum of squares, real domain) — used by tests
     *  to demonstrate truncation drift. */
    double poolEnergy() const;

    /** Raw pool access for tests. */
    const std::vector<std::int64_t> &unitPool(int unit) const;

  private:
    /** One hardware cycle, 4*units dequantized outputs written to
     *  `out` in unit-interleaved order. Shared by next()/fill()/
     *  nextCycle so every consumer sees the identical stream. */
    void runCycle(double *out);

    BnnWallaceConfig config_;
    /** Pools, one vector of raw fixed-point values per unit. */
    std::vector<std::vector<std::int64_t>> pools_;
    /** Per-cycle transform staging, reused (no per-cycle alloc). */
    std::vector<std::int64_t> flatScratch_;
    /** Shared sequential read/write address (entry index). */
    int address_ = 0;
    /** Transforms completed in the current pool pass. */
    int transformsInPass_ = 0;
    /** Controller LFSR driving the variable shift select. */
    std::uint32_t shiftLfsr_ = 0xACE1u;
    std::vector<double> outputBuffer_;
    std::size_t outputPos_ = 0;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_BNN_WALLACE_HH
