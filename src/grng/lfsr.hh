/**
 * @file
 * Linear feedback shift registers.
 *
 * Two variants are provided:
 *
 *  - Lfsr: a classic Fibonacci LFSR over n bits with maximal-length taps
 *    from the Ward-Molteno table. Each step shifts one new feedback bit
 *    in. This is the uniform-bit source behind the CLT baseline GRNG and
 *    the seed initializer for everything else.
 *
 *  - CirculatingLfsr: the paper's formulation (Figure 3a, equation (9)):
 *    the register file rotates, the head bit is XORed into the tap
 *    positions, and no bit ever leaves the state. This is the exact
 *    behaviour that the RAM-based Linear Feedback (RLF) logic reproduces
 *    with a moving head instead of moving data, so it serves as the
 *    golden reference for the RLF equivalence tests.
 */

#ifndef VIBNN_GRNG_LFSR_HH
#define VIBNN_GRNG_LFSR_HH

#include <cstdint>
#include <vector>

namespace vibnn::grng
{

/**
 * Maximal-length feedback tap set for a given register length, from the
 * Ward-Molteno table. The returned set excludes the register length
 * itself (the implicit feedback output); e.g. for n = 255 it returns
 * {250, 252, 253} and for n = 8 it returns {4, 5, 6}, matching the
 * paper's Section 4.1.
 *
 * Supported lengths: a curated subset covering every width used in the
 * experiments; fatal() on unsupported lengths.
 */
std::vector<int> maximalTaps(int length);

/** True if maximalTaps() knows this length. */
bool hasMaximalTaps(int length);

/** Classic Fibonacci LFSR over `length` bits. */
class Lfsr
{
  public:
    /**
     * @param length Register count (bits of state).
     * @param seed Initial state; must not be all zero. Bits are taken
     *        from the low end; if fewer than `length` bits are provided
     *        the seed is cycled.
     */
    Lfsr(int length, std::uint64_t seed);

    /** Advance one step; returns the bit shifted out. */
    int step();

    /** Advance n steps. */
    void step(int n);

    /** Current state bit at position i (0-based). */
    int bit(int i) const { return state_[i]; }

    /** Number of ones in the state. */
    int popcount() const;

    /** Register length. */
    int length() const { return static_cast<int>(state_.size()); }

    /** Collect the next n output bits into a 64-bit word (LSB first). */
    std::uint64_t nextBits(int n);

    /** Raw state access for tests. */
    const std::vector<std::uint8_t> &state() const { return state_; }

  private:
    std::vector<std::uint8_t> state_;
    std::vector<int> taps_;
};

/**
 * The paper's circulating LFSR (Figure 3a): register 1 is the head; each
 * cycle every register takes its left neighbour's value, tap registers
 * additionally XOR in the head, and the head's old value rotates into the
 * top register. State popcount therefore changes by at most the number of
 * taps per cycle — the property that motivates both the tiny parallel
 * counter of the RLF-GRNG and its output-quality fix (Section 4.1.2).
 */
class CirculatingLfsr
{
  public:
    /**
     * @param length State bits.
     * @param taps Tap positions as distances from the head, e.g.
     *        {250, 252, 253} for length 255 (maximalTaps(length)).
     * @param seed_bits Initial state, one entry per bit (0/1), length
     *        must match.
     */
    CirculatingLfsr(int length, std::vector<int> taps,
                    std::vector<std::uint8_t> seed_bits);

    /** Advance one cycle. */
    void step();

    /** State bit i, where i = 0 is the current head. */
    int bitFromHead(int i) const;

    /** Number of ones in the state (invariant to rotation). */
    int popcount() const;

    int length() const { return static_cast<int>(state_.size()); }
    const std::vector<int> &taps() const { return taps_; }

  private:
    std::vector<std::uint8_t> state_;
    std::vector<int> taps_;
};

/** Expand a 64-bit seed into `length` seed bits that are not all zero. */
std::vector<std::uint8_t> expandSeedBits(int length, std::uint64_t seed);

} // namespace vibnn::grng

#endif // VIBNN_GRNG_LFSR_HH
