#include "grng/philox.hh"

#include <cmath>

#include "common/rng.hh"

namespace vibnn::grng
{

namespace
{

constexpr std::uint32_t kMult0 = 0xD2511F53u;
constexpr std::uint32_t kMult1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u; // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u; // sqrt(3) - 1

/** Philox-4x32-10: 128-bit counter -> 128-bit output under a 64-bit
 *  key. Reference constants from Salmon et al. */
inline void
philox4x32(std::uint32_t c0, std::uint32_t c1, std::uint32_t c2,
           std::uint32_t c3, std::uint32_t k0, std::uint32_t k1,
           std::uint32_t out[4])
{
    for (int round = 0; round < 10; ++round) {
        const std::uint64_t p0 =
            static_cast<std::uint64_t>(kMult0) * c0;
        const std::uint64_t p1 =
            static_cast<std::uint64_t>(kMult1) * c2;
        const std::uint32_t n0 =
            static_cast<std::uint32_t>(p1 >> 32) ^ c1 ^ k0;
        const std::uint32_t n1 = static_cast<std::uint32_t>(p1);
        const std::uint32_t n2 =
            static_cast<std::uint32_t>(p0 >> 32) ^ c3 ^ k1;
        const std::uint32_t n3 = static_cast<std::uint32_t>(p0);
        c0 = n0;
        c1 = n1;
        c2 = n2;
        c3 = n3;
        k0 += kWeyl0;
        k1 += kWeyl1;
    }
    out[0] = c0;
    out[1] = c1;
    out[2] = c2;
    out[3] = c3;
}

/** Top 53 bits -> uniform in the open interval (0, 1); the +0.5
 *  half-step keeps 0 out of Box-Muller's log. */
inline double
toUnit(std::uint64_t x)
{
    return (static_cast<double>(x >> 11) + 0.5) * 0x1p-53;
}

} // namespace

PhiloxGrng::PhiloxGrng(std::uint64_t seed)
{
    reseed(seed);
}

bool
PhiloxGrng::reseed(std::uint64_t seed)
{
    // One splitmix64 step decorrelates adjacent seeds (round seeds are
    // derived arithmetically upstream).
    const std::uint64_t key = splitmix64Next(seed);
    key0_ = static_cast<std::uint32_t>(key);
    key1_ = static_cast<std::uint32_t>(key >> 32);
    pos_ = 0;
    cacheValid_ = false; // cached pair belongs to the old key
    return true;
}

const double *
PhiloxGrng::ensureBlock(std::uint64_t block) const
{
    if (!cacheValid_ || block != cachedBlock_) {
        sampleBlock(block, cachedPair_);
        cachedBlock_ = block;
        cacheValid_ = true;
    }
    return cachedPair_;
}

void
PhiloxGrng::sampleBlock(std::uint64_t block, double out2[2]) const
{
    std::uint32_t r[4];
    philox4x32(static_cast<std::uint32_t>(block),
               static_cast<std::uint32_t>(block >> 32), 0, 0, key0_,
               key1_, r);
    const std::uint64_t a =
        static_cast<std::uint64_t>(r[0]) |
        (static_cast<std::uint64_t>(r[1]) << 32);
    const std::uint64_t b =
        static_cast<std::uint64_t>(r[2]) |
        (static_cast<std::uint64_t>(r[3]) << 32);
    const double u1 = toUnit(a);
    const double u2 = toUnit(b);
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 6.283185307179586476925286766559 * u2;
    out2[0] = radius * std::cos(angle);
    out2[1] = radius * std::sin(angle);
}

void
PhiloxGrng::fillAt(std::uint64_t offset, double *out,
                   std::size_t n) const
{
    // Stateless on purpose: fillFixedAt is documented to run
    // concurrently from multiple shards on one generator, so the
    // stranded phases must not touch the shared pair cache — they pay
    // the full-block transform into a local pair instead.
    std::size_t k = 0;
    double pair[2];
    if (n > 0 && (offset & 1)) { // stranded odd phase at the front
        sampleBlock(offset >> 1, pair);
        out[k++] = pair[1];
        ++offset;
    }
    for (; k + 2 <= n; k += 2, offset += 2) {
        sampleBlock(offset >> 1, pair);
        out[k] = pair[0];
        out[k + 1] = pair[1];
    }
    if (k < n) { // stranded even phase at the back
        sampleBlock(offset >> 1, pair);
        out[k] = pair[0];
    }
}

double
PhiloxGrng::next()
{
    // Phase-at-a-time consumption through the pair cache: the even
    // phase computes (and memoizes) the block, the odd phase is a
    // cache hit — one transform per two samples.
    const double value = ensureBlock(pos_ >> 1)[pos_ & 1];
    ++pos_;
    return value;
}

void
PhiloxGrng::fill(double *out, std::size_t n)
{
    fillAt(pos_, out, n);
    pos_ += n;
}

bool
PhiloxGrng::fillFixed(std::int32_t *out, std::size_t n,
                      const fixed::FixedPointFormat &format)
{
    fillFixedAt(pos_, out, n, format);
    pos_ += n;
    return true;
}

void
PhiloxGrng::fillFixedAt(std::uint64_t offset, std::int32_t *out,
                        std::size_t n,
                        const fixed::FixedPointFormat &format)
{
    // Fused generation + quantization in one cache-resident sweep; the
    // double chunk never leaves the stack.
    constexpr std::size_t kChunk = 256;
    double stage[kChunk];
    std::size_t k = 0;
    while (k < n) {
        const std::size_t take = std::min(n - k, kChunk);
        fillAt(offset + k, stage, take);
        for (std::size_t i = 0; i < take; ++i)
            out[k + i] = static_cast<std::int32_t>(format.fromReal(
                stage[i], fixed::RoundMode::Nearest));
        k += take;
    }
}

} // namespace vibnn::grng
