#include "grng/rlf.hh"

#include <algorithm>

#include "common/logging.hh"
#include "grng/lfsr.hh"

namespace vibnn::grng
{

RlfLogic::RlfLogic(int length, std::vector<std::uint8_t> seed_bits,
                   RlfUpdateMode mode)
    : state_(std::move(seed_bits)), taps_(maximalTaps(length)), mode_(mode)
{
    VIBNN_ASSERT(static_cast<int>(state_.size()) == length,
                 "seed size mismatch");
    VIBNN_ASSERT(taps_.size() == 3,
                 "RLF expects a 3-tap feedback function, got "
                 << taps_.size());
    for (std::uint8_t b : state_)
        sum_ += b;
}

int
RlfLogic::bitFromHead(int i) const
{
    const int n = length();
    return state_[(head_ + i) % n];
}

int
RlfLogic::maxStepDelta() const
{
    return mode_ == RlfUpdateMode::Single ? 3 : 5;
}

int
RlfLogic::step()
{
    const int n = length();
    // Every index taken here is head_ + offset with head_ < n and
    // offset <= n - 1, so one conditional subtract replaces the
    // modulo — this is the eps-stream hot path, and the integer
    // divisions were most of its cost.
    const auto wrap = [n](int position) {
        return position >= n ? position - n : position;
    };
    auto apply_xor = [this, wrap](int offset, std::uint8_t source) {
        const int position = wrap(head_ + offset);
        const std::uint8_t old_bit = state_[position];
        const std::uint8_t new_bit = old_bit ^ source;
        state_[position] = new_bit;
        sum_ += static_cast<int>(new_bit) - static_cast<int>(old_bit);
    };

    if (mode_ == RlfUpdateMode::Single) {
        // Equation (11): x(h+t) ^= x(h) for t in taps; head += 1.
        const std::uint8_t head_bit = state_[head_];
        for (int t : taps_)
            apply_xor(t, head_bit);
        head_ = wrap(head_ + 1);
    } else {
        // Equation (12): two logical steps fused. Offsets t get the
        // first head, offsets t+1 get the second head; the shared
        // offset (t3 = t2 + 1 for the {250,252,253} pattern) gets both.
        const std::uint8_t head0 = state_[head_];
        const std::uint8_t head1 = state_[wrap(head_ + 1)];
        for (int t : taps_)
            apply_xor(t, head0);
        for (int t : taps_)
            apply_xor(t + 1, head1);
        head_ = wrap(head_ + 2);
    }
    return sum_;
}

RlfLogicMicro::RlfLogicMicro(int length,
                             std::vector<std::uint8_t> seed_bits)
    : length_(length)
{
    VIBNN_ASSERT(static_cast<int>(seed_bits.size()) == length,
                 "seed size mismatch");
    VIBNN_ASSERT(length % 3 == 0,
                 "3-block banking needs length divisible by 3, got "
                 << length);
    const auto taps = maximalTaps(length);
    VIBNN_ASSERT(taps.size() == 3 && taps[0] == length - 5 &&
                 taps[1] == length - 3 && taps[2] == length - 2,
                 "micro model requires the {n-5, n-3, n-2} tap pattern");

    for (int bank = 0; bank < 3; ++bank)
        banks_[bank].assign(length / 3, 0);
    for (int p = 0; p < length; ++p)
        banks_[bankOf(p)][p / 3] = seed_bits[p];
    for (std::uint8_t b : seed_bits)
        sum_ += b;

    // Preload the buffer: taps at offsets n-5..n-1, then the two heads.
    for (int i = 0; i < 5; ++i)
        buffer_[i] = seed_bits[(length - 5 + i) % length];
    buffer_[5] = seed_bits[0];
    buffer_[6] = seed_bits[1];
}

int
RlfLogicMicro::step()
{
    const int n = length_;
    // Offsets relative to the head: buffer_[i] = x(h + n - 5 + i) for
    // i in 0..4; buffer_[5] = x(h); buffer_[6] = x(h + 1).
    const std::uint8_t head0 = buffer_[5];
    const std::uint8_t head1 = buffer_[6];

    // Equation (12) tap updates. For taps {n-5, n-3, n-2} the combined
    // pattern on buffer indices 0..4 (offsets n-5..n-1) is:
    //   offset n-5 (idx 0): ^ head0
    //   offset n-4 (idx 1): ^ head1
    //   offset n-3 (idx 2): ^ head0
    //   offset n-2 (idx 3): ^ head0 ^ head1
    //   offset n-1 (idx 4): ^ head1
    std::uint8_t updated[5];
    updated[0] = buffer_[0] ^ head0;
    updated[1] = buffer_[1] ^ head1;
    updated[2] = buffer_[2] ^ head0;
    updated[3] = buffer_[3] ^ head0 ^ head1;
    updated[4] = buffer_[4] ^ head1;

    // The small parallel counter + tap register + subtractor of Figure
    // 7b: the sum changes by (popcount of new taps) - (popcount of old
    // taps); at most +/-5.
    int old_taps = 0, new_taps = 0;
    for (int i = 0; i < 5; ++i) {
        old_taps += buffer_[i];
        new_taps += updated[i];
    }
    sum_ += new_taps - old_taps;

    // RAM schedule for this cycle. Writes retire the two taps leaving
    // the window (offsets n-5 and n-4); reads fetch the next two heads
    // (offsets 2 and 3). All four ops land in distinct-or-compatible
    // banks because the addresses are {h+2, h+3, h+n-5, h+n-4} which
    // cover bank residues {h+2, h+0, h+1, h+2} mod 3 — at most one read
    // plus one write per 2-port bank.
    int ops_per_bank_read[3] = {0, 0, 0};
    int ops_per_bank_write[3] = {0, 0, 0};

    auto ram_write = [&](int position, std::uint8_t value) {
        const int bank = bankOf(position);
        banks_[bank][position / 3] = value;
        ++ops_per_bank_write[bank];
        ++ramWrites_;
    };
    auto ram_read = [&](int position) -> std::uint8_t {
        const int bank = bankOf(position);
        ++ops_per_bank_read[bank];
        ++ramReads_;
        return banks_[bank][position / 3];
    };

    ram_write((head_ + n - 5) % n, updated[0]);
    ram_write((head_ + n - 4) % n, updated[1]);
    const std::uint8_t next_head0 = ram_read((head_ + 2) % n);
    const std::uint8_t next_head1 = ram_read((head_ + 3) % n);

    for (int bank = 0; bank < 3; ++bank) {
        const int ops = ops_per_bank_read[bank] + ops_per_bank_write[bank];
        peakBankOps_ = std::max(peakBankOps_, ops);
        VIBNN_ASSERT(ops_per_bank_read[bank] <= 1 &&
                     ops_per_bank_write[bank] <= 1,
                     "2-port RAM bank " << bank << " oversubscribed");
    }

    // Buffer shift for head += 2: surviving taps slide down two slots,
    // the old heads re-enter as the top taps (offsets n-2 and n-1,
    // because mod(h + n, n) = h), and the freshly read bits become the
    // new heads.
    buffer_[0] = updated[2];
    buffer_[1] = updated[3];
    buffer_[2] = updated[4];
    buffer_[3] = head0;
    buffer_[4] = head1;
    buffer_[5] = next_head0;
    buffer_[6] = next_head1;

    head_ = (head_ + 2) % n;
    return sum_;
}

} // namespace vibnn::grng
