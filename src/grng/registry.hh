/**
 * @file
 * Name-based factory for Gaussian generators.
 *
 * Benches, examples and parameterized tests construct generators by
 * string id so that sweeps ("for each design in ...") stay declarative.
 */

#ifndef VIBNN_GRNG_REGISTRY_HH
#define VIBNN_GRNG_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "grng/generator.hh"

namespace vibnn::grng
{

/**
 * Create a generator by id. Supported ids:
 *   "rlf"            RLF-GRNG, 255 bits x 8 lanes, combined update, mux
 *   "rlf-64"         the 64-lane deployment configuration (Table 2)
 *   "rlf-nomux"      same without the output multiplexer (ablation)
 *   "rlf-single"     plain 3-tap update (ablation)
 *   "bnnwallace"     BNNWallace, 8 units x 256 pool, sharing & shifting
 *   "wallace-nss"    hardware Wallace without sharing & shifting
 *   "wallace-256"    software Wallace, pool 256
 *   "wallace-1024"   software Wallace, pool 1024
 *   "wallace-4096"   software Wallace, pool 4096
 *   "clt-lfsr"       128-bit LFSR + parallel counter baseline
 *   "box-muller", "polar", "ziggurat", "cdf-inversion", "reference"
 *
 * fatal() on unknown ids.
 */
std::unique_ptr<GaussianGenerator> makeGenerator(const std::string &id,
                                                 std::uint64_t seed);

/** All ids accepted by makeGenerator, in presentation order. */
std::vector<std::string> generatorIds();

} // namespace vibnn::grng

#endif // VIBNN_GRNG_REGISTRY_HH
