#include "grng/parallel_counter.hh"

#include "common/logging.hh"

namespace vibnn::grng
{

ParallelCounter::ParallelCounter(int inputs) : inputs_(inputs)
{
    VIBNN_ASSERT(inputs >= 1, "parallel counter needs at least one input");
}

int
ParallelCounter::count(const std::vector<std::uint8_t> &bits) const
{
    VIBNN_ASSERT(static_cast<int>(bits.size()) >= inputs_,
                 "bit vector smaller than counter width");
    int total = 0;
    for (int i = 0; i < inputs_; ++i)
        total += bits[i] ? 1 : 0;
    return total;
}

int
ParallelCounter::outputBits() const
{
    int bits = 0;
    int capacity = 1; // counts representable: 2^bits
    while (capacity < inputs_ + 1) {
        capacity <<= 1;
        ++bits;
    }
    return bits == 0 ? 1 : bits;
}

int
ParallelCounter::fullAdders() const
{
    // Each full adder reduces three partial-count bits to two; counting
    // the classic construction gives n - ceil(log2(n+1)) full adders.
    return inputs_ - outputBits();
}

int
ParallelCounter::depth() const
{
    // Binary-tree reduction depth: ceil(log2(n)) adder levels.
    int levels = 0;
    while ((1 << levels) < inputs_)
        ++levels;
    return levels;
}

} // namespace vibnn::grng
