/**
 * @file
 * Software Wallace Gaussian generator (Section 4.2.1).
 *
 * Wallace's method keeps a pool of Gaussian numbers and produces new ones
 * by orthogonal recombination: four pool values x[1..4] are replaced by
 *   t = (x1 + x2 + x3 + x4) / 2
 *   x' = {t - x1, t - x2, x3 - t, x4 - t}
 * which is the Hadamard matrix H/2 of the paper — an orthogonal map, so
 * a Gaussian pool stays Gaussian and the pool energy is exactly
 * preserved. The catch: every output is a linear combination of the
 * initial pool, so the achievable (mu, sigma) stability is bounded by
 * the initial pool's own sampling error — the effect Table 1 shows as
 * errors shrinking with pool size 256 -> 1024 -> 4096.
 *
 * This software model selects read and write positions with a true
 * uniform RNG (the luxury the hardware version cannot afford) and
 * supports optional multi-loop transformations between outputs.
 */

#ifndef VIBNN_GRNG_WALLACE_HH
#define VIBNN_GRNG_WALLACE_HH

#include <array>
#include <cstdint>

#include "common/rng.hh"
#include "grng/generator.hh"

namespace vibnn::grng
{

/** The 4-point Hadamard recombination used by every Wallace variant. */
inline std::array<double, 4>
hadamardTransform4(const std::array<double, 4> &x)
{
    const double t = 0.5 * (x[0] + x[1] + x[2] + x[3]);
    return {t - x[0], t - x[1], x[2] - t, x[3] - t};
}

/** Configuration for the software Wallace generator. */
struct WallaceConfig
{
    /** Pool size (number of Gaussians kept); must be >= 8. */
    std::size_t poolSize = 1024;
    /** In-place transformations performed per emitted quadruple. The
     *  classic algorithm uses >1 to decorrelate outputs. */
    int loopsPerOutput = 1;
    /** Normalize the initial pool to exactly zero mean / unit variance
     *  (what a hardware ROM image would ship with). The classic software
     *  algorithm leaves the raw samples, keeping their sampling error. */
    bool normalizeInitialPool = false;
    std::uint64_t seed = 1;
};

/** Software Wallace generator with random pool addressing. */
class WallaceGrng : public GaussianGenerator
{
  public:
    explicit WallaceGrng(const WallaceConfig &config);

    double next() override;
    std::string name() const override;

    /** Pool inspection for tests (energy-conservation invariants). */
    const std::vector<double> &pool() const { return pool_; }

    /** Sum of squares over the pool. */
    double poolEnergy() const;

  private:
    /** One in-place transformation of four random pool slots; returns
     *  the four new values. */
    std::array<double, 4> transformOnce();

    WallaceConfig config_;
    Rng rng_;
    std::vector<double> pool_;
    std::array<double, 4> outputs_{};
    std::size_t outputPos_ = 4;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_WALLACE_HH
