/**
 * @file
 * Software Wallace Gaussian generator (Section 4.2.1).
 *
 * Wallace's method keeps a pool of Gaussian numbers and produces new ones
 * by orthogonal recombination: four pool values x[1..4] are replaced by
 *   t = (x1 + x2 + x3 + x4) / 2
 *   x' = {t - x1, t - x2, x3 - t, x4 - t}
 * which is the Hadamard matrix H/2 of the paper — an orthogonal map, so
 * a Gaussian pool stays Gaussian and the pool energy is exactly
 * preserved. The catch: every output is a linear combination of the
 * initial pool, so the achievable (mu, sigma) stability is bounded by
 * the initial pool's own sampling error — the effect Table 1 shows as
 * errors shrinking with pool size 256 -> 1024 -> 4096.
 *
 * Addressing follows the paper's hardware Wallace unit: each pool pass
 * draws one random (offset, stride) pair with stride coprime to the
 * pool size, and visits the pool at positions offset + m * stride
 * (mod pool). That is a full permutation of the pool, so the four
 * slots of every quadruple are distinct *by construction* — no
 * rejection/retry loop anywhere on the hot path — while the per-pass
 * re-randomization keeps the recombination partners changing the way
 * the classic software algorithm's per-quadruple random addressing
 * does. Outputs are produced a whole pass at a time; next() hands out
 * buffered singles and fill() writes entire passes straight into the
 * caller's block.
 */

#ifndef VIBNN_GRNG_WALLACE_HH
#define VIBNN_GRNG_WALLACE_HH

#include <array>
#include <cstdint>

#include "common/rng.hh"
#include "grng/generator.hh"

namespace vibnn::grng
{

/** The 4-point Hadamard recombination used by every Wallace variant. */
inline std::array<double, 4>
hadamardTransform4(const std::array<double, 4> &x)
{
    const double t = 0.5 * (x[0] + x[1] + x[2] + x[3]);
    return {t - x[0], t - x[1], x[2] - t, x[3] - t};
}

/** Configuration for the software Wallace generator. */
struct WallaceConfig
{
    /** Pool size (number of Gaussians kept); must be >= 8. */
    std::size_t poolSize = 1024;
    /** In-place transformations performed per emitted quadruple. The
     *  classic algorithm uses >1 to decorrelate outputs. */
    int loopsPerOutput = 1;
    /** Normalize the initial pool to exactly zero mean / unit variance
     *  (what a hardware ROM image would ship with). The classic software
     *  algorithm leaves the raw samples, keeping their sampling error. */
    bool normalizeInitialPool = false;
    std::uint64_t seed = 1;
};

/** Software Wallace generator with stride/offset pool addressing. */
class WallaceGrng : public GaussianGenerator
{
  public:
    explicit WallaceGrng(const WallaceConfig &config);

    double next() override;
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;
    std::string name() const override;

    /** Pool inspection for tests (energy-conservation invariants). */
    const std::vector<double> &pool() const { return pool_; }

    /** Sum of squares over the pool. */
    double poolEnergy() const;

    /** Outputs emitted per pool pass: floor(pool/4) quadruples. */
    std::size_t passOutputs() const { return pool_.size() / 4 * 4; }

  private:
    /**
     * One full pool pass: draw (offset, stride), transform every
     * quadruple of the induced permutation in place. If `out` is
     * non-null the passOutputs() new values are written there in
     * transform order; loopsPerOutput > 1 runs silent passes (null
     * out) between emitting ones.
     */
    void transformPass(double *out);

    /** Run the configured silent passes, then one emitting pass. */
    void emitPass(double *out);

    WallaceConfig config_;
    Rng rng_;
    std::vector<double> pool_;
    /** Buffered outputs of the most recent emitting pass (next()). */
    std::vector<double> blockBuffer_;
    std::size_t blockPos_ = 0;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_WALLACE_HH
