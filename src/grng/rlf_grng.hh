/**
 * @file
 * The parallel RLF-GRNG (Figure 8 of the paper).
 *
 * m LF-updater lanes run in lockstep: the seed memory (SeMem) is a RAM
 * of `length` words, each m bits wide, so lane j owns bit column j and
 * the indexer/controller is shared by all lanes — the key hardware
 * economy of the design. Every cycle each lane emits its state popcount,
 * an approximately N(n/2, n/4) binomial sample.
 *
 * A raw lane stream is useless on its own: consecutive popcounts differ
 * by at most 5, so the stream is massively autocorrelated. The block
 * diagram fixes this with output multiplexers: lanes are grouped in
 * fours, and each group's four outputs are permuted by a rotating select
 * shared across groups, so any single output port hops between four
 * independent lanes on consecutive cycles. The serial stream exposed by
 * next() walks output ports cycle-major, which reproduces exactly what a
 * consumer wired to the multiplexer outputs would see. The ablation
 * bench (bench_ablation_rlf) shows the multiplexer is what makes the
 * runs test pass.
 */

#ifndef VIBNN_GRNG_RLF_GRNG_HH
#define VIBNN_GRNG_RLF_GRNG_HH

#include <cstdint>
#include <memory>

#include "grng/generator.hh"
#include "grng/rlf.hh"

namespace vibnn::grng
{

/** Configuration for RlfGrng. */
struct RlfGrngConfig
{
    /** Seed bits per lane (the paper's SeMem depth); 255 default. */
    int length = 255;
    /** Number of parallel LF-updater lanes (SeMem word width). */
    int lanes = 8;
    /** Update mode; Combined is the paper's optimized design. */
    RlfUpdateMode mode = RlfUpdateMode::Combined;
    /** Enable the output multiplexing stage (Figure 8). Disabling it is
     *  only for the ablation study. */
    bool outputMux = true;
    /**
     * Balance every lane's seed to popcount floor(n/2) or ceil(n/2)
     * (alternating across lanes). The seeds live in an initialization
     * ROM whose image the designer is free to choose; starting each
     * lane at the stationary mode of the binomial walk removes the
     * start-up transient from the output distribution.
     */
    bool balancedSeeds = true;
    /** Master seed; each lane derives an independent seed from it. */
    std::uint64_t seed = 1;
};

/** Parallel RAM-based Linear Feedback GRNG. */
class RlfGrng : public GaussianGenerator
{
  public:
    explicit RlfGrng(const RlfGrngConfig &config);

    /** Next normalized sample. */
    double next() override;

    /** Block fill: steps whole lane cycles directly into `out`. */
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;

    std::string name() const override;

    /** Next raw binomial count in [0, length]. */
    int nextCount();

    /**
     * Produce one full cycle of counts, one per lane, in multiplexed
     * output-port order. Matches the hardware's per-cycle bandwidth of
     * `lanes` samples.
     */
    void nextCycleCounts(std::vector<int> &out);

    const RlfGrngConfig &config() const { return config_; }

    /** Normalization helpers: count -> approximately N(0,1). */
    double normalize(int count) const;

  private:
    void refillBuffer();

    RlfGrngConfig config_;
    std::vector<RlfLogic> lanes_;
    std::vector<int> cycleBuffer_;
    /** Pre-mux lane counts, reused every cycle (no per-cycle alloc). */
    std::vector<int> rawScratch_;
    std::size_t bufferPos_ = 0;
    std::uint64_t cycle_ = 0;
    double mean_;
    double invStddev_;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_RLF_GRNG_HH
