/**
 * @file
 * The parallel RLF-GRNG (Figure 8 of the paper).
 *
 * m LF-updater lanes run in lockstep: the seed memory (SeMem) is a RAM
 * of `length` words, each m bits wide, so lane j owns bit column j and
 * the indexer/controller is shared by all lanes — the key hardware
 * economy of the design. Every cycle each lane emits its state popcount,
 * an approximately N(n/2, n/4) binomial sample.
 *
 * A raw lane stream is useless on its own: consecutive popcounts differ
 * by at most 5, so the stream is massively autocorrelated. The block
 * diagram fixes this with output multiplexers: lanes are grouped in
 * fours, and each group's four outputs are permuted by a rotating select
 * shared across groups, so any single output port hops between four
 * independent lanes on consecutive cycles. The serial stream exposed by
 * next() walks output ports cycle-major, which reproduces exactly what a
 * consumer wired to the multiplexer outputs would see. The ablation
 * bench (bench_ablation_rlf) shows the multiplexer is what makes the
 * runs test pass.
 */

#ifndef VIBNN_GRNG_RLF_GRNG_HH
#define VIBNN_GRNG_RLF_GRNG_HH

#include <cstdint>
#include <memory>

#include "grng/generator.hh"
#include "grng/rlf.hh"

namespace vibnn::grng
{

/** Configuration for RlfGrng. */
struct RlfGrngConfig
{
    /** Seed bits per lane (the paper's SeMem depth); 255 default. */
    int length = 255;
    /** Number of parallel LF-updater lanes (SeMem word width). */
    int lanes = 8;
    /** Update mode; Combined is the paper's optimized design. */
    RlfUpdateMode mode = RlfUpdateMode::Combined;
    /** Enable the output multiplexing stage (Figure 8). Disabling it is
     *  only for the ablation study. */
    bool outputMux = true;
    /**
     * Balance every lane's seed to popcount floor(n/2) or ceil(n/2)
     * (alternating across lanes). The seeds live in an initialization
     * ROM whose image the designer is free to choose; starting each
     * lane at the stationary mode of the binomial walk removes the
     * start-up transient from the output distribution.
     */
    bool balancedSeeds = true;
    /** Master seed; each lane derives an independent seed from it. */
    std::uint64_t seed = 1;
};

/** Parallel RAM-based Linear Feedback GRNG. */
class RlfGrng : public GaussianGenerator
{
  public:
    explicit RlfGrng(const RlfGrngConfig &config);

    /** Next normalized sample. */
    double next() override;

    /** Block fill: steps whole lane cycles directly into `out`. */
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;

    /**
     * Fused generation + quantization: counts map to fixed-point raws
     * through a 256-entry count -> fromReal(normalize(count)) table, so
     * the double intermediate disappears entirely from the eps supply.
     * Available on the transposed kernel path only (returns false
     * otherwise, and callers fall back to fill() + quantize).
     */
    bool fillFixed(std::int32_t *out, std::size_t n,
                   const fixed::FixedPointFormat &format) override;

    std::string name() const override;

    /** Next raw binomial count in [0, length]. */
    int nextCount();

    /**
     * Produce one full cycle of counts, one per lane, in multiplexed
     * output-port order. Matches the hardware's per-cycle bandwidth of
     * `lanes` samples.
     */
    void nextCycleCounts(std::vector<int> &out);

    const RlfGrngConfig &config() const { return config_; }

    /** Normalization helpers: count -> approximately N(0,1). */
    double normalize(int count) const;

    /** True when the transposed lane-parallel kernel path drives this
     *  instance (Combined mode with the {n-5, n-3, n-2} tap pattern);
     *  false means the per-lane RlfLogic fallback. Either way the
     *  stream is identical — the kernel tiers are ctest-pinned
     *  bit-exact against RlfLogic. */
    bool usesKernelPath() const { return kernelPath_; }

  private:
    void refillBuffer();

    /** Kernel path: run `cycles` transposed iterations and emit
     *  post-mux counts (cycles x lanes, port-major within a cycle)
     *  into `counts`; advances cycle_. */
    void generateMuxedCycles(std::size_t cycles, std::int32_t *counts);

    /** The count -> fixed-point raw table for fillFixed (rebuilt when
     *  the requested format changes). */
    const std::int32_t *fixedLut(const fixed::FixedPointFormat &format);

    RlfGrngConfig config_;
    /** Per-lane functional models — the fallback path (Single mode or
     *  non-{n-5, n-3, n-2} tap patterns); empty on the kernel path. */
    std::vector<RlfLogic> lanes_;
    std::vector<int> cycleBuffer_;
    /** Pre-mux lane counts, reused every cycle (no per-cycle alloc). */
    std::vector<int> rawScratch_;
    std::size_t bufferPos_ = 0;
    std::uint64_t cycle_ = 0;
    double mean_;
    double invStddev_;

    /** Transposed bit-plane state (kernel path; see
     *  accel/kernels RlfState): groups planes of `length` bytes. */
    bool kernelPath_ = false;
    int planeGroups_ = 0;
    int planeHead_ = 0;
    std::vector<std::uint8_t> planes_;
    std::vector<std::int32_t> planeSums_;
    /** Burst scratch: raw (pre-mux) counts from the kernel. */
    std::vector<std::int32_t> burstRaw_;
    /** Burst scratch: post-mux counts handed to fill()/fillFixed(). */
    std::vector<std::int32_t> burstMuxed_;
    /** fillFixed count -> raw table and the format it was built for. */
    std::vector<std::int32_t> lut_;
    int lutTotalBits_ = -1;
    int lutFracBits_ = -1;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_RLF_GRNG_HH
