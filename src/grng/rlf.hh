/**
 * @file
 * RAM-based Linear Feedback (RLF) logic — Section 4.1 of the paper.
 *
 * The RLF keeps the LFSR state stationary in RAM and moves a head index
 * instead of shifting data: for each tap t, x(h+t) ^= x(h), then the head
 * advances. The Gaussian output is the popcount of the whole state
 * (binomial B(n, 1/2) ~ N(n/2, n/4)), maintained *incrementally* from
 * the tap deltas so no wide parallel counter is needed.
 *
 * Two models are provided:
 *
 *  - RlfLogic: functional model on a flat bit vector. Supports both the
 *    paper's plain 3-tap update (equation (11), head += 1, output delta
 *    bounded by 3) and the quality-improving combined 5-tap/2-head update
 *    (equation (12), head += 2, delta bounded by 5). One RlfLogic is one
 *    "LF-updater lane" of the parallel generator.
 *
 *  - RlfLogicMicro: micro-architectural model of the combined update
 *    with the 3-block 2-port RAM banking scheme (Figure 6), the 7-bit
 *    buffer register (Figure 5) and the block/position indexer (Figure
 *    7a). It checks the RAM port budget every cycle and must match
 *    RlfLogic bit-for-bit; the equivalence is enforced by unit tests.
 *
 * The scheduling here is slightly tighter than the paper's prose: with
 * the buffer caching both heads and all five taps, the retiring old heads
 * *become* the incoming offset-253/254 taps (mod(h + 255, 255) = h), so
 * an iteration needs only 2 RAM reads (the next two heads) and 2 RAM
 * writes (the two taps leaving the window) — within the paper's quoted
 * 3-read/2-write budget and satisfiable by three 2-port banks.
 */

#ifndef VIBNN_GRNG_RLF_HH
#define VIBNN_GRNG_RLF_HH

#include <cstdint>
#include <vector>

namespace vibnn::grng
{

/** Update flavour for RlfLogic. */
enum class RlfUpdateMode
{
    /** Equation (11): 3 taps, one head, head advances by 1. */
    Single,
    /** Equation (12): combined two-step, 5 taps, two heads, head += 2. */
    Combined,
};

/** Functional RLF lane: stationary bits, moving head, incremental sum. */
class RlfLogic
{
  public:
    /**
     * @param length State size in bits; 255 in the paper.
     * @param seed_bits Initial seed (length entries of 0/1).
     * @param mode Plain or combined update.
     *
     * Taps are taken from maximalTaps(length); for 255 bits these are
     * {250, 252, 253} as in the paper.
     */
    RlfLogic(int length, std::vector<std::uint8_t> seed_bits,
             RlfUpdateMode mode = RlfUpdateMode::Combined);

    /** Advance one iteration and return the new state popcount. */
    int step();

    /** Current popcount without stepping. */
    int sum() const { return sum_; }

    /** Current head position. */
    int head() const { return head_; }

    int length() const { return static_cast<int>(state_.size()); }
    RlfUpdateMode mode() const { return mode_; }

    /** Bit at absolute position i (for equivalence tests). */
    int bit(int i) const { return state_[i]; }

    /** Bit at offset i from the current head. */
    int bitFromHead(int i) const;

    /** Largest possible |output(k+1) - output(k)|: 3 or 5 by mode. */
    int maxStepDelta() const;

  private:
    std::vector<std::uint8_t> state_;
    std::vector<int> taps_;
    int head_ = 0;
    int sum_ = 0;
    RlfUpdateMode mode_;
};

/**
 * Micro-architectural model of one combined-update RLF lane with 3-bank
 * RAM, buffer register and indexer. Functionally identical to RlfLogic
 * in Combined mode; additionally tracks RAM traffic and asserts the
 * 2-port constraint per bank per cycle.
 */
class RlfLogicMicro
{
  public:
    /**
     * @param length State bits; must be divisible by 3 (banking) and
     *        have taps {length-5, length-3, length-2} (the paper's
     *        pattern; true for 255).
     * @param seed_bits Initial seed bits.
     */
    RlfLogicMicro(int length, std::vector<std::uint8_t> seed_bits);

    /** Advance one iteration (two logical LFSR steps), return popcount. */
    int step();

    int sum() const { return sum_; }
    int head() const { return head_; }
    int length() const { return length_; }

    /** Total RAM reads/writes performed so far (for the hw model). */
    std::uint64_t ramReads() const { return ramReads_; }
    std::uint64_t ramWrites() const { return ramWrites_; }

    /** Max simultaneous ops observed on any single bank in one cycle. */
    int peakBankOps() const { return peakBankOps_; }

  private:
    /** Positions are banked by p % 3 at address p / 3 (Figure 6). */
    int bankOf(int position) const { return position % 3; }

    int length_;
    /** Three RAM banks, each holding length/3 bits. */
    std::vector<std::uint8_t> banks_[3];
    /** Buffer register: tap values at offsets 250..254 (indices 0..4)
     *  plus the two head values (indices 5 = head, 6 = head+1). */
    std::uint8_t buffer_[7];
    int head_ = 0;
    int sum_ = 0;
    std::uint64_t ramReads_ = 0;
    std::uint64_t ramWrites_ = 0;
    int peakBankOps_ = 0;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_RLF_HH
