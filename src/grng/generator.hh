/**
 * @file
 * Abstract interface for Gaussian random number generators.
 *
 * Everything that produces (approximately) unit-Gaussian samples in this
 * project — the paper's RLF-GRNG and BNNWallace-GRNG, the hardware
 * baseline Wallace-NSS, and the software baselines (Box-Muller, Ziggurat,
 * polar, CDF inversion, software Wallace) — implements this interface so
 * the statistical benches and the BNN sampling layer can treat them
 * uniformly.
 */

#ifndef VIBNN_GRNG_GENERATOR_HH
#define VIBNN_GRNG_GENERATOR_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "fixed/fixed_point.hh"

namespace vibnn::grng
{

/** A source of approximately N(0, 1) samples. */
class GaussianGenerator
{
  public:
    virtual ~GaussianGenerator() = default;

    /** Next sample, normalized to target N(0, 1). */
    virtual double next() = 0;

    /**
     * Fill `out[0..n)` with the next n samples of the stream. The block
     * form is the hot-path API: concrete generators override it with a
     * devirtualized inner loop that emits whole hardware cycles (a full
     * Wallace pool pass, all RLF lanes, ...) straight into the caller's
     * buffer. Overrides must produce bit-identical values to n repeated
     * next() calls — tests enforce this for every registered generator.
     */
    virtual void
    fill(double *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next();
    }

    /** Convenience overload filling a whole vector. */
    void
    fill(std::vector<double> &out)
    {
        fill(out.data(), out.size());
    }

    /**
     * Fused generation + quantization fast path: fill `out[0..n)` with
     * the next n samples already on `format`'s fixed-point grid,
     * consuming the identical stream positions fill() would. Returns
     * false when the generator has no fused path — callers then fall
     * back to fill() plus a separate quantization pass. When it returns
     * true, the raw values are bit-identical to fill() followed by
     * FixedPointFormat::fromReal(value, RoundMode::Nearest) per sample
     * (ctest-enforced), so the fast path is invisible in results — it
     * only removes the double intermediate from the eps supply.
     */
    virtual bool
    fillFixed(std::int32_t *, std::size_t,
              const fixed::FixedPointFormat &)
    {
        return false;
    }

    /**
     * True for counter-based generators whose streams support random
     * access: sample i is a pure function of (seed, i), so any worker
     * can produce any subrange of the stream via fillFixedAt() and the
     * sequential cursor can be repositioned with seekTo(). Stateful
     * generators (LFSR walks, Wallace pools) return false.
     */
    virtual bool
    splittable() const
    {
        return false;
    }

    /**
     * Random-access fused fill: `out[0..n)` receives quantized samples
     * `offset .. offset + n` of this generator's seeded stream, without
     * moving the sequential cursor. Only meaningful when splittable();
     * implementations must be re-entrant (no mutable state), so shards
     * on different threads may call it concurrently on one generator.
     */
    virtual void
    fillFixedAt(std::uint64_t, std::int32_t *, std::size_t,
                const fixed::FixedPointFormat &)
    {
        fatal(name() + " is not splittable (fillFixedAt unsupported)");
    }

    /** Reposition the sequential stream to sample `offset`. Only
     *  meaningful when splittable(). */
    virtual void
    seekTo(std::uint64_t)
    {
        fatal(name() + " is not splittable (seekTo unsupported)");
    }

    /**
     * Cheap in-place rekey: restart this generator as if freshly
     * constructed with `seed` (stream position 0). Returns false when
     * re-seeding is as expensive as construction (the caller then
     * builds a new instance); counter-based generators override this so
     * per-round stream switches cost two register writes instead of a
     * heap allocation.
     */
    virtual bool
    reseed(std::uint64_t)
    {
        return false;
    }

    /** Short identifier used in bench tables. */
    virtual std::string name() const = 0;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_GENERATOR_HH
