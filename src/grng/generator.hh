/**
 * @file
 * Abstract interface for Gaussian random number generators.
 *
 * Everything that produces (approximately) unit-Gaussian samples in this
 * project — the paper's RLF-GRNG and BNNWallace-GRNG, the hardware
 * baseline Wallace-NSS, and the software baselines (Box-Muller, Ziggurat,
 * polar, CDF inversion, software Wallace) — implements this interface so
 * the statistical benches and the BNN sampling layer can treat them
 * uniformly.
 */

#ifndef VIBNN_GRNG_GENERATOR_HH
#define VIBNN_GRNG_GENERATOR_HH

#include <string>
#include <vector>

namespace vibnn::grng
{

/** A source of approximately N(0, 1) samples. */
class GaussianGenerator
{
  public:
    virtual ~GaussianGenerator() = default;

    /** Next sample, normalized to target N(0, 1). */
    virtual double next() = 0;

    /** Fill a buffer with consecutive samples (overridable for batch
     *  generators that produce several samples per cycle). */
    virtual void
    fill(std::vector<double> &out)
    {
        for (auto &x : out)
            x = next();
    }

    /** Short identifier used in bench tables. */
    virtual std::string name() const = 0;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_GENERATOR_HH
