/**
 * @file
 * Abstract interface for Gaussian random number generators.
 *
 * Everything that produces (approximately) unit-Gaussian samples in this
 * project — the paper's RLF-GRNG and BNNWallace-GRNG, the hardware
 * baseline Wallace-NSS, and the software baselines (Box-Muller, Ziggurat,
 * polar, CDF inversion, software Wallace) — implements this interface so
 * the statistical benches and the BNN sampling layer can treat them
 * uniformly.
 */

#ifndef VIBNN_GRNG_GENERATOR_HH
#define VIBNN_GRNG_GENERATOR_HH

#include <cstddef>
#include <string>
#include <vector>

namespace vibnn::grng
{

/** A source of approximately N(0, 1) samples. */
class GaussianGenerator
{
  public:
    virtual ~GaussianGenerator() = default;

    /** Next sample, normalized to target N(0, 1). */
    virtual double next() = 0;

    /**
     * Fill `out[0..n)` with the next n samples of the stream. The block
     * form is the hot-path API: concrete generators override it with a
     * devirtualized inner loop that emits whole hardware cycles (a full
     * Wallace pool pass, all RLF lanes, ...) straight into the caller's
     * buffer. Overrides must produce bit-identical values to n repeated
     * next() calls — tests enforce this for every registered generator.
     */
    virtual void
    fill(double *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next();
    }

    /** Convenience overload filling a whole vector. */
    void
    fill(std::vector<double> &out)
    {
        fill(out.data(), out.size());
    }

    /** Short identifier used in bench tables. */
    virtual std::string name() const = 0;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_GENERATOR_HH
