/**
 * @file
 * Baseline CLT GRNG: LFSR + full-width parallel counter.
 *
 * This is the conventional design the paper starts from (Section 4.1.1,
 * after Andraka & Phelps): the popcount of an n-bit LFSR state follows
 * B(n, 1/2) ~ N(n/2, n/4). It is the baseline the RLF-GRNG improves on:
 * correct but register- and adder-hungry, because the full state must be
 * both stored in flip-flops and recounted every cycle.
 */

#ifndef VIBNN_GRNG_CLT_GRNG_HH
#define VIBNN_GRNG_CLT_GRNG_HH

#include <cstdint>

#include "grng/generator.hh"
#include "grng/lfsr.hh"
#include "grng/parallel_counter.hh"

namespace vibnn::grng
{

/** LFSR + parallel-counter Gaussian generator. */
class CltLfsrGrng : public GaussianGenerator
{
  public:
    /**
     * @param length LFSR bit count (must satisfy the de Moivre n > 9
     *        condition of equation (8); n >= 32 recommended).
     * @param seed Seed for the LFSR state.
     * @param steps_per_sample LFSR steps between consecutive outputs.
     *        With 1 step the consecutive popcounts are strongly
     *        correlated; a full refresh needs ~length steps. Exposed so
     *        benches can show the quality/throughput trade-off.
     */
    CltLfsrGrng(int length, std::uint64_t seed, int steps_per_sample = 1);

    double next() override;

    /** Block fill: devirtualized LFSR step + popcount loop. */
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;

    std::string name() const override;

    /** Raw binomial count in [0, length]. */
    int nextCount();

    /** The structural PC model (for resource estimation). */
    const ParallelCounter &counter() const { return counter_; }

  private:
    Lfsr lfsr_;
    ParallelCounter counter_;
    int stepsPerSample_;
    double mean_;
    double invStddev_;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_CLT_GRNG_HH
