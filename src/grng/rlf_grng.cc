#include "grng/rlf_grng.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "grng/lfsr.hh"

namespace vibnn::grng
{

RlfGrng::RlfGrng(const RlfGrngConfig &config) : config_(config)
{
    VIBNN_ASSERT(config.lanes >= 1, "need at least one lane");
    VIBNN_ASSERT(config.length >= 19,
                 "binomial approximation needs n > 18 (equation (8))");

    Rng seeder(config.seed);
    lanes_.reserve(config.lanes);
    for (int lane = 0; lane < config.lanes; ++lane) {
        auto seed_bits = expandSeedBits(config.length, seeder.next());
        if (config.balancedSeeds) {
            // Rebalance to popcount floor(n/2) (even lanes) or
            // ceil(n/2) (odd lanes) by flipping random positions.
            const int target = config.length / 2 + (lane & 1);
            int ones = 0;
            for (std::uint8_t b : seed_bits)
                ones += b;
            Rng flipper(seeder.next());
            while (ones != target) {
                const auto pos = flipper.uniformInt(
                    static_cast<std::uint64_t>(config.length));
                if (ones < target && !seed_bits[pos]) {
                    seed_bits[pos] = 1;
                    ++ones;
                } else if (ones > target && seed_bits[pos]) {
                    seed_bits[pos] = 0;
                    --ones;
                }
            }
        }
        lanes_.emplace_back(config.length, std::move(seed_bits),
                            config.mode);
    }

    mean_ = 0.5 * config.length;
    invStddev_ = 1.0 / std::sqrt(0.25 * config.length);
    cycleBuffer_.resize(config.lanes);
    bufferPos_ = cycleBuffer_.size(); // force refill on first draw
}

double
RlfGrng::normalize(int count) const
{
    return (static_cast<double>(count) - mean_) * invStddev_;
}

void
RlfGrng::refillBuffer()
{
    nextCycleCounts(cycleBuffer_);
    bufferPos_ = 0;
}

void
RlfGrng::nextCycleCounts(std::vector<int> &out)
{
    out.resize(lanes_.size());

    // Step every lane once (they share one indexer in hardware).
    rawScratch_.resize(lanes_.size());
    std::vector<int> &raw = rawScratch_;
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane)
        raw[lane] = lanes_[lane].step();

    if (!config_.outputMux) {
        out = raw;
        ++cycle_;
        return;
    }

    // Output multiplexing: within each group of four lanes, output port
    // p serves lane (p + cycle) % group_size this cycle. The rotating
    // select is shared by all groups (one controller). Full groups use
    // the power-of-two mask instead of the per-port division — this
    // loop runs once per emitted sample and the divisions dominated it.
    const std::size_t n = lanes_.size();
    const auto rot = static_cast<std::size_t>(cycle_);
    for (std::size_t base = 0; base < n; base += 4) {
        const std::size_t group = std::min<std::size_t>(4, n - base);
        if (group == 4) {
            for (std::size_t port = 0; port < 4; ++port)
                out[base + port] = raw[base + ((port + rot) & 3)];
        } else {
            for (std::size_t port = 0; port < group; ++port)
                out[base + port] = raw[base + (port + rot) % group];
        }
    }
    ++cycle_;
}

int
RlfGrng::nextCount()
{
    if (bufferPos_ >= cycleBuffer_.size())
        refillBuffer();
    return cycleBuffer_[bufferPos_++];
}

double
RlfGrng::next()
{
    return normalize(nextCount());
}

void
RlfGrng::fill(double *out, std::size_t n)
{
    std::size_t k = 0;
    while (k < n) {
        if (bufferPos_ >= cycleBuffer_.size())
            refillBuffer();
        // Normalize straight out of the cycle buffer — one virtual call
        // per fill() instead of one per sample, and the per-cycle lane
        // scratch is a reused member.
        const std::size_t take =
            std::min(n - k, cycleBuffer_.size() - bufferPos_);
        for (std::size_t i = 0; i < take; ++i)
            out[k + i] = normalize(cycleBuffer_[bufferPos_ + i]);
        bufferPos_ += take;
        k += take;
    }
}

std::string
RlfGrng::name() const
{
    return strfmt("RLF-GRNG(%dx%d%s)", config_.length, config_.lanes,
                  config_.outputMux ? "" : ",nomux");
}

} // namespace vibnn::grng
