#include "grng/rlf_grng.hh"

#include <algorithm>
#include <cmath>

#include "accel/kernels/kernels.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "grng/lfsr.hh"

namespace vibnn::grng
{

namespace
{

/** Cycles generated per kernel burst in fill()/fillFixed(): large
 *  enough to amortize the dispatch call, small enough that the counts
 *  scratch stays L1-resident (512 cycles x 8 lanes x 4 B = 16 KiB). */
constexpr std::size_t kBurstCycles = 512;

} // namespace

RlfGrng::RlfGrng(const RlfGrngConfig &config) : config_(config)
{
    VIBNN_ASSERT(config.lanes >= 1, "need at least one lane");
    VIBNN_ASSERT(config.length >= 19,
                 "binomial approximation needs n > 18 (equation (8))");

    // The transposed lane-parallel kernel expresses exactly the
    // combined update with the {n-5, n-3, n-2} tap pattern (true for
    // the paper's 255); anything else steps per-lane RlfLogic models.
    const auto taps = maximalTaps(config.length);
    kernelPath_ = config.mode == RlfUpdateMode::Combined &&
        taps.size() == 3 && taps[0] == config.length - 5 &&
        taps[1] == config.length - 3 && taps[2] == config.length - 2;
    if (kernelPath_) {
        planeGroups_ = (config.lanes + 7) / 8;
        // Unused bit columns of a partial group stay all-zero: XOR
        // masks derived from zero heads never flip them, so they cost
        // nothing and emit nothing.
        planes_.assign(
            static_cast<std::size_t>(config.length) * planeGroups_, 0);
        planeSums_.assign(static_cast<std::size_t>(planeGroups_) * 8, 0);
    } else {
        lanes_.reserve(config.lanes);
    }

    Rng seeder(config.seed);
    for (int lane = 0; lane < config.lanes; ++lane) {
        auto seed_bits = expandSeedBits(config.length, seeder.next());
        if (config.balancedSeeds) {
            // Rebalance to popcount floor(n/2) (even lanes) or
            // ceil(n/2) (odd lanes) by flipping random positions.
            const int target = config.length / 2 + (lane & 1);
            int ones = 0;
            for (std::uint8_t b : seed_bits)
                ones += b;
            Rng flipper(seeder.next());
            while (ones != target) {
                const auto pos = flipper.uniformInt(
                    static_cast<std::uint64_t>(config.length));
                if (ones < target && !seed_bits[pos]) {
                    seed_bits[pos] = 1;
                    ++ones;
                } else if (ones > target && seed_bits[pos]) {
                    seed_bits[pos] = 0;
                    --ones;
                }
            }
        }
        if (kernelPath_) {
            // Scatter this lane's bits into its bit-plane column.
            std::uint8_t *plane = planes_.data() +
                static_cast<std::size_t>(lane / 8) * config.length;
            const std::uint8_t bit = static_cast<std::uint8_t>(
                1u << (lane & 7));
            int ones = 0;
            for (int p = 0; p < config.length; ++p) {
                if (seed_bits[p])
                    plane[p] |= bit;
                ones += seed_bits[p];
            }
            planeSums_[lane] = ones;
        } else {
            lanes_.emplace_back(config.length, std::move(seed_bits),
                                config.mode);
        }
    }

    mean_ = 0.5 * config.length;
    invStddev_ = 1.0 / std::sqrt(0.25 * config.length);
    cycleBuffer_.resize(config.lanes);
    bufferPos_ = cycleBuffer_.size(); // force refill on first draw
}

double
RlfGrng::normalize(int count) const
{
    return (static_cast<double>(count) - mean_) * invStddev_;
}

void
RlfGrng::refillBuffer()
{
    nextCycleCounts(cycleBuffer_);
    bufferPos_ = 0;
}

void
RlfGrng::generateMuxedCycles(std::size_t cycles, std::int32_t *counts)
{
    const std::size_t lanes =
        static_cast<std::size_t>(config_.lanes);
    const std::size_t raw_stride =
        static_cast<std::size_t>(planeGroups_) * 8;
    burstRaw_.resize(cycles * raw_stride);

    accel::kernels::RlfState st;
    st.planes = planes_.data();
    st.sums = planeSums_.data();
    st.length = config_.length;
    st.groups = planeGroups_;
    st.head = planeHead_;
    accel::kernels::activeKernels().rlfCycleCounts(st, cycles,
                                                   burstRaw_.data());
    planeHead_ = st.head;

    // Output multiplexing (see nextCycleCounts): within each group of
    // four lanes, port p serves lane (p + cycle) % group this cycle.
    for (std::size_t c = 0; c < cycles; ++c) {
        const std::int32_t *raw = burstRaw_.data() + c * raw_stride;
        std::int32_t *out = counts + c * lanes;
        if (!config_.outputMux) {
            std::copy(raw, raw + lanes, out);
        } else {
            const auto rot = static_cast<std::size_t>(cycle_);
            for (std::size_t base = 0; base < lanes; base += 4) {
                const std::size_t group =
                    std::min<std::size_t>(4, lanes - base);
                if (group == 4) {
                    for (std::size_t port = 0; port < 4; ++port)
                        out[base + port] =
                            raw[base + ((port + rot) & 3)];
                } else {
                    for (std::size_t port = 0; port < group; ++port)
                        out[base + port] =
                            raw[base + (port + rot) % group];
                }
            }
        }
        ++cycle_;
    }
}

void
RlfGrng::nextCycleCounts(std::vector<int> &out)
{
    out.resize(static_cast<std::size_t>(config_.lanes));

    if (kernelPath_) {
        burstMuxed_.resize(out.size());
        generateMuxedCycles(1, burstMuxed_.data());
        std::copy(burstMuxed_.begin(), burstMuxed_.end(), out.begin());
        return;
    }

    // Step every lane once (they share one indexer in hardware).
    rawScratch_.resize(lanes_.size());
    std::vector<int> &raw = rawScratch_;
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane)
        raw[lane] = lanes_[lane].step();

    if (!config_.outputMux) {
        out = raw;
        ++cycle_;
        return;
    }

    // Output multiplexing: within each group of four lanes, output port
    // p serves lane (p + cycle) % group_size this cycle. The rotating
    // select is shared by all groups (one controller). Full groups use
    // the power-of-two mask instead of the per-port division — this
    // loop runs once per emitted sample and the divisions dominated it.
    const std::size_t n = lanes_.size();
    const auto rot = static_cast<std::size_t>(cycle_);
    for (std::size_t base = 0; base < n; base += 4) {
        const std::size_t group = std::min<std::size_t>(4, n - base);
        if (group == 4) {
            for (std::size_t port = 0; port < 4; ++port)
                out[base + port] = raw[base + ((port + rot) & 3)];
        } else {
            for (std::size_t port = 0; port < group; ++port)
                out[base + port] = raw[base + (port + rot) % group];
        }
    }
    ++cycle_;
}

int
RlfGrng::nextCount()
{
    if (bufferPos_ >= cycleBuffer_.size())
        refillBuffer();
    return cycleBuffer_[bufferPos_++];
}

double
RlfGrng::next()
{
    return normalize(nextCount());
}

void
RlfGrng::fill(double *out, std::size_t n)
{
    std::size_t k = 0;
    // Drain whatever next() left buffered so the stream stays aligned.
    while (k < n && bufferPos_ < cycleBuffer_.size())
        out[k++] = normalize(cycleBuffer_[bufferPos_++]);

    if (kernelPath_) {
        // Whole cycles in kernel bursts straight into the destination.
        const std::size_t lanes =
            static_cast<std::size_t>(config_.lanes);
        std::size_t cycles_left = (n - k) / lanes;
        while (cycles_left > 0) {
            const std::size_t burst =
                std::min(cycles_left, kBurstCycles);
            burstMuxed_.resize(burst * lanes);
            generateMuxedCycles(burst, burstMuxed_.data());
            for (std::size_t i = 0; i < burst * lanes; ++i)
                out[k + i] = normalize(burstMuxed_[i]);
            k += burst * lanes;
            cycles_left -= burst;
        }
    }

    while (k < n) {
        if (bufferPos_ >= cycleBuffer_.size())
            refillBuffer();
        // Normalize straight out of the cycle buffer — one virtual call
        // per fill() instead of one per sample, and the per-cycle lane
        // scratch is a reused member.
        const std::size_t take =
            std::min(n - k, cycleBuffer_.size() - bufferPos_);
        for (std::size_t i = 0; i < take; ++i)
            out[k + i] = normalize(cycleBuffer_[bufferPos_ + i]);
        bufferPos_ += take;
        k += take;
    }
}

const std::int32_t *
RlfGrng::fixedLut(const fixed::FixedPointFormat &format)
{
    if (lutTotalBits_ != format.totalBits() ||
        lutFracBits_ != format.fracBits()) {
        // One entry per possible count: exactly fromReal(normalize(c),
        // Nearest), so the fused path is bit-identical to fill() + the
        // kernel layer's quantizeDouble by construction.
        lut_.resize(static_cast<std::size_t>(config_.length) + 1);
        for (int c = 0; c <= config_.length; ++c)
            lut_[static_cast<std::size_t>(c)] =
                static_cast<std::int32_t>(format.fromReal(
                    normalize(c), fixed::RoundMode::Nearest));
        lutTotalBits_ = format.totalBits();
        lutFracBits_ = format.fracBits();
    }
    return lut_.data();
}

bool
RlfGrng::fillFixed(std::int32_t *out, std::size_t n,
                   const fixed::FixedPointFormat &format)
{
    if (!kernelPath_)
        return false;
    const std::int32_t *lut = fixedLut(format);

    std::size_t k = 0;
    while (k < n && bufferPos_ < cycleBuffer_.size())
        out[k++] = lut[cycleBuffer_[bufferPos_++]];

    const std::size_t lanes = static_cast<std::size_t>(config_.lanes);
    std::size_t cycles_left = (n - k) / lanes;
    while (cycles_left > 0) {
        const std::size_t burst = std::min(cycles_left, kBurstCycles);
        burstMuxed_.resize(burst * lanes);
        generateMuxedCycles(burst, burstMuxed_.data());
        for (std::size_t i = 0; i < burst * lanes; ++i)
            out[k + i] = lut[burstMuxed_[i]];
        k += burst * lanes;
        cycles_left -= burst;
    }

    while (k < n) {
        if (bufferPos_ >= cycleBuffer_.size())
            refillBuffer();
        const std::size_t take =
            std::min(n - k, cycleBuffer_.size() - bufferPos_);
        for (std::size_t i = 0; i < take; ++i)
            out[k + i] = lut[cycleBuffer_[bufferPos_ + i]];
        bufferPos_ += take;
        k += take;
    }
    return true;
}

std::string
RlfGrng::name() const
{
    return strfmt("RLF-GRNG(%dx%d%s)", config_.length, config_.lanes,
                  config_.outputMux ? "" : ",nomux");
}

} // namespace vibnn::grng
