#include "grng/clt_grng.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/table.hh"

namespace vibnn::grng
{

CltLfsrGrng::CltLfsrGrng(int length, std::uint64_t seed,
                         int steps_per_sample)
    : lfsr_(length, seed), counter_(length),
      stepsPerSample_(steps_per_sample)
{
    VIBNN_ASSERT(length >= 19,
                 "binomial approximation needs n > 18 (equation (8)), got "
                 << length);
    VIBNN_ASSERT(steps_per_sample >= 1, "steps per sample must be >= 1");
    mean_ = 0.5 * length;
    invStddev_ = 1.0 / std::sqrt(0.25 * length);
}

int
CltLfsrGrng::nextCount()
{
    lfsr_.step(stepsPerSample_);
    return lfsr_.popcount();
}

double
CltLfsrGrng::next()
{
    return (static_cast<double>(nextCount()) - mean_) * invStddev_;
}

void
CltLfsrGrng::fill(double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        lfsr_.step(stepsPerSample_);
        out[i] = (static_cast<double>(lfsr_.popcount()) - mean_) *
            invStddev_;
    }
}

std::string
CltLfsrGrng::name() const
{
    return strfmt("CLT-LFSR(%d,step=%d)", lfsr_.length(), stepsPerSample_);
}

} // namespace vibnn::grng
