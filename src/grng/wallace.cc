#include "grng/wallace.hh"

#include <cmath>
#include <numeric>

#include "accel/kernels/kernels.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace vibnn::grng
{

WallaceGrng::WallaceGrng(const WallaceConfig &config)
    : config_(config), rng_(config.seed)
{
    VIBNN_ASSERT(config.poolSize >= 8, "Wallace pool must hold >= 8");
    VIBNN_ASSERT(config.loopsPerOutput >= 1, "need at least one loop");

    pool_.resize(config.poolSize);
    for (auto &x : pool_)
        x = rng_.gaussian();

    if (config.normalizeInitialPool) {
        double mean = 0.0;
        for (double x : pool_)
            mean += x;
        mean /= static_cast<double>(pool_.size());
        double var = 0.0;
        for (double x : pool_)
            var += (x - mean) * (x - mean);
        var /= static_cast<double>(pool_.size());
        const double inv_sd = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
        for (auto &x : pool_)
            x = (x - mean) * inv_sd;
    }

    blockBuffer_.resize(passOutputs());
    blockPos_ = blockBuffer_.size(); // force a pass on the first draw
}

void
WallaceGrng::transformPass(double *out)
{
    const std::size_t pool_size = pool_.size();

    // Stride/offset addressing (hardware Wallace unit): the pass walks
    // the permutation offset + m * stride (mod pool). Any stride
    // coprime to the pool size yields distinct slots for every
    // quadruple, so the hot loop below has no retry path; the coprime
    // draw itself happens once per pass (for power-of-two pools every
    // odd stride qualifies, so the expected draw count is 2).
    const std::size_t offset = rng_.uniformInt(pool_size);
    std::size_t stride;
    do {
        stride = 1 + rng_.uniformInt(pool_size - 1);
    } while (std::gcd(stride, pool_size) != 1);

    // The quadruple walk itself lives in the kernel layer (scalar body
    // plus a 4-wide AVX2 tier); every tier is ctest-pinned bit-exact
    // against hadamardTransform4 applied sequentially.
    accel::kernels::activeKernels().wallacePass(pool_.data(), pool_size,
                                                offset, stride, out);
}

void
WallaceGrng::emitPass(double *out)
{
    for (int loop = 0; loop + 1 < config_.loopsPerOutput; ++loop)
        transformPass(nullptr);
    transformPass(out);
}

double
WallaceGrng::next()
{
    if (blockPos_ >= blockBuffer_.size()) {
        emitPass(blockBuffer_.data());
        blockPos_ = 0;
    }
    return blockBuffer_[blockPos_++];
}

void
WallaceGrng::fill(double *out, std::size_t n)
{
    std::size_t k = 0;
    // Drain whatever next() left buffered so the stream stays aligned.
    while (k < n && blockPos_ < blockBuffer_.size())
        out[k++] = blockBuffer_[blockPos_++];

    // Whole passes straight into the destination: no virtual dispatch,
    // no staging copy.
    const std::size_t block = blockBuffer_.size();
    while (n - k >= block) {
        emitPass(out + k);
        k += block;
    }

    // Tail shorter than a pass: buffer one pass and hand out a prefix.
    if (k < n) {
        emitPass(blockBuffer_.data());
        blockPos_ = 0;
        while (k < n)
            out[k++] = blockBuffer_[blockPos_++];
    }
}

double
WallaceGrng::poolEnergy() const
{
    double energy = 0.0;
    for (double x : pool_)
        energy += x * x;
    return energy;
}

std::string
WallaceGrng::name() const
{
    return strfmt("Wallace-SW(pool=%zu,loops=%d)", config_.poolSize,
                  config_.loopsPerOutput);
}

} // namespace vibnn::grng
