#include "grng/wallace.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/table.hh"

namespace vibnn::grng
{

WallaceGrng::WallaceGrng(const WallaceConfig &config)
    : config_(config), rng_(config.seed)
{
    VIBNN_ASSERT(config.poolSize >= 8, "Wallace pool must hold >= 8");
    VIBNN_ASSERT(config.loopsPerOutput >= 1, "need at least one loop");

    pool_.resize(config.poolSize);
    for (auto &x : pool_)
        x = rng_.gaussian();

    if (config.normalizeInitialPool) {
        double mean = 0.0;
        for (double x : pool_)
            mean += x;
        mean /= static_cast<double>(pool_.size());
        double var = 0.0;
        for (double x : pool_)
            var += (x - mean) * (x - mean);
        var /= static_cast<double>(pool_.size());
        const double inv_sd = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
        for (auto &x : pool_)
            x = (x - mean) * inv_sd;
    }
}

std::array<double, 4>
WallaceGrng::transformOnce()
{
    // Pick four distinct slots.
    std::size_t idx[4];
    for (int i = 0; i < 4; ++i) {
        bool unique;
        do {
            idx[i] = rng_.uniformInt(pool_.size());
            unique = true;
            for (int j = 0; j < i; ++j)
                unique = unique && idx[j] != idx[i];
        } while (!unique);
    }

    const std::array<double, 4> x = {pool_[idx[0]], pool_[idx[1]],
                                     pool_[idx[2]], pool_[idx[3]]};
    const std::array<double, 4> y = hadamardTransform4(x);
    for (int i = 0; i < 4; ++i)
        pool_[idx[i]] = y[i];
    return y;
}

double
WallaceGrng::next()
{
    if (outputPos_ >= 4) {
        for (int loop = 0; loop + 1 < config_.loopsPerOutput; ++loop)
            transformOnce();
        outputs_ = transformOnce();
        outputPos_ = 0;
    }
    return outputs_[outputPos_++];
}

double
WallaceGrng::poolEnergy() const
{
    double energy = 0.0;
    for (double x : pool_)
        energy += x * x;
    return energy;
}

std::string
WallaceGrng::name() const
{
    return strfmt("Wallace-SW(pool=%zu,loops=%d)", config_.poolSize,
                  config_.loopsPerOutput);
}

} // namespace vibnn::grng
