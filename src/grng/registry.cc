#include "grng/registry.hh"

#include "common/logging.hh"
#include "grng/baselines.hh"
#include "grng/bnn_wallace.hh"
#include "grng/clt_grng.hh"
#include "grng/philox.hh"
#include "grng/rlf_grng.hh"
#include "grng/wallace.hh"

namespace vibnn::grng
{

std::unique_ptr<GaussianGenerator>
makeGenerator(const std::string &id, std::uint64_t seed)
{
    if (id == "rlf") {
        RlfGrngConfig config;
        config.seed = seed;
        return std::make_unique<RlfGrng>(config);
    }
    if (id == "rlf-64") {
        RlfGrngConfig config;
        config.seed = seed;
        config.lanes = 64;
        return std::make_unique<RlfGrng>(config);
    }
    if (id == "rlf-nomux") {
        RlfGrngConfig config;
        config.seed = seed;
        config.outputMux = false;
        return std::make_unique<RlfGrng>(config);
    }
    if (id == "rlf-single") {
        RlfGrngConfig config;
        config.seed = seed;
        config.mode = RlfUpdateMode::Single;
        return std::make_unique<RlfGrng>(config);
    }
    if (id == "bnnwallace") {
        BnnWallaceConfig config;
        config.seed = seed;
        return std::make_unique<BnnWallaceGrng>(config);
    }
    if (id == "wallace-nss") {
        BnnWallaceConfig config;
        config.seed = seed;
        config.sharingAndShifting = false;
        return std::make_unique<BnnWallaceGrng>(config);
    }
    if (id == "wallace-256" || id == "wallace-1024" ||
        id == "wallace-4096") {
        WallaceConfig config;
        config.seed = seed;
        config.poolSize = id == "wallace-256"
                              ? 256
                              : (id == "wallace-1024" ? 1024 : 4096);
        return std::make_unique<WallaceGrng>(config);
    }
    if (id == "philox")
        return std::make_unique<PhiloxGrng>(seed);
    if (id == "clt-lfsr")
        return std::make_unique<CltLfsrGrng>(128, seed);
    if (id == "box-muller")
        return std::make_unique<BoxMullerGrng>(seed);
    if (id == "polar")
        return std::make_unique<PolarGrng>(seed);
    if (id == "ziggurat")
        return std::make_unique<ZigguratGrng>(seed);
    if (id == "cdf-inversion")
        return std::make_unique<CdfInversionGrng>(seed);
    if (id == "reference")
        return std::make_unique<ReferenceGrng>(seed);

    fatal("unknown generator id '" + id + "' (registered: " +
          joinStrings(generatorIds()) + ")");
}

std::vector<std::string>
generatorIds()
{
    return {
        "rlf",         "rlf-64",       "rlf-nomux",     "rlf-single",
        "bnnwallace",
        "wallace-nss", "wallace-256",  "wallace-1024",  "wallace-4096",
        "philox",
        "clt-lfsr",    "box-muller",   "polar",         "ziggurat",
        "cdf-inversion", "reference",
    };
}

} // namespace vibnn::grng
