/**
 * @file
 * Parallel counter (population count) model.
 *
 * A parallel counter reduces n input bits to a binary count through a
 * tree of full adders. The paper's key observation (Section 4.1.2) is
 * that a wide PC is expensive — a 127-input PC needs 120 full adders —
 * which motivates the RLF design where only the handful of tap bits ever
 * need counting. This model provides both the functional popcount and
 * the structural cost/depth figures used by the hardware model.
 */

#ifndef VIBNN_GRNG_PARALLEL_COUNTER_HH
#define VIBNN_GRNG_PARALLEL_COUNTER_HH

#include <cstdint>
#include <vector>

namespace vibnn::grng
{

/** Structural model of an n-input parallel counter. */
class ParallelCounter
{
  public:
    /** @param inputs Number of input bits (>= 1). */
    explicit ParallelCounter(int inputs);

    /** Count the ones among the first inputs() entries of bits. */
    int count(const std::vector<std::uint8_t> &bits) const;

    /** Number of input bits. */
    int inputs() const { return inputs_; }

    /** Output width: ceil(log2(inputs + 1)). */
    int outputBits() const;

    /**
     * Full adders required by the classic reduction: an n-input counter
     * costs n - ceil(log2(n+1)) full adders (127 inputs -> 120 FAs, the
     * figure quoted in the paper).
     */
    int fullAdders() const;

    /** Adder-tree depth in full-adder stages: ceil(log2(n)) levels. */
    int depth() const;

  private:
    int inputs_;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_PARALLEL_COUNTER_HH
