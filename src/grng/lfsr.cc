#include "grng/lfsr.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"

namespace vibnn::grng
{

namespace
{

/**
 * Ward-Molteno maximal-length tap tables (XOR form). Each row lists the
 * tap positions *excluding* the register length itself; the feedback
 * function is the XOR of the listed positions and position `length`.
 */
struct TapEntry
{
    int length;
    int taps[3];
    int count;
};

const TapEntry tap_table[] = {
    {4, {3, 0, 0}, 1},       {5, {3, 0, 0}, 1},
    {6, {5, 0, 0}, 1},       {7, {6, 0, 0}, 1},
    {8, {6, 5, 4}, 3},       {9, {5, 0, 0}, 1},
    {10, {7, 0, 0}, 1},      {11, {9, 0, 0}, 1},
    {12, {11, 10, 4}, 3},    {13, {12, 11, 8}, 3},
    {14, {13, 12, 2}, 3},    {15, {14, 0, 0}, 1},
    {16, {14, 13, 11}, 3},   {17, {14, 0, 0}, 1},
    {18, {11, 0, 0}, 1},     {19, {18, 17, 14}, 3},
    {20, {17, 0, 0}, 1},     {21, {19, 0, 0}, 1},
    {22, {21, 0, 0}, 1},     {23, {18, 0, 0}, 1},
    {24, {23, 22, 17}, 3},   {25, {22, 0, 0}, 1},
    {28, {25, 0, 0}, 1},     {31, {28, 0, 0}, 1},
    {32, {30, 26, 25}, 3},   {33, {20, 0, 0}, 1},
    {36, {25, 0, 0}, 1},     {40, {38, 21, 19}, 3},
    {48, {47, 21, 20}, 3},   {56, {55, 35, 34}, 3},
    {63, {62, 0, 0}, 1},     {64, {63, 61, 60}, 3},
    {96, {94, 49, 47}, 3},   {127, {126, 0, 0}, 1},
    {128, {126, 101, 99}, 3}, {255, {253, 252, 250}, 3},
    {256, {254, 251, 246}, 3}, {511, {501, 0, 0}, 1},
    {512, {510, 507, 504}, 3}, {1023, {1016, 0, 0}, 1},
    {1024, {1015, 1002, 1001}, 3}, {2048, {2035, 2034, 2029}, 3},
};

const TapEntry *
findTapEntry(int length)
{
    for (const auto &entry : tap_table)
        if (entry.length == length)
            return &entry;
    return nullptr;
}

} // anonymous namespace

std::vector<int>
maximalTaps(int length)
{
    const TapEntry *entry = findTapEntry(length);
    if (!entry) {
        fatal(strfmt("no maximal-length taps known for %d-bit LFSR",
                     length));
    }
    std::vector<int> taps(entry->taps, entry->taps + entry->count);
    std::sort(taps.begin(), taps.end());
    return taps;
}

bool
hasMaximalTaps(int length)
{
    return findTapEntry(length) != nullptr;
}

std::vector<std::uint8_t>
expandSeedBits(int length, std::uint64_t seed)
{
    VIBNN_ASSERT(length > 0, "LFSR length must be positive");
    Rng rng(seed);
    std::vector<std::uint8_t> bits(length);
    bool any = false;
    for (auto &b : bits) {
        b = static_cast<std::uint8_t>(rng.next() & 1);
        any = any || b;
    }
    if (!any)
        bits[0] = 1;
    return bits;
}

Lfsr::Lfsr(int length, std::uint64_t seed)
    : state_(expandSeedBits(length, seed)), taps_(maximalTaps(length))
{
}

int
Lfsr::step()
{
    // Fibonacci form for polynomial x^n + x^a + ... + 1: with
    // state_[i] = s(k+i), the recurrence is
    //   s(k+n) = s(k) XOR s(k+a) XOR ...
    // where the constant term contributes s(k) — the outgoing bit.
    const int n = length();
    int feedback = state_[0];
    for (int t : taps_)
        feedback ^= state_[t];

    const int out = state_[0];
    for (int i = 0; i + 1 < n; ++i)
        state_[i] = state_[i + 1];
    state_[n - 1] = static_cast<std::uint8_t>(feedback);
    return out;
}

void
Lfsr::step(int n)
{
    for (int i = 0; i < n; ++i)
        step();
}

int
Lfsr::popcount() const
{
    int count = 0;
    for (std::uint8_t b : state_)
        count += b;
    return count;
}

std::uint64_t
Lfsr::nextBits(int n)
{
    VIBNN_ASSERT(n >= 1 && n <= 64, "nextBits supports 1..64 bits");
    std::uint64_t word = 0;
    for (int i = 0; i < n; ++i)
        word |= static_cast<std::uint64_t>(step()) << i;
    return word;
}

CirculatingLfsr::CirculatingLfsr(int length, std::vector<int> taps,
                                 std::vector<std::uint8_t> seed_bits)
    : state_(std::move(seed_bits)), taps_(std::move(taps))
{
    VIBNN_ASSERT(static_cast<int>(state_.size()) == length,
                 "seed size mismatch: " << state_.size() << " vs "
                 << length);
    VIBNN_ASSERT(length >= 2, "circulating LFSR needs >= 2 bits");
    for (int t : taps_) {
        VIBNN_ASSERT(t > 0 && t < length,
                     "tap " << t << " out of range for length " << length);
    }
}

void
CirculatingLfsr::step()
{
    // Equation (10) semantics with a physically shifting register file:
    // XOR the head into each tap offset, then rotate the whole register
    // one position so the next bit becomes the head. The RLF logic
    // performs the identical XORs but moves the head index instead of
    // the data.
    const int n = length();
    const std::uint8_t head = state_[0];
    for (int t : taps_)
        state_[t] = state_[t] ^ head;
    for (int i = 0; i + 1 < n; ++i)
        state_[i] = state_[i + 1];
    state_[n - 1] = head;
}

int
CirculatingLfsr::bitFromHead(int i) const
{
    const int n = length();
    VIBNN_ASSERT(i >= 0 && i < n, "bit index out of range");
    return state_[i];
}

int
CirculatingLfsr::popcount() const
{
    int count = 0;
    for (std::uint8_t b : state_)
        count += b;
    return count;
}

} // namespace vibnn::grng
