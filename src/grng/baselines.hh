/**
 * @file
 * Software baseline Gaussian generators, one per algorithm family from
 * the paper's Section 2.3 taxonomy:
 *
 *  - CDF inversion (category 1): normalInvCdf applied to a uniform.
 *  - Transformation / CLT (category 2): Box-Muller (the classic
 *    transformation method) — the CLT representative is CltLfsrGrng.
 *  - Rejection (category 3): Marsaglia-Tsang Ziggurat and Marsaglia's
 *    polar method.
 *  - Recursion (category 4): the Wallace generators in wallace.hh.
 *
 * These exist to calibrate the statistical benches (a known-good
 * generator should pass ~95% of runs tests at alpha = 0.05) and to give
 * the microbenchmark a software cost context for the hardware designs.
 */

#ifndef VIBNN_GRNG_BASELINES_HH
#define VIBNN_GRNG_BASELINES_HH

#include <cstdint>

#include "common/rng.hh"
#include "grng/generator.hh"

namespace vibnn::grng
{

/** Box-Muller transform generator (pair-cached). */
class BoxMullerGrng : public GaussianGenerator
{
  public:
    explicit BoxMullerGrng(std::uint64_t seed);
    double next() override;
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;
    std::string name() const override { return "Box-Muller"; }

  private:
    Rng rng_;
    double cached_ = 0.0;
    bool hasCached_ = false;
};

/** Marsaglia polar method generator (pair-cached). */
class PolarGrng : public GaussianGenerator
{
  public:
    explicit PolarGrng(std::uint64_t seed);
    double next() override;
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;
    std::string name() const override { return "Marsaglia-polar"; }

  private:
    Rng rng_;
};

/** Marsaglia-Tsang 256-layer Ziggurat generator. */
class ZigguratGrng : public GaussianGenerator
{
  public:
    explicit ZigguratGrng(std::uint64_t seed);
    double next() override;
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;
    std::string name() const override { return "Ziggurat"; }

  private:
    /** Fallback for the base strip / tail. */
    double sampleTail(double edge, bool negative);

    Rng rng_;
    // Layer tables (shared, built once).
    static const double *layerX();
    static const double *layerY();
};

/** Inverse-CDF generator: Phi^-1(U). */
class CdfInversionGrng : public GaussianGenerator
{
  public:
    explicit CdfInversionGrng(std::uint64_t seed);
    double next() override;
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;
    std::string name() const override { return "CDF-inversion"; }

  private:
    Rng rng_;
};

/** The project Rng's own gaussian() (polar) — convenience wrapper. */
class ReferenceGrng : public GaussianGenerator
{
  public:
    explicit ReferenceGrng(std::uint64_t seed);
    double next() override;
    void fill(double *out, std::size_t n) override;
    using GaussianGenerator::fill;
    std::string name() const override { return "reference"; }

  private:
    Rng rng_;
};

} // namespace vibnn::grng

#endif // VIBNN_GRNG_BASELINES_HH
