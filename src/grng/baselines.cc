#include "grng/baselines.hh"

#include <cmath>
#include <mutex>

#include "stats/normal.hh"

namespace vibnn::grng
{

BoxMullerGrng::BoxMullerGrng(std::uint64_t seed) : rng_(seed) {}

double
BoxMullerGrng::next()
{
    if (hasCached_) {
        hasCached_ = false;
        return cached_;
    }
    double u1;
    do {
        u1 = rng_.uniform();
    } while (u1 <= 0.0);
    const double u2 = rng_.uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_ = radius * std::sin(angle);
    hasCached_ = true;
    return radius * std::cos(angle);
}

void
BoxMullerGrng::fill(double *out, std::size_t n)
{
    std::size_t k = 0;
    if (hasCached_ && k < n) {
        hasCached_ = false;
        out[k++] = cached_;
    }
    // Whole pairs, no virtual dispatch, no cache shuffle.
    while (k + 2 <= n) {
        double u1;
        do {
            u1 = rng_.uniform();
        } while (u1 <= 0.0);
        const double u2 = rng_.uniform();
        const double radius = std::sqrt(-2.0 * std::log(u1));
        const double angle = 2.0 * M_PI * u2;
        out[k++] = radius * std::cos(angle);
        out[k++] = radius * std::sin(angle);
    }
    // Odd tail: next() emits the cosine leg and caches the sine leg.
    if (k < n)
        out[k++] = BoxMullerGrng::next();
}

PolarGrng::PolarGrng(std::uint64_t seed) : rng_(seed) {}

double
PolarGrng::next()
{
    return rng_.gaussian();
}

void
PolarGrng::fill(double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = rng_.gaussian();
}

namespace
{

// Marsaglia-Tsang ziggurat with 256 layers over the normal density.
constexpr int kZigguratLayers = 256;
constexpr double kZigguratR = 3.6541528853610088;
constexpr double kZigguratV = 0.00492867323399;

struct ZigguratTables
{
    double x[kZigguratLayers + 1];
    double y[kZigguratLayers];

    ZigguratTables()
    {
        auto pdf = [](double v) { return std::exp(-0.5 * v * v); };
        x[0] = kZigguratR;
        y[0] = pdf(kZigguratR);
        // x[1] chosen so the base strip (including the tail mass) has
        // the same area V as every other strip.
        x[1] = kZigguratR;
        for (int i = 1; i < kZigguratLayers; ++i) {
            const double yi = y[i - 1] + kZigguratV / x[i];
            // Invert the unnormalized pdf: v = sqrt(-2 ln y).
            const double clamped = yi >= 1.0 ? 1.0 : yi;
            x[i + 1] = std::sqrt(-2.0 * std::log(clamped));
            y[i] = yi;
        }
        x[kZigguratLayers] = 0.0;
    }
};

const ZigguratTables &
zigguratTables()
{
    static const ZigguratTables tables;
    return tables;
}

} // anonymous namespace

ZigguratGrng::ZigguratGrng(std::uint64_t seed) : rng_(seed) {}

const double *
ZigguratGrng::layerX()
{
    return zigguratTables().x;
}

const double *
ZigguratGrng::layerY()
{
    return zigguratTables().y;
}

double
ZigguratGrng::sampleTail(double edge, bool negative)
{
    // Marsaglia's exact tail sampler for x > edge.
    double x, y;
    do {
        x = -std::log(rng_.uniform() + 1e-300) / edge;
        y = -std::log(rng_.uniform() + 1e-300);
    } while (2.0 * y < x * x);
    const double value = edge + x;
    return negative ? -value : value;
}

double
ZigguratGrng::next()
{
    const double *x = layerX();
    const double *y = layerY();
    auto pdf = [](double v) { return std::exp(-0.5 * v * v); };

    for (;;) {
        const std::uint64_t bits = rng_.next();
        const int layer = static_cast<int>(bits & 0xFF);
        const bool negative = (bits >> 8) & 1;
        const double u = rng_.uniform();

        if (layer == 0) {
            // Base strip: rectangle of width V / y-area; accept inside
            // x[1], otherwise sample the analytic tail.
            const double candidate = u * kZigguratV / pdf(x[1]);
            if (candidate < x[1])
                return negative ? -candidate : candidate;
            return sampleTail(kZigguratR, negative);
        }

        const double candidate = u * x[layer];
        if (candidate < x[layer + 1])
            return negative ? -candidate : candidate;

        // Wedge: accept by comparing against the density.
        const double y_lo = y[layer - 1];
        const double y_hi = layer < kZigguratLayers - 1 ? y[layer] : 1.0;
        const double y_sample = y_lo + rng_.uniform() * (y_hi - y_lo);
        if (y_sample < pdf(candidate))
            return negative ? -candidate : candidate;
    }
}

void
ZigguratGrng::fill(double *out, std::size_t n)
{
    // The qualified call devirtualizes the per-sample dispatch.
    for (std::size_t i = 0; i < n; ++i)
        out[i] = ZigguratGrng::next();
}

CdfInversionGrng::CdfInversionGrng(std::uint64_t seed) : rng_(seed) {}

double
CdfInversionGrng::next()
{
    double u;
    do {
        u = rng_.uniform();
    } while (u <= 0.0);
    return stats::normalInvCdf(u);
}

void
CdfInversionGrng::fill(double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        double u;
        do {
            u = rng_.uniform();
        } while (u <= 0.0);
        out[i] = stats::normalInvCdf(u);
    }
}

ReferenceGrng::ReferenceGrng(std::uint64_t seed) : rng_(seed) {}

double
ReferenceGrng::next()
{
    return rng_.gaussian();
}

void
ReferenceGrng::fill(double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = rng_.gaussian();
}

} // namespace vibnn::grng
