#include "common/rng.hh"

#include <cmath>

namespace vibnn
{

std::uint64_t
splitmix64Next(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : state_)
        word = splitmix64Next(sm);
    hasCachedGaussian_ = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl64(state_[0] + state_[3], 23) +
        state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl64(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    // Lemire's nearly-divisionless bounded draw with rejection to remove
    // modulo bias.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
        uniformInt(static_cast<std::uint64_t>(hi - lo + 1)));
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cachedGaussian_ = v * factor;
    hasCachedGaussian_ = true;
    return u * factor;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    std::uint64_t child_seed = next();
    return Rng(splitmix64Next(child_seed));
}

} // namespace vibnn
