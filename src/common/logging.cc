#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace vibnn
{

std::string
joinStrings(const std::vector<std::string> &items,
            const char *separator)
{
    std::string out;
    for (const auto &item : items) {
        if (!out.empty())
            out += separator;
        out += item;
    }
    return out;
}

void
inform(const std::string &message)
{
    std::fprintf(stderr, "info: %s\n", message.c_str());
}

void
warn(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

} // namespace vibnn
