#include "common/table.hh"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace vibnn
{

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back({std::move(cells), false});
}

void
TextTable::addSeparator()
{
    rows_.push_back({{}, true});
}

std::string
TextTable::render() const
{
    // Compute per-column widths across header and all rows.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        if (!row.separator)
            grow(row.cells);

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            if (i + 1 < cells.size()) {
                for (std::size_t pad = cells[i].size();
                     pad < widths[i] + 2; ++pad) {
                    out << ' ';
                }
            }
        }
        out << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_) {
        if (row.separator)
            out << std::string(total, '-') << '\n';
        else
            emit(row.cells);
    }
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
strfmt(const char *format, ...)
{
    va_list args;
    va_start(args, format);
    va_list args_copy;
    va_copy(args_copy, args);
    int size = std::vsnprintf(nullptr, 0, format, args);
    va_end(args);

    std::string result(size > 0 ? size : 0, '\0');
    if (size > 0)
        std::vsnprintf(result.data(), size + 1, format, args_copy);
    va_end(args_copy);
    return result;
}

} // namespace vibnn
