#include "common/env.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace vibnn
{

double
envDouble(const std::string &name, double default_value)
{
    const char *raw = std::getenv(name.c_str());
    if (!raw || !*raw)
        return default_value;
    char *end = nullptr;
    double value = std::strtod(raw, &end);
    if (end == raw)
        return default_value;
    return value;
}

std::int64_t
envInt(const std::string &name, std::int64_t default_value)
{
    const char *raw = std::getenv(name.c_str());
    if (!raw || !*raw)
        return default_value;
    char *end = nullptr;
    long long value = std::strtoll(raw, &end, 10);
    if (end == raw)
        return default_value;
    return static_cast<std::int64_t>(value);
}

std::string
envString(const std::string &name, const std::string &default_value)
{
    const char *raw = std::getenv(name.c_str());
    if (!raw || !*raw)
        return default_value;
    return raw;
}

double
envScale()
{
    return std::max(0.01, envDouble("VIBNN_SCALE", 1.0));
}

std::uint64_t
envSeed()
{
    return static_cast<std::uint64_t>(envInt("VIBNN_SEED", 20180324));
}

std::size_t
scaledCount(std::size_t base)
{
    double scaled = std::round(static_cast<double>(base) * envScale());
    return std::max<std::size_t>(1, static_cast<std::size_t>(scaled));
}

} // namespace vibnn
