/**
 * @file
 * Environment-variable configuration shared by benches and examples.
 *
 * Two knobs control every experiment binary:
 *  - VIBNN_SCALE: multiplies workload sizes (sample counts, epochs,
 *    repetitions). 1 = the default laptop-friendly scale documented in
 *    EXPERIMENTS.md; larger values approach the paper's full-size runs.
 *  - VIBNN_SEED: master seed for all stochastic components.
 */

#ifndef VIBNN_COMMON_ENV_HH
#define VIBNN_COMMON_ENV_HH

#include <cstdint>
#include <string>

namespace vibnn
{

/** Read an environment variable as double, with a default. */
double envDouble(const std::string &name, double default_value);

/** Read an environment variable as int64, with a default. */
std::int64_t envInt(const std::string &name, std::int64_t default_value);

/** Read an environment variable as a string, with a default (returned
 *  for unset or empty variables). */
std::string envString(const std::string &name,
                      const std::string &default_value);

/** Workload scale factor (VIBNN_SCALE, default 1.0, clamped to >= 0.01). */
double envScale();

/** Master experiment seed (VIBNN_SEED, default 20180324 — the ASPLOS'18
 *  opening day). */
std::uint64_t envSeed();

/** Scale a count: max(1, round(base * envScale())). */
std::size_t scaledCount(std::size_t base);

} // namespace vibnn

#endif // VIBNN_COMMON_ENV_HH
