#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>

namespace vibnn
{

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw > 1 ? hw - 1 : 0;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    condition_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            condition_.wait(lock,
                            [this] { return stopping_ || !jobs_.empty(); });
            if (stopping_ && jobs_.empty())
                return;
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;

    // Inline path: no workers, or trivially small range.
    if (workers_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    // Chunked dynamic scheduling: runners claim index *ranges*, not
    // single indices, so the shared-counter traffic is O(chunks)
    // instead of O(count). An 8x oversubscription over the party count
    // keeps the tail balanced when iteration costs vary; small ranges
    // degrade to chunk == 1, i.e. the old per-index behavior.
    const std::size_t chunk =
        std::max<std::size_t>(1, count / (parties() * 8));
    const std::size_t num_chunks = (count + chunk - 1) / chunk;

    std::atomic<std::size_t> next_index{0};
    std::atomic<std::size_t> active_runners{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::condition_variable done_cv;
    std::mutex done_mutex;

    auto run_range = [&]() {
        for (;;) {
            const std::size_t begin = next_index.fetch_add(chunk);
            if (begin >= count)
                break;
            const std::size_t end = std::min(begin + chunk, count);
            for (std::size_t i = begin; i < end; ++i) {
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }
        }
    };

    auto chunk_runner = [&]() {
        run_range();
        // Decrement and notify under the lock: once the caller's
        // predicate can observe zero it holds the mutex, so this
        // helper has already released it and never touches the
        // stack-local mutex/cv again — no use-after-return window.
        std::lock_guard<std::mutex> lock(done_mutex);
        active_runners.fetch_sub(1);
        done_cv.notify_all();
    };

    // One queued job per helper (the caller claims ranges too), and
    // never more helpers than there are chunks beyond the caller's
    // first claim.
    std::size_t helpers = std::min(workers_.size(), num_chunks - 1);
    active_runners.store(helpers);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < helpers; ++i)
            jobs_.push(chunk_runner);
    }
    condition_.notify_all();

    // The caller participates too.
    run_range();

    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return active_runners.load() == 0; });

    if (first_error)
        std::rethrow_exception(first_error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace vibnn
