#include "common/thread_pool.hh"

#include <atomic>
#include <exception>

namespace vibnn
{

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw > 1 ? hw - 1 : 0;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    condition_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            condition_.wait(lock,
                            [this] { return stopping_ || !jobs_.empty(); });
            if (stopping_ && jobs_.empty())
                return;
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;

    // Inline path: no workers, or trivially small range.
    if (workers_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next_index{0};
    std::atomic<std::size_t> active_chunks{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::condition_variable done_cv;
    std::mutex done_mutex;

    auto chunk_runner = [&]() {
        for (;;) {
            std::size_t i = next_index.fetch_add(1);
            if (i >= count)
                break;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        if (active_chunks.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> lock(done_mutex);
            done_cv.notify_all();
        }
    };

    std::size_t helpers = std::min(workers_.size(), count - 1);
    active_chunks.store(helpers);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < helpers; ++i)
            jobs_.push(chunk_runner);
    }
    condition_.notify_all();

    // The caller participates too.
    for (;;) {
        std::size_t i = next_index.fetch_add(1);
        if (i >= count)
            break;
        try {
            body(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error)
                first_error = std::current_exception();
        }
    }

    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return active_chunks.load() == 0; });

    if (first_error)
        std::rethrow_exception(first_error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace vibnn
