/**
 * @file
 * Deterministic pseudo-random number generation for the whole project.
 *
 * Every stochastic component in vibnn (dataset synthesis, weight
 * initialization, GRNG seeding, Monte-Carlo sampling) draws from an
 * explicitly seeded generator so that experiments are reproducible
 * bit-for-bit. We use xoshiro256++ seeded through splitmix64, the
 * combination recommended by the xoshiro authors; std::mt19937 is avoided
 * because its 2.5 KB state makes per-component generators expensive.
 */

#ifndef VIBNN_COMMON_RNG_HH
#define VIBNN_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace vibnn
{

/**
 * splitmix64 step function. Used to expand a single 64-bit seed into the
 * 256-bit xoshiro state, and useful on its own for hashing seeds.
 *
 * @param state In/out 64-bit state, advanced by one step.
 * @return The next 64-bit output.
 */
std::uint64_t splitmix64Next(std::uint64_t &state);

/**
 * xoshiro256++ uniform pseudo-random generator.
 *
 * Satisfies the C++ UniformRandomBitGenerator concept so it can be used
 * with <random> distributions when convenient, but also provides the
 * handful of typed draws the project needs so that results do not depend
 * on the standard library's (implementation-defined) distribution
 * algorithms.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Reseed in place; equivalent to constructing a fresh Rng. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Uniform double in [0, 1). 53-bit resolution. */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal draw via the Marsaglia polar method (cached pair). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

    /**
     * Fork an independent generator. The child is seeded from a draw of
     * this generator mixed through splitmix64, so sibling forks are
     * decorrelated from each other and from the parent stream.
     */
    Rng fork();

    /** Fisher-Yates shuffle of a vector of indices. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        if (values.empty())
            return;
        for (std::size_t i = values.size() - 1; i > 0; --i) {
            std::size_t j = uniformInt(i + 1);
            std::swap(values[i], values[j]);
        }
    }

  private:
    std::uint64_t state_[4];
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace vibnn

#endif // VIBNN_COMMON_RNG_HH
