/**
 * @file
 * Plain-text table formatting for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures and
 * prints it in a fixed-width layout so runs can be diffed. TextTable takes
 * a header row plus data rows of strings and right-pads columns.
 */

#ifndef VIBNN_COMMON_TABLE_HH
#define VIBNN_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace vibnn
{

/** Accumulates rows of cells and renders an aligned plain-text table. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. Rows may have differing cell counts. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

/** printf-style helper returning std::string ("%.4f" etc.). */
std::string strfmt(const char *format, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace vibnn

#endif // VIBNN_COMMON_TABLE_HH
