/**
 * @file
 * Deterministic, seeded fault injection for chaos testing.
 *
 * The serving stack's robustness claims (client retry/backoff, shard
 * watchdog, brownout degradation, bit-flip resilience) are only worth
 * anything if the repo can PROVE them — which needs faults that fire
 * on demand, deterministically, at named points in production code
 * paths. This registry provides exactly that:
 *
 *   - Code marks an injection site with VIBNN_FAULT("net.read.torn").
 *     Unarmed, the macro is one relaxed atomic load and a
 *     never-taken branch — the hot path pays nothing measurable.
 *   - Faults are armed via the VIBNN_FAULTS environment variable (read
 *     once at process start) or programmatically via armSpec() (tests).
 *     The spec grammar is a comma-separated list of site:items pairs:
 *
 *         VIBNN_FAULTS=net.read.torn:nth=3,serve.pass.stuck:p=0.01+delay=200
 *
 *     with '+'-separated items per site:
 *         nth=N     fire on exactly the Nth hit (1-based)
 *         every=N   fire on every Nth hit
 *         p=F       fire each hit with probability F (deterministic
 *                   from the seed and the hit index — same pattern
 *                   every run); rate-style sites (accel.weights.bitflip)
 *                   read F as their rate parameter instead
 *         count=N   cap total fires at N
 *         delay=MS  parameter for delay-style sites (milliseconds)
 *         always    fire on every hit
 *
 *   - Probabilistic firing is a pure function of (VIBNN_FAULT_SEED,
 *     site name, hit index) via splitmix64 — re-running a chaos test
 *     with the same seed replays the identical fault pattern, which is
 *     what makes "retry until success is bit-exact with the fault-free
 *     run" a checkable assertion instead of a flake.
 *
 * All counters (hits, fires) are exposed for tests and surface in the
 * server's metricsJson. Arming/disarming takes a mutex; shouldFire()
 * takes it too (armed paths are chaos-only — correctness over speed),
 * but the unarmed fast path never touches it.
 */

#ifndef VIBNN_COMMON_FAULT_HH
#define VIBNN_COMMON_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace vibnn::fault
{

/** Global armed flag — the only state the unarmed fast path reads. */
extern std::atomic<bool> g_armed;

/** One relaxed load; false in every process that never armed a
 *  fault, which keeps VIBNN_FAULT() off the profile. */
inline bool
anyArmed()
{
    return g_armed.load(std::memory_order_relaxed);
}

/**
 * Count a hit at `site` and decide — deterministically — whether the
 * armed spec fires it. Unarmed sites (or a fully unarmed process)
 * return false. Call through VIBNN_FAULT() so the unarmed path skips
 * the registry entirely.
 */
bool shouldFire(const char *site);

/**
 * Arm from a spec string (replaces any previous arming, including the
 * environment's). False + `error` on grammar violations — an armed
 * chaos run with a silently dropped site would test nothing.
 */
bool armSpec(const std::string &spec, std::string &error);

/** Drop every armed site (counters included). */
void disarm();

/** disarm(), then re-apply the VIBNN_FAULTS environment spec (the
 *  state a chaos-profile process started in). fatal() on a malformed
 *  environment spec, mirroring process start. */
void reset();

/** Hits observed at `site` (0 when never hit or not armed). */
std::uint64_t hits(const char *site);

/** Fires delivered at `site`. */
std::uint64_t fires(const char *site);

/** Total fires across all armed sites (the metrics counter). */
std::uint64_t totalFires();

/** Total hits across all armed sites. */
std::uint64_t totalHits();

/**
 * The `p=` parameter of an armed site, or 0 when the site is unarmed.
 * Rate-style sites (accel.weights.bitflip) read their rate here
 * instead of going through shouldFire's per-hit coin flip.
 */
double siteRate(const char *site);

/** The `delay=` parameter (milliseconds) of an armed site, or
 *  `fallback` when the site is unarmed or carries none. */
std::int64_t fireDelayMillis(const char *site,
                             std::int64_t fallback = 0);

/** The deterministic per-site seed: VIBNN_FAULT_SEED (default 1)
 *  mixed with the site name. Rate-style consumers fold it into their
 *  own deterministic draw. */
std::uint64_t siteSeed(const char *site);

/** Record `n` externally decided fires at `site` (rate-style sites
 *  that sample their own events, e.g. per-bit weight flips). Also
 *  counts one hit. No-op when the site is unarmed. */
void recordFires(const char *site, std::uint64_t n);

/** The armed sites and their counters as a flat JSON object:
 *  {"site": {"hits": H, "fires": F}, ...} — merged into the server's
 *  metrics document. "{}" when nothing is armed. */
std::string faultsJson();

/** splitmix64 — the registry's deterministic mixer, exposed so
 *  rate-style sites derive their own streams from siteSeed(). */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Map a mixed value onto [0, 1). */
inline double
mixToUnit(std::uint64_t x)
{
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

} // namespace vibnn::fault

/** The injection-site macro: true iff the armed spec fires this hit.
 *  Reads one relaxed atomic when unarmed. */
#define VIBNN_FAULT(site)                                             \
    (::vibnn::fault::anyArmed() && ::vibnn::fault::shouldFire(site))

#endif // VIBNN_COMMON_FAULT_HH
