/**
 * @file
 * A small fixed-size worker pool with a parallelFor helper.
 *
 * Training and Monte-Carlo evaluation parallelize over minibatch items or
 * test images. On single-core hosts the pool degrades gracefully to
 * running work inline (zero threads are spawned when hardware_concurrency
 * reports one core), so callers never need a special case.
 */

#ifndef VIBNN_COMMON_THREAD_POOL_HH
#define VIBNN_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vibnn
{

/** Fixed-size thread pool executing void() jobs. */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 means "hardware concurrency - 1"
     *        (so the calling thread plus workers saturate the machine).
     */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (may be zero on single-core hosts). */
    std::size_t workerCount() const { return workers_.size(); }

    /** Concurrent runners a parallelFor can field: the workers plus
     *  the calling thread — the natural shard count for callers that
     *  statically partition work (McEngine replicas, the batched
     *  executor's image shards). */
    std::size_t parties() const { return workers_.size() + 1; }

    /**
     * Run body(i) for every i in [0, count), splitting the range across
     * the callers thread and the workers. Runners claim chunked index
     * ranges off a shared counter (O(chunks) synchronization, not
     * O(count)), so large batch counts don't serialize on the queue
     * lock. Blocks until all iterations finish. Exceptions in the body
     * propagate to the caller (first one wins).
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /** Process-wide shared pool. */
    static ThreadPool &global();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> jobs_;
    std::mutex mutex_;
    std::condition_variable condition_;
    bool stopping_ = false;
};

} // namespace vibnn

#endif // VIBNN_COMMON_THREAD_POOL_HH
