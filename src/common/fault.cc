#include "common/fault.hh"

#include <cstdlib>
#include <limits>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace vibnn::fault
{

std::atomic<bool> g_armed{false};

namespace
{

/** Parsed arming of one site. */
struct SiteSpec
{
    std::string name;
    /** Fire on exactly this hit (1-based); 0 = off. */
    std::uint64_t nth = 0;
    /** Fire on every Nth hit; 0 = off. */
    std::uint64_t every = 0;
    /** Per-hit fire probability (or a rate parameter for rate-style
     *  sites); < 0 = off. */
    double p = -1.0;
    /** Cap on total fires. */
    std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
    /** Parameter for delay-style sites, milliseconds. */
    std::int64_t delayMillis = -1;
    bool always = false;
};

struct SiteState
{
    SiteSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
};

/** Registry. The mutex guards everything; armed code paths are
 *  chaos-only so the serialization is acceptable by design. */
std::mutex g_mutex;
std::vector<SiteState> g_sites;
std::uint64_t g_seed = 1;

SiteState *
findLocked(const char *site)
{
    for (SiteState &s : g_sites)
        if (s.spec.name == site)
            return &s;
    return nullptr;
}

/** FNV-1a over the site name — the per-site seed component. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 1469598103934665603ull;
    for (char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return h;
}

bool
parseU64(const std::string &raw, std::uint64_t &out)
{
    if (raw.empty())
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseF64(const std::string &raw, double &out)
{
    if (raw.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

/** Parse one "site:item+item" clause into `spec`. */
bool
parseClause(const std::string &clause, SiteSpec &spec,
            std::string &error)
{
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= clause.size()) {
        error = "fault clause '" + clause +
            "' is not of the form site:items";
        return false;
    }
    spec = SiteSpec();
    spec.name = clause.substr(0, colon);

    std::stringstream items(clause.substr(colon + 1));
    std::string item;
    bool any = false;
    while (std::getline(items, item, '+')) {
        any = true;
        const std::size_t eq = item.find('=');
        const std::string key =
            eq == std::string::npos ? item : item.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : item.substr(eq + 1);
        if (key == "always" && eq == std::string::npos) {
            spec.always = true;
        } else if (key == "nth") {
            if (!parseU64(value, spec.nth) || spec.nth == 0) {
                error = "fault item 'nth' needs a positive integer, "
                        "got '" +
                    value + "'";
                return false;
            }
        } else if (key == "every") {
            if (!parseU64(value, spec.every) || spec.every == 0) {
                error = "fault item 'every' needs a positive "
                        "integer, got '" +
                    value + "'";
                return false;
            }
        } else if (key == "count") {
            if (!parseU64(value, spec.count)) {
                error = "fault item 'count' needs an integer, got '" +
                    value + "'";
                return false;
            }
        } else if (key == "p") {
            if (!parseF64(value, spec.p) || spec.p < 0.0 ||
                spec.p > 1.0) {
                error = "fault item 'p' needs a probability in "
                        "[0, 1], got '" +
                    value + "'";
                return false;
            }
        } else if (key == "delay") {
            std::uint64_t ms = 0;
            if (!parseU64(value, ms)) {
                error = "fault item 'delay' needs milliseconds, "
                        "got '" +
                    value + "'";
                return false;
            }
            spec.delayMillis = static_cast<std::int64_t>(ms);
        } else {
            error = "unknown fault item '" + item + "' in clause '" +
                clause + "'";
            return false;
        }
    }
    if (!any) {
        error = "fault clause '" + clause + "' arms nothing";
        return false;
    }
    return true;
}

/** Parse and install a full spec under the lock. */
bool
armLocked(const std::string &spec, std::string &error)
{
    std::vector<SiteState> parsed;
    std::stringstream clauses(spec);
    std::string clause;
    while (std::getline(clauses, clause, ',')) {
        if (clause.empty())
            continue;
        SiteState state;
        if (!parseClause(clause, state.spec, error))
            return false;
        parsed.push_back(std::move(state));
    }
    if (parsed.empty()) {
        error = "fault spec '" + spec + "' arms no sites";
        return false;
    }
    g_sites = std::move(parsed);
    g_armed.store(true, std::memory_order_relaxed);
    error.clear();
    return true;
}

/** Apply the VIBNN_FAULTS / VIBNN_FAULT_SEED environment (process
 *  start, and reset()). A malformed spec is a configuration bug: a
 *  chaos run that silently tests nothing must fail loudly. */
void
armFromEnv()
{
    const char *seed_raw = std::getenv("VIBNN_FAULT_SEED");
    if (seed_raw && *seed_raw) {
        std::uint64_t seed = 0;
        if (!parseU64(seed_raw, seed))
            fatal("VIBNN_FAULT_SEED must be a base-10 integer, "
                  "got '" +
                  std::string(seed_raw) + "'");
        g_seed = seed;
    }
    const char *spec = std::getenv("VIBNN_FAULTS");
    if (spec && *spec) {
        std::string error;
        if (!armLocked(spec, error))
            fatal("VIBNN_FAULTS: " + error);
    }
}

/** One-time environment arming at static-initialization time: an
 *  unarmed process never pays more than the g_armed load. */
struct EnvArmOnce
{
    EnvArmOnce()
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        armFromEnv();
    }
};
EnvArmOnce g_envArm;

} // namespace

bool
shouldFire(const char *site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    SiteState *state = findLocked(site);
    if (!state)
        return false;
    const std::uint64_t hit = ++state->hits;
    const SiteSpec &spec = state->spec;
    bool fire = spec.always;
    if (!fire && spec.nth != 0)
        fire = hit == spec.nth;
    if (!fire && spec.every != 0)
        fire = hit % spec.every == 0;
    if (!fire && spec.p >= 0.0) {
        // Pure function of (seed, site, hit index): the same chaos
        // seed replays the identical fault pattern.
        const std::uint64_t draw =
            mix64(g_seed ^ hashName(spec.name) ^ (hit * 0x9e37ull));
        fire = mixToUnit(draw) < spec.p;
    }
    if (!fire || state->fires >= spec.count)
        return false;
    ++state->fires;
    return true;
}

bool
armSpec(const std::string &spec, std::string &error)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return armLocked(spec, error);
}

void
disarm()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_sites.clear();
    g_armed.store(false, std::memory_order_relaxed);
}

void
reset()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_sites.clear();
    g_armed.store(false, std::memory_order_relaxed);
    armFromEnv();
}

std::uint64_t
hits(const char *site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    const SiteState *state = findLocked(site);
    return state ? state->hits : 0;
}

std::uint64_t
fires(const char *site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    const SiteState *state = findLocked(site);
    return state ? state->fires : 0;
}

std::uint64_t
totalFires()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    std::uint64_t total = 0;
    for (const SiteState &s : g_sites)
        total += s.fires;
    return total;
}

std::uint64_t
totalHits()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    std::uint64_t total = 0;
    for (const SiteState &s : g_sites)
        total += s.hits;
    return total;
}

double
siteRate(const char *site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    const SiteState *state = findLocked(site);
    return state && state->spec.p >= 0.0 ? state->spec.p : 0.0;
}

std::int64_t
fireDelayMillis(const char *site, std::int64_t fallback)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    const SiteState *state = findLocked(site);
    return state && state->spec.delayMillis >= 0
               ? state->spec.delayMillis
               : fallback;
}

std::uint64_t
siteSeed(const char *site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return mix64(g_seed ^ hashName(site));
}

void
recordFires(const char *site, std::uint64_t n)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    SiteState *state = findLocked(site);
    if (!state)
        return;
    ++state->hits;
    state->fires += n;
}

std::string
faultsJson()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    std::string out = "{";
    for (std::size_t i = 0; i < g_sites.size(); ++i) {
        const SiteState &s = g_sites[i];
        if (i > 0)
            out += ", ";
        out += "\"" + s.spec.name +
            "\": {\"hits\": " + std::to_string(s.hits) +
            ", \"fires\": " + std::to_string(s.fires) + "}";
    }
    out += "}";
    return out;
}

} // namespace vibnn::fault
