/**
 * @file
 * Minimal status/error reporting in the gem5 spirit.
 *
 * fatal() is for user errors (bad configuration, invalid arguments):
 * prints and exits cleanly. panic() is for internal invariant violations
 * (vibnn bugs): prints and aborts. inform()/warn() report status without
 * stopping the run.
 */

#ifndef VIBNN_COMMON_LOGGING_HH
#define VIBNN_COMMON_LOGGING_HH

#include <sstream>
#include <string>
#include <vector>

namespace vibnn
{

/** "a, b, c" rendering of a string list — the shared shape of every
 *  "unknown id (registered: ...)" error message. */
std::string joinStrings(const std::vector<std::string> &items,
                        const char *separator = ", ");

/** Print an informational message to stderr. */
void inform(const std::string &message);

/** Print a warning to stderr. */
void warn(const std::string &message);

/** Report a user-caused error and exit(1). */
[[noreturn]] void fatal(const std::string &message);

/** Report an internal bug and abort(). */
[[noreturn]] void panic(const std::string &message);

/**
 * Lightweight assertion for simulator invariants. Unlike assert(), stays
 * active in release builds: the cycle-level models rely on these checks to
 * flag port conflicts and protocol violations.
 */
#define VIBNN_ASSERT(cond, msg)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream vibnn_assert_ss;                            \
            vibnn_assert_ss << "assertion failed: " #cond " — " << msg     \
                            << " (" << __FILE__ << ":" << __LINE__ << ")"; \
            ::vibnn::panic(vibnn_assert_ss.str());                         \
        }                                                                  \
    } while (0)

} // namespace vibnn

#endif // VIBNN_COMMON_LOGGING_HH
