#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace vibnn::stats
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    VIBNN_ASSERT(hi > lo, "histogram range must be non-empty");
    VIBNN_ASSERT(bins >= 1, "histogram needs at least one bin");
    width_ = (hi - lo) / static_cast<double>(bins);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size())
        bin = counts_.size() - 1; // guards the x == hi_ - epsilon edge
    ++counts_[bin];
}

void
Histogram::add(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::binProbability(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
        static_cast<double>(total_);
}

std::string
Histogram::renderAscii(std::size_t max_bar_width) const
{
    std::size_t peak = 0;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);
    if (peak == 0)
        peak = 1;

    std::ostringstream out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        auto bar = static_cast<std::size_t>(
            std::llround(static_cast<double>(counts_[i]) * max_bar_width /
                         static_cast<double>(peak)));
        out << strfmt("%8.3f | ", binCenter(i))
            << std::string(bar, '#') << "  " << counts_[i] << '\n';
    }
    return out.str();
}

} // namespace vibnn::stats
