/**
 * @file
 * Special functions needed by the statistical tests: the regularized
 * incomplete gamma functions (for chi-square p-values) and the
 * Kolmogorov distribution tail.
 */

#ifndef VIBNN_STATS_SPECIAL_HH
#define VIBNN_STATS_SPECIAL_HH

namespace vibnn::stats
{

/** Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a). */
double regularizedGammaP(double a, double x);

/** Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x). */
double regularizedGammaQ(double a, double x);

/** Chi-square survival function: P(X > x) for k degrees of freedom. */
double chiSquareSf(double x, double k);

/**
 * Kolmogorov distribution complementary CDF Q(t) = P(K > t); used to turn
 * a scaled KS statistic sqrt(n)*D into an asymptotic p-value.
 */
double kolmogorovQ(double t);

} // namespace vibnn::stats

#endif // VIBNN_STATS_SPECIAL_HH
