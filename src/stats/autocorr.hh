/**
 * @file
 * Sample autocorrelation of a sequence — used by the RLF ablation bench to
 * show why the raw popcount stream needs output multiplexing, and by the
 * Wallace tests to quantify pool-recycling correlation.
 */

#ifndef VIBNN_STATS_AUTOCORR_HH
#define VIBNN_STATS_AUTOCORR_HH

#include <cstddef>
#include <vector>

namespace vibnn::stats
{

/**
 * Sample autocorrelation at the given lag (biased estimator, normalized
 * by the lag-0 variance). Returns 0 for degenerate inputs.
 */
double autocorrelation(const std::vector<double> &samples, std::size_t lag);

/** Autocorrelations for lags 1..max_lag. */
std::vector<double> autocorrelations(const std::vector<double> &samples,
                                     std::size_t max_lag);

} // namespace vibnn::stats

#endif // VIBNN_STATS_AUTOCORR_HH
