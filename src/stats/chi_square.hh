/**
 * @file
 * Chi-square goodness-of-fit test against the standard normal, on
 * equal-probability bins. Suited to the discrete binomial GRNGs where the
 * KS test's continuity assumption is violated.
 */

#ifndef VIBNN_STATS_CHI_SQUARE_HH
#define VIBNN_STATS_CHI_SQUARE_HH

#include <cstddef>
#include <vector>

namespace vibnn::stats
{

/** Chi-square GoF outcome. */
struct ChiSquareResult
{
    double statistic = 0.0;
    double pValue = 1.0;
    std::size_t bins = 0;
    std::size_t dof = 0;
};

/**
 * Chi-square GoF of samples vs N(0, 1) using bins of equal normal
 * probability mass (so every bin has the same expected count).
 *
 * @param samples The observations.
 * @param bins Number of equal-probability bins (default 32).
 */
ChiSquareResult chiSquareGofNormal(const std::vector<double> &samples,
                                   std::size_t bins = 32);

} // namespace vibnn::stats

#endif // VIBNN_STATS_CHI_SQUARE_HH
