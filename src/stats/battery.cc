/**
 * @file
 * Randomness battery (see battery.hh).
 */

#include "stats/battery.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "stats/ad_test.hh"
#include "stats/chi_square.hh"
#include "stats/ks_test.hh"
#include "stats/ljung_box.hh"
#include "stats/moments.hh"
#include "stats/runs_test.hh"

namespace vibnn::stats
{

const BatteryRow &
BatteryReport::row(const std::string &test) const
{
    for (const auto &r : rows) {
        if (r.test == test)
            return r;
    }
    fatal("battery report has no test named " + test);
}

double
BatteryReport::worstPassRate() const
{
    double worst = 1.0;
    for (const auto &r : rows)
        worst = std::min(worst, r.passRate);
    return worst;
}

BatteryReport
runBattery(const std::function<void(std::vector<double> &)> &generate,
           const BatteryConfig &config)
{
    VIBNN_ASSERT(config.repetitions > 0, "battery needs repetitions");
    VIBNN_ASSERT(config.samplesPerTest > config.ljungBoxLags + 1,
                 "battery segment shorter than Ljung-Box lags");

    struct Tally
    {
        std::size_t passed = 0;
        double statistic = 0.0;
        double pValue = 0.0;
    };
    Tally runs, lb, ks, chi, ad;

    Rng dither_rng(config.seed);
    RunningMoments moments;
    std::vector<double> samples(config.samplesPerTest);
    std::vector<double> shaped(config.samplesPerTest);

    for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        samples.resize(config.samplesPerTest);
        generate(samples);
        moments.add(samples);

        // Order-sensitive tests run on the raw stream.
        {
            const auto r = runsTest(samples, config.alpha);
            runs.passed += r.passed ? 1 : 0;
            runs.statistic += r.z;
            runs.pValue += r.pValue;
        }
        {
            const auto r =
                ljungBoxTest(samples, config.ljungBoxLags, config.alpha);
            lb.passed += r.passed ? 1 : 0;
            lb.statistic += r.statistic;
            lb.pValue += r.pValue;
        }

        // Shape tests optionally see the dithered stream.
        const std::vector<double> *shape_input = &samples;
        if (config.ditherStep > 0.0) {
            shaped.resize(samples.size());
            for (std::size_t i = 0; i < samples.size(); ++i) {
                shaped[i] = samples[i] +
                    config.ditherStep *
                        (dither_rng.uniform() - 0.5);
            }
            shape_input = &shaped;
        }
        {
            const auto r = ksTestStandardNormal(*shape_input);
            ks.passed += r.pValue >= config.alpha ? 1 : 0;
            ks.statistic += r.statistic;
            ks.pValue += r.pValue;
        }
        {
            const auto r = chiSquareGofNormal(*shape_input);
            chi.passed += r.pValue >= config.alpha ? 1 : 0;
            chi.statistic += r.statistic;
            chi.pValue += r.pValue;
        }
        {
            const auto r = adTestStandardNormal(*shape_input,
                                                config.alpha);
            ad.passed += r.passed ? 1 : 0;
            ad.statistic += r.statistic;
            ad.pValue += r.pValue;
        }
    }

    const double reps = static_cast<double>(config.repetitions);
    auto finish = [&](const char *name, const Tally &t) {
        BatteryRow row;
        row.test = name;
        row.passRate = static_cast<double>(t.passed) / reps;
        row.meanStatistic = t.statistic / reps;
        row.meanPValue = t.pValue / reps;
        return row;
    };

    BatteryReport report;
    report.rows.push_back(finish("runs", runs));
    report.rows.push_back(finish("ljung-box", lb));
    report.rows.push_back(finish("ks", ks));
    report.rows.push_back(finish("chi-square", chi));
    report.rows.push_back(finish("anderson-darling", ad));
    report.mean = moments.mean();
    report.stddev = moments.stddev();
    return report;
}

} // namespace vibnn::stats
