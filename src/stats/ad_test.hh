/**
 * @file
 * Anderson-Darling test against the fully-specified standard normal.
 *
 * The AD statistic weights the CDF discrepancy by 1/(F(1-F)), making it
 * far more sensitive in the tails than Kolmogorov-Smirnov — exactly
 * where the binomial-approximation GRNGs deviate (a B(255, 0.5) count
 * has no mass beyond +-8 sigma and slightly light tails inside). The
 * p-value uses Marsaglia & Marsaglia's (2004) asymptotic approximation
 * for the case-0 (no estimated parameters) distribution of A^2.
 *
 * Note for discrete generators: an 8-bit GRNG has 256 support points;
 * at large n the AD test resolves the lattice itself. The `dither`
 * option adds uniform noise of one quantization step to test the
 * underlying lattice distribution instead — both views are reported by
 * the randomness battery.
 */

#ifndef VIBNN_STATS_AD_TEST_HH
#define VIBNN_STATS_AD_TEST_HH

#include <cstddef>
#include <vector>

namespace vibnn::stats
{

/** AD test outcome. */
struct AdTestResult
{
    /** The A^2 statistic. */
    double statistic = 0.0;
    /** Asymptotic p-value, case 0 (fully specified null). */
    double pValue = 0.0;
    std::size_t n = 0;
    /** True when the null is not rejected at the given alpha. */
    bool passed = false;
};

/**
 * Anderson-Darling test of samples against N(0, 1).
 * @param samples The sample set (order irrelevant).
 * @param alpha Significance level for the pass flag.
 */
AdTestResult adTestStandardNormal(const std::vector<double> &samples,
                                  double alpha = 0.05);

/** P(A^2 <= z) for the asymptotic case-0 AD distribution
 *  (Marsaglia & Marsaglia 2004, "Evaluating the Anderson-Darling
 *  distribution", short-series form; absolute error < 2e-6). */
double andersonDarlingCdf(double z);

} // namespace vibnn::stats

#endif // VIBNN_STATS_AD_TEST_HH
