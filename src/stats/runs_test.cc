#include "stats/runs_test.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "stats/normal.hh"

namespace vibnn::stats
{

RunsTestResult
runsTest(const std::vector<double> &samples, double alpha)
{
    RunsTestResult result;
    if (samples.size() < 2)
        return result;

    // Median via nth_element on a copy.
    std::vector<double> sorted(samples);
    std::size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
    double median = sorted[mid];
    if (sorted.size() % 2 == 0) {
        auto lower = std::max_element(sorted.begin(), sorted.begin() + mid);
        median = 0.5 * (median + *lower);
    }

    // Classify, dropping exact ties (runstest default behaviour).
    int previous = 0;
    for (double x : samples) {
        int cls;
        if (x > median)
            cls = 1;
        else if (x < median)
            cls = -1;
        else
            continue;
        if (cls > 0)
            ++result.nPlus;
        else
            ++result.nMinus;
        if (cls != previous)
            ++result.runs;
        previous = cls;
    }

    const double n1 = static_cast<double>(result.nPlus);
    const double n2 = static_cast<double>(result.nMinus);
    const double n = n1 + n2;
    if (n1 == 0 || n2 == 0 || n < 2) {
        result.passed = false;
        result.pValue = 0.0;
        return result;
    }

    const double expected_runs = 2.0 * n1 * n2 / n + 1.0;
    const double var_runs =
        2.0 * n1 * n2 * (2.0 * n1 * n2 - n) / (n * n * (n - 1.0));
    const double sd = std::sqrt(var_runs);

    // Continuity correction of 0.5, as used by runstest.
    double deviation = static_cast<double>(result.runs) - expected_runs;
    double corrected = 0.0;
    if (std::fabs(deviation) > 0.5)
        corrected = deviation > 0 ? deviation - 0.5 : deviation + 0.5;
    result.z = sd > 0.0 ? corrected / sd : 0.0;
    result.pValue = 2.0 * (1.0 - normalCdf(std::fabs(result.z)));
    result.passed = result.pValue >= alpha;
    return result;
}

double
runsTestPassRate(
    const std::function<void(std::vector<double> &)> &generate,
    std::size_t samples_per_test, std::size_t repetitions, double alpha)
{
    if (repetitions == 0)
        return 0.0;
    std::vector<double> buffer;
    buffer.reserve(samples_per_test);
    std::size_t passed = 0;
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
        buffer.clear();
        buffer.resize(samples_per_test);
        generate(buffer);
        if (runsTest(buffer, alpha).passed)
            ++passed;
    }
    return static_cast<double>(passed) / static_cast<double>(repetitions);
}

} // namespace vibnn::stats
