/**
 * @file
 * Ljung-Box test (see ljung_box.hh).
 */

#include "stats/ljung_box.hh"

#include "stats/autocorr.hh"
#include "stats/special.hh"

namespace vibnn::stats
{

LjungBoxResult
ljungBoxTest(const std::vector<double> &samples, std::size_t lags,
             double alpha)
{
    LjungBoxResult result;
    result.lags = lags;
    result.n = samples.size();
    if (samples.size() <= lags + 1 || lags == 0)
        return result;

    const double n = static_cast<double>(samples.size());
    const auto rho = autocorrelations(samples, lags);
    double q = 0.0;
    for (std::size_t k = 1; k <= lags; ++k) {
        q += rho[k - 1] * rho[k - 1] /
            (n - static_cast<double>(k));
    }
    result.statistic = n * (n + 2.0) * q;
    result.pValue =
        chiSquareSf(result.statistic, static_cast<double>(lags));
    result.passed = result.pValue >= alpha;
    return result;
}

} // namespace vibnn::stats
