/**
 * @file
 * Sequential convergence test for Monte-Carlo posterior predictives.
 *
 * The fixed-ensemble estimate (paper equation (6)) spends T rounds on
 * every input, but for most inputs the running class-vote statistics
 * settle long before the budget is spent: after a handful of samples
 * the top-1 mass leads the top-2 mass by far more than the sampling
 * noise could ever close. This test watches one image's running
 * per-sample softmax distributions and answers, at any checkpoint,
 * whether more rounds can still change the decision:
 *
 *  - Decided: the vote gap is mathematically frozen. Every future
 *    sample moves the (top-1 - top-2) probability-mass gap by at most
 *    1, so once gap > remaining-budget the argmax cannot flip no
 *    matter what the remaining draws produce.
 *  - Converged: a one-sided confidence-interval test on the running
 *    top-1 vs top-2 mean mass. The per-class variance is tracked
 *    across samples and the gap's standard error is bounded
 *    conservatively by (sd1 + sd2)/sqrt(t) (the Cauchy-Schwarz worst
 *    case of the unknown covariance, so the test only ever errs toward
 *    running MORE rounds). Exit when mean gap > z * se at the
 *    configured confidence.
 *  - Continue: neither criterion holds (or fewer than minSamples have
 *    been observed).
 *
 * Everything is accumulated serially in double precision in sample
 * order, so a decision is a pure function of the sample sequence —
 * schedule- and batch-composition-independent by construction, which
 * is what lets the adaptive Monte-Carlo path above this pin
 * bit-identical results across thread counts.
 */

#ifndef VIBNN_STATS_SEQUENTIAL_TEST_HH
#define VIBNN_STATS_SEQUENTIAL_TEST_HH

#include <cstddef>
#include <vector>

namespace vibnn::stats
{

/** Outcome of one convergence checkpoint. */
enum class SequentialDecision
{
    /** Keep sampling: the posterior is still undecided. */
    Continue,
    /** The statistical test says more rounds cannot plausibly change
     *  the argmax at the configured confidence. */
    Converged,
    /** The vote gap exceeds the remaining budget: the argmax is
     *  mathematically frozen, not just statistically settled. */
    Decided,
};

/** Policy knobs of the sequential test. */
struct SequentialTestConfig
{
    /** One-sided confidence that the top-1 vs top-2 gap is positive
     *  before Converged fires; must be in (0, 1). Higher values spend
     *  more rounds before exiting. */
    double confidence = 0.999;
    /** No exit decision before this many samples (variance estimates
     *  from 1-2 samples are meaningless). */
    int minSamples = 4;
};

/**
 * Running class-vote / posterior-predictive statistics of ONE image's
 * Monte-Carlo ensemble, with the early-exit decision rule.
 */
class SequentialPosteriorTest
{
  public:
    SequentialPosteriorTest() = default;
    explicit SequentialPosteriorTest(std::size_t classes)
    {
        reset(classes);
    }

    /** Clear all state and size for `classes` classes. */
    void reset(std::size_t classes);

    /** Accumulate one MC sample's softmax distribution (`classes`
     *  entries summing to ~1). Serial, in sample order. */
    void add(const float *sample_probs);

    /** Samples accumulated so far. */
    int samples() const { return samples_; }

    /** Class count this test was reset for. */
    std::size_t classes() const { return sum_.size(); }

    /** Running ensemble-mean probabilities (sum / samples) into
     *  `out[0..classes)`. Zero-filled before any sample. */
    void mean(float *out) const;

    /** argmax of the running mean (lowest index wins ties); 0 before
     *  any sample. */
    std::size_t predicted() const;

    /**
     * The checkpoint decision given the total round budget. Pure:
     * depends only on the samples added so far and the arguments, so
     * re-evaluating at the same state always answers the same.
     */
    SequentialDecision decide(const SequentialTestConfig &config,
                              int budget) const;

  private:
    /** Indices of the largest and second-largest running vote mass. */
    void top2(std::size_t &first, std::size_t &second) const;

    /** Per-class sum of per-sample probabilities. */
    std::vector<double> sum_;
    /** Per-class sum of squared per-sample probabilities (for the
     *  running variance). */
    std::vector<double> sumSq_;
    int samples_ = 0;
};

} // namespace vibnn::stats

#endif // VIBNN_STATS_SEQUENTIAL_TEST_HH
