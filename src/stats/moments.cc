#include "stats/moments.hh"

#include <cmath>

namespace vibnn::stats
{

void
RunningMoments::add(double x)
{
    // Pebay's single-pass central moment updates.
    const double n1 = static_cast<double>(n_);
    n_ += 1;
    const double n = static_cast<double>(n_);
    const double delta = x - mean_;
    const double delta_n = delta / n;
    const double delta_n2 = delta_n * delta_n;
    const double term1 = delta * delta_n * n1;

    mean_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) +
        6.0 * delta_n2 * m2_ - 4.0 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
    m2_ += term1;
}

void
RunningMoments::add(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

double
RunningMoments::mean() const
{
    return n_ > 0 ? mean_ : 0.0;
}

double
RunningMoments::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningMoments::stddev() const
{
    return std::sqrt(variance());
}

double
RunningMoments::skewness() const
{
    if (n_ < 3 || m2_ <= 0.0)
        return 0.0;
    const double n = static_cast<double>(n_);
    return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double
RunningMoments::excessKurtosis() const
{
    if (n_ < 4 || m2_ <= 0.0)
        return 0.0;
    const double n = static_cast<double>(n_);
    return n * m4_ / (m2_ * m2_) - 3.0;
}

void
RunningMoments::reset()
{
    *this = RunningMoments();
}

StabilityResult
measureStability(const std::vector<double> &samples,
                 std::size_t window_size)
{
    StabilityResult result;
    if (window_size == 0 || samples.size() < window_size)
        return result;

    RunningMoments stream;
    double mu_abs_sum = 0.0;
    double sigma_abs_sum = 0.0;
    std::size_t windows = 0;

    for (std::size_t start = 0; start + window_size <= samples.size();
         start += window_size) {
        RunningMoments window;
        for (std::size_t i = 0; i < window_size; ++i)
            window.add(samples[start + i]);
        mu_abs_sum += std::fabs(window.mean());
        sigma_abs_sum += std::fabs(window.stddev() - 1.0);
        ++windows;
    }
    for (double x : samples)
        stream.add(x);

    result.muError = mu_abs_sum / static_cast<double>(windows);
    result.sigmaError = sigma_abs_sum / static_cast<double>(windows);
    result.windows = windows;
    result.streamMean = stream.mean();
    result.streamStddev = stream.stddev();
    return result;
}

} // namespace vibnn::stats
