/**
 * @file
 * Ljung-Box portmanteau test for serial correlation.
 *
 * Complements the runs test in the randomness battery: the runs test
 * sees only the above/below-median sign pattern, while Ljung-Box pools
 * the squared sample autocorrelations over the first m lags. It is the
 * sharper instrument for the two failure modes this project's ablations
 * uncovered — the RLF bounded-step random walk (positive low-lag
 * correlation) and the fixed-shift Wallace port-recycling spike
 * (isolated negative correlation at the pool-pass lag).
 */

#ifndef VIBNN_STATS_LJUNG_BOX_HH
#define VIBNN_STATS_LJUNG_BOX_HH

#include <cstddef>
#include <vector>

namespace vibnn::stats
{

/** Ljung-Box test outcome. */
struct LjungBoxResult
{
    /** The Q statistic (chi-square with `lags` dof under H0). */
    double statistic = 0.0;
    double pValue = 0.0;
    std::size_t lags = 0;
    std::size_t n = 0;
    /** True when the no-serial-correlation null is not rejected. */
    bool passed = false;
};

/**
 * Ljung-Box test on the first `lags` autocorrelations.
 * @param samples The sequence under test (order matters).
 * @param lags Number of pooled lags (default 20).
 * @param alpha Significance level for the pass flag.
 */
LjungBoxResult ljungBoxTest(const std::vector<double> &samples,
                            std::size_t lags = 20, double alpha = 0.05);

} // namespace vibnn::stats

#endif // VIBNN_STATS_LJUNG_BOX_HH
