#include "stats/chi_square.hh"

#include <cmath>

#include "common/logging.hh"
#include "stats/normal.hh"
#include "stats/special.hh"

namespace vibnn::stats
{

ChiSquareResult
chiSquareGofNormal(const std::vector<double> &samples, std::size_t bins)
{
    VIBNN_ASSERT(bins >= 2, "need at least two bins");
    ChiSquareResult result;
    result.bins = bins;
    result.dof = bins - 1;
    if (samples.empty())
        return result;

    // Bin edges at normal quantiles i/bins.
    std::vector<double> edges(bins - 1);
    for (std::size_t i = 1; i < bins; ++i) {
        edges[i - 1] =
            normalInvCdf(static_cast<double>(i) / static_cast<double>(bins));
    }

    std::vector<std::size_t> counts(bins, 0);
    for (double x : samples) {
        // Binary search for the bin.
        std::size_t lo = 0, hi = bins - 1;
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (x < edges[mid])
                hi = mid;
            else
                lo = mid + 1;
        }
        ++counts[lo];
    }

    const double expected = static_cast<double>(samples.size()) /
        static_cast<double>(bins);
    double stat = 0.0;
    for (std::size_t c : counts) {
        const double diff = static_cast<double>(c) - expected;
        stat += diff * diff / expected;
    }
    result.statistic = stat;
    result.pValue = chiSquareSf(stat, static_cast<double>(result.dof));
    return result;
}

} // namespace vibnn::stats
