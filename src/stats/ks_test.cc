#include "stats/ks_test.hh"

#include <algorithm>
#include <cmath>

#include "stats/normal.hh"
#include "stats/special.hh"

namespace vibnn::stats
{

KsTestResult
ksTestStandardNormal(const std::vector<double> &samples)
{
    KsTestResult result;
    result.n = samples.size();
    if (samples.empty())
        return result;

    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());

    const double n = static_cast<double>(sorted.size());
    double d = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double cdf = normalCdf(sorted[i]);
        const double lo = static_cast<double>(i) / n;
        const double hi = static_cast<double>(i + 1) / n;
        d = std::max(d, std::max(std::fabs(cdf - lo), std::fabs(hi - cdf)));
    }
    result.statistic = d;
    const double t = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * d;
    result.pValue = kolmogorovQ(t);
    return result;
}

} // namespace vibnn::stats
