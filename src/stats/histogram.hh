/**
 * @file
 * Fixed-range histogram with equal-width bins, plus an ASCII renderer used
 * by the examples to visualize GRNG output distributions.
 */

#ifndef VIBNN_STATS_HISTOGRAM_HH
#define VIBNN_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace vibnn::stats
{

/** Equal-width histogram over [lo, hi); out-of-range samples are counted
 *  in underflow/overflow. */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the histogram range.
     * @param hi Upper edge (must exceed lo).
     * @param bins Number of equal-width bins (>= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add a sample. */
    void add(double x);

    /** Add many samples. */
    void add(const std::vector<double> &xs);

    /** Count in bin i. */
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Number of bins. */
    std::size_t binCount() const { return counts_.size(); }

    /** Center x of bin i. */
    double binCenter(std::size_t i) const;

    /** Total samples added (including out-of-range). */
    std::size_t total() const { return total_; }

    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }

    /** Empirical probability mass of bin i. */
    double binProbability(std::size_t i) const;

    /** Render a horizontal-bar ASCII chart. */
    std::string renderAscii(std::size_t max_bar_width = 60) const;

  private:
    double lo_, hi_, width_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

} // namespace vibnn::stats

#endif // VIBNN_STATS_HISTOGRAM_HH
