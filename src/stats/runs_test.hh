/**
 * @file
 * Wald-Wolfowitz runs test of randomness.
 *
 * This is the test behind Matlab's runstest, which the paper uses for
 * Figure 15: each sample is classified as above/below the stream median,
 * the number of runs (maximal same-class streaks) is counted, and the
 * observed run count is compared to its expectation under independence
 * via a normal approximation. Serially correlated streams (e.g. a raw
 * RLF popcount stream, or a Wallace generator without the sharing and
 * shifting scheme) produce far too few runs and fail.
 */

#ifndef VIBNN_STATS_RUNS_TEST_HH
#define VIBNN_STATS_RUNS_TEST_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace vibnn::stats
{

/** Outcome of a single runs test. */
struct RunsTestResult
{
    /** Number of observed runs. */
    std::size_t runs = 0;
    /** Samples above / below the median (ties dropped, Matlab default). */
    std::size_t nPlus = 0;
    std::size_t nMinus = 0;
    /** z statistic (continuity corrected) and two-sided p-value. */
    double z = 0.0;
    double pValue = 1.0;
    /** True when the null "sequence is random" is not rejected. */
    bool passed = false;
};

/**
 * Run the Wald-Wolfowitz runs test above/below the sample median.
 *
 * @param samples The sequence under test (order matters).
 * @param alpha Significance level (default 0.05, as in the paper).
 */
RunsTestResult runsTest(const std::vector<double> &samples,
                        double alpha = 0.05);

/**
 * Repeat the runs test on consecutive non-overlapping segments generated
 * by a callable and report the pass rate — the Figure 15 protocol.
 *
 * @param generate Callable filling a vector with the next fresh samples.
 * @param samples_per_test Samples per individual test.
 * @param repetitions Number of tests.
 * @param alpha Significance level.
 * @return Fraction of tests passed in [0, 1].
 */
double runsTestPassRate(
    const std::function<void(std::vector<double> &)> &generate,
    std::size_t samples_per_test, std::size_t repetitions,
    double alpha = 0.05);

} // namespace vibnn::stats

#endif // VIBNN_STATS_RUNS_TEST_HH
