/**
 * @file
 * Online and windowed moment estimation.
 *
 * RunningMoments implements the numerically stable one-pass update for
 * mean/variance/skewness/kurtosis (Pebay's formulas). WindowedStability
 * implements the Table 1 metric: it splits a sample stream into fixed
 * windows, estimates (mu, sigma) per window and reports the mean absolute
 * deviation from the target (0, 1) — the "stability error" of a GRNG.
 */

#ifndef VIBNN_STATS_MOMENTS_HH
#define VIBNN_STATS_MOMENTS_HH

#include <cstddef>
#include <vector>

namespace vibnn::stats
{

/** One-pass mean/variance/skewness/kurtosis accumulator. */
class RunningMoments
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Add a batch of observations. */
    void add(const std::vector<double> &xs);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const;

    /** Unbiased sample variance (0 when n < 2). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Sample skewness g1 (0 when n < 3 or variance is 0). */
    double skewness() const;

    /** Excess kurtosis g2 (0 when n < 4 or variance is 0). */
    double excessKurtosis() const;

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double m3_ = 0.0;
    double m4_ = 0.0;
};

/** Result of a windowed stability measurement (Table 1 metric). */
struct StabilityResult
{
    /** Mean absolute deviation of per-window means from 0. */
    double muError = 0.0;
    /** Mean absolute deviation of per-window stddevs from 1. */
    double sigmaError = 0.0;
    /** Number of complete windows measured. */
    std::size_t windows = 0;
    /** Whole-stream mean / stddev for reference. */
    double streamMean = 0.0;
    double streamStddev = 0.0;
};

/**
 * Measure distributional stability of a sample stream against N(0, 1).
 *
 * @param samples The generated stream (assumed normalized to unit scale).
 * @param window_size Samples per window; incomplete tail is dropped.
 */
StabilityResult measureStability(const std::vector<double> &samples,
                                 std::size_t window_size);

} // namespace vibnn::stats

#endif // VIBNN_STATS_MOMENTS_HH
