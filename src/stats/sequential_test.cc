#include "stats/sequential_test.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "stats/normal.hh"

namespace vibnn::stats
{

void
SequentialPosteriorTest::reset(std::size_t classes)
{
    sum_.assign(classes, 0.0);
    sumSq_.assign(classes, 0.0);
    samples_ = 0;
}

void
SequentialPosteriorTest::add(const float *sample_probs)
{
    for (std::size_t c = 0; c < sum_.size(); ++c) {
        const double p = static_cast<double>(sample_probs[c]);
        sum_[c] += p;
        sumSq_[c] += p * p;
    }
    ++samples_;
}

void
SequentialPosteriorTest::mean(float *out) const
{
    if (samples_ == 0) {
        std::fill(out, out + sum_.size(), 0.0f);
        return;
    }
    const double inv = 1.0 / static_cast<double>(samples_);
    for (std::size_t c = 0; c < sum_.size(); ++c)
        out[c] = static_cast<float>(sum_[c] * inv);
}

std::size_t
SequentialPosteriorTest::predicted() const
{
    std::size_t best = 0;
    for (std::size_t c = 1; c < sum_.size(); ++c)
        if (sum_[c] > sum_[best])
            best = c;
    return best;
}

void
SequentialPosteriorTest::top2(std::size_t &first,
                              std::size_t &second) const
{
    first = predicted();
    second = first == 0 ? 1 : 0;
    for (std::size_t c = 0; c < sum_.size(); ++c) {
        if (c == first)
            continue;
        if (sum_[c] > sum_[second])
            second = c;
    }
}

SequentialDecision
SequentialPosteriorTest::decide(const SequentialTestConfig &config,
                                int budget) const
{
    VIBNN_ASSERT(config.confidence > 0.0 && config.confidence < 1.0,
                 "sequential test confidence must be in (0, 1)");
    if (samples_ < std::max(config.minSamples, 1))
        return SequentialDecision::Continue;
    // A single class can never change its argmax.
    if (sum_.size() < 2)
        return SequentialDecision::Decided;

    std::size_t c1 = 0, c2 = 0;
    top2(c1, c2);
    const double gap = sum_[c1] - sum_[c2];
    const double remaining =
        static_cast<double>(budget) - static_cast<double>(samples_);

    // Hard bound: every future sample shifts the (c1 - c2) vote gap by
    // at most 1 (it can hand at most its whole unit of probability
    // mass to c2 and none to c1), so a gap strictly larger than the
    // remaining budget freezes the decision. c2 is the runner-up over
    // ALL classes, so no third class can overtake either.
    if (gap > remaining)
        return SequentialDecision::Decided;
    if (samples_ < 2) // no variance estimate from one sample
        return SequentialDecision::Continue;

    // Statistical bound: one-sided CI on the mean gap. The covariance
    // of the two class masses is unknown at this altitude, so bound
    // sd(gap) by sd1 + sd2 — always >= the true value, so the test can
    // only be too cautious, never too eager.
    const double t = static_cast<double>(samples_);
    const double mean_gap = gap / t;
    auto variance = [&](std::size_t c) {
        const double m = sum_[c] / t;
        // Sample variance (n - 1 denominator); clamp float roundoff.
        const double v = (sumSq_[c] - t * m * m) / (t - 1.0);
        return std::max(v, 0.0);
    };
    const double sd =
        std::sqrt(variance(c1)) + std::sqrt(variance(c2));
    const double z = normalInvCdf(config.confidence);
    if (mean_gap > z * sd / std::sqrt(t))
        return SequentialDecision::Converged;
    return SequentialDecision::Continue;
}

} // namespace vibnn::stats
