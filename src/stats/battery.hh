/**
 * @file
 * Composite randomness battery for Gaussian generators.
 *
 * The paper's Figure 15 evaluates one instrument (Matlab's runstest);
 * this battery widens the evaluation to five complementary tests, each
 * repeated on fresh segments so a pass *rate* can be reported per test:
 *
 *   - runs test            — sign-pattern independence (the paper's),
 *   - Ljung-Box            — pooled low-lag autocorrelation,
 *   - Kolmogorov-Smirnov   — bulk distribution shape,
 *   - chi-square GoF       — shape on equal-mass bins (discreteness
 *                            tolerant),
 *   - Anderson-Darling     — tail-weighted shape.
 *
 * Discrete 8-bit generators have a 256-point lattice that the shape
 * tests can resolve at large n; `ditherStep` optionally smears each
 * sample uniformly within its quantization bin so the underlying
 * distribution is tested instead of the lattice. The GRNG battery
 * bench reports both views.
 */

#ifndef VIBNN_STATS_BATTERY_HH
#define VIBNN_STATS_BATTERY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace vibnn::stats
{

/** Battery knobs. */
struct BatteryConfig
{
    /** Samples per individual test. */
    std::size_t samplesPerTest = 10000;
    /** Repetitions per test (fresh segments each). */
    std::size_t repetitions = 20;
    /** Significance level. */
    double alpha = 0.05;
    /** Pooled lags for Ljung-Box. */
    std::size_t ljungBoxLags = 20;
    /**
     * Quantization step of the generator's output lattice; when > 0,
     * the distribution-shape tests (KS, chi-square, AD) run on samples
     * dithered by uniform(-step/2, step/2). 0 = no dithering.
     */
    double ditherStep = 0.0;
    /** Seed for the dithering noise (not the generator). */
    std::uint64_t seed = 1;
};

/** Pass rate and mean statistic of one test across repetitions. */
struct BatteryRow
{
    std::string test;
    double passRate = 0.0;
    double meanStatistic = 0.0;
    double meanPValue = 0.0;
};

/** Full battery outcome. */
struct BatteryReport
{
    std::vector<BatteryRow> rows;
    /** Moments pooled over every sample the battery consumed. */
    double mean = 0.0;
    double stddev = 0.0;

    /** Row lookup by test name; fatal if missing. */
    const BatteryRow &row(const std::string &test) const;
    /** Lowest pass rate across all tests. */
    double worstPassRate() const;
};

/**
 * Run the battery.
 * @param generate Callable filling its argument with the next fresh
 *        samples from the generator under test (the vector arrives
 *        pre-sized; order within and across calls matters).
 * @param config Battery knobs.
 */
BatteryReport
runBattery(const std::function<void(std::vector<double> &)> &generate,
           const BatteryConfig &config);

} // namespace vibnn::stats

#endif // VIBNN_STATS_BATTERY_HH
