/**
 * @file
 * Anderson-Darling test (see ad_test.hh).
 */

#include "stats/ad_test.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "stats/normal.hh"

namespace vibnn::stats
{

double
andersonDarlingCdf(double z)
{
    if (z <= 0.0)
        return 0.0;
    if (z < 2.0) {
        // Short-series form for the left branch.
        return std::exp(-1.2337141 / z) / std::sqrt(z) *
            (2.00012 +
             (0.247105 -
              (0.0649821 - (0.0347962 - (0.011672 - 0.00168691 * z) * z) *
                  z) * z) * z);
    }
    return std::exp(
        -std::exp(1.0776 -
                  (2.30695 -
                   (0.43424 - (0.082433 - (0.008056 - 0.0003146 * z) * z) *
                       z) * z) * z));
}

AdTestResult
adTestStandardNormal(const std::vector<double> &samples, double alpha)
{
    AdTestResult result;
    result.n = samples.size();
    if (samples.size() < 8)
        return result;

    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();

    // A^2 = -n - (1/n) sum (2i-1) [ln F(x_i) + ln (1 - F(x_{n+1-i}))],
    // with CDF values clamped away from {0, 1} so lattice extremes do
    // not produce infinities.
    constexpr double tiny = 1e-300;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double fi =
            std::clamp(normalCdf(sorted[i]), tiny, 1.0 - 1e-16);
        const double fj = std::clamp(normalCdf(sorted[n - 1 - i]), tiny,
                                     1.0 - 1e-16);
        acc += (2.0 * (i + 1) - 1.0) *
            (std::log(fi) + std::log1p(-fj));
    }
    result.statistic = -static_cast<double>(n) -
        acc / static_cast<double>(n);
    result.pValue = 1.0 - andersonDarlingCdf(result.statistic);
    result.passed = result.pValue >= alpha;
    return result;
}

} // namespace vibnn::stats
