#include "stats/special.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace vibnn::stats
{

namespace
{

/** Lower incomplete gamma via its power series; converges for x < a+1. */
double
gammaPSeries(double a, double x)
{
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::fabs(del) < std::fabs(sum) * 1e-15)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Upper incomplete gamma via Lentz continued fraction; for x >= a+1. */
double
gammaQContinuedFraction(double a, double x)
{
    const double fpmin = std::numeric_limits<double>::min() / 1e-15;
    double b = x + 1.0 - a;
    double c = 1.0 / fpmin;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= 500; ++i) {
        double an = -i * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = b + an / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < 1e-15)
            break;
    }
    return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

} // anonymous namespace

double
regularizedGammaP(double a, double x)
{
    VIBNN_ASSERT(a > 0.0 && x >= 0.0, "invalid incomplete gamma arguments");
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
regularizedGammaQ(double a, double x)
{
    VIBNN_ASSERT(a > 0.0 && x >= 0.0, "invalid incomplete gamma arguments");
    if (x == 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - gammaPSeries(a, x);
    return gammaQContinuedFraction(a, x);
}

double
chiSquareSf(double x, double k)
{
    if (x <= 0.0)
        return 1.0;
    return regularizedGammaQ(0.5 * k, 0.5 * x);
}

double
kolmogorovQ(double t)
{
    if (t <= 0.0)
        return 1.0;
    // Q(t) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 t^2); terms decay
    // extremely fast for t > 0.5.
    double sum = 0.0;
    double sign = 1.0;
    for (int j = 1; j <= 100; ++j) {
        double term = std::exp(-2.0 * j * j * t * t);
        sum += sign * term;
        if (term < 1e-16)
            break;
        sign = -sign;
    }
    double q = 2.0 * sum;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    return q;
}

} // namespace vibnn::stats
