#include "stats/autocorr.hh"

namespace vibnn::stats
{

double
autocorrelation(const std::vector<double> &samples, std::size_t lag)
{
    const std::size_t n = samples.size();
    if (lag >= n || n < 2)
        return 0.0;

    double mean = 0.0;
    for (double x : samples)
        mean += x;
    mean /= static_cast<double>(n);

    double denom = 0.0;
    for (double x : samples) {
        const double d = x - mean;
        denom += d * d;
    }
    if (denom == 0.0)
        return 0.0;

    double numer = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i)
        numer += (samples[i] - mean) * (samples[i + lag] - mean);

    return numer / denom;
}

std::vector<double>
autocorrelations(const std::vector<double> &samples, std::size_t max_lag)
{
    std::vector<double> result;
    result.reserve(max_lag);
    for (std::size_t lag = 1; lag <= max_lag; ++lag)
        result.push_back(autocorrelation(samples, lag));
    return result;
}

} // namespace vibnn::stats
