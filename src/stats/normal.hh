/**
 * @file
 * Standard normal distribution functions.
 *
 * Used by the GRNG quality tests (expected bin probabilities, KS
 * distances) and by the CDF-inversion baseline generator. The inverse CDF
 * uses Acklam's rational approximation refined by one Halley step, giving
 * ~1e-15 relative accuracy — far below anything the statistical tests can
 * resolve.
 */

#ifndef VIBNN_STATS_NORMAL_HH
#define VIBNN_STATS_NORMAL_HH

namespace vibnn::stats
{

/** Standard normal probability density at x. */
double normalPdf(double x);

/** Standard normal cumulative distribution at x. */
double normalCdf(double x);

/**
 * Inverse standard normal CDF (quantile function).
 * @param p Probability in (0, 1); values at or beyond the boundary are
 *        clamped to +/- ~8.2 sigma.
 */
double normalInvCdf(double p);

} // namespace vibnn::stats

#endif // VIBNN_STATS_NORMAL_HH
