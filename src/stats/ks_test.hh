/**
 * @file
 * One-sample Kolmogorov-Smirnov test against the standard normal.
 *
 * Used by the GRNG unit tests to check distribution shape. Note that the
 * binomial-count GRNGs produce *discrete* samples (256 support points),
 * for which the KS statistic has a floor of about half the largest bin
 * probability; tests account for this.
 */

#ifndef VIBNN_STATS_KS_TEST_HH
#define VIBNN_STATS_KS_TEST_HH

#include <cstddef>
#include <vector>

namespace vibnn::stats
{

/** KS test outcome. */
struct KsTestResult
{
    /** Supremum distance between empirical and target CDFs. */
    double statistic = 0.0;
    /** Asymptotic p-value from the Kolmogorov distribution. */
    double pValue = 0.0;
    std::size_t n = 0;
};

/** One-sample KS test of samples against N(0, 1). */
KsTestResult ksTestStandardNormal(const std::vector<double> &samples);

} // namespace vibnn::stats

#endif // VIBNN_STATS_KS_TEST_HH
