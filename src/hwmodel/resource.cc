#include "hwmodel/resource.hh"

namespace vibnn::hw
{

ResourceEstimate &
ResourceEstimate::operator+=(const ResourceEstimate &other)
{
    alms += other.alms;
    registers += other.registers;
    memoryBits += other.memoryBits;
    ramBlocks += other.ramBlocks;
    dsps += other.dsps;
    ramAccessBitsPerCycle += other.ramAccessBitsPerCycle;
    return *this;
}

ResourceEstimate
DesignEstimate::total() const
{
    ResourceEstimate sum;
    for (const auto &component : components)
        sum += component.resources;
    return sum;
}

} // namespace vibnn::hw
