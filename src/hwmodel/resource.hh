/**
 * @file
 * FPGA resource accounting records.
 *
 * ResourceEstimate aggregates the quantities the paper reports in its
 * utilization tables (ALMs, dedicated registers, block-memory bits, M10K
 * RAM blocks, DSP blocks) plus the modeled operating point (clock and
 * power). Estimates compose with operator+ so a design is the sum of its
 * components, and each component can be labeled for itemized reports.
 */

#ifndef VIBNN_HWMODEL_RESOURCE_HH
#define VIBNN_HWMODEL_RESOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vibnn::hw
{

/** Resource usage of one hardware component or a whole design. */
struct ResourceEstimate
{
    double alms = 0.0;
    double registers = 0.0;
    std::int64_t memoryBits = 0;
    int ramBlocks = 0;
    int dsps = 0;
    /** Block-RAM bits read+written per clock cycle when active — the
     *  dominant dynamic-power term for memory-heavy designs. */
    double ramAccessBitsPerCycle = 0.0;

    ResourceEstimate &operator+=(const ResourceEstimate &other);
    friend ResourceEstimate operator+(ResourceEstimate a,
                                      const ResourceEstimate &b)
    {
        a += b;
        return a;
    }
};

/** A labeled component within an itemized design report. */
struct ComponentEstimate
{
    std::string label;
    ResourceEstimate resources;
};

/** Itemized estimate for a full design. */
struct DesignEstimate
{
    std::string name;
    std::vector<ComponentEstimate> components;
    /** Modeled maximum clock frequency in MHz. */
    double fmaxMhz = 0.0;
    /** Modeled total power (static + dynamic) in mW at fmax. */
    double powerMw = 0.0;

    /** Sum of all components. */
    ResourceEstimate total() const;
};

} // namespace vibnn::hw

#endif // VIBNN_HWMODEL_RESOURCE_HH
