/**
 * @file
 * Hardware cost survey across the four GRNG algorithm families of the
 * paper's Section 2.3 (following Malik & Hemani's taxonomy, the paper's
 * reference [34]):
 *
 *   1. CDF inversion       — segmented-LUT ICDF evaluation,
 *   2. transformation      — Box-Muller with CORDIC/LUT elementary
 *                            functions (the non-CLT representative;
 *                            the CLT representative is the RLF design),
 *   3. rejection           — Ziggurat with a layer-table and a rare
 *                            escape path,
 *   4. recursion           — Wallace (modeled in grng_hw.hh as
 *                            BNNWallace).
 *
 * The paper argues qualitatively that CLT-based and Wallace generators
 * are the appropriate hardware choices for BNN acceleration because of
 * their low computation overhead; these models make that argument
 * quantitative for the 64-parallel generation task: inversion and
 * Box-Muller cost DSP multipliers and deep elementary-function
 * pipelines per output lane, and Ziggurat's acceptance loop breaks the
 * free-running one-sample-per-cycle contract the weight generator
 * depends on. Each model documents its micro-architecture assumptions
 * inline; coefficients reuse the Cyclone V primitives calibrated on the
 * paper's own Table 2.
 */

#ifndef VIBNN_HWMODEL_GRNG_SURVEY_HH
#define VIBNN_HWMODEL_GRNG_SURVEY_HH

#include <string>
#include <vector>

#include "hwmodel/resource.hh"

namespace vibnn::hw
{

/** Shared knobs for the survey designs. */
struct SurveyGrngConfig
{
    /** Parallel output lanes (the BNN task needs 64). */
    int outputs = 64;
    /** Output sample width in bits. */
    int sampleBits = 8;
    /** Internal datapath width for the function evaluators. */
    int internalBits = 16;
};

/**
 * CDF-inversion GRNG: per lane, a uniform LFSR indexes a 128-segment
 * degree-2 polynomial table (three coefficients per segment) and two
 * DSP multiplies evaluate Horner's rule. 1 sample/cycle/lane.
 */
DesignEstimate cdfInversionEstimate(const SurveyGrngConfig &config);

/**
 * Box-Muller GRNG: per *pair* of lanes, one ln(u) unit (segmented LUT +
 * multiplier), one sqrt CORDIC (internalBits iterations folded 2x), one
 * sin/cos CORDIC, and two output multiplies. 2 samples/cycle per
 * engine.
 */
DesignEstimate boxMullerEstimate(const SurveyGrngConfig &config);

/**
 * Ziggurat GRNG: per lane, a 256-layer table (x_i, y_i thresholds), one
 * DSP multiply and a comparator; ~1.5% of draws take the rejection
 * escape path, which stalls the lane (modeled as the acceptance rate
 * below rather than extra hardware for the rare exp() path, which we
 * price as a shared soft-logic unit per 16 lanes).
 */
DesignEstimate zigguratEstimate(const SurveyGrngConfig &config);

/** One row of the survey comparison. */
struct GrngSurveyRow
{
    /** Family name as in Section 2.3. */
    std::string family;
    /** Concrete design evaluated. */
    std::string design;
    DesignEstimate estimate;
    /** Average samples per cycle across all lanes. */
    double samplesPerCycle = 0.0;
    /** True when every cycle yields exactly one sample per lane (the
     *  property the free-running weight generator requires). */
    bool deterministicRate = true;
};

/**
 * The full five-design survey (CDF inversion, Box-Muller, Ziggurat,
 * RLF = CLT family, BNNWallace = recursion family) for one task size.
 */
std::vector<GrngSurveyRow> grngSurvey(const SurveyGrngConfig &config);

} // namespace vibnn::hw

#endif // VIBNN_HWMODEL_GRNG_SURVEY_HH
