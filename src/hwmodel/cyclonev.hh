/**
 * @file
 * Component-level cost model for the Altera Cyclone V FPGA the paper
 * evaluates on (model 5CGTFD9E5F35C7).
 *
 * The primitives below translate logical structures (adders, XOR banks,
 * multiplexers, multipliers, RAMs) into device resources:
 *
 *  - ALMs: each Cyclone V ALM packs two combinational LUT outputs and a
 *    2-bit carry slice; the per-structure coefficients are standard
 *    synthesis rules of thumb.
 *  - M10K blocks: 10,240 bits each, at most 40 bits wide; wide words
 *    stripe across ceil(width/40) physical blocks.
 *  - DSP blocks: 342 on this device, each able to host three
 *    independent 9x9 multiplies — which is exactly why the paper's
 *    1024-multiplier PE array shows 342/342 (100%) DSP usage.
 *
 * The power model is linear in resource counts and clock frequency with
 * coefficients calibrated against the paper's own Table 2 (the RLF and
 * BNNWallace 64-output GRNG measurements), as documented inline; the
 * frequency model is a two-parameter logic-depth fit through the same
 * table. EXPERIMENTS.md discusses the calibration in detail.
 */

#ifndef VIBNN_HWMODEL_CYCLONEV_HH
#define VIBNN_HWMODEL_CYCLONEV_HH

#include "hwmodel/resource.hh"

namespace vibnn::hw
{

/** Device capacity constants for the 5CGTFD9E5F35C7. */
struct CycloneVDevice
{
    static constexpr int totalAlms = 113560;
    static constexpr std::int64_t totalMemoryBits = 12492800;
    static constexpr int totalRamBlocks = 1220;
    static constexpr int totalDsps = 342;
    /** M10K geometry. */
    static constexpr int ramBlockBits = 10240;
    static constexpr int ramBlockMaxWidth = 40;
    /** Each DSP hosts three independent 9x9 multipliers. */
    static constexpr int multipliersPerDsp = 3;
};

/** ALMs for a `width`-bit ripple/carry adder or subtractor. */
double adderAlms(int width);

/** ALMs for `count` independent 2-input XOR/AND-level gates. */
double gateAlms(int count);

/** ALMs for a ways:1 multiplexer of `width` bits. */
double muxAlms(int width, int ways);

/** ALMs for an n-input parallel counter (popcount). */
double parallelCounterAlms(int inputs);

/** ALMs for an a x b soft multiplier (when DSPs are exhausted). */
double softMultiplierAlms(int a_bits, int b_bits);

/** Registers for a `width`-bit pipeline/data register. */
double registerCost(int width);

/**
 * Block RAM allocation for a memory of `depth` words x `width` bits:
 * stripes ceil(width/40) wide and ceil over the 10 Kb capacity.
 */
ResourceEstimate blockRam(int depth, int width);

/** DSP blocks to host `count` multipliers of <= 9x9 bits. */
int dspBlocks(int count);

/**
 * Modeled Fmax for a pipeline stage of `logic_levels` LUT levels plus a
 * `carry_bits`-bit carry chain. Calibrated so the RLF-GRNG stage (short
 * popcount + 8-bit accumulate) lands at ~213 MHz and the Wallace stage
 * (16-bit 4-input adder tree + subtract) at ~118 MHz, the paper's
 * Table 2 operating points.
 */
double stageFmaxMhz(int logic_levels, int carry_bits);

/**
 * Power model: static + sum(coefficient_i * count_i) * fMHz.
 * Coefficients (uW/MHz per unit) calibrated on Table 2; see .cc.
 */
double powerMw(const ResourceEstimate &resources, double f_mhz);

} // namespace vibnn::hw

#endif // VIBNN_HWMODEL_CYCLONEV_HH
