#include "hwmodel/network_hw.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "hwmodel/cyclonev.hh"

namespace vibnn::hw
{

namespace
{

/**
 * Placement/routing and control overhead on top of the raw datapath
 * estimate; calibrated so the paper's 16x8x8 / 8-bit configurations
 * land near Table 4's 98,006 (RLF) and 91,126 (Wallace) ALMs.
 */
constexpr double kAlmOverhead = 1.31;
constexpr double kRegOverhead = 1.15;

/** Soft multiplier cost used for the weight updater (DSPs are consumed
 *  by the PE array). */
double
weightUpdaterMultAlms(int bits)
{
    return 0.65 * bits * bits;
}

} // anonymous namespace

int
peMultiplierCount(const NetworkHwConfig &config)
{
    return config.peSets * config.pesPerSet * config.peInputs;
}

DesignEstimate
networkEstimate(const NetworkHwConfig &config)
{
    DesignEstimate design;
    design.name = config.grng == GrngKind::Rlf
                      ? "RLF-based Network"
                      : "BNNWallace-based Network";

    const int b = config.bits;
    const int n = config.peInputs;
    const int s = config.pesPerSet;
    const int t = config.peSets;
    const int pes = t * s;
    const int mults = pes * n;

    // --- PE array -------------------------------------------------
    {
        ResourceEstimate r;
        // Multipliers prefer DSP blocks (3 per block for <= 9x9);
        // overflow spills into soft logic.
        const int dsp_capacity =
            CycloneVDevice::totalDsps * CycloneVDevice::multipliersPerDsp;
        const int in_dsp = std::min(mults, dsp_capacity);
        const int in_soft = mults - in_dsp;
        r.dsps = dspBlocks(in_dsp);
        r.alms += in_soft * softMultiplierAlms(b, b);

        // Per-PE adder tree (n-1 adders at product width), accumulator,
        // bias adder, ReLU and requantization.
        const int product_bits = 2 * b;
        const int acc_bits = product_bits + 8;
        double per_pe = 0.0;
        per_pe += (n - 1) * adderAlms(product_bits + 2);
        per_pe += adderAlms(acc_bits);     // accumulator
        per_pe += adderAlms(acc_bits);     // bias add
        per_pe += gateAlms(b);             // ReLU
        per_pe += muxAlms(b, 2);           // saturating requantize
        r.alms += pes * per_pe;

        // 3-stage pipeline registers: input latch, product registers,
        // accumulator + output.
        r.registers = pes * (registerCost(n * b)            // inputs
                             + registerCost(n * product_bits) // products
                             + registerCost(acc_bits)       // accumulator
                             + registerCost(b));            // output
        design.components.push_back({"PE array", r});
    }

    // --- Weight generator (updater part) --------------------------
    {
        ResourceEstimate r;
        // One sigma*eps multiplier plus one mu adder per weight lane.
        r.alms = mults * (weightUpdaterMultAlms(b) + adderAlms(b));
        // Two-tier pipeline (Figure 14): DFFs between GRNG and updater,
        // and the sampled-weight register bank feeding the PEs.
        r.registers = mults * (registerCost(8)   // eps DFF tier
                               + registerCost(b)); // weight tier
        design.components.push_back({"weight updater", r});
    }

    // --- GRNG ------------------------------------------------------
    DesignEstimate grng;
    {
        if (config.grng == GrngKind::Rlf) {
            RlfGrngHwConfig g;
            g.seedLength = 255;
            g.outputs = mults;
            g.sampleBits = 8;
            grng = rlfGrngEstimate(g);
        } else {
            BnnWallaceHwConfig g;
            g.units = mults / 4;
            g.poolSize = config.wallacePoolSize;
            g.entryBits = 16;
            grng = bnnWallaceEstimate(g);
        }
        design.components.push_back({grng.name, grng.total()});
    }

    // --- WPMems (distributed weight parameter memories) ------------
    {
        ResourceEstimate r;
        // mu and sigma for every weight and bias, B bits each, split
        // evenly across T per-set memories with word width B*N*S
        // (equation (15b)). Allocation is block-granular: the reported
        // memory bits are the padded capacity, matching how the paper's
        // utilization table counts.
        std::int64_t param_count = config.paramCountOverride;
        if (param_count == 0) {
            for (std::size_t i = 0; i + 1 < config.layerSizes.size();
                 ++i) {
                param_count += static_cast<std::int64_t>(
                                   config.layerSizes[i]) *
                        config.layerSizes[i + 1] +
                    config.layerSizes[i + 1];
            }
        }
        const std::int64_t param_bits = 2 * param_count * b; // mu + sigma
        const int word_bits = b * n * s;
        const std::int64_t bits_per_set = (param_bits + t - 1) / t;
        const int depth = static_cast<int>(
            (bits_per_set + word_bits - 1) / word_bits);
        ResourceEstimate one = blockRam(depth, word_bits);
        one.memoryBits = static_cast<std::int64_t>(one.ramBlocks) *
            CycloneVDevice::ramBlockBits;
        // One mu word and one sigma word read per cycle.
        one.ramAccessBitsPerCycle = 2.0 * word_bits;
        for (int i = 0; i < t; ++i)
            r += one;
        design.components.push_back({"WPMems", r});
    }

    // --- IFMems (double-buffered input/activation memories) --------
    {
        ResourceEstimate r;
        const int word_bits = b * n;
        int widest = config.widestActivationOverride;
        if (widest == 0) {
            for (int w : config.layerSizes)
                widest = std::max(widest, w);
        }
        const int depth = (widest + n - 1) / n;
        for (int i = 0; i < 2; ++i)
            r += blockRam(std::max(depth, 32), word_bits);
        // One word read (active mem) + amortized write-back (other mem).
        r.ramAccessBitsPerCycle = word_bits + b * s;
        design.components.push_back({"IFMems (x2)", r});
    }

    // --- Memory distributor + global controller --------------------
    {
        ResourceEstimate r;
        r.alms = t * muxAlms(b * s, 2) + adderAlms(16) + gateAlms(64);
        r.registers = t * registerCost(b * s) + registerCost(48);
        design.components.push_back({"distributor/controller", r});
    }

    // --- Overheads --------------------------------------------------
    {
        ResourceEstimate subtotal = design.total();
        ResourceEstimate r;
        r.alms = subtotal.alms * (kAlmOverhead - 1.0);
        r.registers = subtotal.registers * (kRegOverhead - 1.0);
        design.components.push_back({"routing/control overhead", r});
    }

    // System clock: the PE accumulate stage (adder tree of log2(n)
    // levels at product width) bounds the datapath; the GRNGs run in
    // their own faster/slower domain behind the pipeline tier, so both
    // designs share the same system clock — which is why the paper
    // reports identical throughput for the two variants.
    int tree_levels = 0;
    while ((1 << tree_levels) < n)
        ++tree_levels;
    design.fmaxMhz = stageFmaxMhz(tree_levels + 1, 2 * b + 8);

    // Power: the GRNG lives in its own clock domain at its native fmax
    // (the pipeline tier of Figure 14 decouples it), so its dynamic
    // power scales with the *GRNG* clock while the rest of the design
    // scales with the system clock. This is what makes the
    // Wallace-based design less energy-efficient at equal throughput
    // (Table 5), despite using fewer ALMs.
    ResourceEstimate rest = design.total();
    const ResourceEstimate grng_total = grng.total();
    rest.alms -= grng_total.alms;
    rest.registers -= grng_total.registers;
    rest.memoryBits -= grng_total.memoryBits;
    rest.ramBlocks -= grng_total.ramBlocks;
    rest.dsps -= grng_total.dsps;
    rest.ramAccessBitsPerCycle -= grng_total.ramAccessBitsPerCycle;
    // The GRNG domain never needs to outrun the system clock; the
    // Wallace design is capped by its own (lower) fmax instead.
    const double grng_clock = std::min(grng.fmaxMhz, design.fmaxMhz);
    const double grng_dynamic_mw =
        powerMw(grng_total, grng_clock) - powerMw({}, 0.0);
    design.powerMw = powerMw(rest, design.fmaxMhz) + grng_dynamic_mw;
    return design;
}

PerformanceModel
performanceFromCycles(const DesignEstimate &design,
                      double cycles_per_image)
{
    VIBNN_ASSERT(cycles_per_image > 0.0, "need a positive cycle count");
    PerformanceModel perf;
    perf.fsysMhz = design.fmaxMhz;
    perf.cyclesPerImage = cycles_per_image;
    perf.imagesPerSecond = design.fmaxMhz * 1e6 / cycles_per_image;
    perf.powerMw = design.powerMw;
    perf.imagesPerJoule =
        perf.imagesPerSecond / (design.powerMw / 1000.0);
    return perf;
}

} // namespace vibnn::hw
