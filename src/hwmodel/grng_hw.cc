#include "hwmodel/grng_hw.hh"

#include "common/logging.hh"
#include "hwmodel/cyclonev.hh"

namespace vibnn::hw
{

DesignEstimate
rlfGrngEstimate(const RlfGrngHwConfig &config)
{
    DesignEstimate design;
    design.name = "RLF-GRNG";
    const int m = config.outputs;
    const int b = config.sampleBits;

    // SeMem: three banks of seedLength/3 words, each word m bits wide
    // (the 3-block storing scheme of Figure 6).
    {
        ResourceEstimate r;
        const int bank_depth = (config.seedLength + 2) / 3;
        for (int bank = 0; bank < 3; ++bank)
            r += blockRam(bank_depth, m);
        // Two word reads + two word writes per cycle (next heads in,
        // retired taps out).
        r.ramAccessBitsPerCycle = 4.0 * m;
        design.components.push_back({"SeMem (3 banks)", r});
    }

    // Per-lane LF-updater: 7-bit buffer register, 5 XOR taps, a 5-input
    // parallel counter, tap register, subtractor and result accumulator
    // (Figure 7b).
    {
        ResourceEstimate r;
        // Packing factor 0.75: Quartus merges the XOR taps, popcount
        // and accumulate into shared ALM arithmetic mode; calibrated
        // against the paper's 831-ALM figure for 64 lanes.
        constexpr double packing = 0.75;
        r.alms = packing * m *
            (gateAlms(6)                       // combined-update XORs
             + parallelCounterAlms(5)          // tap popcount
             + adderAlms(3)                    // tap-sum subtractor
             + adderAlms(b));                  // result accumulator
        r.registers = m * (registerCost(7)     // buffer register
                           + registerCost(3)   // tap register
                           + registerCost(b)); // result register
        design.components.push_back({"LF-updaters", r});
    }

    // Output multiplexers: groups of four lanes, one b-bit 4:1 mux and
    // an output register per port (Figure 8).
    {
        ResourceEstimate r;
        r.alms = m * muxAlms(b, 4);
        r.registers = m * registerCost(b);
        design.components.push_back({"output multiplexers", r});
    }

    // Shared indexer + controller + initialization ROM port logic.
    {
        ResourceEstimate r;
        r.alms = adderAlms(8) + gateAlms(24) + muxAlms(8, 4);
        r.registers = registerCost(16) + registerCost(8);
        design.components.push_back({"indexer/controller", r});
    }

    // Critical path: the 5-input popcount (2 LUT levels) feeding the
    // b-bit accumulate.
    design.fmaxMhz = stageFmaxMhz(2, b);
    design.powerMw = powerMw(design.total(), design.fmaxMhz);
    return design;
}

DesignEstimate
bnnWallaceEstimate(const BnnWallaceHwConfig &config)
{
    DesignEstimate design;
    design.name = "BNNWallace-GRNG";
    const int units = config.units;
    const int w = config.entryBits;

    // Pool memories: one RAM per unit.
    {
        ResourceEstimate r;
        for (int u = 0; u < units; ++u)
            r += blockRam(config.poolSize, w);
        // Every unit reads four entries and writes four back per cycle.
        r.ramAccessBitsPerCycle = 8.0 * w * units;
        design.components.push_back({"pool memories", r});
    }

    // Wallace units: 4-input adder tree (two w-bit adds plus one
    // (w+1)-bit add), the shift is free, four subtractors (Figure 9).
    {
        ResourceEstimate r;
        // Packing factor 0.4: the adder tree and the four subtractors
        // share ALM arithmetic mode aggressively; calibrated against
        // the paper's 401-ALM figure for 16 units.
        constexpr double packing = 0.4;
        r.alms = packing * units *
            (2 * adderAlms(w) + adderAlms(w + 1) + 4 * adderAlms(w));
        r.registers = units * (registerCost(4 * w)  // output registers
                               + registerCost(w + 2)); // t register
        design.components.push_back({"Wallace units", r});
    }

    // Sharing & shifting interconnect: the ring rotation is wiring; the
    // write-back selects cost one 2:1 mux per written bit.
    {
        ResourceEstimate r;
        r.alms = units * muxAlms(4 * w, 2) * 0.25;
        design.components.push_back({"shift interconnect", r});
    }

    // Shared address counter + controller.
    {
        ResourceEstimate r;
        r.alms = adderAlms(12) + gateAlms(16);
        r.registers = registerCost(12) + registerCost(6);
        design.components.push_back({"controller", r});
    }

    // Critical path: 4-input adder tree (two adder levels + mux level)
    // with a (w+2)-bit effective carry, then the subtract absorbed in
    // the same stage per Figure 9: ~3 logic levels, 2(w+1) carry bits.
    design.fmaxMhz = stageFmaxMhz(3, 2 * (w + 1));
    design.powerMw = powerMw(design.total(), design.fmaxMhz);
    return design;
}

} // namespace vibnn::hw
