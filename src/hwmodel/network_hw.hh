/**
 * @file
 * Whole-accelerator resource and performance model (Tables 4 and 5).
 *
 * Composes the Cyclone V primitives into the full VIBNN design: the PE
 * array (multipliers mapped onto DSP blocks — 1024 9-bit multipliers
 * fill exactly the device's 342 DSPs at three per block), the weight
 * generator (soft-logic sigma*eps multipliers plus the chosen GRNG),
 * the distributed WPMems (block-granular allocation, which is why the
 * paper's memory-bit figures exceed the raw parameter bits), the
 * double-buffered IFMems, memory distributor, controller and the
 * two-tier pipeline registers of Figure 14.
 */

#ifndef VIBNN_HWMODEL_NETWORK_HW_HH
#define VIBNN_HWMODEL_NETWORK_HW_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hwmodel/grng_hw.hh"
#include "hwmodel/resource.hh"

namespace vibnn::hw
{

/** Which GRNG feeds the weight generator. */
enum class GrngKind
{
    Rlf,
    BnnWallace,
};

/** Full-accelerator configuration for the resource model. */
struct NetworkHwConfig
{
    /** Layer widths including input/output, e.g. {784, 200, 200, 10}. */
    std::vector<int> layerSizes{784, 200, 200, 10};
    /** PE sets (T), PEs per set (S), inputs per PE (N). Paper: 16x8x8. */
    int peSets = 16;
    int pesPerSet = 8;
    int peInputs = 8;
    /** Operand bit-length B. */
    int bits = 8;
    GrngKind grng = GrngKind::Rlf;
    /** Pool entries per Wallace unit in the full design (128 matches
     *  the paper's Table 4 memory-bit delta between the two designs). */
    int wallacePoolSize = 128;
    /**
     * Direct total (weight + bias) parameter count for the WPMem
     * sizing; 0 derives it from layerSizes as a dense chain.
     * Program-compiled workloads (CNNs) must set this: a conv bank
     * holds outChannels * patchSize parameters, not a dense
     * map-to-map matrix.
     */
    std::int64_t paramCountOverride = 0;
    /** Widest activation window for the IFMem sizing; 0 derives it
     *  from layerSizes. */
    int widestActivationOverride = 0;
};

/** Itemized whole-design estimate, with fmax and power filled in. */
DesignEstimate networkEstimate(const NetworkHwConfig &config);

/** Operating-point summary derived from an estimate + cycle count. */
struct PerformanceModel
{
    double fsysMhz = 0.0;
    double cyclesPerImage = 0.0;
    double imagesPerSecond = 0.0;
    double powerMw = 0.0;
    double imagesPerJoule = 0.0;
};

/**
 * Combine the modeled operating point with a measured cycles-per-image
 * figure (from the cycle-level simulator) into Table 5 metrics.
 */
PerformanceModel performanceFromCycles(const DesignEstimate &design,
                                       double cycles_per_image);

/** Total multiplier count of the PE array (for DSP accounting). */
int peMultiplierCount(const NetworkHwConfig &config);

} // namespace vibnn::hw

#endif // VIBNN_HWMODEL_NETWORK_HW_HH
