/**
 * @file
 * Resource/performance models for the two hardware GRNG designs,
 * built from the Cyclone V primitives. These regenerate the paper's
 * Table 2 (64-parallel generation task) and provide the GRNG component
 * of the full-network estimates (Table 4).
 */

#ifndef VIBNN_HWMODEL_GRNG_HW_HH
#define VIBNN_HWMODEL_GRNG_HW_HH

#include "hwmodel/resource.hh"

namespace vibnn::hw
{

/** Parameters of an RLF-GRNG instance. */
struct RlfGrngHwConfig
{
    /** Seed length (SeMem depth); 255 in the paper. */
    int seedLength = 255;
    /** Parallel outputs (SeMem word width / LF-updater lanes). */
    int outputs = 64;
    /** Output sample width in bits. */
    int sampleBits = 8;
};

/** Parameters of a BNNWallace instance. */
struct BnnWallaceHwConfig
{
    /** Wallace units (4 outputs per unit per cycle). */
    int units = 16;
    /** Pool entries per unit. */
    int poolSize = 4096;
    /** Pool entry width in bits. */
    int entryBits = 16;
};

/** Itemized estimate for an RLF-GRNG (Figure 8 structure). */
DesignEstimate rlfGrngEstimate(const RlfGrngHwConfig &config);

/** Itemized estimate for a BNNWallace GRNG (Figures 9/10 structure). */
DesignEstimate bnnWallaceEstimate(const BnnWallaceHwConfig &config);

} // namespace vibnn::hw

#endif // VIBNN_HWMODEL_GRNG_HW_HH
