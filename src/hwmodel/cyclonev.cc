#include "hwmodel/cyclonev.hh"

#include <cmath>

#include "common/logging.hh"

namespace vibnn::hw
{

double
adderAlms(int width)
{
    // Carry chains pack two bits per ALM, plus a little glue.
    return 0.55 * width;
}

double
gateAlms(int count)
{
    // Two independent small LUT functions fit one ALM.
    return 0.5 * count;
}

double
muxAlms(int width, int ways)
{
    if (ways <= 1)
        return 0.0;
    // A 4:1 mux bit fits one 6-LUT (half an ALM); wider selects tree up
    // in 4:1 stages.
    const double luts_per_bit = std::ceil((ways - 1) / 3.0);
    return 0.5 * width * luts_per_bit;
}

double
parallelCounterAlms(int inputs)
{
    if (inputs <= 1)
        return 0.0;
    // Full-adder construction: n - ceil(log2(n+1)) FAs, one FA per ALM
    // in compressor packing (~0.75 utilization).
    int out_bits = 0;
    while ((1 << out_bits) < inputs + 1)
        ++out_bits;
    return 0.75 * (inputs - out_bits) + 0.5 * out_bits;
}

double
softMultiplierAlms(int a_bits, int b_bits)
{
    // Baugh-Wooley array in soft logic: roughly half an ALM per
    // partial-product bit.
    return 0.5 * a_bits * b_bits;
}

double
registerCost(int width)
{
    return width;
}

ResourceEstimate
blockRam(int depth, int width)
{
    VIBNN_ASSERT(depth > 0 && width > 0, "empty RAM");
    ResourceEstimate r;
    r.memoryBits = static_cast<std::int64_t>(depth) * width;

    const int stripes =
        (width + CycloneVDevice::ramBlockMaxWidth - 1) /
        CycloneVDevice::ramBlockMaxWidth;
    const int stripe_width = (width + stripes - 1) / stripes;
    const int rows_per_block = std::max(
        1, CycloneVDevice::ramBlockBits /
               (stripe_width > 0 ? stripe_width : 1));
    const int row_groups = (depth + rows_per_block - 1) / rows_per_block;
    r.ramBlocks = stripes * row_groups;
    return r;
}

int
dspBlocks(int count)
{
    return (count + CycloneVDevice::multipliersPerDsp - 1) /
        CycloneVDevice::multipliersPerDsp;
}

double
stageFmaxMhz(int logic_levels, int carry_bits)
{
    // Delay model: clock-to-out + routing per LUT level + carry ripple.
    //   t = t0 + tLUT * levels + tCARRY * bits
    // Fit: RLF stage (2 levels, 8-bit carry) -> 4.696 ns (212.95 MHz);
    //      Wallace stage (3 levels, 34 carry bits) -> 8.501 ns
    //      (117.63 MHz).
    constexpr double t0_ns = 1.90;
    constexpr double t_lut_ns = 0.85;
    constexpr double t_carry_ns = 0.1298;
    const double t = t0_ns + t_lut_ns * logic_levels +
        t_carry_ns * carry_bits;
    return 1000.0 / t;
}

double
powerMw(const ResourceEstimate &resources, double f_mhz)
{
    // Calibrated on the paper's Table 2:
    //   RLF-GRNG:       831 ALMs, 1780 regs,   3 M10K @ 212.95 MHz
    //                   -> 528.69 mW
    //   BNNWallace:     401 ALMs, 1166 regs, 103 M10K @ 117.63 MHz
    //                   -> 560.25 mW
    // With static power fixed at 460 mW (typical for this device), a
    // standard register coefficient and a RAM access-energy term (the
    // BNNWallace design touches 8 x 16 pool bits per unit per cycle,
    // which is most of its dynamic power), the two rows pin the ALM
    // and RAM-block coefficients.
    constexpr double static_mw = 460.0;
    constexpr double alm_uw_per_mhz = 0.208;
    constexpr double reg_uw_per_mhz = 0.05;
    constexpr double ram_uw_per_mhz = 2.92;
    constexpr double dsp_uw_per_mhz = 2.5;
    constexpr double access_uw_per_mhz_bit = 0.2;

    const double dynamic_uw_per_mhz =
        alm_uw_per_mhz * resources.alms +
        reg_uw_per_mhz * resources.registers +
        ram_uw_per_mhz * resources.ramBlocks +
        dsp_uw_per_mhz * resources.dsps +
        access_uw_per_mhz_bit * resources.ramAccessBitsPerCycle;
    return static_mw + dynamic_uw_per_mhz * f_mhz / 1000.0;
}

} // namespace vibnn::hw
