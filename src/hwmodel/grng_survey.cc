/**
 * @file
 * Survey GRNG cost models (see grng_survey.hh).
 */

#include "hwmodel/grng_survey.hh"

#include "hwmodel/cyclonev.hh"
#include "hwmodel/grng_hw.hh"

namespace vibnn::hw
{

namespace
{

/** Uniform source: one `width`-bit LFSR per consumer lane. */
ResourceEstimate
lfsrSource(int lanes, int width)
{
    ResourceEstimate r;
    // 3 taps of XOR plus the shift register itself.
    r.alms = lanes * gateAlms(3);
    r.registers = lanes * registerCost(width);
    return r;
}

} // namespace

DesignEstimate
cdfInversionEstimate(const SurveyGrngConfig &config)
{
    DesignEstimate design;
    design.name = "CDF-inversion GRNG";
    const int lanes = config.outputs;
    const int w = config.internalBits;

    // Per-lane uniform source: 32-bit LFSR (the ICDF needs more input
    // entropy than the output width to resolve the tails).
    design.components.push_back({"uniform LFSRs", lfsrSource(lanes, 32)});

    // Segment table: 128 segments x 3 coefficients x w bits, one ROM
    // per lane (a shared ROM would serialize the lanes).
    {
        ResourceEstimate r;
        for (int l = 0; l < lanes; ++l)
            r += blockRam(128, 3 * w);
        r.ramAccessBitsPerCycle = static_cast<double>(lanes) * 3 * w;
        design.components.push_back({"ICDF segment tables", r});
    }

    // Horner evaluation: two w x w multiplies per lane per cycle plus
    // two adders; multipliers map onto DSPs (two 9x9-capable slots per
    // 16-bit product is conservative — price one DSP multiplier per
    // product half).
    {
        ResourceEstimate r;
        const int mults = 2 * lanes;
        // A w-bit product needs ceil(w/9)^2 9x9 slices.
        const int slices_per = ((w + 8) / 9) * ((w + 8) / 9);
        r.dsps = dspBlocks(mults * slices_per);
        r.alms = lanes * 2 * adderAlms(w);
        r.registers = lanes * 3 * registerCost(w); // pipeline stages
        design.components.push_back({"Horner evaluators", r});
    }

    // Segment-select comparators and output rounding.
    {
        ResourceEstimate r;
        r.alms = lanes * (adderAlms(7) + muxAlms(config.sampleBits, 2));
        r.registers = lanes * registerCost(config.sampleBits);
        design.components.push_back({"select/round", r});
    }

    // Critical path: table read -> multiply -> add; the DSP multiply
    // stage dominates (~4 levels with the product register).
    design.fmaxMhz = stageFmaxMhz(4, w);
    design.powerMw = powerMw(design.total(), design.fmaxMhz);
    return design;
}

DesignEstimate
boxMullerEstimate(const SurveyGrngConfig &config)
{
    DesignEstimate design;
    design.name = "Box-Muller GRNG";
    // One engine produces a (sin, cos) pair: two lanes per engine.
    const int engines = (config.outputs + 1) / 2;
    const int w = config.internalBits;

    design.components.push_back(
        {"uniform LFSRs", lfsrSource(2 * engines, 32)});

    // ln(u) unit: range reduction (leading-zero count + shift) plus a
    // 64-segment linear-interpolation table and one multiply.
    {
        ResourceEstimate r;
        const int slices_per = ((w + 8) / 9) * ((w + 8) / 9);
        r.dsps = dspBlocks(engines * slices_per);
        for (int e = 0; e < engines; ++e)
            r += blockRam(64, 2 * w);
        r.ramAccessBitsPerCycle = static_cast<double>(engines) * 2 * w;
        r.alms = engines * (gateAlms(w) /* LZC + shifter */
                            + adderAlms(w));
        r.registers = engines * 2.0 * registerCost(w);
        design.components.push_back({"ln units", r});
    }

    // sqrt via CORDIC: w iterations folded 2x -> w/2 pipeline stages of
    // a w-bit add/sub + shift each.
    {
        ResourceEstimate r;
        const int stages = w / 2;
        r.alms = engines * stages * adderAlms(w);
        r.registers = engines * stages * registerCost(w);
        design.components.push_back({"sqrt CORDIC", r});
    }

    // sin/cos via circular CORDIC: w iterations folded 2x, two
    // accumulators per stage.
    {
        ResourceEstimate r;
        const int stages = w / 2;
        r.alms = engines * stages * 2 * adderAlms(w);
        r.registers = engines * stages * 2.0 * registerCost(w);
        design.components.push_back({"sin/cos CORDIC", r});
    }

    // Output multiplies r*sin, r*cos.
    {
        ResourceEstimate r;
        const int slices_per = ((w + 8) / 9) * ((w + 8) / 9);
        r.dsps = dspBlocks(2 * engines * slices_per);
        r.registers = engines * 2.0 * registerCost(config.sampleBits);
        design.components.push_back({"output multipliers", r});
    }

    // The CORDIC stages are individually short; the multiply stages
    // set the clock (~4 levels, w-bit carry).
    design.fmaxMhz = stageFmaxMhz(4, w);
    design.powerMw = powerMw(design.total(), design.fmaxMhz);
    return design;
}

DesignEstimate
zigguratEstimate(const SurveyGrngConfig &config)
{
    DesignEstimate design;
    design.name = "Ziggurat GRNG";
    const int lanes = config.outputs;
    const int w = config.internalBits;

    design.components.push_back({"uniform LFSRs", lfsrSource(lanes, 32)});

    // Layer table: 256 layers x (x_i, y_i) of w bits each, per lane.
    {
        ResourceEstimate r;
        for (int l = 0; l < lanes; ++l)
            r += blockRam(256, 2 * w);
        r.ramAccessBitsPerCycle = static_cast<double>(lanes) * 2 * w;
        design.components.push_back({"layer tables", r});
    }

    // Accept path: one multiply (u * x_i) and one compare per lane.
    {
        ResourceEstimate r;
        const int slices_per = ((w + 8) / 9) * ((w + 8) / 9);
        r.dsps = dspBlocks(lanes * slices_per);
        r.alms = lanes * adderAlms(w); // comparator
        r.registers = lanes * 2.0 * registerCost(w);
        design.components.push_back({"accept datapath", r});
    }

    // Escape path: wedge/tail evaluation needs exp(); shared soft-logic
    // unit per 16 lanes (it is exercised ~1.5% of the time, so sharing
    // does not bound throughput).
    {
        ResourceEstimate r;
        const int units = (lanes + 15) / 16;
        r.alms = units * (softMultiplierAlms(w, w) + 4 * adderAlms(w));
        r.registers = units * 4.0 * registerCost(w);
        design.components.push_back({"escape exp units", r});
    }

    design.fmaxMhz = stageFmaxMhz(4, w);
    design.powerMw = powerMw(design.total(), design.fmaxMhz);
    return design;
}

std::vector<GrngSurveyRow>
grngSurvey(const SurveyGrngConfig &config)
{
    std::vector<GrngSurveyRow> rows;

    {
        GrngSurveyRow row;
        row.family = "CDF inversion";
        row.design = "segmented ICDF";
        row.estimate = cdfInversionEstimate(config);
        row.samplesPerCycle = config.outputs;
        row.deterministicRate = true;
        rows.push_back(std::move(row));
    }
    {
        GrngSurveyRow row;
        row.family = "transformation";
        row.design = "Box-Muller/CORDIC";
        row.estimate = boxMullerEstimate(config);
        row.samplesPerCycle = config.outputs;
        row.deterministicRate = true;
        rows.push_back(std::move(row));
    }
    {
        GrngSurveyRow row;
        row.family = "rejection";
        row.design = "Ziggurat-256";
        row.estimate = zigguratEstimate(config);
        // Marsaglia-Tsang 256-layer acceptance probability.
        row.samplesPerCycle = config.outputs * 0.985;
        row.deterministicRate = false;
        rows.push_back(std::move(row));
    }
    {
        GrngSurveyRow row;
        row.family = "CLT";
        row.design = "RLF-GRNG (this paper)";
        RlfGrngHwConfig rlf;
        rlf.outputs = config.outputs;
        rlf.sampleBits = config.sampleBits;
        row.estimate = rlfGrngEstimate(rlf);
        row.samplesPerCycle = config.outputs;
        row.deterministicRate = true;
        rows.push_back(std::move(row));
    }
    {
        GrngSurveyRow row;
        row.family = "recursion";
        row.design = "BNNWallace (this paper)";
        BnnWallaceHwConfig wal;
        wal.units = config.outputs / 4; // four outputs per unit
        wal.poolSize = 256;
        wal.entryBits = 16;
        row.estimate = bnnWallaceEstimate(wal);
        row.samplesPerCycle = config.outputs;
        row.deterministicRate = true;
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace vibnn::hw
