/**
 * @file
 * Synthetic tabular classification datasets standing in for the paper's
 * disease-diagnosis benchmarks (Table 7): Parkinson Speech, Diabetic
 * Retinopathy Debrecen, Thoracic Surgery, and five Tox21 sub-tasks.
 *
 * The real datasets are not redistributable / not available offline, so
 * each is replaced by a class-conditional Gaussian-mixture generator
 * matched on the axes that drive the paper's comparison: feature count,
 * class count, sample count, class imbalance, and difficulty (separation
 * + label noise chosen so a well-tuned classifier lands near the paper's
 * reported accuracy). What Table 7 actually measures — BNN vs FNN
 * robustness when training data is scarce and noisy, and how little the
 * 8-bit hardware path loses — is preserved under this substitution.
 */

#ifndef VIBNN_DATA_TABULAR_HH
#define VIBNN_DATA_TABULAR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hh"

namespace vibnn::data
{

/** Generator parameters for one synthetic tabular task. */
struct TabularSpec
{
    std::string name;
    std::size_t features = 16;
    /** Informative features; the rest are pure noise dimensions. */
    std::size_t informative = 8;
    int classes = 2;
    std::size_t trainCount = 500;
    std::size_t testCount = 200;
    /** Per-class prior probabilities (empty = uniform). */
    std::vector<double> classWeights;
    /** Gaussian clusters per class. */
    int clustersPerClass = 2;
    /** Distance scale between class centroids (difficulty knob). */
    double classSeparation = 1.6;
    /** Within-cluster noise std-dev. */
    double withinNoise = 1.0;
    /** Fraction of labels flipped at random (irreducible error). */
    double labelNoise = 0.02;
    std::uint64_t seed = 1;
};

/** Generate a dataset from a spec (features standardized on train). */
Dataset makeTabular(const TabularSpec &spec);

/** Specs mirroring the Table 7 datasets. `seed` offsets each task. */
TabularSpec parkinsonSpec(bool modified_small_train, std::uint64_t seed);
TabularSpec retinopathySpec(std::uint64_t seed);
TabularSpec thoracicSpec(std::uint64_t seed);
/** task in {"NR.AhR", "SR.ARE", "SR.ATAD5", "SR.MMP", "SR.P53"}. */
TabularSpec tox21Spec(const std::string &task, std::uint64_t seed);

/** All Table 7 dataset specs in presentation order. */
std::vector<TabularSpec> table7Specs(std::uint64_t seed);

} // namespace vibnn::data

#endif // VIBNN_DATA_TABULAR_HH
