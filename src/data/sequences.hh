/**
 * @file
 * Synthetic sequence-classification task for the RNN extension.
 *
 * Each class is a smooth multivariate trajectory template (a sum of two
 * random sinusoids per feature channel, drawn once per class); samples
 * are the template plus white noise and a random phase offset. The task
 * is temporal by construction — class information lives in the joint
 * evolution of the channels, and the per-timestep marginals overlap —
 * which is what a recurrent model exploits and a bag-of-timesteps
 * cannot. Sequences are stored as flat rows (seqLen * featDim) so they
 * ride the standard DataView plumbing.
 */

#ifndef VIBNN_DATA_SEQUENCES_HH
#define VIBNN_DATA_SEQUENCES_HH

#include <cstdint>

#include "data/dataset.hh"

namespace vibnn::data
{

/** Generation parameters for the sequence task. */
struct SequenceTaskConfig
{
    std::size_t classes = 3;
    std::size_t seqLen = 16;
    std::size_t featDim = 4;
    std::size_t trainCount = 600;
    std::size_t testCount = 300;
    /** Additive white-noise std-dev (template amplitude is ~1). */
    double noise = 0.4;
    /** Random per-sample phase offset range, in timesteps. */
    double maxPhaseShift = 2.0;
    std::uint64_t seed = 1;
};

/** Build the train/test pair. */
Dataset makeSequenceTask(const SequenceTaskConfig &config);

} // namespace vibnn::data

#endif // VIBNN_DATA_SEQUENCES_HH
