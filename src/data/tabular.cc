#include "data/tabular.hh"

#include <cmath>

#include "common/logging.hh"

namespace vibnn::data
{

Dataset
makeTabular(const TabularSpec &spec)
{
    VIBNN_ASSERT(spec.informative <= spec.features,
                 "informative exceeds feature count");
    VIBNN_ASSERT(spec.classes >= 2, "need at least two classes");

    Dataset ds;
    ds.name = spec.name;
    Rng rng(spec.seed);

    // Cluster centroids: per class, per cluster, a point in the
    // informative subspace at distance ~classSeparation from origin.
    std::vector<std::vector<std::vector<double>>> centroids(spec.classes);
    for (int c = 0; c < spec.classes; ++c) {
        centroids[c].resize(spec.clustersPerClass);
        for (auto &center : centroids[c]) {
            center.resize(spec.informative);
            for (auto &v : center)
                v = rng.gaussian(0.0, spec.classSeparation);
        }
    }

    std::vector<double> weights = spec.classWeights;
    if (weights.empty())
        weights.assign(spec.classes, 1.0 / spec.classes);
    VIBNN_ASSERT(static_cast<int>(weights.size()) == spec.classes,
                 "class weight count mismatch");

    auto draw_class = [&]() {
        double u = rng.uniform();
        for (int c = 0; c < spec.classes; ++c) {
            if (u < weights[c])
                return c;
            u -= weights[c];
        }
        return spec.classes - 1;
    };

    auto fill = [&](LabeledData &block, std::size_t count) {
        block.dim = spec.features;
        block.numClasses = spec.classes;
        block.features.reserve(count * spec.features);
        block.labels.reserve(count);
        std::vector<float> x(spec.features);
        for (std::size_t i = 0; i < count; ++i) {
            const int true_class = draw_class();
            const auto &center =
                centroids[true_class][rng.uniformInt(
                    static_cast<std::uint64_t>(spec.clustersPerClass))];
            for (std::size_t d = 0; d < spec.features; ++d) {
                const double base =
                    d < spec.informative ? center[d] : 0.0;
                x[d] = static_cast<float>(
                    base + rng.gaussian(0.0, spec.withinNoise));
            }
            int label = true_class;
            if (rng.bernoulli(spec.labelNoise))
                label = static_cast<int>(rng.uniformInt(
                    static_cast<std::uint64_t>(spec.classes)));
            block.push(x.data(), label);
        }
    };

    fill(ds.train, spec.trainCount);
    fill(ds.test, spec.testCount);
    standardize(ds.train, {&ds.train, &ds.test});
    return ds;
}

TabularSpec
parkinsonSpec(bool modified_small_train, std::uint64_t seed)
{
    TabularSpec spec;
    spec.name = modified_small_train
                    ? "Parkinson Speech Dataset (Modified)"
                    : "Parkinson Speech Dataset (Original)";
    spec.features = 26; // 26 acoustic features per recording
    spec.classes = 2;
    if (modified_small_train) {
        // Small-data scenario: most samples relocated to the test set,
        // and only a handful of the acoustic features truly carry
        // signal — the regime where the FNN overfits (paper: 60.28%)
        // and the BNN holds up (95.68%).
        spec.trainCount = 64;
        spec.testCount = 976;
        spec.informative = 5;
        spec.classSeparation = 1.5;
        spec.labelNoise = 0.03;
    } else {
        spec.trainCount = 700;
        spec.testCount = 340;
        spec.informative = 12;
        spec.classSeparation = 1.9;
        spec.labelNoise = 0.02;
    }
    spec.classWeights = {0.5, 0.5};
    spec.clustersPerClass = 2;
    spec.withinNoise = 1.0;
    spec.seed = seed ^ 0x9A17C50FULL;
    return spec;
}

TabularSpec
retinopathySpec(std::uint64_t seed)
{
    TabularSpec spec;
    spec.name = "Diabetics Retinopathy Debrecen Dataset";
    spec.features = 19; // 19 extracted image features
    spec.informative = 8;
    spec.classes = 2;
    spec.trainCount = 800; // of 1151 total
    spec.testCount = 351;
    spec.classWeights = {0.53, 0.47};
    spec.clustersPerClass = 3;
    spec.classSeparation = 0.85; // hard task: paper accuracy ~75%
    spec.withinNoise = 1.0;
    spec.labelNoise = 0.08;
    spec.seed = seed ^ 0xD14B371ULL;
    return spec;
}

TabularSpec
thoracicSpec(std::uint64_t seed)
{
    TabularSpec spec;
    spec.name = "Thoracic Surgery Dataset";
    spec.features = 16; // 16 pre-operative attributes
    spec.informative = 7;
    spec.classes = 2;
    spec.trainCount = 329; // of 470 total
    spec.testCount = 141;
    spec.classWeights = {0.85, 0.15}; // 1-year survival imbalance
    spec.clustersPerClass = 2;
    spec.classSeparation = 0.9;
    spec.withinNoise = 1.0;
    spec.labelNoise = 0.08;
    spec.seed = seed ^ 0x7404AC1CULL;
    return spec;
}

TabularSpec
tox21Spec(const std::string &task, std::uint64_t seed)
{
    TabularSpec spec;
    spec.name = "TOX21:" + task;
    spec.features = 100; // substitute for the ~801 dense descriptors
    spec.informative = 30;
    spec.classes = 2;
    spec.trainCount = 1200;
    spec.testCount = 500;
    spec.clustersPerClass = 3;
    spec.withinNoise = 1.0;

    // Per-task imbalance / difficulty roughly tracking the reported
    // accuracies (~83% for SR.ARE up to ~94% for SR.ATAD5).
    std::uint64_t salt = 0;
    for (char ch : task)
        salt = salt * 131 + static_cast<unsigned char>(ch);
    if (task == "NR.AhR") {
        spec.classWeights = {0.88, 0.12};
        spec.classSeparation = 1.05;
        spec.labelNoise = 0.05;
    } else if (task == "SR.ARE") {
        spec.classWeights = {0.84, 0.16};
        spec.classSeparation = 0.78;
        spec.labelNoise = 0.10;
    } else if (task == "SR.ATAD5") {
        spec.classWeights = {0.93, 0.07};
        spec.classSeparation = 1.12;
        spec.labelNoise = 0.03;
    } else if (task == "SR.MMP") {
        spec.classWeights = {0.85, 0.15};
        spec.classSeparation = 0.95;
        spec.labelNoise = 0.06;
    } else { // SR.P53
        spec.classWeights = {0.91, 0.09};
        spec.classSeparation = 1.05;
        spec.labelNoise = 0.04;
    }
    spec.seed = seed ^ (salt * 0x2545F4914F6CDD1DULL);
    return spec;
}

std::vector<TabularSpec>
table7Specs(std::uint64_t seed)
{
    return {
        parkinsonSpec(true, seed),
        parkinsonSpec(false, seed),
        retinopathySpec(seed),
        thoracicSpec(seed),
        tox21Spec("NR.AhR", seed),
        tox21Spec("SR.ARE", seed),
        tox21Spec("SR.ATAD5", seed),
        tox21Spec("SR.MMP", seed),
        tox21Spec("SR.P53", seed),
    };
}

} // namespace vibnn::data
