/**
 * @file
 * Procedural synthetic MNIST.
 *
 * The real MNIST files are not available in this offline environment, so
 * the image-classification experiments (Tables 5/6, Figures 16-18) run
 * on a synthetic stand-in with identical dimensionality and task
 * structure: 28x28 grayscale digits, ten classes, rendered from
 * per-class stroke skeletons with randomized affine distortion
 * (rotation, scale, shear, translation), per-vertex jitter, stroke
 * thickness variation and pixel noise. Every image is a genuinely
 * distinct sample; the within-class variation is tuned so a
 * 784-200-200-10 MLP lands in the high-90s accuracy regime like real
 * MNIST, which is the regime the paper's comparisons live in. See
 * DESIGN.md ("Substitutions") for the fidelity argument.
 */

#ifndef VIBNN_DATA_SYNTH_MNIST_HH
#define VIBNN_DATA_SYNTH_MNIST_HH

#include <cstdint>

#include "data/dataset.hh"

namespace vibnn::data
{

/** Image geometry constants. */
constexpr int kMnistSide = 28;
constexpr int kMnistPixels = kMnistSide * kMnistSide;
constexpr int kMnistClasses = 10;

/** Generation parameters. */
struct SynthMnistConfig
{
    std::size_t trainCount = 8000;
    std::size_t testCount = 2000;
    /** Max |rotation| in radians. */
    double maxRotation = 0.35;
    /** Scale range multiplier. */
    double minScale = 0.78, maxScale = 1.1;
    /** Max |shear|. */
    double maxShear = 0.22;
    /** Max |translation| in pixels. */
    double maxShift = 2.2;
    /** Std-dev of per-vertex stroke jitter (in canvas units). */
    double vertexJitter = 0.03;
    /** Stroke half-width range in pixels. */
    double minThickness = 0.8, maxThickness = 1.7;
    /** Additive pixel noise std-dev. */
    double pixelNoise = 0.10;
    std::uint64_t seed = 1;
};

/** Render one digit into a 784-float buffer (values in [0, 1]). */
void renderDigit(int digit, const SynthMnistConfig &config, Rng &rng,
                 float *out);

/** Generate a full train/test dataset with balanced classes. */
Dataset makeSynthMnist(const SynthMnistConfig &config);

/** ASCII-art rendering of one 28x28 image (for examples/tests). */
std::string asciiDigit(const float *pixels);

} // namespace vibnn::data

#endif // VIBNN_DATA_SYNTH_MNIST_HH
