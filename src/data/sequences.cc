/**
 * @file
 * Synthetic sequence task (see sequences.hh).
 */

#include "data/sequences.hh"

#include <cmath>

#include "common/logging.hh"

namespace vibnn::data
{

namespace
{

/** Per-class template: two sinusoids per channel. */
struct ClassTemplate
{
    struct Channel
    {
        double freq1, phase1, amp1;
        double freq2, phase2, amp2;
    };
    std::vector<Channel> channels;

    double
    value(std::size_t channel, double t) const
    {
        const auto &c = channels[channel];
        return c.amp1 * std::sin(c.freq1 * t + c.phase1) +
            c.amp2 * std::sin(c.freq2 * t + c.phase2);
    }
};

std::vector<ClassTemplate>
makeTemplates(const SequenceTaskConfig &config, Rng &rng)
{
    std::vector<ClassTemplate> templates(config.classes);
    for (auto &tpl : templates) {
        tpl.channels.resize(config.featDim);
        for (auto &c : tpl.channels) {
            // Frequencies span one to three full periods per sequence.
            const double base = 2.0 * M_PI /
                static_cast<double>(config.seqLen);
            c.freq1 = base * rng.uniform(1.0, 3.0);
            c.freq2 = base * rng.uniform(2.0, 5.0);
            c.phase1 = rng.uniform(0.0, 2.0 * M_PI);
            c.phase2 = rng.uniform(0.0, 2.0 * M_PI);
            c.amp1 = rng.uniform(0.5, 1.0);
            c.amp2 = rng.uniform(0.2, 0.6);
        }
    }
    return templates;
}

void
fillBlock(LabeledData &block, std::size_t count,
          const std::vector<ClassTemplate> &templates,
          const SequenceTaskConfig &config, Rng &rng)
{
    block.dim = config.seqLen * config.featDim;
    block.numClasses = static_cast<int>(config.classes);
    block.features.reserve(count * block.dim);
    block.labels.reserve(count);

    std::vector<float> row(block.dim);
    for (std::size_t i = 0; i < count; ++i) {
        const int label =
            static_cast<int>(rng.uniformInt(config.classes));
        const auto &tpl = templates[static_cast<std::size_t>(label)];
        const double shift =
            rng.uniform(-config.maxPhaseShift, config.maxPhaseShift);
        for (std::size_t t = 0; t < config.seqLen; ++t) {
            for (std::size_t f = 0; f < config.featDim; ++f) {
                const double clean =
                    tpl.value(f, static_cast<double>(t) + shift);
                row[t * config.featDim + f] = static_cast<float>(
                    clean + rng.gaussian(0.0, config.noise));
            }
        }
        block.push(row.data(), label);
    }
}

} // namespace

Dataset
makeSequenceTask(const SequenceTaskConfig &config)
{
    VIBNN_ASSERT(config.classes >= 2, "need at least two classes");
    VIBNN_ASSERT(config.seqLen >= 2 && config.featDim >= 1,
                 "degenerate sequence geometry");

    Dataset dataset;
    dataset.name = "synthetic-sequences";
    Rng rng(config.seed);
    const auto templates = makeTemplates(config, rng);
    fillBlock(dataset.train, config.trainCount, templates, config, rng);
    fillBlock(dataset.test, config.testCount, templates, config, rng);
    return dataset;
}

} // namespace vibnn::data
