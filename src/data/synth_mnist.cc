#include "data/synth_mnist.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace vibnn::data
{

namespace
{

struct Point
{
    double x, y;
};

using Polyline = std::vector<Point>;

/** Append an elliptical arc as a polyline (angles in radians, y grows
 *  downward on the canvas). */
Polyline
arc(double cx, double cy, double rx, double ry, double a0, double a1,
    int segments = 14)
{
    Polyline line;
    line.reserve(segments + 1);
    for (int i = 0; i <= segments; ++i) {
        const double t = a0 + (a1 - a0) * i / segments;
        line.push_back({cx + rx * std::cos(t), cy + ry * std::sin(t)});
    }
    return line;
}

Polyline
segment(double x0, double y0, double x1, double y1)
{
    return {{x0, y0}, {x1, y1}};
}

/**
 * Stroke skeletons per digit on a unit canvas ([0,1]^2, y down). These
 * are hand-designed to resemble handwritten digit topology; the random
 * distortions provide the within-class variability.
 */
std::vector<Polyline>
digitStrokes(int digit)
{
    switch (digit) {
      case 0:
        return {arc(0.5, 0.5, 0.26, 0.36, 0.0, 2.0 * M_PI, 22)};
      case 1:
        return {segment(0.38, 0.3, 0.52, 0.16),
                segment(0.52, 0.16, 0.52, 0.84)};
      case 2:
        return {arc(0.5, 0.34, 0.22, 0.2, -M_PI, 0.15 * M_PI, 12),
                segment(0.68, 0.45, 0.32, 0.82),
                segment(0.32, 0.82, 0.72, 0.82)};
      case 3:
        return {arc(0.47, 0.33, 0.2, 0.18, -0.8 * M_PI, 0.5 * M_PI, 12),
                arc(0.47, 0.67, 0.22, 0.18, -0.5 * M_PI, 0.8 * M_PI, 12)};
      case 4:
        return {segment(0.62, 0.16, 0.3, 0.62),
                segment(0.3, 0.62, 0.74, 0.62),
                segment(0.62, 0.16, 0.62, 0.84)};
      case 5:
        return {segment(0.68, 0.18, 0.36, 0.18),
                segment(0.36, 0.18, 0.34, 0.48),
                arc(0.5, 0.64, 0.2, 0.2, -0.55 * M_PI, 0.75 * M_PI, 14)};
      case 6:
        return {arc(0.52, 0.3, 0.3, 0.5, -0.9 * M_PI, -0.5 * M_PI, 10),
                arc(0.5, 0.64, 0.2, 0.19, 0.0, 2.0 * M_PI, 18)};
      case 7:
        return {segment(0.3, 0.18, 0.72, 0.18),
                segment(0.72, 0.18, 0.44, 0.84)};
      case 8:
        return {arc(0.5, 0.33, 0.18, 0.16, 0.0, 2.0 * M_PI, 16),
                arc(0.5, 0.67, 0.22, 0.18, 0.0, 2.0 * M_PI, 16)};
      case 9:
      default:
        return {arc(0.5, 0.36, 0.2, 0.19, 0.0, 2.0 * M_PI, 18),
                arc(0.48, 0.42, 0.32, 0.5, 0.5 * M_PI, 0.1 * M_PI, 10)};
    }
}

/** Distance from point p to segment ab. */
double
pointSegmentDistance(const Point &p, const Point &a, const Point &b)
{
    const double vx = b.x - a.x, vy = b.y - a.y;
    const double wx = p.x - a.x, wy = p.y - a.y;
    const double vv = vx * vx + vy * vy;
    double t = vv > 0.0 ? (wx * vx + wy * vy) / vv : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const double dx = p.x - (a.x + t * vx);
    const double dy = p.y - (a.y + t * vy);
    return std::sqrt(dx * dx + dy * dy);
}

} // anonymous namespace

void
renderDigit(int digit, const SynthMnistConfig &config, Rng &rng,
            float *out)
{
    VIBNN_ASSERT(digit >= 0 && digit < kMnistClasses, "bad digit");

    // Random distortion parameters.
    const double angle =
        rng.uniform(-config.maxRotation, config.maxRotation);
    const double scale = rng.uniform(config.minScale, config.maxScale);
    const double shear = rng.uniform(-config.maxShear, config.maxShear);
    const double shift_x =
        rng.uniform(-config.maxShift, config.maxShift) / kMnistSide;
    const double shift_y =
        rng.uniform(-config.maxShift, config.maxShift) / kMnistSide;
    const double half_width =
        rng.uniform(config.minThickness, config.maxThickness) / kMnistSide;

    const double ca = std::cos(angle) * scale;
    const double sa = std::sin(angle) * scale;

    // Transform skeleton vertices: jitter, rotate+shear+scale about the
    // canvas center, translate.
    auto strokes = digitStrokes(digit);
    for (auto &line : strokes) {
        for (auto &p : line) {
            const double jx = p.x + rng.gaussian(0.0, config.vertexJitter);
            const double jy = p.y + rng.gaussian(0.0, config.vertexJitter);
            const double cx = jx - 0.5, cy = jy - 0.5;
            const double tx = ca * cx - sa * cy + shear * cy;
            const double ty = sa * cx + ca * cy;
            p.x = tx + 0.5 + shift_x;
            p.y = ty + 0.5 + shift_y;
        }
    }

    // Rasterize: intensity = smooth falloff of distance to the nearest
    // stroke, plus additive noise.
    const double inv_side = 1.0 / kMnistSide;
    for (int py = 0; py < kMnistSide; ++py) {
        for (int px = 0; px < kMnistSide; ++px) {
            const Point p{(px + 0.5) * inv_side, (py + 0.5) * inv_side};
            double distance = 1e9;
            for (const auto &line : strokes) {
                for (std::size_t i = 0; i + 1 < line.size(); ++i) {
                    distance = std::min(
                        distance,
                        pointSegmentDistance(p, line[i], line[i + 1]));
                }
            }
            // Soft-edged stroke: full intensity inside half_width,
            // linear falloff over one more pixel.
            const double falloff = 1.2 * inv_side;
            double value;
            if (distance <= half_width) {
                value = 1.0;
            } else if (distance <= half_width + falloff) {
                value = 1.0 - (distance - half_width) / falloff;
            } else {
                value = 0.0;
            }
            value += rng.gaussian(0.0, config.pixelNoise);
            out[py * kMnistSide + px] =
                static_cast<float>(std::clamp(value, 0.0, 1.0));
        }
    }
}

Dataset
makeSynthMnist(const SynthMnistConfig &config)
{
    Dataset ds;
    ds.name = "synth-mnist";
    Rng rng(config.seed);

    auto fill = [&](LabeledData &block, std::size_t count) {
        block.dim = kMnistPixels;
        block.numClasses = kMnistClasses;
        block.features.resize(count * kMnistPixels);
        block.labels.resize(count);
        for (std::size_t i = 0; i < count; ++i) {
            const int digit = static_cast<int>(i % kMnistClasses);
            block.labels[i] = digit;
            renderDigit(digit, config, rng,
                        block.features.data() + i * kMnistPixels);
        }
        // Shuffle sample order (labels were assigned round-robin).
        std::vector<std::size_t> order(count);
        for (std::size_t i = 0; i < count; ++i)
            order[i] = i;
        rng.shuffle(order);
        LabeledData shuffled;
        shuffled.dim = block.dim;
        shuffled.numClasses = block.numClasses;
        shuffled.features.reserve(block.features.size());
        shuffled.labels.reserve(count);
        for (std::size_t i : order)
            shuffled.push(block.sample(i), block.labels[i]);
        block = std::move(shuffled);
    };

    fill(ds.train, config.trainCount);
    fill(ds.test, config.testCount);
    return ds;
}

std::string
asciiDigit(const float *pixels)
{
    static const char shades[] = " .:-=+*#%@";
    std::ostringstream out;
    for (int y = 0; y < kMnistSide; ++y) {
        for (int x = 0; x < kMnistSide; ++x) {
            const float v =
                std::clamp(pixels[y * kMnistSide + x], 0.0f, 1.0f);
            out << shades[static_cast<int>(v * 9.0f)];
        }
        out << '\n';
    }
    return out.str();
}

} // namespace vibnn::data
