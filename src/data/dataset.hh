/**
 * @file
 * Dataset containers and utilities: train/test splits, stratified
 * fraction subsetting (for the small-data study, Figures 16/17), and
 * feature standardization.
 */

#ifndef VIBNN_DATA_DATASET_HH
#define VIBNN_DATA_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "nn/trainer.hh"

namespace vibnn::data
{

/** A labeled sample block: row-major features plus integer labels. */
struct LabeledData
{
    std::size_t dim = 0;
    int numClasses = 0;
    std::vector<float> features;
    std::vector<int> labels;

    std::size_t count() const { return labels.size(); }
    const float *sample(std::size_t i) const
    {
        return features.data() + i * dim;
    }

    /** Borrow as the trainer's non-owning view. */
    nn::DataView view() const;

    /** Append one sample. */
    void push(const float *x, int label);
};

/** A named train/test pair. */
struct Dataset
{
    std::string name;
    LabeledData train;
    LabeledData test;
};

/**
 * Stratified random subset keeping ceil(fraction * per-class count)
 * samples of each class — the Figure 16 protocol ("randomly choose a
 * fraction of the training data").
 */
LabeledData stratifiedFraction(const LabeledData &full, double fraction,
                               Rng &rng);

/** Per-feature standardization (mean 0, stddev 1) computed on `fit` and
 *  applied to every block in `apply`. */
void standardize(const LabeledData &fit,
                 std::vector<LabeledData *> apply);

/** Count per-class occurrences. */
std::vector<std::size_t> classHistogram(const LabeledData &data);

} // namespace vibnn::data

#endif // VIBNN_DATA_DATASET_HH
