#include "data/dataset.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vibnn::data
{

nn::DataView
LabeledData::view() const
{
    nn::DataView v;
    v.count = count();
    v.dim = dim;
    v.features = features.data();
    v.labels = labels.data();
    return v;
}

void
LabeledData::push(const float *x, int label)
{
    features.insert(features.end(), x, x + dim);
    labels.push_back(label);
}

LabeledData
stratifiedFraction(const LabeledData &full, double fraction, Rng &rng)
{
    VIBNN_ASSERT(fraction > 0.0 && fraction <= 1.0,
                 "fraction must be in (0, 1]");
    LabeledData subset;
    subset.dim = full.dim;
    subset.numClasses = full.numClasses;

    // Bucket indices by class, shuffle each bucket, take the head.
    std::vector<std::vector<std::size_t>> buckets(full.numClasses);
    for (std::size_t i = 0; i < full.count(); ++i)
        buckets[full.labels[i]].push_back(i);

    std::vector<std::size_t> chosen;
    for (auto &bucket : buckets) {
        rng.shuffle(bucket);
        const auto keep = static_cast<std::size_t>(
            std::ceil(fraction * static_cast<double>(bucket.size())));
        for (std::size_t k = 0; k < keep && k < bucket.size(); ++k)
            chosen.push_back(bucket[k]);
    }
    rng.shuffle(chosen);

    subset.features.reserve(chosen.size() * full.dim);
    subset.labels.reserve(chosen.size());
    for (std::size_t i : chosen)
        subset.push(full.sample(i), full.labels[i]);
    return subset;
}

void
standardize(const LabeledData &fit, std::vector<LabeledData *> apply)
{
    VIBNN_ASSERT(fit.count() > 1, "need data to fit normalization");
    const std::size_t dim = fit.dim;
    std::vector<double> mean(dim, 0.0), var(dim, 0.0);

    for (std::size_t i = 0; i < fit.count(); ++i) {
        const float *x = fit.sample(i);
        for (std::size_t d = 0; d < dim; ++d)
            mean[d] += x[d];
    }
    for (auto &m : mean)
        m /= static_cast<double>(fit.count());
    for (std::size_t i = 0; i < fit.count(); ++i) {
        const float *x = fit.sample(i);
        for (std::size_t d = 0; d < dim; ++d) {
            const double delta = x[d] - mean[d];
            var[d] += delta * delta;
        }
    }
    for (auto &v : var)
        v /= static_cast<double>(fit.count() - 1);

    for (LabeledData *block : apply) {
        VIBNN_ASSERT(block->dim == dim, "dim mismatch in standardize");
        for (std::size_t i = 0; i < block->count(); ++i) {
            float *x = block->features.data() + i * dim;
            for (std::size_t d = 0; d < dim; ++d) {
                const double sd = std::sqrt(std::max(var[d], 1e-12));
                x[d] = static_cast<float>((x[d] - mean[d]) / sd);
            }
        }
    }
}

std::vector<std::size_t>
classHistogram(const LabeledData &data)
{
    std::vector<std::size_t> hist(data.numClasses, 0);
    for (int label : data.labels)
        ++hist[label];
    return hist;
}

} // namespace vibnn::data
