#include "serve/client.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/fault.hh"

namespace vibnn::serve
{

const char *
Client::statusName(Status status)
{
    switch (status) {
    case Status::Ok:
        return "ok";
    case Status::Overloaded:
        return "overloaded";
    case Status::BadRequest:
        return "bad_request";
    case Status::ShuttingDown:
        return "shutting_down";
    case Status::ServerError:
        return "server_error";
    case Status::TransportError:
        return "transport_error";
    case Status::ProtocolError:
        return "protocol_error";
    case Status::Timeout:
        return "timeout";
    }
    return "unknown";
}

Client::RetryPolicy
Client::RetryPolicy::attempts(int attempts, std::int64_t backoff_ms)
{
    RetryPolicy policy;
    policy.maxAttempts = attempts;
    policy.backoffMillis = backoff_ms;
    return policy;
}

namespace
{

Client::Status
statusFromErrorCode(net::ErrorCode code)
{
    switch (code) {
    case net::ErrorCode::Overloaded:
        return Client::Status::Overloaded;
    case net::ErrorCode::BadRequest:
        return Client::Status::BadRequest;
    case net::ErrorCode::ShuttingDown:
        return Client::Status::ShuttingDown;
    case net::ErrorCode::Internal:
        return Client::Status::ServerError;
    }
    return Client::Status::ServerError;
}

bool
isRetryable(Client::Status status)
{
    switch (status) {
    case Client::Status::Overloaded:
    case Client::Status::Timeout:
    case Client::Status::TransportError:
    case Client::Status::ProtocolError:
        return true;
    default:
        // BadRequest and ShuttingDown are deterministic refusals;
        // replaying the same bytes cannot change the answer.
        return false;
    }
}

/**
 * Backoff before retry `attempt` (1 = first retry): bounded
 * exponential growth scaled by a deterministic jitter factor in
 * [0.5, 1.0] keyed on (seed, attempt), so a fleet of clients that
 * failed together does not retry in lockstep, yet every chaos-test
 * run replays the exact same schedule.
 */
std::int64_t
backoffMillisFor(const Client::RetryPolicy &policy, int attempt,
                 std::uint64_t seed)
{
    double millis = static_cast<double>(
        std::max<std::int64_t>(policy.backoffMillis, 0));
    const double cap = static_cast<double>(
        std::max<std::int64_t>(policy.maxBackoffMillis, 0));
    for (int i = 1; i < attempt; ++i) {
        millis *= std::max(policy.multiplier, 1.0);
        if (millis >= cap)
            break;
    }
    millis = std::min(millis, cap);
    const std::uint64_t mixed = fault::mix64(
        seed ^ (static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ull));
    const double jitter = 0.5 + 0.5 * fault::mixToUnit(mixed);
    return static_cast<std::int64_t>(millis * jitter);
}

} // namespace

bool
Client::connect(const std::string &host, std::uint16_t port,
                std::string &error)
{
    close();
    host_ = host;
    port_ = port;
    sock_ = net::connectTcp(host, port, error);
    return sock_.valid();
}

void
Client::close()
{
    sock_.close();
}

bool
Client::readReply(net::FrameType &type,
                  std::vector<std::uint8_t> &payload,
                  std::string &error, bool &timed_out)
{
    timed_out = false;
    switch (net::readFrameTimed(sock_, type, payload, error,
                                receiveTimeoutMillis_)) {
    case net::FrameReadStatus::Ok:
        return true;
    case net::FrameReadStatus::Timeout:
        timed_out = true;
        return false;
    case net::FrameReadStatus::Failed:
        return false;
    }
    return false;
}

Client::Reply
Client::classifyOnce(const net::WireClassifyRequest &wire)
{
    Reply reply;
    if (!sock_.valid()) {
        reply.status = Status::TransportError;
        reply.message = "not connected";
        return reply;
    }

    const std::vector<std::uint8_t> frame =
        net::encodeClassifyRequest(wire);
    if (!net::writeAll(sock_, frame.data(), frame.size())) {
        reply.status = Status::TransportError;
        reply.message = "send failed";
        return reply;
    }

    net::FrameType type;
    std::vector<std::uint8_t> payload;
    std::string error;
    bool timed_out = false;
    if (!readReply(type, payload, error, timed_out)) {
        // Either way the stream position is unknown — the caller
        // must reconnect before reusing this client.
        reply.status =
            timed_out ? Status::Timeout : Status::TransportError;
        reply.message = timed_out ? "receive deadline expired"
                                  : "recv failed: " + error;
        return reply;
    }

    if (type == net::FrameType::Error) {
        net::WireError err;
        if (!net::decodeError(payload.data(), payload.size(), err,
                              error)) {
            reply.status = Status::ProtocolError;
            reply.message = "bad error frame: " + error;
            return reply;
        }
        reply.status = statusFromErrorCode(err.code);
        reply.message = err.message;
        return reply;
    }
    if (type != net::FrameType::ClassifyResponse) {
        reply.status = Status::ProtocolError;
        reply.message = "unexpected frame type";
        return reply;
    }
    if (!net::decodeClassifyResponse(payload.data(), payload.size(),
                                     reply.response, error)) {
        reply.status = Status::ProtocolError;
        reply.message = "bad response frame: " + error;
        return reply;
    }
    reply.status = Status::Ok;
    return reply;
}

Client::Reply
Client::classify(const float *xs, std::size_t count, std::size_t dim,
                 const Options &options)
{
    net::WireClassifyRequest wire;
    wire.id = options.id != 0 ? options.id : nextId_++;
    wire.mcSamples = options.mcSamples;
    wire.deadlineMicros = options.deadlineMicros;
    wire.count = static_cast<std::uint32_t>(count);
    wire.dim = static_cast<std::uint32_t>(dim);
    wire.features.assign(xs, xs + count * dim);
    return classifyOnce(wire);
}

Client::Reply
Client::classify(const float *xs, std::size_t count, std::size_t dim,
                 const Options &options, const RetryPolicy &policy)
{
    net::WireClassifyRequest wire;
    // Pin the id before the attempt loop: every attempt replays the
    // same request, and the server's determinism contract makes the
    // replayed response bit-identical.
    wire.id = options.id != 0 ? options.id : nextId_++;
    wire.mcSamples = options.mcSamples;
    wire.deadlineMicros = options.deadlineMicros;
    wire.count = static_cast<std::uint32_t>(count);
    wire.dim = static_cast<std::uint32_t>(dim);
    wire.features.assign(xs, xs + count * dim);

    const int max_attempts = std::max(policy.maxAttempts, 1);
    const std::uint64_t jitter_seed =
        fault::mix64(policy.jitterSeed ^ wire.id);
    Reply reply;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
            const std::int64_t nap =
                backoffMillisFor(policy, attempt, jitter_seed);
            if (nap > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(nap));
        }
        wire.retryAttempt = static_cast<std::uint16_t>(
            std::min(attempt, 65535));
        // After a timeout, transport loss, or protocol garbage the
        // stream position is unknown; start the attempt on a fresh
        // connection. An Overloaded error frame leaves the stream
        // aligned, so the existing connection is still good.
        if (!sock_.valid() && !host_.empty()) {
            std::string error;
            if (!connect(host_, port_, error)) {
                reply.status = Status::TransportError;
                reply.message = "reconnect failed: " + error;
                reply.attempts = attempt + 1;
                continue;
            }
        }
        reply = classifyOnce(wire);
        reply.attempts = attempt + 1;
        if (!isRetryable(reply.status))
            return reply;
        if (reply.status != Status::Overloaded)
            close();
    }
    return reply;
}

bool
Client::ping(std::string &error)
{
    if (!sock_.valid()) {
        error = "not connected";
        return false;
    }
    if (!net::writeFrame(sock_, net::FrameType::Ping)) {
        error = "send failed";
        return false;
    }
    net::FrameType type;
    std::vector<std::uint8_t> payload;
    bool timed_out = false;
    if (!readReply(type, payload, error, timed_out))
        return false;
    if (type != net::FrameType::Pong) {
        error = "unexpected frame type";
        return false;
    }
    return true;
}

bool
Client::metrics(std::string &json, std::string &error)
{
    if (!sock_.valid()) {
        error = "not connected";
        return false;
    }
    if (!net::writeFrame(sock_, net::FrameType::MetricsRequest)) {
        error = "send failed";
        return false;
    }
    net::FrameType type;
    std::vector<std::uint8_t> payload;
    bool timed_out = false;
    if (!readReply(type, payload, error, timed_out))
        return false;
    if (type != net::FrameType::MetricsResponse) {
        error = "unexpected frame type";
        return false;
    }
    return net::decodeMetricsResponse(payload.data(), payload.size(),
                                      json, error);
}

bool
Client::requestShutdown(std::string &error)
{
    if (!sock_.valid()) {
        error = "not connected";
        return false;
    }
    if (!net::writeFrame(sock_, net::FrameType::Shutdown)) {
        error = "send failed";
        return false;
    }
    net::FrameType type;
    std::vector<std::uint8_t> payload;
    bool timed_out = false;
    if (!readReply(type, payload, error, timed_out))
        return false;
    if (type == net::FrameType::Error) {
        // The server's RemoteShutdown policy refused the request;
        // relay its reason.
        net::WireError err;
        std::string decode_error;
        error = net::decodeError(payload.data(), payload.size(), err,
                                 decode_error)
                    ? err.message
                    : "shutdown refused (bad error frame: " +
                          decode_error + ")";
        return false;
    }
    if (type != net::FrameType::ShutdownAck) {
        error = "unexpected frame type";
        return false;
    }
    return true;
}

} // namespace vibnn::serve
