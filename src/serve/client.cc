#include "serve/client.hh"

namespace vibnn::serve
{

const char *
Client::statusName(Status status)
{
    switch (status) {
    case Status::Ok:
        return "ok";
    case Status::Overloaded:
        return "overloaded";
    case Status::BadRequest:
        return "bad_request";
    case Status::ShuttingDown:
        return "shutting_down";
    case Status::ServerError:
        return "server_error";
    case Status::TransportError:
        return "transport_error";
    case Status::ProtocolError:
        return "protocol_error";
    }
    return "unknown";
}

namespace
{

Client::Status
statusFromErrorCode(net::ErrorCode code)
{
    switch (code) {
    case net::ErrorCode::Overloaded:
        return Client::Status::Overloaded;
    case net::ErrorCode::BadRequest:
        return Client::Status::BadRequest;
    case net::ErrorCode::ShuttingDown:
        return Client::Status::ShuttingDown;
    case net::ErrorCode::Internal:
        return Client::Status::ServerError;
    }
    return Client::Status::ServerError;
}

} // namespace

bool
Client::connect(const std::string &host, std::uint16_t port,
                std::string &error)
{
    close();
    sock_ = net::connectTcp(host, port, error);
    return sock_.valid();
}

void
Client::close()
{
    sock_.close();
}

Client::Reply
Client::classify(const float *xs, std::size_t count, std::size_t dim,
                 const Options &options)
{
    Reply reply;
    if (!sock_.valid()) {
        reply.status = Status::TransportError;
        reply.message = "not connected";
        return reply;
    }

    net::WireClassifyRequest wire;
    wire.id = options.id != 0 ? options.id : nextId_++;
    wire.mcSamples = options.mcSamples;
    wire.deadlineMicros = options.deadlineMicros;
    wire.count = static_cast<std::uint32_t>(count);
    wire.dim = static_cast<std::uint32_t>(dim);
    wire.features.assign(xs, xs + count * dim);

    const std::vector<std::uint8_t> frame =
        net::encodeClassifyRequest(wire);
    if (!net::writeAll(sock_, frame.data(), frame.size())) {
        reply.status = Status::TransportError;
        reply.message = "send failed";
        return reply;
    }

    net::FrameType type;
    std::vector<std::uint8_t> payload;
    std::string error;
    if (!net::readFrame(sock_, type, payload, error)) {
        reply.status = Status::TransportError;
        reply.message = "recv failed: " + error;
        return reply;
    }

    if (type == net::FrameType::Error) {
        net::WireError err;
        if (!net::decodeError(payload.data(), payload.size(), err,
                              error)) {
            reply.status = Status::ProtocolError;
            reply.message = "bad error frame: " + error;
            return reply;
        }
        reply.status = statusFromErrorCode(err.code);
        reply.message = err.message;
        return reply;
    }
    if (type != net::FrameType::ClassifyResponse) {
        reply.status = Status::ProtocolError;
        reply.message = "unexpected frame type";
        return reply;
    }
    if (!net::decodeClassifyResponse(payload.data(), payload.size(),
                                     reply.response, error)) {
        reply.status = Status::ProtocolError;
        reply.message = "bad response frame: " + error;
        return reply;
    }
    reply.status = Status::Ok;
    return reply;
}

bool
Client::ping(std::string &error)
{
    if (!sock_.valid()) {
        error = "not connected";
        return false;
    }
    if (!net::writeFrame(sock_, net::FrameType::Ping)) {
        error = "send failed";
        return false;
    }
    net::FrameType type;
    std::vector<std::uint8_t> payload;
    if (!net::readFrame(sock_, type, payload, error))
        return false;
    if (type != net::FrameType::Pong) {
        error = "unexpected frame type";
        return false;
    }
    return true;
}

bool
Client::metrics(std::string &json, std::string &error)
{
    if (!sock_.valid()) {
        error = "not connected";
        return false;
    }
    if (!net::writeFrame(sock_, net::FrameType::MetricsRequest)) {
        error = "send failed";
        return false;
    }
    net::FrameType type;
    std::vector<std::uint8_t> payload;
    if (!net::readFrame(sock_, type, payload, error))
        return false;
    if (type != net::FrameType::MetricsResponse) {
        error = "unexpected frame type";
        return false;
    }
    return net::decodeMetricsResponse(payload.data(), payload.size(),
                                      json, error);
}

bool
Client::requestShutdown(std::string &error)
{
    if (!sock_.valid()) {
        error = "not connected";
        return false;
    }
    if (!net::writeFrame(sock_, net::FrameType::Shutdown)) {
        error = "send failed";
        return false;
    }
    net::FrameType type;
    std::vector<std::uint8_t> payload;
    if (!net::readFrame(sock_, type, payload, error))
        return false;
    if (type == net::FrameType::Error) {
        // The server's RemoteShutdown policy refused the request;
        // relay its reason.
        net::WireError err;
        std::string decode_error;
        error = net::decodeError(payload.data(), payload.size(), err,
                                 decode_error)
                    ? err.message
                    : "shutdown refused (bad error frame: " +
                          decode_error + ")";
        return false;
    }
    if (type != net::FrameType::ShutdownAck) {
        error = "unexpected frame type";
        return false;
    }
    return true;
}

} // namespace vibnn::serve
