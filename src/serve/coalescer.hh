/**
 * @file
 * Deadline-aware coalescing policy for the serving dispatchers.
 *
 * PR 4's dispatcher merged greedily: whatever same-T requests were
 * already pending rode along, and the pass started immediately. That
 * leaves rounds underfilled under trickling arrivals. The policy here
 * replaces it: a request that carries a latency budget (deadline) may
 * be HELD — the dispatcher waits for more same-T arrivals to fill the
 * round — for as long as the budget minus the expected pass time
 * allows, and never longer. A request with no budget grants no hold
 * (the old greedy behavior, bit for bit).
 *
 * Everything is a pure function of explicitly passed times, so tests
 * pin the never-past-the-budget contract with an injected clock; the
 * live dispatchers (serve::InferenceSession's worker and each
 * serve::Server shard) feed in steady_clock readings.
 */

#ifndef VIBNN_SERVE_COALESCER_HH
#define VIBNN_SERVE_COALESCER_HH

#include <cstddef>
#include <cstdint>

namespace vibnn::serve
{

/**
 * Upper bound on any deadline budget, in microseconds (10 minutes).
 * A deadline licenses the dispatcher to HOLD work, so an unbounded
 * caller-supplied value would let one request park a shard's
 * dispatcher for an arbitrary time (starving every different-T
 * request) — and values near INT64_MAX overflow the duration math
 * inside condition_variable::wait_for. Enforced at every admission
 * edge: wire decode (net::decodeClassifyRequest), server admission
 * (Server::handleClassify), InferenceSession::validateRequest, the
 * session Builder, and the VIBNN_SERVE_DEADLINE_US env front door.
 */
constexpr std::int64_t kMaxDeadlineMicros = 600'000'000;

/**
 * EWMA of recent engine pass durations — the coalescer's expectation
 * of what executing the batch will cost, reserved out of every
 * member's remaining budget so holding cannot push completion past a
 * deadline (to the extent the estimate is honest; the hold itself is
 * hard-bounded by the budget regardless).
 *
 * Not thread-safe; callers serialize access (the session guards it
 * with its estimator lock, a server shard owns one per worker).
 */
class PassTimeEstimator
{
  public:
    /** @param alpha EWMA weight of the newest observation. */
    explicit PassTimeEstimator(double alpha = 0.25) : alpha_(alpha) {}

    /** Record a completed pass's duration. */
    void
    observe(double micros)
    {
        if (micros < 0.0)
            return;
        value_ = seeded_ ? alpha_ * micros + (1.0 - alpha_) * value_
                         : micros;
        seeded_ = true;
    }

    /** Current estimate in microseconds (0 until the first pass — a
     *  cold dispatcher reserves nothing and may overshoot a deadline
     *  once; the hold bound itself still holds). */
    double estimateMicros() const { return seeded_ ? value_ : 0.0; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool seeded_ = false;
};

/**
 * How much longer one request may be held, in microseconds.
 *
 * @param deadline_micros The request's total latency budget from
 *        enqueue; <= 0 means no budget — no hold allowance.
 * @param waited_micros Time already spent queued (now - enqueue).
 * @param estimated_pass_micros Expected cost of the pass that will
 *        serve the request (reserved out of the budget).
 * @return Remaining hold allowance; <= 0 means execute now. The
 *         invariant tests pin: waited + allowance + estimate never
 *         exceeds the budget, so the coalescer cannot hold a request
 *         past the point where on-time completion is still expected.
 */
std::int64_t holdAllowanceMicros(std::int64_t deadline_micros,
                                 std::int64_t waited_micros,
                                 std::int64_t estimated_pass_micros);

/**
 * The hold allowance of a whole candidate batch: the minimum of the
 * members' individual allowances — the tightest budget rules, so no
 * member is ever held past its own. A batch in which no member
 * carries a budget has no allowance (greedy execute, the pre-deadline
 * dispatcher behavior).
 *
 * @param deadlines_micros Per-member budgets (<= 0 = none).
 * @param waited_micros Per-member queued time so far.
 * @param count Members.
 * @param estimated_pass_micros Expected pass cost.
 */
std::int64_t batchHoldAllowanceMicros(
    const std::int64_t *deadlines_micros,
    const std::int64_t *waited_micros, std::size_t count,
    std::int64_t estimated_pass_micros);

} // namespace vibnn::serve

#endif // VIBNN_SERVE_COALESCER_HH
