#include "serve/coalescer.hh"

#include <algorithm>

namespace vibnn::serve
{

std::int64_t
holdAllowanceMicros(std::int64_t deadline_micros,
                    std::int64_t waited_micros,
                    std::int64_t estimated_pass_micros)
{
    if (deadline_micros <= 0)
        return 0; // no budget, no license to hold
    const std::int64_t waited = std::max<std::int64_t>(waited_micros, 0);
    const std::int64_t reserve =
        std::max<std::int64_t>(estimated_pass_micros, 0);
    // Budget minus what is already spent minus the expected pass cost;
    // saturates at 0 so an overdue request executes immediately rather
    // than producing a negative wait.
    if (deadline_micros <= waited)
        return 0;
    const std::int64_t remaining = deadline_micros - waited;
    if (remaining <= reserve)
        return 0;
    return remaining - reserve;
}

std::int64_t
batchHoldAllowanceMicros(const std::int64_t *deadlines_micros,
                         const std::int64_t *waited_micros,
                         std::size_t count,
                         std::int64_t estimated_pass_micros)
{
    if (count == 0)
        return 0;
    // The tightest member rules. A member with no budget contributes
    // zero — it was promised greedy dispatch, so the batch may not be
    // held on a neighbour's license.
    std::int64_t allowance = holdAllowanceMicros(
        deadlines_micros[0], waited_micros[0], estimated_pass_micros);
    for (std::size_t i = 1; i < count && allowance > 0; ++i) {
        allowance = std::min(
            allowance,
            holdAllowanceMicros(deadlines_micros[i], waited_micros[i],
                                estimated_pass_micros));
    }
    return allowance;
}

} // namespace vibnn::serve
