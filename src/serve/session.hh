/**
 * @file
 * The VIBNN serving layer — request in, uncertainty-decorated response
 * out.
 *
 * The paper's deployment story (and the follow-on FPGA serving work it
 * inspired, e.g. Fan et al., arXiv:2105.09163) is request → Monte-Carlo
 * ensemble → calibrated prediction. An InferenceSession is that story
 * as an API: it owns a compiled QuantizedProgram, an executor-backend
 * Monte-Carlo engine per ensemble size, and a submission queue, and
 * turns InferenceRequests (one or many images) into InferenceResults
 * carrying the ensemble-mean probabilities plus the full uncertainty
 * decomposition (predictive entropy, mutual information / BALD,
 * max-prob confidence, top-k) per image.
 *
 * Two call styles:
 *
 *  - run(request): synchronous — executes inline on the caller's
 *    thread (the Monte-Carlo fan-out still parallelizes over the
 *    engine's ThreadPool workers).
 *  - submit(request): asynchronous — enqueues onto the session's
 *    dispatcher and returns a future-style ResultHandle. In Throughput
 *    mode the dispatcher COALESCES all concurrently pending requests
 *    of the same ensemble size into one per-round weight-reuse pass on
 *    the "batched" backend, so k queued single-image requests cost T
 *    rounds total instead of k * T.
 *
 * Determinism: a request's results are a pure function of (program,
 * options.seed, request images, ensemble size). Per-round weight draws
 * are seeded by McEngine::roundSeed(seed, round) independently of the
 * batch composition, and per-image outputs within a round are
 * independent of their neighbours, so micro-batching is invisible in
 * the output: submit() under any coalescing pattern returns exactly
 * what run() returns, bit for bit, for any thread count.
 *
 * Construction is through the fluent InferenceSession::Builder — from
 * a core::VibnnSystem, a trained Bayesian model (compiled here), a
 * QuantizedProgram, or a program file saved by core::model_io.
 */

#ifndef VIBNN_SERVE_SESSION_HH
#define VIBNN_SERVE_SESSION_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "accel/config.hh"
#include "accel/executor.hh"
#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "nn/trainer.hh"
#include "nn/uncertainty.hh"
#include "serve/coalescer.hh"

namespace vibnn::bnn
{
class BayesianMlp;
class BayesianConvNet;
} // namespace vibnn::bnn

namespace vibnn::core
{
class VibnnSystem;
} // namespace vibnn::core

namespace vibnn::serve
{

/** How a session trades fidelity against throughput. */
enum class ExecMode
{
    /** Per-pass sampling fidelity: every (image, MC sample) unit draws
     *  fresh weights — the paper's semantics — on the "functional"
     *  backend (bit-exact with the cycle simulator by construction). */
    Fidelity,
    /** Weight-reuse throughput: one weight sample per compute op per
     *  MC round, shared across the whole (micro-)batch, on the
     *  "batched" backend — T rounds instead of T x B passes.
     *  Statistically equivalent per round; this is the mode the async
     *  micro-batching coalescer exploits. */
    Throughput,
};

/** Parse "fidelity" / "throughput"; fatal() on anything else. */
ExecMode parseExecMode(const std::string &name);

/** Canonical lower-case name of a mode. */
const char *execModeName(ExecMode mode);

/** Session-wide serving policy. */
struct SessionOptions
{
    /** Executor backend registry id; empty derives it from `mode`
     *  ("functional" for Fidelity, "batched" for Throughput). */
    std::string backendId;
    /** GRNG design id (see grng::makeGenerator); empty inherits the
     *  model source's id (a Builder::system() session) or "rlf".
     *  "philox" (VIBNN_SERVE_GRNG=philox) selects the counter-based
     *  splittable generator: per-round rekey is in-place and throughput
     *  sessions shard the eps supply across the work pool. */
    std::string grngId;
    /** Master seed; unset inherits the model source's seed (a
     *  Builder::system() session) or 1. Every eps stream derives from
     *  the resolved value. */
    std::optional<std::uint64_t> seed;
    /** Ensemble size T; 0 uses the accelerator config's mcSamples. */
    int mcSamples = 0;
    /** Monte-Carlo engine parallelism (0 sizes from the global pool). */
    std::size_t threads = 0;
    /** Fidelity (default) or Throughput. */
    ExecMode mode = ExecMode::Fidelity;
    /** Top-k entries reported per prediction (clamped to the class
     *  count at build()). */
    std::size_t topK = 3;
    /** When false the per-sample softmax distributions are never
     *  materialized — Prediction::mutualInformation reads 0 — which
     *  keeps large prediction-only batches allocation-lean (the
     *  facade's classifyBatch runs this way). */
    bool uncertainty = true;

    /** Latency budget in microseconds applied to submitted requests
     *  that carry none of their own (InferenceRequest::deadlineMicros
     *  wins when positive); 0 disables holding. A budget licenses the
     *  deadline-aware coalescer to HOLD a request — waiting for more
     *  same-T arrivals to fill the round — for up to the budget minus
     *  the expected pass time, never longer (serve/coalescer.hh). A
     *  request with no budget dispatches greedily, exactly the PR 4
     *  behavior. */
    std::int64_t defaultDeadlineMicros = 0;
    /** Image cap per coalesced pass; reaching it dispatches a held
     *  batch immediately (the round is full). 0 = unbounded. */
    std::size_t maxBatchImages = 0;

    /**
     * Adaptive early-exit / anytime Monte-Carlo (Throughput mode
     * only — the batched backend's per-image independence is what
     * makes early retirement invisible to the survivors). When
     * enabled, T becomes a round BUDGET: images retire as soon as the
     * sequential convergence test says more rounds cannot change the
     * decision, Prediction reports the achieved rounds and exit
     * reason, and a positive deadline turns the session anytime —
     * best answer by the deadline. enabled == false (the default)
     * reproduces the fixed-T path bit for bit.
     */
    struct AdaptivePolicy
    {
        /** Master switch for early exit. */
        bool enabled = false;
        /** One-sided confidence of the convergence test, in (0, 1);
         *  higher spends more rounds before exiting. */
        double confidence = 0.999;
        /** No image exits before this many rounds. */
        int minSamples = 4;
        /** Rounds per increment between convergence checkpoints. */
        int chunk = 4;
        /** Anytime wall-clock deadline per engine pass in seconds;
         *  <= 0 disables it (deadline exits are inherently
         *  clock-dependent; the bit-determinism contract covers runs
         *  without one). */
        double deadlineSeconds = 0.0;
    };
    AdaptivePolicy adaptive;

    /**
     * Overlay the VIBNN_SERVE_* environment knobs onto `defaults` —
     * the string-parsing front door benches and examples use:
     *   VIBNN_SERVE_MODE        fidelity | throughput
     *   VIBNN_SERVE_BACKEND     executor id (empty = derive from mode)
     *   VIBNN_SERVE_GRNG        generator id
     *   VIBNN_SERVE_T           ensemble size
     *   VIBNN_SERVE_THREADS     engine parallelism
     *   VIBNN_SERVE_SEED        master seed
     *   VIBNN_SERVE_TOPK       top-k entries per prediction
     *   VIBNN_SERVE_ADAPTIVE    0 | 1 — early-exit MC master switch
     *   VIBNN_SERVE_CONFIDENCE  convergence-test confidence in (0, 1)
     *   VIBNN_SERVE_MIN_T       minimum rounds before any exit
     *   VIBNN_SERVE_CHUNK       rounds per adaptive increment
     *   VIBNN_SERVE_DEADLINE_MS anytime deadline per pass (<= 0 off)
     *   VIBNN_SERVE_DEADLINE_US default request latency budget for
     *                           the deadline-aware coalescer (0 off)
     *   VIBNN_SERVE_MAX_BATCH   image cap per coalesced pass (0 off)
     */
    static SessionOptions fromEnv();
    static SessionOptions fromEnv(SessionOptions defaults);
};

/** One inference request: one or many images. */
struct InferenceRequest
{
    /** Request id; 0 lets the session assign the next sequential id. */
    std::uint64_t id = 0;
    /** Per-request ensemble size override; 0 uses the session's T. */
    int mcSamples = 0;
    /**
     * Per-request latency budget in microseconds, measured from
     * submit(); 0 falls back to the session's defaultDeadlineMicros.
     * A positive budget licenses the dispatcher to hold the request
     * to fill a round (never past the budget), and under the adaptive
     * policy also bounds the engine pass itself (anytime mode): the
     * remaining budget caps the pass's wall-clock deadline, so the
     * network caller's SLO and PR 7's best-answer-by-deadline
     * semantics are the same knob. Deadlines shape WHEN a pass runs,
     * never its outputs — a fixed-T request's results stay
     * bit-identical with or without one. Capped at
     * serve::kMaxDeadlineMicros (an unbounded budget would license an
     * unbounded dispatcher hold); validateRequest rejects more.
     */
    std::int64_t deadlineMicros = 0;
    /** Image count. */
    std::size_t count = 0;
    /** Floats per image; must equal the program's input dim. */
    std::size_t dim = 0;
    /** Borrowed row-major features (count x dim) when `storage` is
     *  empty; callers keep the memory alive for run(). submit()
     *  copies borrowed data into `storage` automatically. */
    const float *features = nullptr;
    /** Owning payload (used instead of `features` when non-empty). */
    std::vector<float> storage;

    /** Wrap caller-owned memory without copying (run()-friendly). */
    static InferenceRequest borrow(const float *xs, std::size_t count,
                                   std::size_t dim);
    /** Wrap a DataView's features without copying. */
    static InferenceRequest borrow(const nn::DataView &view);
    /** Copy the images into the request (submit()-friendly). */
    static InferenceRequest copy(const float *xs, std::size_t count,
                                 std::size_t dim);

    const float *data() const
    {
        return storage.empty() ? features : storage.data();
    }
};

/** One image's decorated prediction. */
struct Prediction
{
    /** argmax of the ensemble-mean probabilities. */
    std::size_t predicted = 0;
    /** Ensemble-mean class probabilities (outputDim). */
    std::vector<float> probs;
    /** Predictive entropy H[mean probs] in nats (total uncertainty). */
    double entropy = 0.0;
    /** Mutual information / BALD in nats (epistemic uncertainty). */
    double mutualInformation = 0.0;
    /** Probability mass of the argmax class. */
    float confidence = 0.0f;
    /** The top-k classes, descending by probability. */
    std::vector<nn::ClassScore> topk;
    /** MC rounds actually spent on this image — the full ensemble size
     *  on the fixed-T path, possibly fewer under adaptive early
     *  exit. */
    int achievedSamples = 0;
    /** Why sampling stopped (Budget on the fixed-T path). */
    accel::McExitReason exitReason = accel::McExitReason::Budget;
};

/** Canonical lower-case name of an exit reason ("budget",
 *  "converged", "decided", "deadline") — for logs and bench JSON. */
const char *exitReasonName(accel::McExitReason reason);

/** The response to one InferenceRequest. */
struct InferenceResult
{
    std::uint64_t requestId = 0;
    /** One decorated prediction per image, in request order. */
    std::vector<Prediction> predictions;
    /** Ensemble size (the round budget under adaptive early exit) the
     *  request was served with. */
    int mcSamples = 0;
    /** Mean achieved rounds over the request's images — equals
     *  mcSamples on the fixed-T path, below it when early exit
     *  fires. */
    double meanRounds = 0.0;
    /** Wall-clock latency in microseconds: compute time for run(),
     *  submit-to-completion for submit(). */
    double micros = 0.0;
    /** Images in the executed engine pass — greater than
     *  predictions.size() when the request was micro-batched with
     *  concurrently pending ones. */
    std::size_t batchedImages = 0;

    /** Convenience: the predicted class per image. */
    std::vector<std::size_t> predictedClasses() const;

    /** Fraction of predictions matching `labels` (one label per image,
     *  nn::DataView::labels layout); 0 for an empty result. */
    double accuracy(const int *labels) const;
};

/** Future-style handle to a submitted request. */
class ResultHandle
{
  public:
    ResultHandle() = default;

    /** True once the result is available. */
    bool ready() const;
    /** Block until the result is available. */
    void wait() const;
    /** Block and take the result (one-shot: moves it out). */
    InferenceResult get();

  private:
    friend class InferenceSession;
    struct Pending;
    std::shared_ptr<Pending> state_;
};

/** A serving session over one compiled program. */
class InferenceSession
{
  public:
    /** Fluent construction. Exactly one model source is required; the
     *  rest defaults sensibly. build() fatal()s on invalid input with
     *  the registered ids spelled out. */
    class Builder
    {
      public:
        Builder();
        ~Builder();
        Builder(Builder &&) noexcept;
        Builder &operator=(Builder &&) noexcept;

        /** Adopt a VibnnSystem's program, accelerator config, GRNG id
         *  and seed (options set later still override). */
        Builder &system(const core::VibnnSystem &sys);
        /** Compile a trained Bayesian MLP at build() time. */
        Builder &model(const bnn::BayesianMlp &net);
        /** Compile a trained Bayesian CNN at build() time. */
        Builder &model(const bnn::BayesianConvNet &net);
        /** Serve an already-compiled program. */
        Builder &program(accel::QuantizedProgram prog);
        /** Load a program saved by core::saveQuantizedProgram. */
        Builder &programFile(const std::string &path);
        /** Accelerator geometry (defaults to the paper's 16x8x8@8). */
        Builder &accelerator(const accel::AcceleratorConfig &config);

        /** Replace the whole option block. */
        Builder &options(const SessionOptions &opts);
        Builder &backend(std::string id);
        Builder &grng(std::string id);
        Builder &seed(std::uint64_t seed);
        Builder &mcSamples(int t);
        Builder &threads(std::size_t threads);
        Builder &mode(ExecMode mode);
        Builder &topK(std::size_t k);
        Builder &uncertainty(bool enabled);
        Builder &adaptive(const SessionOptions::AdaptivePolicy &policy);
        /** Default latency budget for submitted requests (micros). */
        Builder &defaultDeadline(std::int64_t micros);
        /** Image cap per coalesced pass (0 = unbounded). */
        Builder &maxBatchImages(std::size_t images);

        /** Validate and construct. fatal() on: no model source, an
         *  unloadable program file, unknown backend / GRNG ids (the
         *  registered ids are listed), T < 1, or a program that fails
         *  geometry validation against the accelerator config. */
        std::unique_ptr<InferenceSession> build();

      private:
        struct State;
        std::unique_ptr<State> state_;
    };

    ~InferenceSession();

    InferenceSession(const InferenceSession &) = delete;
    InferenceSession &operator=(const InferenceSession &) = delete;

    /** Serve one request synchronously. */
    InferenceResult run(const InferenceRequest &request);

    /** Enqueue a request; borrowed feature memory is copied so the
     *  caller may release it immediately. */
    ResultHandle submit(InferenceRequest request);

    /** Block until every submitted request has completed. */
    void drain();

    /**
     * Microseconds the dispatcher's current engine pass has been
     * executing, or 0 when no pass is in flight. The watchdog's
     * wedge detector: a pass that exceeds its deadline many times
     * over means the shard is stuck, not slow.
     */
    std::int64_t currentPassMicros() const;

    /**
     * Permanently disable deadline-aware holding: any batch the
     * dispatcher is currently holding open dispatches immediately,
     * and future passes dispatch greedily. Sticky — the drain path
     * calls this so held requests flush instead of riding out their
     * budgets during shutdown.
     */
    void flushHolds();

    /** Serving statistics. */
    struct Counters
    {
        /** Requests completed (run + submit). */
        std::uint64_t requests = 0;
        /** Images classified. */
        std::uint64_t images = 0;
        /** Engine batch passes executed. */
        std::uint64_t passes = 0;
        /** Passes that merged two or more requests. */
        std::uint64_t coalescedPasses = 0;
        /** Passes the deadline-aware coalescer held open (waited on a
         *  latency budget for more arrivals) before dispatching. */
        std::uint64_t heldPasses = 0;
        /** Largest number of requests merged into one pass. */
        std::uint64_t maxCoalescedRequests = 0;
        /** Largest image count of one pass. */
        std::uint64_t maxBatchedImages = 0;
    };
    Counters counters() const;

    /** Aggregate executor statistics merged over all engines. */
    accel::CycleStats stats() const;

    const SessionOptions &options() const { return opts_; }
    const accel::QuantizedProgram &program() const { return program_; }
    const accel::AcceleratorConfig &acceleratorConfig() const
    {
        return config_;
    }
    std::size_t inputDim() const { return program_.inputDim(); }
    std::size_t outputDim() const { return program_.outputDim(); }
    /** The executor backend id the session actually runs on. */
    const std::string &backendId() const { return backendId_; }

    /** The SIMD kernel tier the backends dispatch to ("scalar",
     *  "sse4", "avx2") — serving introspection, so a deployment can
     *  log which datapath it is actually running (the tiers are
     *  bit-exact, so this only explains throughput). */
    static const char *kernelName();

  private:
    struct Queued;

    InferenceSession(accel::QuantizedProgram program,
                     const accel::AcceleratorConfig &config,
                     const SessionOptions &opts);

    /** Ensemble size a request is served with. */
    int effectiveSamples(const InferenceRequest &request) const;

    /** Latency budget a request is served under (its own, else the
     *  session default; 0 = none). */
    std::int64_t effectiveDeadline(const InferenceRequest &request) const;

    /** EWMA pass-time estimate for ensemble size `t`, micros (0 until
     *  the first observed pass at that T). */
    std::int64_t passEstimateMicros(int t) const;
    void observePassMicros(int t, double micros);

    /** fatal() unless the request matches the program geometry. */
    void validateRequest(const InferenceRequest &request) const;

    /** The engine serving ensemble size `t` (created on first use,
     *  cached up to kMaxCachedEngines — per-request T is caller
     *  controlled, so the cache must stay bounded; an evicted engine's
     *  CycleStats are folded into retiredStats_ first). Callers hold
     *  execMutex_. */
    accel::McEngine &engineFor(int t);

    /** Run one engine pass over `items` (same effective T), build and
     *  fulfill/collect the per-request results. `held` marks a pass
     *  the deadline-aware coalescer kept open before dispatch. */
    void executePass(std::vector<Queued> &items, int t, bool held);

    /** Decorate one image range of an engine result. `sample_stride`
     *  is the per-image row capacity of `sample_probs` (the budget);
     *  `achieved` / `reasons` are per-image across the whole pass and
     *  may be null (fixed-T: every image ran exactly `t` rounds). */
    InferenceResult buildResultImpl(
        std::uint64_t request_id, const std::size_t *predicted,
        const float *probs, const float *sample_probs,
        std::size_t sample_stride, const int *achieved,
        const accel::McExitReason *reasons, std::size_t first_image,
        std::size_t count, int t, std::size_t batched_images) const;

    /** Decorate one image range of a detailed engine result. */
    InferenceResult buildResult(std::uint64_t request_id,
                                const accel::McBatchResult &detailed,
                                std::size_t first_image,
                                std::size_t count, int t,
                                std::size_t batched_images) const;

    /** Same over an adaptive early-exit result. */
    InferenceResult buildResult(
        std::uint64_t request_id,
        const accel::McAdaptiveBatchResult &detailed,
        std::size_t first_image, std::size_t count, int t,
        std::size_t batched_images) const;

    /** The engine-facing adaptive options resolved from
     *  opts_.adaptive with budget `t`. `tightest_deadline_micros` is
     *  the smallest remaining member latency budget (0 = none): it
     *  caps the pass's anytime wall-clock deadline, integrating the
     *  request budget with the PR 7 anytime path. */
    accel::McAdaptiveOptions adaptiveOptions(
        int t, std::int64_t tightest_deadline_micros) const;

    void workerLoop();
    void ensureWorker();

    accel::QuantizedProgram program_;
    accel::AcceleratorConfig config_;
    SessionOptions opts_;
    std::string backendId_;
    accel::McSchedule schedule_;
    /** Coalescing is sound only when one weight draw genuinely serves
     *  the whole round (the backend advertises batchedRounds);
     *  otherwise the fallback streams images sequentially and merging
     *  would make outputs depend on batch composition. */
    bool coalesce_;

    /** Upper bound on any ensemble size (session or per-request) —
     *  T drives count x T x outputDim allocations, so an absurd value
     *  must fail with a message, not a bad_alloc. */
    static constexpr int kMaxEnsembleSize = 65536;

    /** Serializes engine construction/use and counter updates. */
    mutable std::mutex execMutex_;
    static constexpr std::size_t kMaxCachedEngines = 8;
    std::map<int, std::unique_ptr<accel::McEngine>> engines_;
    /** Cached ensemble sizes, least-recently-used first (the eviction
     *  order of engines_). */
    std::deque<int> engineLru_;
    accel::CycleStats retiredStats_;
    Counters counters_;

    std::atomic<std::uint64_t> nextRequestId_{1};

    /** Leaf lock guarding the per-T pass-time EWMAs (written after
     *  every pass, read by the dispatcher while deciding a hold). */
    mutable std::mutex estimatorMutex_;
    std::map<int, PassTimeEstimator> passEstimators_;

    /** Dispatcher state (worker started lazily on first submit()). */
    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::condition_variable drainCv_;
    std::deque<Queued> queue_;
    std::size_t pendingRequests_ = 0;
    bool stopping_ = false;
    /** Sticky hold-disable switch (see flushHolds()). */
    std::atomic<bool> holdsFlushed_{false};
    /** steady_clock micros at which the in-flight engine pass
     *  started; 0 = none. Read lock-free by the watchdog. */
    std::atomic<std::int64_t> passStartMicros_{0};
    std::thread worker_;
};

} // namespace vibnn::serve

#endif // VIBNN_SERVE_SESSION_HH
