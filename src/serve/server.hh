/**
 * @file
 * vibnn-serve: the network-facing serving subsystem.
 *
 * A serve::Server multiplexes many TCP client connections onto a
 * SHARDED pool of InferenceSessions — one shard per core group, each
 * with its own McEngine replicas — behind the length-prefixed binary
 * protocol of net/protocol.hh. The pieces a millions-of-users
 * deployment needs sit in this layer:
 *
 *  - Admission control: every shard bounds its in-flight requests
 *    (ServerOptions::queueCapacity). A request that would exceed the
 *    bound is REJECTED with an explicit Overloaded error frame —
 *    overload degrades into fast, visible rejections instead of
 *    unbounded queue growth and collapse.
 *  - Deadline-aware coalescing: each shard's session dispatcher holds
 *    a deadlined request only as long as its latency budget allows
 *    (serve/coalescer.hh), filling Monte-Carlo rounds from concurrent
 *    connections without ever breaking a budget.
 *  - Observability: per-shard p50/p95/p99 latency, queue depth,
 *    rounds/s, merge factor, and reject counts via stats(), and as a
 *    JSON document served to any client over the MetricsRequest frame
 *    (the metrics "endpoint" — see serve::Client::metrics()).
 *  - Self-healing: an optional watchdog thread tracks per-shard
 *    health (Healthy / Degraded / Wedged). A shard whose engine pass
 *    has run far past the configured bound is marked Wedged and the
 *    router avoids it until the pass completes; under queue pressure
 *    a shard BROWNS OUT — serves at a reduced ensemble size, stamping
 *    the degraded flag and the achieved T into the response — and
 *    recovers with hysteresis once the pressure clears. Degrade
 *    service, don't refuse it.
 *  - Graceful drain: beginDrain() flushes every dispatcher hold and
 *    answers new classifies with a deterministic ShuttingDown error
 *    frame; stop() drains in-flight work bounded before tearing the
 *    connections down, so held requests complete instead of dying
 *    mid-flight.
 *
 * Determinism carries through from the session layer: every shard
 * serves the same (program, seed, GRNG), and per-request outputs are
 * independent of batch composition, so a prediction served over the
 * socket is bit-identical to in-process InferenceSession::run() no
 * matter the shard count, routing, or connection interleaving
 * (ctest-pinned in tests/test_server.cc).
 */

#ifndef VIBNN_SERVE_SERVER_HH
#define VIBNN_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/net/protocol.hh"
#include "serve/net/socket.hh"
#include "serve/session.hh"

namespace vibnn::serve
{

/**
 * Fixed-footprint geometric latency histogram (1 us resolution floor,
 * ~25% bucket width, covering up to ~100 s). Quantiles are read from
 * the bucket boundaries, so p50/p95/p99 cost no sample storage and
 * recording is one atomic increment — cheap enough for every request.
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 84;

    /** Record one latency observation (values are clamped into the
     *  covered range). Thread-safe, lock-free. */
    void record(double micros);

    /** Total recorded observations. */
    std::uint64_t count() const;

    /** Approximate quantile in microseconds (q in [0, 1]); 0 when
     *  nothing was recorded. Reads a racy snapshot — metrics, not
     *  accounting. */
    double quantileMicros(double q) const;

    /** Fold another histogram's counts into this one (metrics
     *  aggregation across shards). */
    void merge(const LatencyHistogram &other);

    /** Upper bound (micros) of bucket i — exposed for tests. */
    static double bucketUpperMicros(std::size_t i);

  private:
    std::atomic<std::uint64_t> counts_[kBuckets] = {};
};

/** Who may stop the server with a Shutdown frame. Any connected peer
 *  can send one, so on a non-loopback bind an unrestricted Shutdown
 *  is an unauthenticated remote kill switch. */
enum class RemoteShutdown
{
    /** Honor Shutdown only when the bind address is loopback — the
     *  safe default: local tooling keeps the client-driven-stop
     *  workflow, a LAN-exposed server ignores remote kills. */
    LoopbackOnly,
    /** Always honor Shutdown (an orchestrator owns the network). */
    Enabled,
    /** Never honor Shutdown; only the owner's stop() ends serving. */
    Disabled,
};

/** Watchdog-assigned serving state of one shard. */
enum class ShardHealth
{
    /** Serving normally. */
    Healthy,
    /** Brownout: queue pressure crossed the enter threshold; the
     *  shard serves at a reduced ensemble size until pressure drops
     *  below the exit threshold (hysteresis). */
    Degraded,
    /** The shard's current engine pass has run past the wedge bound;
     *  the router avoids the shard until the pass completes. */
    Wedged,
};

/** Canonical lower-case name ("healthy", "degraded", "wedged"). */
const char *shardHealthName(ShardHealth health);

/** Serving policy of one server process. */
struct ServerOptions
{
    /** IPv4 address to bind. */
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (see Server::port()). */
    std::uint16_t port = 0;
    /** Session shards. Each shard owns a full InferenceSession (its
     *  own McEngine replicas and dispatcher); requests route to the
     *  least-loaded shard. 0 picks the hardware concurrency. */
    std::size_t shards = 1;
    /** Per-shard in-flight request bound — the admission-control
     *  knob. Requests beyond it are rejected with Overloaded. */
    std::size_t queueCapacity = 256;
    /** Concurrent connection bound; excess connections are refused
     *  with an Overloaded error frame. */
    std::size_t maxConnections = 1024;
    /** Shutdown-frame policy (see RemoteShutdown). A refused Shutdown
     *  gets a BadRequest error frame and the connection survives. */
    RemoteShutdown remoteShutdown = RemoteShutdown::LoopbackOnly;
    /** Watchdog poll interval in milliseconds; 0 (the default)
     *  disables the watchdog — and with it shard health tracking and
     *  brownout, reproducing the pre-fault-tolerance server
     *  exactly. */
    std::int64_t watchdogMillis = 0;
    /** Enable brownout degradation: under queue pressure a Degraded
     *  shard clamps the served ensemble size to brownoutSamples and
     *  stamps the response degraded. Requires the watchdog (health
     *  transitions happen only on its thread). */
    bool brownout = false;
    /** Queue-pressure fraction of queueCapacity at which a shard
     *  enters brownout... */
    double brownoutEnterFraction = 0.75;
    /** ...and the (lower) fraction at which it exits — the gap is the
     *  hysteresis that stops flapping. */
    double brownoutExitFraction = 0.25;
    /** The reduced ensemble size a browned-out shard serves with. */
    int brownoutSamples = 2;
    /** An engine pass older than this (milliseconds) marks its shard
     *  Wedged. */
    std::int64_t wedgedAfterMillis = 1000;
    /** Per-shard serving policy (exec mode, T, GRNG, seed, deadline
     *  defaults...). Every shard gets an identical copy — one seed,
     *  one program — which is what makes routing invisible in the
     *  outputs. */
    SessionOptions session;
};

/** Point-in-time view of one shard. */
struct ShardStats
{
    std::uint64_t requests = 0;
    std::uint64_t images = 0;
    std::uint64_t rejects = 0;
    std::uint64_t passes = 0;
    std::uint64_t coalescedPasses = 0;
    std::uint64_t heldPasses = 0;
    /** Monte-Carlo rounds spent (sum of achieved per-image rounds). */
    std::uint64_t rounds = 0;
    /** In-flight requests right now. */
    std::size_t queueDepth = 0;
    /** Mean images per engine pass (the merge factor). */
    double mergeImagesPerPass = 0.0;
    /** Mean requests per engine pass. */
    double mergeRequestsPerPass = 0.0;
    double p50Micros = 0.0;
    double p95Micros = 0.0;
    double p99Micros = 0.0;
    /** Watchdog-assigned health (Healthy when the watchdog is off). */
    ShardHealth health = ShardHealth::Healthy;
    /** Requests served at a brownout-reduced ensemble size. */
    std::uint64_t brownoutPasses = 0;
    /** Requests that arrived stamped as a retry (retryAttempt > 0). */
    std::uint64_t retriesObserved = 0;
};

/** Point-in-time view of the whole server. */
struct ServerStats
{
    std::vector<ShardStats> shards;
    std::uint64_t requests = 0;
    std::uint64_t images = 0;
    std::uint64_t rejects = 0;
    std::uint64_t rounds = 0;
    std::size_t activeConnections = 0;
    double uptimeSeconds = 0.0;
    double roundsPerSecond = 0.0;
    double p50Micros = 0.0;
    double p95Micros = 0.0;
    double p99Micros = 0.0;
    /** Sums over the shards. */
    std::uint64_t brownoutPasses = 0;
    std::uint64_t retriesObserved = 0;
    /** Healthy→Wedged transitions the watchdog recorded. */
    std::uint64_t watchdogTrips = 0;
    /** Injected faults fired process-wide (fault::totalFires()) — 0
     *  outside chaos runs. */
    std::uint64_t faultFires = 0;
    /** beginDrain() ran: new classifies get ShuttingDown. */
    bool draining = false;
};

/** The network server. Construct, start(), serve until a client sends
 *  Shutdown (waitForShutdownRequest()) or the owner calls stop(). */
class Server
{
  public:
    /**
     * @param program The compiled program every shard serves.
     * @param config Accelerator geometry the program was compiled for.
     * @param options Serving policy; options.session is validated by
     *        the first shard's Builder (fatal on bad configuration,
     *        exactly like an in-process session).
     */
    Server(accel::QuantizedProgram program,
           const accel::AcceleratorConfig &config,
           ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and start accepting. False + `error` on a bind /
     * listen failure (an occupied port is a runtime condition, not a
     * configuration bug — no fatal()).
     */
    bool start(std::string &error);

    /**
     * Enter draining: every dispatcher hold is flushed (held batches
     * dispatch immediately) and every classify that arrives from now
     * on is answered with a deterministic ShuttingDown error frame —
     * in-flight requests still complete and their responses still go
     * out. Idempotent; stop() calls it first.
     */
    void beginDrain();

    /** True once beginDrain() (or stop()) ran. */
    bool draining() const { return draining_.load(); }

    /** Stop accepting, drain in-flight work (bounded), unblock and
     *  join every connection. Idempotent; also runs on
     *  destruction. */
    void stop();

    bool running() const { return running_.load(); }

    /** The bound TCP port (after start()). */
    std::uint16_t port() const { return boundPort_; }

    std::size_t shardCount() const { return shards_.size(); }

    const ServerOptions &options() const { return options_; }

    /** True once a client sent a Shutdown frame (or stop() ran). */
    bool shutdownRequested() const;

    /** Block until shutdownRequested(). The canonical daemon main is
     *  start(); waitForShutdownRequest(); stop(). */
    void waitForShutdownRequest();

    /** Aggregate + per-shard serving statistics. */
    ServerStats stats() const;

    /** The statistics rendered as a JSON document — what the metrics
     *  frame serves (schema documented in docs/SERVING.md). */
    std::string metricsJson() const;

    /** Watchdog-assigned health of shard `i` (Healthy when the
     *  watchdog is off). */
    ShardHealth shardHealth(std::size_t i) const;

  private:
    struct Shard
    {
        std::unique_ptr<InferenceSession> session;
        std::atomic<std::size_t> inflight{0};
        std::atomic<std::uint64_t> rejects{0};
        std::atomic<std::uint64_t> rounds{0};
        /** ShardHealth; written only by the watchdog thread. */
        std::atomic<int> health{0};
        std::atomic<std::uint64_t> brownoutPasses{0};
        std::atomic<std::uint64_t> retriesObserved{0};
        LatencyHistogram latency;
    };

    /** One accepted connection: socket + its service thread. */
    struct Connection
    {
        net::Socket sock;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void serveConnection(Connection &conn);
    /** Health poller: marks over-deadline passes Wedged and drives
     *  brownout enter/exit — the only writer of Shard::health. */
    void watchdogLoop();
    /** Route to the least-loaded shard (smallest in-flight count),
     *  preferring non-Wedged shards. */
    Shard &pickShard();
    /** Handle one decoded classify frame on `conn`'s socket. */
    bool handleClassify(Connection &conn,
                        const std::vector<std::uint8_t> &payload);
    /** Join finished connection threads (called from the accept
     *  loop); with `all`, join everything (shutdown). */
    void reapConnections(bool all);

    static bool sendError(const net::Socket &sock, std::uint64_t id,
                          net::ErrorCode code,
                          const std::string &message);

    ServerOptions options_;
    std::vector<std::unique_ptr<Shard>> shards_;

    net::Socket listener_;
    std::uint16_t boundPort_ = 0;
    std::thread acceptThread_;
    std::thread watchdogThread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> draining_{false};
    std::atomic<std::uint64_t> watchdogTrips_{0};
    /** Wakes the watchdog out of its poll sleep at stop(). */
    mutable std::mutex watchdogMutex_;
    std::condition_variable watchdogCv_;
    /** Resolved remoteShutdown policy against the bind address. */
    bool shutdownAllowed_ = true;
    /** One-shot latch so a persistent accept failure (fd exhaustion)
     *  warns once instead of flooding stderr. */
    std::atomic<bool> acceptFailureLogged_{false};

    mutable std::mutex connMutex_;
    std::vector<std::unique_ptr<Connection>> connections_;

    mutable std::mutex shutdownMutex_;
    std::condition_variable shutdownCv_;
    bool shutdownRequested_ = false;

    std::chrono::steady_clock::time_point startTime_;
};

} // namespace vibnn::serve

#endif // VIBNN_SERVE_SERVER_HH
