#include "serve/session.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <optional>
#include <utility>

#include "bnn/bayesian_cnn.hh"
#include "bnn/bayesian_mlp.hh"
#include "accel/kernels/kernels.hh"
#include "common/env.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "core/model_io.hh"
#include "core/vibnn.hh"
#include "grng/registry.hh"

namespace vibnn::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

double
microsSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     start)
        .count();
}

std::int64_t
nowMicros()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now().time_since_epoch())
        .count();
}

} // namespace

ExecMode
parseExecMode(const std::string &name)
{
    if (name == "fidelity")
        return ExecMode::Fidelity;
    if (name == "throughput")
        return ExecMode::Throughput;
    fatal("unknown exec mode '" + name +
          "' (expected: fidelity, throughput)");
}

const char *
execModeName(ExecMode mode)
{
    return mode == ExecMode::Throughput ? "throughput" : "fidelity";
}

namespace
{

/**
 * Strict integer env parsing for the serving knobs: a set-but-garbled
 * value (stray suffix, hex, plain text) must fail loudly — a seed or
 * thread count silently falling back to a default turns into phantom
 * nondeterminism downstream.
 */
std::int64_t
serveEnvInt(const char *name, std::int64_t fallback)
{
    const std::string raw = envString(name, "");
    if (raw.empty())
        return fallback;
    char *end = nullptr;
    const long long value = std::strtoll(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0')
        fatal(std::string(name) + " must be a base-10 integer, got '" +
              raw + "'");
    return value;
}

/** The same strictness for the real-valued adaptive knobs. */
double
serveEnvFloat(const char *name, double fallback)
{
    const std::string raw = envString(name, "");
    if (raw.empty())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0')
        fatal(std::string(name) + " must be a decimal number, got '" +
              raw + "'");
    return value;
}

} // namespace

SessionOptions
SessionOptions::fromEnv()
{
    return fromEnv(SessionOptions{});
}

SessionOptions
SessionOptions::fromEnv(SessionOptions defaults)
{
    SessionOptions opts = std::move(defaults);
    const std::string mode =
        envString("VIBNN_SERVE_MODE", execModeName(opts.mode));
    opts.mode = parseExecMode(mode);
    opts.backendId = envString("VIBNN_SERVE_BACKEND", opts.backendId);
    opts.grngId = envString("VIBNN_SERVE_GRNG", opts.grngId);
    opts.mcSamples =
        static_cast<int>(serveEnvInt("VIBNN_SERVE_T", opts.mcSamples));
    const std::int64_t threads = serveEnvInt(
        "VIBNN_SERVE_THREADS", static_cast<std::int64_t>(opts.threads));
    if (threads < 0)
        fatal("VIBNN_SERVE_THREADS must be >= 0, got " +
              std::to_string(threads));
    opts.threads = static_cast<std::size_t>(threads);
    if (!envString("VIBNN_SERVE_SEED", "").empty()) {
        opts.seed = static_cast<std::uint64_t>(
            serveEnvInt("VIBNN_SERVE_SEED", 1));
    }
    opts.topK = static_cast<std::size_t>(
        serveEnvInt("VIBNN_SERVE_TOPK",
                    static_cast<std::int64_t>(opts.topK)));
    opts.adaptive.enabled =
        serveEnvInt("VIBNN_SERVE_ADAPTIVE",
                    opts.adaptive.enabled ? 1 : 0) != 0;
    opts.adaptive.confidence = serveEnvFloat("VIBNN_SERVE_CONFIDENCE",
                                             opts.adaptive.confidence);
    opts.adaptive.minSamples = static_cast<int>(
        serveEnvInt("VIBNN_SERVE_MIN_T", opts.adaptive.minSamples));
    opts.adaptive.chunk = static_cast<int>(
        serveEnvInt("VIBNN_SERVE_CHUNK", opts.adaptive.chunk));
    opts.adaptive.deadlineSeconds =
        serveEnvFloat("VIBNN_SERVE_DEADLINE_MS",
                      opts.adaptive.deadlineSeconds * 1e3) /
        1e3;
    const std::int64_t deadline_us =
        serveEnvInt("VIBNN_SERVE_DEADLINE_US",
                    opts.defaultDeadlineMicros);
    if (deadline_us < 0 || deadline_us > kMaxDeadlineMicros)
        fatal("VIBNN_SERVE_DEADLINE_US must be in [0, " +
              std::to_string(kMaxDeadlineMicros) + "], got " +
              std::to_string(deadline_us));
    opts.defaultDeadlineMicros = deadline_us;
    const std::int64_t max_batch =
        serveEnvInt("VIBNN_SERVE_MAX_BATCH",
                    static_cast<std::int64_t>(opts.maxBatchImages));
    if (max_batch < 0)
        fatal("VIBNN_SERVE_MAX_BATCH must be >= 0, got " +
              std::to_string(max_batch));
    opts.maxBatchImages = static_cast<std::size_t>(max_batch);
    return opts;
}

const char *
exitReasonName(accel::McExitReason reason)
{
    switch (reason) {
      case accel::McExitReason::Converged:
        return "converged";
      case accel::McExitReason::Decided:
        return "decided";
      case accel::McExitReason::Deadline:
        return "deadline";
      case accel::McExitReason::Budget:
        break;
    }
    return "budget";
}

// --------------------------------------------------------- InferenceRequest

InferenceRequest
InferenceRequest::borrow(const float *xs, std::size_t count,
                         std::size_t dim)
{
    InferenceRequest request;
    request.features = xs;
    request.count = count;
    request.dim = dim;
    return request;
}

InferenceRequest
InferenceRequest::borrow(const nn::DataView &view)
{
    return borrow(view.features, view.count, view.dim);
}

InferenceRequest
InferenceRequest::copy(const float *xs, std::size_t count,
                       std::size_t dim)
{
    InferenceRequest request;
    request.storage.assign(xs, xs + count * dim);
    request.count = count;
    request.dim = dim;
    return request;
}

// ---------------------------------------------------------- InferenceResult

std::vector<std::size_t>
InferenceResult::predictedClasses() const
{
    std::vector<std::size_t> classes(predictions.size());
    for (std::size_t i = 0; i < predictions.size(); ++i)
        classes[i] = predictions[i].predicted;
    return classes;
}

double
InferenceResult::accuracy(const int *labels) const
{
    if (predictions.empty())
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        if (predictions[i].predicted ==
            static_cast<std::size_t>(labels[i]))
            ++correct;
    }
    return static_cast<double>(correct) /
        static_cast<double>(predictions.size());
}

// -------------------------------------------------------------- ResultHandle

struct ResultHandle::Pending
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    InferenceResult result;

    void
    fulfill(InferenceResult value)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            result = std::move(value);
            done = true;
        }
        cv.notify_all();
    }
};

bool
ResultHandle::ready() const
{
    if (!state_)
        return false;
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->done;
}

void
ResultHandle::wait() const
{
    VIBNN_ASSERT(state_, "waiting on an empty ResultHandle");
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
}

InferenceResult
ResultHandle::get()
{
    VIBNN_ASSERT(state_, "reading an empty ResultHandle");
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
    return std::move(state_->result);
}

// -------------------------------------------------------- InferenceSession

/** One queued submission. */
struct InferenceSession::Queued
{
    InferenceRequest request;
    std::shared_ptr<ResultHandle::Pending> pending;
    Clock::time_point enqueued;
};

// ---- Builder

struct InferenceSession::Builder::State
{
    std::optional<accel::QuantizedProgram> program;
    /** Deferred model compilation (runs at build(), once the
     *  accelerator config is final). */
    std::function<accel::QuantizedProgram(
        const accel::AcceleratorConfig &)>
        compileModel;
    accel::AcceleratorConfig config;
    SessionOptions opts;
    /** A system() source's GRNG id / seed — the inherited defaults
     *  when the options leave them unset. */
    std::string sourceGrngId;
    std::optional<std::uint64_t> sourceSeed;
};

InferenceSession::Builder::Builder() : state_(std::make_unique<State>())
{
}

InferenceSession::Builder::~Builder() = default;
InferenceSession::Builder::Builder(Builder &&) noexcept = default;
InferenceSession::Builder &
InferenceSession::Builder::operator=(Builder &&) noexcept = default;

InferenceSession::Builder &
InferenceSession::Builder::system(const core::VibnnSystem &sys)
{
    state_->program = sys.program();
    state_->config = sys.config();
    state_->sourceGrngId = sys.grngId();
    state_->sourceSeed = sys.seed();
    state_->compileModel = nullptr;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::model(const bnn::BayesianMlp &net)
{
    state_->program.reset();
    state_->compileModel =
        [net](const accel::AcceleratorConfig &config) {
            return accel::compile(net, config);
        };
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::model(const bnn::BayesianConvNet &net)
{
    state_->program.reset();
    state_->compileModel =
        [net](const accel::AcceleratorConfig &config) {
            return accel::compile(net, config);
        };
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::program(accel::QuantizedProgram prog)
{
    state_->program = std::move(prog);
    state_->compileModel = nullptr;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::programFile(const std::string &path)
{
    auto loaded = core::loadQuantizedProgram(path);
    if (!loaded)
        fatal("InferenceSession::Builder: cannot load a "
              "QuantizedProgram from '" +
              path + "'");
    state_->program = std::move(*loaded);
    state_->compileModel = nullptr;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::accelerator(
    const accel::AcceleratorConfig &config)
{
    state_->config = config;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::options(const SessionOptions &opts)
{
    state_->opts = opts;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::backend(std::string id)
{
    state_->opts.backendId = std::move(id);
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::grng(std::string id)
{
    state_->opts.grngId = std::move(id);
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::seed(std::uint64_t seed)
{
    state_->opts.seed = seed;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::mcSamples(int t)
{
    state_->opts.mcSamples = t;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::threads(std::size_t threads)
{
    state_->opts.threads = threads;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::mode(ExecMode mode)
{
    state_->opts.mode = mode;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::topK(std::size_t k)
{
    state_->opts.topK = k;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::uncertainty(bool enabled)
{
    state_->opts.uncertainty = enabled;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::adaptive(
    const SessionOptions::AdaptivePolicy &policy)
{
    state_->opts.adaptive = policy;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::defaultDeadline(std::int64_t micros)
{
    state_->opts.defaultDeadlineMicros = micros;
    return *this;
}

InferenceSession::Builder &
InferenceSession::Builder::maxBatchImages(std::size_t images)
{
    state_->opts.maxBatchImages = images;
    return *this;
}

std::unique_ptr<InferenceSession>
InferenceSession::Builder::build()
{
    State &s = *state_;
    if (!s.program && s.compileModel)
        s.program = s.compileModel(s.config);
    if (!s.program)
        fatal("InferenceSession::Builder: no model source — provide "
              "system(), model(), program() or programFile() before "
              "build()");

    SessionOptions &opts = s.opts;
    if (opts.mcSamples < 0)
        fatal("InferenceSession::Builder: mcSamples must be >= 0 "
              "(0 = accelerator default), got " +
              std::to_string(opts.mcSamples));
    const int t =
        opts.mcSamples > 0 ? opts.mcSamples : s.config.mcSamples;
    if (t < 1)
        fatal("InferenceSession::Builder: the effective ensemble size "
              "must be >= 1, got " +
              std::to_string(t));
    if (t > kMaxEnsembleSize)
        fatal("InferenceSession::Builder: the effective ensemble size "
              "must be <= " +
              std::to_string(kMaxEnsembleSize) + ", got " +
              std::to_string(t));
    // Resolved: options() reports the T the session actually serves
    // with (per-request overrides still apply on top).
    opts.mcSamples = t;
    // A nonsense thread count (e.g. a negative value cast through
    // size_t) would otherwise surface as an allocation failure deep in
    // the engine.
    if (opts.threads > 4096)
        fatal("InferenceSession::Builder: threads must be <= 4096, "
              "got " +
              std::to_string(opts.threads));
    if (opts.defaultDeadlineMicros < 0 ||
        opts.defaultDeadlineMicros > kMaxDeadlineMicros)
        fatal("InferenceSession::Builder: defaultDeadlineMicros must "
              "be in [0, " +
              std::to_string(kMaxDeadlineMicros) + "], got " +
              std::to_string(opts.defaultDeadlineMicros));

    // Resolve the inherit-from-source defaults and the mode-derived
    // backend into the option block ONCE — the session constructor
    // reads only resolved values, so validation and execution cannot
    // diverge.
    if (opts.grngId.empty())
        opts.grngId = state_->sourceGrngId.empty()
                          ? "rlf"
                          : state_->sourceGrngId;
    if (!opts.seed)
        opts.seed = state_->sourceSeed ? *state_->sourceSeed : 1;
    if (opts.backendId.empty())
        opts.backendId = opts.mode == ExecMode::Throughput
                             ? "batched"
                             : "functional";

    const auto grng_ids = grng::generatorIds();
    if (std::find(grng_ids.begin(), grng_ids.end(), opts.grngId) ==
        grng_ids.end()) {
        fatal("InferenceSession::Builder: unknown GRNG id '" +
              opts.grngId + "' (registered: " + joinStrings(grng_ids) +
              ")");
    }

    const auto exec_ids = accel::registeredExecutorIds();
    if (std::find(exec_ids.begin(), exec_ids.end(), opts.backendId) ==
        exec_ids.end()) {
        fatal("InferenceSession::Builder: unknown executor backend '" +
              opts.backendId + "' (registered: " +
              joinStrings(exec_ids) + ")");
    }

    if (opts.adaptive.enabled) {
        // Early exit retires images mid-ensemble; only the weight-reuse
        // round path keeps the survivors' streams independent of who
        // left (see McEngine::classifyBatchAdaptive).
        if (opts.mode != ExecMode::Throughput ||
            !accel::executorCaps(opts.backendId).batchedRounds) {
            fatal("InferenceSession::Builder: adaptive early-exit MC "
                  "requires Throughput mode on a batched-rounds "
                  "backend (mode " +
                  std::string(execModeName(opts.mode)) +
                  ", backend '" + opts.backendId + "')");
        }
        if (opts.adaptive.confidence <= 0.0 ||
            opts.adaptive.confidence >= 1.0)
            fatal("InferenceSession::Builder: adaptive confidence "
                  "must be in (0, 1), got " +
                  std::to_string(opts.adaptive.confidence));
        if (opts.adaptive.minSamples < 1)
            fatal("InferenceSession::Builder: adaptive minSamples "
                  "must be >= 1, got " +
                  std::to_string(opts.adaptive.minSamples));
        if (opts.adaptive.chunk < 1)
            fatal("InferenceSession::Builder: adaptive chunk must be "
                  ">= 1, got " +
                  std::to_string(opts.adaptive.chunk));
    }

    // Geometry errors surface here, not at the first request.
    accel::validateProgram(*s.program, s.config);

    opts.topK = std::min(opts.topK, s.program->outputDim());
    return std::unique_ptr<InferenceSession>(new InferenceSession(
        std::move(*s.program), s.config, opts));
}

// ---- session proper

const char *
InferenceSession::kernelName()
{
    return accel::kernels::activeKernelName();
}

InferenceSession::InferenceSession(accel::QuantizedProgram program,
                                   const accel::AcceleratorConfig &config,
                                   const SessionOptions &opts)
    : program_(std::move(program)), config_(config), opts_(opts),
      backendId_(opts.backendId),
      schedule_(opts.mode == ExecMode::Throughput
                    ? accel::McSchedule::PerRound
                    : accel::McSchedule::PerUnit),
      coalesce_(schedule_ == accel::McSchedule::PerRound &&
                accel::executorCaps(opts.backendId).batchedRounds)
{
    // build() resolves every inherit/derive default before handing the
    // options over.
    VIBNN_ASSERT(!opts_.backendId.empty() && !opts_.grngId.empty() &&
                     opts_.seed.has_value(),
                 "InferenceSession constructed with unresolved options");
}

InferenceSession::~InferenceSession()
{
    if (worker_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            stopping_ = true;
        }
        queueCv_.notify_all();
        worker_.join();
    }
}

int
InferenceSession::effectiveSamples(const InferenceRequest &request) const
{
    if (request.mcSamples > 0)
        return request.mcSamples;
    if (opts_.mcSamples > 0)
        return opts_.mcSamples;
    return config_.mcSamples;
}

std::int64_t
InferenceSession::effectiveDeadline(const InferenceRequest &request) const
{
    return request.deadlineMicros > 0 ? request.deadlineMicros
                                      : opts_.defaultDeadlineMicros;
}

std::int64_t
InferenceSession::passEstimateMicros(int t) const
{
    std::lock_guard<std::mutex> lock(estimatorMutex_);
    const auto it = passEstimators_.find(t);
    return it == passEstimators_.end()
               ? 0
               : static_cast<std::int64_t>(
                     it->second.estimateMicros());
}

void
InferenceSession::observePassMicros(int t, double micros)
{
    std::lock_guard<std::mutex> lock(estimatorMutex_);
    passEstimators_[t].observe(micros);
}

void
InferenceSession::validateRequest(const InferenceRequest &request) const
{
    if (request.count == 0)
        fatal("InferenceSession: request holds no images");
    if (request.dim != program_.inputDim())
        fatal("InferenceSession: request dim " +
              std::to_string(request.dim) +
              " does not match the program input dim " +
              std::to_string(program_.inputDim()));
    if (!request.data())
        fatal("InferenceSession: request carries no feature data");
    if (request.mcSamples < 0)
        fatal("InferenceSession: request mcSamples must be >= 0");
    if (request.mcSamples > kMaxEnsembleSize)
        fatal("InferenceSession: request mcSamples must be <= " +
              std::to_string(kMaxEnsembleSize) + ", got " +
              std::to_string(request.mcSamples));
    if (request.deadlineMicros < 0 ||
        request.deadlineMicros > kMaxDeadlineMicros)
        // An unbounded budget is an unbounded dispatcher-hold license
        // (and overflows wait_for's duration math) — cap it like
        // mcSamples above.
        fatal("InferenceSession: request deadlineMicros must be in "
              "[0, " +
              std::to_string(kMaxDeadlineMicros) + "], got " +
              std::to_string(request.deadlineMicros));
}

accel::McEngine &
InferenceSession::engineFor(int t)
{
    auto it = engines_.find(t);
    if (it != engines_.end()) {
        // Refresh t's LRU position.
        engineLru_.erase(
            std::find(engineLru_.begin(), engineLru_.end(), t));
        engineLru_.push_back(t);
        return *it->second;
    }
    // Per-request T is caller controlled; bound the cache by retiring
    // the least-recently-used engine (results are pure functions of
    // the seeds, so eviction is invisible beyond reconstruction cost).
    if (engines_.size() >= kMaxCachedEngines) {
        const int victim_t = engineLru_.front();
        engineLru_.pop_front();
        auto victim = engines_.find(victim_t);
        retiredStats_ += victim->second->stats();
        engines_.erase(victim);
    }
    accel::McEngineConfig mc;
    mc.threads = opts_.threads;
    mc.generatorId = opts_.grngId;
    mc.seedBase = *opts_.seed;
    mc.backendId = backendId_;
    mc.schedule = schedule_;
    accel::AcceleratorConfig config = config_;
    config.mcSamples = t;
    it = engines_
             .emplace(t, std::make_unique<accel::McEngine>(
                             program_, config, mc))
             .first;
    engineLru_.push_back(t);
    return *it->second;
}

InferenceResult
InferenceSession::buildResultImpl(
    std::uint64_t request_id, const std::size_t *predicted,
    const float *probs, const float *sample_probs,
    std::size_t sample_stride, const int *achieved,
    const accel::McExitReason *reasons, std::size_t first_image,
    std::size_t count, int t, std::size_t batched_images) const
{
    const std::size_t out_dim = program_.outputDim();
    InferenceResult result;
    result.requestId = request_id;
    result.mcSamples = t;
    result.batchedImages = batched_images;
    result.predictions.resize(count);
    double total_rounds = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t image = first_image + i;
        const float *mean = probs + image * out_dim;
        const int rounds = achieved ? achieved[image] : t;
        total_rounds += rounds;
        Prediction &p = result.predictions[i];
        p.predicted = predicted[image];
        p.probs.assign(mean, mean + out_dim);
        p.entropy = nn::predictiveEntropy(mean, out_dim);
        if (sample_probs && rounds > 0) {
            // Only the achieved rows are populated; the stride is the
            // per-image row capacity (the budget).
            p.mutualInformation = nn::mutualInformation(
                mean, sample_probs + image * sample_stride * out_dim,
                static_cast<std::size_t>(rounds), out_dim);
        }
        p.confidence = nn::maxProbability(mean, out_dim);
        if (opts_.topK > 0)
            p.topk = nn::topK(mean, out_dim, opts_.topK);
        p.achievedSamples = rounds;
        p.exitReason =
            reasons ? reasons[image] : accel::McExitReason::Budget;
    }
    result.meanRounds =
        count > 0 ? total_rounds / static_cast<double>(count) : 0.0;
    return result;
}

InferenceResult
InferenceSession::buildResult(std::uint64_t request_id,
                              const accel::McBatchResult &detailed,
                              std::size_t first_image,
                              std::size_t count, int t,
                              std::size_t batched_images) const
{
    return buildResultImpl(
        request_id, detailed.predicted.data(), detailed.probs.data(),
        detailed.sampleProbs.empty() ? nullptr
                                     : detailed.sampleProbs.data(),
        static_cast<std::size_t>(t), /*achieved=*/nullptr,
        /*reasons=*/nullptr, first_image, count, t, batched_images);
}

InferenceResult
InferenceSession::buildResult(
    std::uint64_t request_id,
    const accel::McAdaptiveBatchResult &detailed,
    std::size_t first_image, std::size_t count, int t,
    std::size_t batched_images) const
{
    return buildResultImpl(
        request_id, detailed.predicted.data(), detailed.probs.data(),
        detailed.sampleProbs.empty() ? nullptr
                                     : detailed.sampleProbs.data(),
        static_cast<std::size_t>(t), detailed.achieved.data(),
        detailed.exitReason.data(), first_image, count, t,
        batched_images);
}

accel::McAdaptiveOptions
InferenceSession::adaptiveOptions(
    int t, std::int64_t tightest_deadline_micros) const
{
    accel::McAdaptiveOptions aopts;
    aopts.budget = t;
    aopts.chunk = opts_.adaptive.chunk;
    aopts.test.confidence = opts_.adaptive.confidence;
    aopts.test.minSamples = opts_.adaptive.minSamples;
    aopts.enabled = true;
    aopts.deadlineSeconds = opts_.adaptive.deadlineSeconds;
    // A member's remaining latency budget bounds the pass itself:
    // anytime mode returns the best-so-far posterior by the tightest
    // deadline instead of blowing the caller's SLO.
    if (tightest_deadline_micros > 0) {
        const double budget_s =
            static_cast<double>(tightest_deadline_micros) * 1e-6;
        aopts.deadlineSeconds = aopts.deadlineSeconds > 0.0
                                    ? std::min(aopts.deadlineSeconds,
                                               budget_s)
                                    : budget_s;
    }
    return aopts;
}

InferenceResult
InferenceSession::run(const InferenceRequest &request)
{
    validateRequest(request);
    const std::uint64_t id =
        request.id != 0 ? request.id : nextRequestId_.fetch_add(1);
    const int t = effectiveSamples(request);
    const auto start = Clock::now();

    std::lock_guard<std::mutex> lock(execMutex_);
    InferenceResult result;
    if (opts_.adaptive.enabled) {
        const auto detailed = engineFor(t).classifyBatchAdaptive(
            request.data(), request.count, request.dim,
            adaptiveOptions(t, effectiveDeadline(request)),
            opts_.uncertainty);
        result = buildResult(id, detailed, 0, request.count, t,
                             request.count);
    } else {
        const auto detailed = engineFor(t).classifyBatchDetailed(
            request.data(), request.count, request.dim,
            opts_.uncertainty);
        result = buildResult(id, detailed, 0, request.count, t,
                             request.count);
    }
    result.micros = microsSince(start);
    observePassMicros(t, result.micros);

    counters_.requests += 1;
    counters_.images += request.count;
    counters_.passes += 1;
    counters_.maxBatchedImages =
        std::max<std::uint64_t>(counters_.maxBatchedImages,
                                request.count);
    counters_.maxCoalescedRequests =
        std::max<std::uint64_t>(counters_.maxCoalescedRequests, 1);
    return result;
}

ResultHandle
InferenceSession::submit(InferenceRequest request)
{
    validateRequest(request);
    if (request.storage.empty()) {
        // The caller may free borrowed memory as soon as we return.
        request.storage.assign(request.features,
                               request.features +
                                   request.count * request.dim);
        request.features = nullptr;
    }
    if (request.id == 0)
        request.id = nextRequestId_.fetch_add(1);

    ResultHandle handle;
    handle.state_ = std::make_shared<ResultHandle::Pending>();

    Queued item;
    item.request = std::move(request);
    item.pending = handle.state_;
    item.enqueued = Clock::now();

    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        ensureWorker();
        queue_.push_back(std::move(item));
        ++pendingRequests_;
    }
    queueCv_.notify_one();
    return handle;
}

void
InferenceSession::drain()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    drainCv_.wait(lock, [&] { return pendingRequests_ == 0; });
}

std::int64_t
InferenceSession::currentPassMicros() const
{
    const std::int64_t start =
        passStartMicros_.load(std::memory_order_acquire);
    if (start == 0)
        return 0;
    return std::max<std::int64_t>(nowMicros() - start, 1);
}

void
InferenceSession::flushHolds()
{
    holdsFlushed_.store(true, std::memory_order_release);
    // The dispatcher may be parked inside a hold wait; wake it so the
    // held batch dispatches now.
    queueCv_.notify_all();
}

void
InferenceSession::ensureWorker()
{
    // Called with queueMutex_ held. Lazy start keeps sessions that
    // only ever run() synchronously thread-free.
    if (!worker_.joinable())
        worker_ = std::thread([this] { workerLoop(); });
}

void
InferenceSession::workerLoop()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    for (;;) {
        queueCv_.wait(lock,
                      [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }

        // Pop the oldest request, then — when rounds are coalescable
        // (weight-reuse schedule on a batchedRounds backend) — merge
        // every pending request of the same ensemble size into the
        // pass. Per-image outputs do not depend on the batch
        // composition there, so the merge is a pure throughput
        // decision: results are bit-identical either way.
        std::vector<Queued> batch;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        const int t = effectiveSamples(batch.front().request);
        std::size_t batch_images = batch.front().request.count;
        const auto batchFull = [&] {
            return opts_.maxBatchImages != 0 &&
                batch_images >= opts_.maxBatchImages;
        };
        const auto mergePending = [&] {
            for (auto it = queue_.begin();
                 it != queue_.end() && !batchFull();) {
                if (effectiveSamples(it->request) == t) {
                    batch_images += it->request.count;
                    batch.push_back(std::move(*it));
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
        };
        bool held = false;
        if (coalesce_) {
            mergePending();
            // Deadline-aware hold: when every batch member carries a
            // latency budget with slack beyond the expected pass
            // time, wait for more same-T arrivals to fill the round —
            // up to the tightest member's allowance, never past it
            // (serve/coalescer.hh pins the bound). Members without a
            // budget contribute zero allowance, reproducing the
            // greedy PR 4 dispatch exactly.
            while (!stopping_ && !batchFull() &&
                   !holdsFlushed_.load(std::memory_order_acquire)) {
                const auto now = Clock::now();
                const std::int64_t estimate = passEstimateMicros(t);
                std::vector<std::int64_t> deadlines(batch.size());
                std::vector<std::int64_t> waited(batch.size());
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    deadlines[i] =
                        effectiveDeadline(batch[i].request);
                    waited[i] = static_cast<std::int64_t>(
                        std::chrono::duration_cast<
                            std::chrono::microseconds>(
                            now - batch[i].enqueued)
                            .count());
                }
                const std::int64_t allowance =
                    batchHoldAllowanceMicros(deadlines.data(),
                                             waited.data(),
                                             batch.size(), estimate);
                if (allowance <= 0)
                    break;
                held = true;
                // Wake on a queue-size change, not on mere
                // non-emptiness: a different-T request parked at the
                // head of the queue must not spin this loop.
                const std::size_t seen = queue_.size();
                // Deadlines are capped at every admission edge, so
                // the allowance is too; the clamp is belt and braces
                // against a wait_for duration-conversion overflow
                // should a path around validateRequest ever appear.
                queueCv_.wait_for(
                    lock,
                    std::chrono::microseconds(
                        std::min(allowance, kMaxDeadlineMicros)),
                    [&] {
                        return stopping_ ||
                            holdsFlushed_.load(
                                std::memory_order_acquire) ||
                            queue_.size() != seen;
                    });
                mergePending();
            }
        }

        lock.unlock();
        executePass(batch, t, held);
        lock.lock();
        pendingRequests_ -= batch.size();
        if (pendingRequests_ == 0)
            drainCv_.notify_all();
    }
}

void
InferenceSession::executePass(std::vector<Queued> &items, int t,
                              bool held)
{
    const std::size_t dim = program_.inputDim();
    std::size_t total_images = 0;
    for (const auto &item : items)
        total_images += item.request.count;

    // One contiguous feature block for the whole micro-batch (a
    // single-request pass reuses the request's own storage).
    const float *xs = nullptr;
    std::vector<float> merged;
    if (items.size() == 1) {
        xs = items.front().request.data();
    } else {
        merged.reserve(total_images * dim);
        for (const auto &item : items) {
            const float *data = item.request.data();
            merged.insert(merged.end(), data,
                          data + item.request.count * dim);
        }
        xs = merged.data();
    }

    std::lock_guard<std::mutex> lock(execMutex_);
    // Either engine path yields per-image outputs independent of the
    // batch composition, so fulfilling per-request slices of one
    // coalesced pass is exact.
    auto fulfill = [&](const auto &detailed) {
        std::size_t first = 0;
        for (auto &item : items) {
            InferenceResult result =
                buildResult(item.request.id, detailed, first,
                            item.request.count, t, total_images);
            result.micros = microsSince(item.enqueued);
            first += item.request.count;
            item.pending->fulfill(std::move(result));
        }
    };
    const auto pass_start = Clock::now();
    // Publish the pass start so the server's watchdog can measure how
    // long this pass has been running (wedge detection).
    passStartMicros_.store(nowMicros(), std::memory_order_release);
    if (VIBNN_FAULT("serve.pass.stuck")) {
        // Simulated wedge: the pass sits on the clock (stamp already
        // published) long enough for a watchdog to notice.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            fault::fireDelayMillis("serve.pass.stuck", 200)));
    }
    if (opts_.adaptive.enabled) {
        // The tightest remaining member budget bounds the pass
        // (anytime mode) — waiting in the queue ate into it.
        std::int64_t tightest = 0;
        for (const auto &item : items) {
            const std::int64_t deadline =
                effectiveDeadline(item.request);
            if (deadline <= 0)
                continue;
            const std::int64_t waited = static_cast<std::int64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    pass_start - item.enqueued)
                    .count());
            const std::int64_t remaining =
                std::max<std::int64_t>(deadline - waited, 1);
            tightest = tightest == 0
                           ? remaining
                           : std::min(tightest, remaining);
        }
        fulfill(engineFor(t).classifyBatchAdaptive(
            xs, total_images, dim, adaptiveOptions(t, tightest),
            opts_.uncertainty));
    } else {
        fulfill(engineFor(t).classifyBatchDetailed(
            xs, total_images, dim, opts_.uncertainty));
    }
    passStartMicros_.store(0, std::memory_order_release);
    observePassMicros(t, microsSince(pass_start));

    counters_.requests += items.size();
    counters_.images += total_images;
    counters_.passes += 1;
    if (items.size() > 1)
        counters_.coalescedPasses += 1;
    if (held)
        counters_.heldPasses += 1;
    counters_.maxCoalescedRequests = std::max<std::uint64_t>(
        counters_.maxCoalescedRequests, items.size());
    counters_.maxBatchedImages = std::max<std::uint64_t>(
        counters_.maxBatchedImages, total_images);
}

InferenceSession::Counters
InferenceSession::counters() const
{
    std::lock_guard<std::mutex> lock(execMutex_);
    return counters_;
}

accel::CycleStats
InferenceSession::stats() const
{
    std::lock_guard<std::mutex> lock(execMutex_);
    accel::CycleStats merged = retiredStats_;
    for (const auto &[t, engine] : engines_)
        merged += engine->stats();
    return merged;
}

} // namespace vibnn::serve
