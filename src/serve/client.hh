/**
 * @file
 * serve::Client — the library side of the vibnn-serve wire protocol.
 *
 * A thin, dependency-free TCP client for talking to serve::Server:
 * connect, classify (blocking request/response), ping, scrape the
 * metrics JSON, or ask the server to shut down. Every failure mode is
 * an explicit Reply::Status — transport loss, protocol garbage, and
 * the server's own error frames (Overloaded from admission control,
 * BadRequest, ShuttingDown) all surface as values, never exceptions
 * or fatal().
 *
 * A Client is NOT thread-safe: it owns one socket and one in-flight
 * request. Use one Client per thread (the load generator does exactly
 * this), or serialize access externally.
 */

#ifndef VIBNN_SERVE_CLIENT_HH
#define VIBNN_SERVE_CLIENT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/net/protocol.hh"
#include "serve/net/socket.hh"

namespace vibnn::serve
{

class Client
{
  public:
    /** How a classify round-trip ended. */
    enum class Status
    {
        Ok,
        /** Rejected by admission control — back off and retry. */
        Overloaded,
        /** The server rejected the request's content. */
        BadRequest,
        /** The server is stopping. */
        ShuttingDown,
        /** Server-side internal error frame. */
        ServerError,
        /** The connection failed mid-exchange (send/recv). */
        TransportError,
        /** The peer sent bytes that do not decode. */
        ProtocolError,
    };

    static const char *statusName(Status status);

    /** Per-call classify knobs. */
    struct Options
    {
        /** Per-request ensemble size; 0 uses the server's T. */
        std::uint32_t mcSamples = 0;
        /** Latency budget in microseconds (from server receipt);
         *  0 = none. */
        std::int64_t deadlineMicros = 0;
        /** Correlation id echoed back by the server; 0 auto-assigns
         *  a per-client sequence. */
        std::uint64_t id = 0;
    };

    /** A classify outcome: status + either the decoded response or
     *  the server's error message. */
    struct Reply
    {
        Status status = Status::TransportError;
        /** Server error text (or local failure description). */
        std::string message;
        /** Valid when status == Ok. */
        net::WireClassifyResponse response;

        bool ok() const { return status == Status::Ok; }
    };

    Client() = default;

    /** Connect to a server. False + error on failure. */
    bool connect(const std::string &host, std::uint16_t port,
                 std::string &error);

    bool connected() const { return sock_.valid(); }

    /** Close the connection (idempotent). */
    void close();

    /**
     * Classify `count` images of `dim` floats each (row-major) and
     * block for the response. Bit-exactness: the floats travel
     * verbatim, so the returned probabilities are bit-identical to an
     * in-process InferenceSession::run() with the same program, seed
     * and T.
     */
    Reply classify(const float *xs, std::size_t count, std::size_t dim,
                   const Options &options);

    /** Classify with default Options (server T, no deadline). */
    Reply
    classify(const float *xs, std::size_t count, std::size_t dim)
    {
        return classify(xs, count, dim, Options());
    }

    /** Liveness round-trip. */
    bool ping(std::string &error);

    /** Fetch the server's metrics JSON (the metrics endpoint). */
    bool metrics(std::string &json, std::string &error);

    /** Ask the server to shut down (waits for the ShutdownAck).
     *  False + the server's reason when its RemoteShutdown policy
     *  refuses the request. */
    bool requestShutdown(std::string &error);

  private:
    net::Socket sock_;
    std::uint64_t nextId_ = 1;
};

} // namespace vibnn::serve

#endif // VIBNN_SERVE_CLIENT_HH
