/**
 * @file
 * serve::Client — the library side of the vibnn-serve wire protocol.
 *
 * A thin, dependency-free TCP client for talking to serve::Server:
 * connect, classify (blocking request/response), ping, scrape the
 * metrics JSON, or ask the server to shut down. Every failure mode is
 * an explicit Reply::Status — transport loss, protocol garbage, a
 * blown receive deadline, and the server's own error frames
 * (Overloaded from admission control, BadRequest, ShuttingDown) all
 * surface as values, never exceptions or fatal().
 *
 * Resilience: setReceiveTimeout() bounds every response wait with a
 * poll-based deadline, so a peer that accepts and then wedges surfaces
 * as Status::Timeout instead of an eternal blocking read. classify()
 * with a RetryPolicy reconnects and re-sends on Overloaded / Timeout /
 * transport loss under bounded exponential backoff with deterministic
 * jitter. A retried classify is SAFE: the request id is pinned across
 * attempts and the response is a pure function of (program, seed, T,
 * images) — the replay returns the bit-identical answer, so at-least-
 * once delivery composes with the stack's determinism contract.
 *
 * A Client is NOT thread-safe: it owns one socket and one in-flight
 * request. Use one Client per thread (the load generator does exactly
 * this), or serialize access externally.
 */

#ifndef VIBNN_SERVE_CLIENT_HH
#define VIBNN_SERVE_CLIENT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/net/protocol.hh"
#include "serve/net/socket.hh"

namespace vibnn::serve
{

class Client
{
  public:
    /** How a classify round-trip ended. */
    enum class Status
    {
        Ok,
        /** Rejected by admission control — back off and retry. */
        Overloaded,
        /** The server rejected the request's content. */
        BadRequest,
        /** The server is stopping. */
        ShuttingDown,
        /** Server-side internal error frame. */
        ServerError,
        /** The connection failed mid-exchange (send/recv). */
        TransportError,
        /** The peer sent bytes that do not decode. */
        ProtocolError,
        /** The receive deadline expired (see setReceiveTimeout) —
         *  the peer is wedged or unreachable, and the connection is
         *  abandoned (the stream position is unknown). */
        Timeout,
    };

    static const char *statusName(Status status);

    /** Per-call classify knobs. */
    struct Options
    {
        /** Per-request ensemble size; 0 uses the server's T. */
        std::uint32_t mcSamples = 0;
        /** Latency budget in microseconds (from server receipt);
         *  0 = none. */
        std::int64_t deadlineMicros = 0;
        /** Correlation id echoed back by the server; 0 auto-assigns
         *  a per-client sequence. */
        std::uint64_t id = 0;
    };

    /**
     * Retry policy for classify(): which transient failures to retry
     * (Overloaded, Timeout, TransportError, ProtocolError — never
     * BadRequest or ShuttingDown), how many attempts, and the bounded
     * exponential backoff between them. Jitter is deterministic from
     * `jitterSeed` so chaos tests replay exactly.
     */
    struct RetryPolicy
    {
        /** Total attempts including the first; 1 = no retry. */
        int maxAttempts = 1;
        /** Backoff before the first retry, milliseconds. */
        std::int64_t backoffMillis = 10;
        /** Cap on any single backoff, milliseconds. */
        std::int64_t maxBackoffMillis = 1000;
        /** Backoff growth per retry. */
        double multiplier = 2.0;
        /** Seed of the deterministic jitter stream (each backoff is
         *  scaled by a factor in [0.5, 1.0]). */
        std::uint64_t jitterSeed = 1;

        /** Convenience: `attempts` tries with `backoff_ms` initial
         *  backoff. */
        static RetryPolicy attempts(int attempts,
                                    std::int64_t backoff_ms = 10);
    };

    /** A classify outcome: status + either the decoded response or
     *  the server's error message. */
    struct Reply
    {
        Status status = Status::TransportError;
        /** Server error text (or local failure description). */
        std::string message;
        /** Valid when status == Ok. */
        net::WireClassifyResponse response;
        /** Delivery attempts consumed (1 = first try succeeded). */
        int attempts = 1;

        bool ok() const { return status == Status::Ok; }
        /** Served under brownout at a reduced T (see
         *  net::kResponseFlagDegraded). */
        bool degraded() const
        {
            return status == Status::Ok && response.degraded();
        }
    };

    Client() = default;

    /** Connect to a server. False + error on failure. The endpoint is
     *  remembered for retry-driven reconnects. */
    bool connect(const std::string &host, std::uint16_t port,
                 std::string &error);

    bool connected() const { return sock_.valid(); }

    /** Close the connection (idempotent). */
    void close();

    /**
     * Bound every response wait: a read that exceeds the timeout
     * returns Status::Timeout (classify) or fails with a deadline
     * message (ping/metrics/shutdown) instead of blocking forever.
     * 0 (the default) blocks indefinitely — the pre-resilience
     * behavior.
     */
    void setReceiveTimeout(std::int64_t millis)
    {
        receiveTimeoutMillis_ = millis;
    }

    std::int64_t receiveTimeoutMillis() const
    {
        return receiveTimeoutMillis_;
    }

    /**
     * Classify `count` images of `dim` floats each (row-major) and
     * block for the response. Bit-exactness: the floats travel
     * verbatim, so the returned probabilities are bit-identical to an
     * in-process InferenceSession::run() with the same program, seed
     * and T.
     */
    Reply classify(const float *xs, std::size_t count, std::size_t dim,
                   const Options &options);

    /** Classify with default Options (server T, no deadline). */
    Reply
    classify(const float *xs, std::size_t count, std::size_t dim)
    {
        return classify(xs, count, dim, Options());
    }

    /**
     * Classify with retry: on a retryable failure (Overloaded,
     * Timeout, TransportError, ProtocolError) back off, reconnect to
     * the remembered endpoint when the transport was lost, and
     * re-send the SAME request (pinned id, attempt counter stamped
     * into the frame) up to policy.maxAttempts times. Returns the
     * last attempt's Reply with `attempts` filled in.
     */
    Reply classify(const float *xs, std::size_t count, std::size_t dim,
                   const Options &options, const RetryPolicy &policy);

    /** Liveness round-trip. */
    bool ping(std::string &error);

    /** Fetch the server's metrics JSON (the metrics endpoint). */
    bool metrics(std::string &json, std::string &error);

    /** Ask the server to shut down (waits for the ShutdownAck).
     *  False + the server's reason when its RemoteShutdown policy
     *  refuses the request. */
    bool requestShutdown(std::string &error);

  private:
    /** One send + receive of a classify exchange. */
    Reply classifyOnce(const net::WireClassifyRequest &wire);

    /** Timed frame read honoring receiveTimeoutMillis_; fills
     *  `timed_out` so callers can distinguish deadline from loss. */
    bool readReply(net::FrameType &type,
                   std::vector<std::uint8_t> &payload,
                   std::string &error, bool &timed_out);

    net::Socket sock_;
    std::string host_;
    std::uint16_t port_ = 0;
    std::int64_t receiveTimeoutMillis_ = 0;
    std::uint64_t nextId_ = 1;
};

} // namespace vibnn::serve

#endif // VIBNN_SERVE_CLIENT_HH
