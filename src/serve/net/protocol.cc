#include "serve/net/protocol.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

namespace vibnn::serve::net
{

namespace
{

// Little-endian byte-by-byte codecs: portable, alignment-safe, and
// the float paths move raw bit patterns so values survive the trip
// bit-exactly.

void
putU8(std::vector<std::uint8_t> &buf, std::uint8_t v)
{
    buf.push_back(v);
}

void
putU16(std::vector<std::uint8_t> &buf, std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putF32(std::vector<std::uint8_t> &buf, float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    putU32(buf, bits);
}

void
putF64(std::vector<std::uint8_t> &buf, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(buf, bits);
}

/** Cursor over a received payload; every read checks bounds and trips
 *  a sticky failure flag instead of walking past the end. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {
    }

    bool ok() const { return ok_; }
    std::size_t remaining() const { return len_ - pos_; }

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return data_[pos_ - 1];
    }

    std::uint16_t
    u16()
    {
        if (!take(2))
            return 0;
        const std::uint8_t *p = data_ + pos_ - 2;
        return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        const std::uint8_t *p = data_ + pos_ - 4;
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | p[i];
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        const std::uint8_t *p = data_ + pos_ - 8;
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | p[i];
        return v;
    }

    float
    f32()
    {
        const std::uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    /** Bulk-read n floats into out (resized). */
    bool
    f32Block(std::vector<float> &out, std::size_t n)
    {
        if (!take(n * 4))
            return false;
        out.resize(n);
        const std::uint8_t *p = data_ + pos_ - n * 4;
        for (std::size_t i = 0; i < n; ++i) {
            std::uint32_t bits = 0;
            for (int b = 3; b >= 0; --b)
                bits = (bits << 8) | p[i * 4 + b];
            std::memcpy(&out[i], &bits, sizeof(float));
        }
        return true;
    }

    bool
    stringField(std::string &out, std::size_t max_len)
    {
        const std::uint32_t n = u32();
        if (!ok_ || n > max_len || !take(n))
            return fail();
        out.assign(reinterpret_cast<const char *>(data_ + pos_ - n),
                   n);
        return true;
    }

    /** After the last field: any trailing bytes mean a malformed (or
     *  version-skewed) frame, and must be rejected, not ignored. */
    bool
    expectEnd()
    {
        if (pos_ != len_)
            return fail();
        return ok_;
    }

  private:
    bool
    take(std::size_t n)
    {
        if (!ok_ || len_ - pos_ < n)
            return fail();
        pos_ += n;
        return true;
    }

    bool
    fail()
    {
        ok_ = false;
        return false;
    }

    const std::uint8_t *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

bool
decodeFailed(std::string &error, const char *what)
{
    error = std::string("malformed ") + what + " payload";
    return false;
}

void
putBytes(std::vector<std::uint8_t> &buf, const std::string &s)
{
    const auto *data =
        reinterpret_cast<const std::uint8_t *>(s.data());
    buf.insert(buf.end(), data, data + s.size());
}

} // namespace

// ------------------------------------------------------------- encoding

std::vector<std::uint8_t>
encodeFrame(FrameType type, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    putU32(frame, kMagic);
    putU8(frame, kVersion);
    putU8(frame, static_cast<std::uint8_t>(type));
    putU16(frame, 0); // reserved
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

std::vector<std::uint8_t>
encodeClassifyRequest(const WireClassifyRequest &request)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(28 + request.features.size() * 4);
    putU64(payload, request.id);
    putU32(payload, request.mcSamples);
    putU64(payload, static_cast<std::uint64_t>(request.deadlineMicros));
    putU16(payload, request.retryAttempt);
    putU32(payload, request.count);
    putU32(payload, request.dim);
    for (float v : request.features)
        putF32(payload, v);
    return encodeFrame(FrameType::ClassifyRequest, payload);
}

std::vector<std::uint8_t>
encodeClassifyResponse(const WireClassifyResponse &response)
{
    std::vector<std::uint8_t> payload;
    const std::size_t per_image = 4 + 4 + 1 + 4 + 8 + 8 +
        static_cast<std::size_t>(response.outDim) * 4;
    payload.reserve(36 + response.predictions.size() * per_image);
    putU64(payload, response.id);
    putU32(payload, response.mcSamples);
    putU32(payload, response.outDim);
    putF64(payload, response.meanRounds);
    putF64(payload, response.serverMicros);
    putU8(payload, response.flags);
    putU32(payload,
           static_cast<std::uint32_t>(response.predictions.size()));
    for (const WirePrediction &p : response.predictions) {
        putU32(payload, p.predicted);
        putU32(payload, p.achievedSamples);
        putU8(payload, p.exitReason);
        putF32(payload, p.confidence);
        putF64(payload, p.entropy);
        putF64(payload, p.mutualInformation);
        for (float v : p.probs)
            putF32(payload, v);
    }
    return encodeFrame(FrameType::ClassifyResponse, payload);
}

std::vector<std::uint8_t>
encodeError(const WireError &error)
{
    std::vector<std::uint8_t> payload;
    putU64(payload, error.id);
    putU32(payload, static_cast<std::uint32_t>(error.code));
    putU32(payload,
           static_cast<std::uint32_t>(error.message.size()));
    putBytes(payload, error.message);
    return encodeFrame(FrameType::Error, payload);
}

std::vector<std::uint8_t>
encodeMetricsResponse(const std::string &json)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(4 + json.size());
    putU32(payload, static_cast<std::uint32_t>(json.size()));
    putBytes(payload, json);
    return encodeFrame(FrameType::MetricsResponse, payload);
}

// ------------------------------------------------------------- decoding

bool
decodeFrameHeader(const std::uint8_t *buf, FrameType &type,
                  std::uint32_t &payload_len, std::string &error)
{
    Reader reader(buf, kFrameHeaderBytes);
    const std::uint32_t magic = reader.u32();
    const std::uint8_t version = reader.u8();
    const std::uint8_t raw_type = reader.u8();
    (void)reader.u16(); // reserved
    const std::uint32_t len = reader.u32();
    if (!reader.ok()) {
        error = "short frame header";
        return false;
    }
    if (magic != kMagic) {
        error = "bad frame magic (not a vibnn-serve peer?)";
        return false;
    }
    if (version != kVersion) {
        error = "unsupported protocol version " +
            std::to_string(version);
        return false;
    }
    if (raw_type < static_cast<std::uint8_t>(
                       FrameType::ClassifyRequest) ||
        raw_type > static_cast<std::uint8_t>(FrameType::ShutdownAck)) {
        error = "unknown frame type " + std::to_string(raw_type);
        return false;
    }
    if (len > kMaxPayloadBytes) {
        error = "frame payload " + std::to_string(len) +
            " bytes exceeds the " +
            std::to_string(kMaxPayloadBytes) + "-byte cap";
        return false;
    }
    type = static_cast<FrameType>(raw_type);
    payload_len = len;
    error.clear();
    return true;
}

bool
decodeClassifyRequest(const std::uint8_t *payload, std::size_t len,
                      WireClassifyRequest &out, std::string &error)
{
    Reader reader(payload, len);
    out.id = reader.u64();
    out.mcSamples = reader.u32();
    out.deadlineMicros = static_cast<std::int64_t>(reader.u64());
    out.retryAttempt = reader.u16();
    out.count = reader.u32();
    out.dim = reader.u32();
    if (!reader.ok())
        return decodeFailed(error, "ClassifyRequest");
    if (out.count == 0 || out.dim == 0) {
        error = "ClassifyRequest with zero images or zero dim";
        return false;
    }
    if (out.count > kMaxImagesPerFrame || out.dim > kMaxImageDim) {
        error = "ClassifyRequest geometry exceeds protocol caps "
                "(count " +
            std::to_string(out.count) + ", dim " +
            std::to_string(out.dim) + ")";
        return false;
    }
    if (out.deadlineMicros < 0 ||
        out.deadlineMicros > kMaxDeadlineMicros) {
        // An unbounded deadline is an unbounded dispatcher-hold
        // license (and overflows wait_for's duration math) — a
        // remotely triggerable DoS, so the cap is a wire-level reject.
        error = "ClassifyRequest deadline must be in [0, " +
            std::to_string(kMaxDeadlineMicros) + "] us";
        return false;
    }
    // count * dim fits uint64 (caps are 2^16 and 2^20) but not
    // necessarily size_t: on a 32-bit build a wrapped product would
    // pass expectEnd with fewer floats than count * dim and downstream
    // copies would read out of bounds.
    const std::uint64_t n64 = static_cast<std::uint64_t>(out.count) *
        static_cast<std::uint64_t>(out.dim);
    if (n64 > std::numeric_limits<std::size_t>::max() /
                  sizeof(float)) {
        error = "ClassifyRequest feature block is unaddressable on "
                "this platform";
        return false;
    }
    const std::size_t n = static_cast<std::size_t>(n64);
    if (!reader.f32Block(out.features, n) || !reader.expectEnd())
        return decodeFailed(error, "ClassifyRequest");
    error.clear();
    return true;
}

bool
decodeClassifyResponse(const std::uint8_t *payload, std::size_t len,
                       WireClassifyResponse &out, std::string &error)
{
    Reader reader(payload, len);
    out.id = reader.u64();
    out.mcSamples = reader.u32();
    out.outDim = reader.u32();
    out.meanRounds = reader.f64();
    out.serverMicros = reader.f64();
    out.flags = reader.u8();
    const std::uint32_t count = reader.u32();
    if (!reader.ok())
        return decodeFailed(error, "ClassifyResponse");
    if (count > kMaxImagesPerFrame || out.outDim > kMaxImageDim) {
        error = "ClassifyResponse geometry exceeds protocol caps";
        return false;
    }
    if ((out.flags & ~kResponseFlagDegraded) != 0) {
        // This build speaks protocol version 1 exactly; unknown flag
        // bits mean a version-skewed (or corrupted) peer.
        error = "ClassifyResponse carries unknown flag bits";
        return false;
    }
    out.predictions.resize(count);
    for (WirePrediction &p : out.predictions) {
        p.predicted = reader.u32();
        p.achievedSamples = reader.u32();
        p.exitReason = reader.u8();
        p.confidence = reader.f32();
        p.entropy = reader.f64();
        p.mutualInformation = reader.f64();
        if (!reader.f32Block(p.probs, out.outDim))
            return decodeFailed(error, "ClassifyResponse");
        if (p.exitReason > 3) {
            error = "ClassifyResponse carries an unknown exit reason";
            return false;
        }
    }
    if (!reader.expectEnd())
        return decodeFailed(error, "ClassifyResponse");
    error.clear();
    return true;
}

bool
decodeError(const std::uint8_t *payload, std::size_t len,
            WireError &out, std::string &error)
{
    Reader reader(payload, len);
    out.id = reader.u64();
    const std::uint32_t code = reader.u32();
    if (!reader.stringField(out.message, kMaxPayloadBytes) ||
        !reader.expectEnd())
        return decodeFailed(error, "Error");
    if (code < static_cast<std::uint32_t>(ErrorCode::Overloaded) ||
        code > static_cast<std::uint32_t>(ErrorCode::ShuttingDown)) {
        error = "Error frame carries an unknown code " +
            std::to_string(code);
        return false;
    }
    out.code = static_cast<ErrorCode>(code);
    error.clear();
    return true;
}

bool
decodeMetricsResponse(const std::uint8_t *payload, std::size_t len,
                      std::string &json, std::string &error)
{
    Reader reader(payload, len);
    if (!reader.stringField(json, kMaxPayloadBytes) ||
        !reader.expectEnd())
        return decodeFailed(error, "MetricsResponse");
    error.clear();
    return true;
}

// ------------------------------------------------------ socket framing

bool
writeFrame(const Socket &sock, FrameType type,
           const std::vector<std::uint8_t> &payload)
{
    const auto frame = encodeFrame(type, payload);
    return writeAll(sock, frame.data(), frame.size());
}

bool
readFrame(const Socket &sock, FrameType &type,
          std::vector<std::uint8_t> &payload, std::string &error)
{
    std::uint8_t header[kFrameHeaderBytes];
    if (!readExact(sock, header, sizeof header)) {
        error = "connection closed";
        return false;
    }
    std::uint32_t payload_len = 0;
    if (!decodeFrameHeader(header, type, payload_len, error))
        return false;
    payload.resize(payload_len);
    if (payload_len > 0 &&
        !readExact(sock, payload.data(), payload_len)) {
        error = "connection closed mid-frame";
        return false;
    }
    error.clear();
    return true;
}

FrameReadStatus
readFrameTimed(const Socket &sock, FrameType &type,
               std::vector<std::uint8_t> &payload, std::string &error,
               std::int64_t timeout_millis)
{
    if (timeout_millis <= 0)
        return readFrame(sock, type, payload, error)
                   ? FrameReadStatus::Ok
                   : FrameReadStatus::Failed;
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_millis);
    const auto remaining = [&]() -> std::int64_t {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   deadline - Clock::now())
            .count();
    };
    std::uint8_t header[kFrameHeaderBytes];
    switch (readExactTimed(sock, header, sizeof header,
                           std::max<std::int64_t>(remaining(), 1))) {
    case IoStatus::Ok:
        break;
    case IoStatus::Timeout:
        error = "receive deadline expired";
        return FrameReadStatus::Timeout;
    case IoStatus::Closed:
        error = "connection closed";
        return FrameReadStatus::Failed;
    }
    std::uint32_t payload_len = 0;
    if (!decodeFrameHeader(header, type, payload_len, error))
        return FrameReadStatus::Failed;
    payload.resize(payload_len);
    if (payload_len > 0) {
        switch (readExactTimed(
            sock, payload.data(), payload_len,
            std::max<std::int64_t>(remaining(), 1))) {
        case IoStatus::Ok:
            break;
        case IoStatus::Timeout:
            error = "receive deadline expired mid-frame";
            return FrameReadStatus::Timeout;
        case IoStatus::Closed:
            error = "connection closed mid-frame";
            return FrameReadStatus::Failed;
        }
    }
    error.clear();
    return FrameReadStatus::Ok;
}

} // namespace vibnn::serve::net
