/**
 * @file
 * Minimal POSIX TCP plumbing for the serving subsystem.
 *
 * The network front end (serve::Server / serve::Client) deliberately
 * speaks plain blocking TCP with no external dependencies: an RAII fd
 * wrapper, listen/accept/connect helpers that report failures as
 * error strings (never fatal() — a refused connection is a runtime
 * condition, not a configuration bug), and exact-length read/write
 * loops that absorb EINTR and short transfers.
 *
 * Everything here is transport only; framing and message encoding live
 * in net/protocol.hh.
 */

#ifndef VIBNN_SERVE_NET_SOCKET_HH
#define VIBNN_SERVE_NET_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace vibnn::serve::net
{

/** Move-only RAII wrapper over a socket file descriptor. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;
    Socket(Socket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Close the descriptor (idempotent). */
    void close();

    /** shutdown(SHUT_RDWR): unblocks a peer thread stuck in read/write
     *  on this socket without racing the fd lifetime (close() from
     *  another thread would). */
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/**
 * Bind + listen on host:port. Port 0 picks an ephemeral port; the
 * actual bound port is written to `bound_port` when non-null.
 * @return A valid listening socket, or an invalid one with `error`
 *         explaining the failure.
 */
Socket listenTcp(const std::string &host, std::uint16_t port,
                 std::string &error,
                 std::uint16_t *bound_port = nullptr);

/** Accept one connection (blocking). Invalid + error on failure —
 *  including the listener being closed by another thread, which is the
 *  normal shutdown path. */
Socket acceptTcp(const Socket &listener, std::string &error);

/** Connect to host:port (blocking). Invalid + error on failure. */
Socket connectTcp(const std::string &host, std::uint16_t port,
                  std::string &error);

/** Read exactly n bytes. False on EOF or error (short data included —
 *  a truncated frame must surface as a failure, not a partial read). */
bool readExact(const Socket &sock, void *buf, std::size_t n);

/** How a deadline-bounded transfer ended. */
enum class IoStatus
{
    Ok,
    /** EOF or a hard error — the connection is gone. */
    Closed,
    /** The deadline expired before the transfer completed. */
    Timeout,
};

/**
 * Read exactly n bytes or give up after `timeout_millis`. The deadline
 * is absolute across the whole transfer (poll() before every recv), so
 * a peer trickling one byte per poll interval cannot stretch it — the
 * wedged-server story of serve::Client hangs on this primitive.
 * timeout_millis <= 0 blocks forever (readExact semantics).
 */
IoStatus readExactTimed(const Socket &sock, void *buf, std::size_t n,
                        std::int64_t timeout_millis);

/** Write exactly n bytes (MSG_NOSIGNAL — a vanished peer surfaces as
 *  a false return, not a SIGPIPE). */
bool writeAll(const Socket &sock, const void *buf, std::size_t n);

} // namespace vibnn::serve::net

#endif // VIBNN_SERVE_NET_SOCKET_HH
