#include "serve/net/socket.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/fault.hh"

namespace vibnn::serve::net
{

namespace
{

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

bool
parseAddress(const std::string &host, std::uint16_t port,
             sockaddr_in &addr, std::string &error)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = "invalid IPv4 address '" + host + "'";
        return false;
    }
    return true;
}

} // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Socket
listenTcp(const std::string &host, std::uint16_t port,
          std::string &error, std::uint16_t *bound_port)
{
    sockaddr_in addr;
    if (!parseAddress(host, port, addr, error))
        return Socket();

    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) {
        error = errnoString("socket");
        return Socket();
    }
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        error = errnoString(("bind " + host + ":" +
                             std::to_string(port)).c_str());
        return Socket();
    }
    if (::listen(sock.fd(), 128) != 0) {
        error = errnoString("listen");
        return Socket();
    }
    if (bound_port) {
        sockaddr_in actual;
        socklen_t len = sizeof actual;
        if (::getsockname(sock.fd(),
                          reinterpret_cast<sockaddr *>(&actual),
                          &len) != 0) {
            error = errnoString("getsockname");
            return Socket();
        }
        *bound_port = ntohs(actual.sin_port);
    }
    error.clear();
    return sock;
}

Socket
acceptTcp(const Socket &listener, std::string &error)
{
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof one);
            error.clear();
            return Socket(fd);
        }
        if (errno == EINTR)
            continue;
        error = errnoString("accept");
        return Socket();
    }
}

Socket
connectTcp(const std::string &host, std::uint16_t port,
           std::string &error)
{
    sockaddr_in addr;
    if (!parseAddress(host, port, addr, error))
        return Socket();

    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) {
        error = errnoString("socket");
        return Socket();
    }
    if (VIBNN_FAULT("net.connect.fail")) {
        error = "injected fault: net.connect.fail";
        return Socket();
    }
    for (;;) {
        if (::connect(sock.fd(),
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0)
            break;
        if (errno == EINTR)
            continue;
        error = errnoString(("connect " + host + ":" +
                             std::to_string(port)).c_str());
        return Socket();
    }
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof one);
    error.clear();
    return sock;
}

bool
readExact(const Socket &sock, void *buf, std::size_t n)
{
    // Torn read: consume part of the transfer, then fail as if the
    // peer reset mid-stream — the caller must treat the connection as
    // beyond recovery, exactly like a real truncation.
    if (n > 0 && VIBNN_FAULT("net.read.torn")) {
        auto *out = static_cast<std::uint8_t *>(buf);
        std::size_t torn = 0;
        const std::size_t half = n / 2;
        while (torn < half) {
            const ssize_t got =
                ::recv(sock.fd(), out + torn, half - torn, 0);
            if (got > 0) {
                torn += static_cast<std::size_t>(got);
                continue;
            }
            if (got < 0 && errno == EINTR)
                continue;
            break;
        }
        return false;
    }
    auto *out = static_cast<std::uint8_t *>(buf);
    std::size_t done = 0;
    while (done < n) {
        const ssize_t got =
            ::recv(sock.fd(), out + done, n - done, 0);
        if (got > 0) {
            done += static_cast<std::size_t>(got);
            continue;
        }
        if (got < 0 && errno == EINTR)
            continue;
        return false; // EOF or hard error
    }
    return true;
}

IoStatus
readExactTimed(const Socket &sock, void *buf, std::size_t n,
               std::int64_t timeout_millis)
{
    if (timeout_millis <= 0)
        return readExact(sock, buf, n) ? IoStatus::Ok
                                       : IoStatus::Closed;
    if (n > 0 && VIBNN_FAULT("net.read.torn"))
        return IoStatus::Closed;
    using Clock = std::chrono::steady_clock;
    // One absolute deadline across the whole transfer: a peer
    // trickling bytes cannot stretch it.
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_millis);
    auto *out = static_cast<std::uint8_t *>(buf);
    std::size_t done = 0;
    while (done < n) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        if (remaining <= 0)
            return IoStatus::Timeout;
        pollfd pfd;
        pfd.fd = sock.fd();
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(remaining));
        if (ready == 0)
            return IoStatus::Timeout;
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Closed;
        }
        const ssize_t got =
            ::recv(sock.fd(), out + done, n - done, 0);
        if (got > 0) {
            done += static_cast<std::size_t>(got);
            continue;
        }
        if (got < 0 && (errno == EINTR || errno == EAGAIN ||
                        errno == EWOULDBLOCK))
            continue;
        return IoStatus::Closed; // EOF or hard error
    }
    return IoStatus::Ok;
}

bool
writeAll(const Socket &sock, const void *buf, std::size_t n)
{
    if (VIBNN_FAULT("net.write.delay"))
        std::this_thread::sleep_for(std::chrono::milliseconds(
            fault::fireDelayMillis("net.write.delay", 50)));
    std::size_t limit = n;
    bool torn = false;
    if (n > 0 && VIBNN_FAULT("net.write.torn")) {
        // Torn write: push half the bytes, then fail — the peer sees
        // a frame truncated mid-payload.
        limit = n / 2;
        torn = true;
    }
    const auto *in = static_cast<const std::uint8_t *>(buf);
    std::size_t done = 0;
    while (done < limit) {
        const ssize_t sent =
            ::send(sock.fd(), in + done, limit - done, MSG_NOSIGNAL);
        if (sent > 0) {
            done += static_cast<std::size_t>(sent);
            continue;
        }
        if (sent < 0 && errno == EINTR)
            continue;
        return false;
    }
    return !torn;
}

} // namespace vibnn::serve::net
