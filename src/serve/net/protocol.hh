/**
 * @file
 * The vibnn-serve wire protocol: length-prefixed binary frames.
 *
 * Every message on the wire is one frame:
 *
 *     u32 magic ("VBN1")  u8 version  u8 type  u16 reserved
 *     u32 payload length  payload bytes...
 *
 * All integers and floats are little-endian; floats travel verbatim
 * (bit pattern preserved), which is what makes the socket path
 * bit-identical to in-process InferenceSession::run().
 *
 * Frame types:
 *
 *   ClassifyRequest   id, T override, deadline budget, images
 *   ClassifyResponse  per-image decorated predictions
 *   MetricsRequest    -> MetricsResponse carrying the server's
 *                     metrics JSON (the "endpoint")
 *   Error             explicit failure (overload rejection included)
 *   Ping / Pong       liveness
 *   Shutdown          ask the server to stop accepting and exit
 *   ShutdownAck       the server's acknowledgement of a Shutdown
 *
 * Decoding never fatal()s and never throws on malformed input: bytes
 * off a socket are untrusted, so every decoder returns false with an
 * error string on truncated, oversized, over-long, or otherwise
 * garbage frames, and the caller (server or client) degrades to an
 * Error frame / closed connection. Payload sizes are capped
 * (kMaxPayloadBytes) before any allocation so a hostile length prefix
 * cannot drive memory growth.
 */

#ifndef VIBNN_SERVE_NET_PROTOCOL_HH
#define VIBNN_SERVE_NET_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/coalescer.hh"
#include "serve/net/socket.hh"

namespace vibnn::serve::net
{

/** "VBN1" little-endian. */
constexpr std::uint32_t kMagic = 0x314e4256u;
/** Protocol version this build speaks. */
constexpr std::uint8_t kVersion = 1;
/** Hard cap on a frame payload — rejects hostile length prefixes
 *  before any allocation. 64 MiB covers ~4k MNIST-sized images. */
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;
/** Cap on images per classify frame. Note count * dim can still
 *  reach 2^36 under these caps, so the decoder does that arithmetic
 *  in uint64 and rejects products a size_t cannot address — the caps
 *  alone do NOT keep a 32-bit build out of overflow territory. */
constexpr std::uint32_t kMaxImagesPerFrame = 65536;
/** Cap on floats per image. */
constexpr std::uint32_t kMaxImageDim = 1u << 20;
/** Cap on a request's deadline budget — serve::kMaxDeadlineMicros
 *  (an unbounded client deadline would license an unbounded
 *  dispatcher hold; see serve/coalescer.hh). Decoders reject frames
 *  above it, and the server re-checks at admission. */
constexpr std::int64_t kMaxDeadlineMicros = serve::kMaxDeadlineMicros;

constexpr std::size_t kFrameHeaderBytes = 12;

enum class FrameType : std::uint8_t
{
    ClassifyRequest = 1,
    ClassifyResponse = 2,
    MetricsRequest = 3,
    MetricsResponse = 4,
    Error = 5,
    Ping = 6,
    Pong = 7,
    Shutdown = 8,
    ShutdownAck = 9,
};

/** Why a request was refused. */
enum class ErrorCode : std::uint32_t
{
    /** Admission control: the target shard's queue is full. The client
     *  should back off — this is the explicit alternative to unbounded
     *  queueing. */
    Overloaded = 1,
    /** The request failed validation (dim mismatch, zero images,
     *  absurd T, malformed frame). */
    BadRequest = 2,
    /** Server-side failure unrelated to this request's content. */
    Internal = 3,
    /** The server is stopping. */
    ShuttingDown = 4,
};

/** Classify request as it travels the wire. */
struct WireClassifyRequest
{
    /** Client-chosen correlation id (echoed back verbatim). */
    std::uint64_t id = 0;
    /** Per-request ensemble size; 0 uses the server's configured T. */
    std::uint32_t mcSamples = 0;
    /** Latency budget in microseconds from server receipt; 0 = none,
     *  capped at kMaxDeadlineMicros (decode rejects values outside
     *  [0, cap]). Bounds how long the deadline-aware coalescer may
     *  hold the request to fill a round. */
    std::int64_t deadlineMicros = 0;
    /** Which delivery attempt this is (0 = first). A retrying client
     *  stamps its attempt number so the server can count observed
     *  retries — same id, same payload, so the replay is safe: the
     *  response is a pure function of (program, seed, T, images). */
    std::uint16_t retryAttempt = 0;
    std::uint32_t count = 0;
    std::uint32_t dim = 0;
    /** Row-major count x dim features. */
    std::vector<float> features;
};

/** One image's prediction as it travels the wire. */
struct WirePrediction
{
    std::uint32_t predicted = 0;
    std::uint32_t achievedSamples = 0;
    /** accel::McExitReason as u8 (0 budget, 1 converged, 2 decided,
     *  3 deadline). */
    std::uint8_t exitReason = 0;
    float confidence = 0.0f;
    double entropy = 0.0;
    double mutualInformation = 0.0;
    /** Ensemble-mean probabilities (outDim), bit-exact. */
    std::vector<float> probs;
};

/** ClassifyResponse flag bits. */
enum : std::uint8_t
{
    /** The serving shard was in brownout: the request ran at a
     *  reduced ensemble size (the response's mcSamples reports the
     *  T actually achieved). */
    kResponseFlagDegraded = 1u << 0,
};

/** Classify response as it travels the wire. */
struct WireClassifyResponse
{
    std::uint64_t id = 0;
    std::uint32_t mcSamples = 0;
    std::uint32_t outDim = 0;
    double meanRounds = 0.0;
    /** Server-side latency (enqueue to completion) in microseconds. */
    double serverMicros = 0.0;
    /** kResponseFlag* bits (degraded service marker). */
    std::uint8_t flags = 0;
    std::vector<WirePrediction> predictions;

    bool degraded() const
    {
        return (flags & kResponseFlagDegraded) != 0;
    }
};

/** Error frame body. */
struct WireError
{
    std::uint64_t id = 0;
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

// ------------------------------------------------------------- encoding

/** Wrap a payload in a framed message (header + payload). */
std::vector<std::uint8_t> encodeFrame(
    FrameType type, const std::vector<std::uint8_t> &payload = {});

std::vector<std::uint8_t> encodeClassifyRequest(
    const WireClassifyRequest &request);
std::vector<std::uint8_t> encodeClassifyResponse(
    const WireClassifyResponse &response);
std::vector<std::uint8_t> encodeError(const WireError &error);
std::vector<std::uint8_t> encodeMetricsResponse(
    const std::string &json);

// ------------------------------------------------------------- decoding

/**
 * Validate a frame header. False (with `error`) on bad magic, unknown
 * version or type, or a payload length above kMaxPayloadBytes.
 * @param buf Exactly kFrameHeaderBytes header bytes.
 */
bool decodeFrameHeader(const std::uint8_t *buf, FrameType &type,
                       std::uint32_t &payload_len, std::string &error);

/** Decode a ClassifyRequest payload. False + error on truncation,
 *  trailing garbage, zero/overflowing geometry, or caps exceeded. */
bool decodeClassifyRequest(const std::uint8_t *payload,
                           std::size_t len, WireClassifyRequest &out,
                           std::string &error);

bool decodeClassifyResponse(const std::uint8_t *payload,
                            std::size_t len, WireClassifyResponse &out,
                            std::string &error);

bool decodeError(const std::uint8_t *payload, std::size_t len,
                 WireError &out, std::string &error);

bool decodeMetricsResponse(const std::uint8_t *payload,
                           std::size_t len, std::string &json,
                           std::string &error);

// ------------------------------------------------------ socket framing

/** Write one framed message to a socket. */
bool writeFrame(const Socket &sock, FrameType type,
                const std::vector<std::uint8_t> &payload = {});

/** Read one framed message. False + error on EOF, a truncated frame,
 *  or a header that fails validation (the connection is then beyond
 *  recovery — the caller should close it). */
bool readFrame(const Socket &sock, FrameType &type,
               std::vector<std::uint8_t> &payload, std::string &error);

/** How a deadline-bounded frame read ended. */
enum class FrameReadStatus
{
    Ok,
    /** EOF, truncation, or a header that fails validation — close
     *  the connection. */
    Failed,
    /** The deadline expired (mid-header or mid-payload — either way
     *  the stream position is unknown, so the connection must be
     *  abandoned, not retried in place). */
    Timeout,
};

/** readFrame with an absolute deadline over the whole frame.
 *  timeout_millis <= 0 blocks forever (readFrame semantics). */
FrameReadStatus readFrameTimed(const Socket &sock, FrameType &type,
                               std::vector<std::uint8_t> &payload,
                               std::string &error,
                               std::int64_t timeout_millis);

} // namespace vibnn::serve::net

#endif // VIBNN_SERVE_NET_PROTOCOL_HH
