#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/fault.hh"
#include "common/logging.hh"

namespace vibnn::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

double
microsSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     start)
        .count();
}

/** Render a double for the metrics JSON (plain decimal, finite). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Is `host` a loopback bind? Covers the whole 127/8 block plus the
 *  spellings listenTcp accepts for it. */
bool
isLoopbackHost(const std::string &host)
{
    return host == "localhost" || host == "::1" ||
        host.rfind("127.", 0) == 0;
}

} // namespace

const char *
shardHealthName(ShardHealth health)
{
    switch (health) {
    case ShardHealth::Healthy:
        return "healthy";
    case ShardHealth::Degraded:
        return "degraded";
    case ShardHealth::Wedged:
        return "wedged";
    }
    return "healthy";
}

// ------------------------------------------------------ LatencyHistogram

// Bucket i covers (upper(i-1), upper(i)] with upper(i) = 1.25^i micros:
// ~25% relative error, 84 buckets reach ~1.3e8 us (~2 minutes).
double
LatencyHistogram::bucketUpperMicros(std::size_t i)
{
    return std::pow(1.25, static_cast<double>(i));
}

void
LatencyHistogram::record(double micros)
{
    const double v = std::max(micros, 0.0);
    // log_{1.25}(v) rounded up = the first bucket whose upper bound
    // covers v; clamp into range.
    std::size_t idx = 0;
    if (v > 1.0) {
        const double raw = std::ceil(std::log(v) / std::log(1.25));
        idx = static_cast<std::size_t>(
            std::min(raw, static_cast<double>(kBuckets - 1)));
    }
    counts_[idx].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &c : counts_)
        total += c.load(std::memory_order_relaxed);
    return total;
}

double
LatencyHistogram::quantileMicros(double q) const
{
    std::uint64_t snapshot[kBuckets];
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        snapshot[i] = counts_[i].load(std::memory_order_relaxed);
        total += snapshot[i];
    }
    if (total == 0)
        return 0.0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(clamped * static_cast<double>(total)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += snapshot[i];
        if (seen >= target && snapshot[i] > 0)
            return bucketUpperMicros(i);
    }
    return bucketUpperMicros(kBuckets - 1);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i].fetch_add(
            other.counts_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Server

Server::Server(accel::QuantizedProgram program,
               const accel::AcceleratorConfig &config,
               ServerOptions options)
    : options_(std::move(options))
{
    if (options_.shards == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        options_.shards = hw > 0 ? hw : 1;
    }
    if (options_.queueCapacity == 0)
        fatal("serve::Server: queueCapacity must be >= 1");
    if (options_.maxConnections == 0)
        fatal("serve::Server: maxConnections must be >= 1");
    if (options_.watchdogMillis < 0)
        fatal("serve::Server: watchdogMillis must be >= 0");
    if (options_.wedgedAfterMillis < 1)
        fatal("serve::Server: wedgedAfterMillis must be >= 1");
    if (options_.brownout) {
        // Health transitions happen only on the watchdog thread, so
        // brownout without a watchdog would never engage — that is a
        // configuration bug, not a policy.
        if (options_.watchdogMillis == 0)
            fatal("serve::Server: brownout requires watchdogMillis "
                  "> 0 (health transitions run on the watchdog)");
        if (options_.brownoutSamples < 1)
            fatal("serve::Server: brownoutSamples must be >= 1");
        if (options_.brownoutEnterFraction <= 0.0 ||
            options_.brownoutEnterFraction > 1.0 ||
            options_.brownoutExitFraction < 0.0 ||
            options_.brownoutExitFraction >=
                options_.brownoutEnterFraction)
            fatal("serve::Server: brownout fractions must satisfy "
                  "0 <= exit < enter <= 1");
    }
    shutdownAllowed_ =
        options_.remoteShutdown == RemoteShutdown::Enabled ||
        (options_.remoteShutdown == RemoteShutdown::LoopbackOnly &&
         isLoopbackHost(options_.host));

    shards_.reserve(options_.shards);
    for (std::size_t i = 0; i < options_.shards; ++i) {
        auto shard = std::make_unique<Shard>();
        // Every shard is built from the SAME program / config /
        // options (one seed): which shard serves a request is
        // invisible in the outputs, which is the whole bit-exactness
        // story of the sharded server.
        shard->session = InferenceSession::Builder()
                             .program(program)
                             .accelerator(config)
                             .options(options_.session)
                             .build();
        shards_.push_back(std::move(shard));
    }
}

Server::~Server() { stop(); }

bool
Server::start(std::string &error)
{
    if (running_.load()) {
        error = "server already running";
        return false;
    }
    std::uint16_t bound = 0;
    listener_ =
        net::listenTcp(options_.host, options_.port, error, &bound);
    if (!listener_.valid())
        return false;
    boundPort_ = bound;
    stopping_.store(false);
    draining_.store(false);
    for (auto &shard : shards_)
        shard->health.store(
            static_cast<int>(ShardHealth::Healthy));
    {
        std::lock_guard<std::mutex> lock(shutdownMutex_);
        shutdownRequested_ = false;
    }
    startTime_ = Clock::now();
    running_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    if (options_.watchdogMillis > 0)
        watchdogThread_ = std::thread([this] { watchdogLoop(); });
    return true;
}

void
Server::beginDrain()
{
    if (draining_.exchange(true))
        return;
    // Held batches must dispatch now, not ride out their latency
    // budgets: flush every shard dispatcher's hold loop.
    for (auto &shard : shards_)
        shard->session->flushHolds();
}

void
Server::stop()
{
    if (!running_.exchange(false)) {
        // Still release anyone parked in waitForShutdownRequest().
        std::lock_guard<std::mutex> lock(shutdownMutex_);
        shutdownRequested_ = true;
        shutdownCv_.notify_all();
        return;
    }
    // Drain before teardown: new classifies turn into deterministic
    // ShuttingDown error frames (their responses still go out on live
    // connections) while in-flight work completes. The wait is
    // bounded — a wedged pass must not hold shutdown hostage.
    beginDrain();
    const Clock::time_point drain_deadline =
        Clock::now() + std::chrono::seconds(5);
    for (;;) {
        std::size_t inflight = 0;
        for (const auto &shard : shards_)
            inflight += shard->inflight.load();
        if (inflight == 0 || Clock::now() >= drain_deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stopping_.store(true);
    // shutdown() unblocks the accept loop (a parked accept() returns
    // EINVAL); the close() — the write that invalidates the fd — must
    // wait until the accept thread is joined, or it races the
    // thread's fd reads inside acceptTcp.
    listener_.shutdownBoth();
    if (acceptThread_.joinable())
        acceptThread_.join();
    listener_.close();
    if (watchdogThread_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(watchdogMutex_);
        }
        watchdogCv_.notify_all();
        watchdogThread_.join();
    }
    // Unblock every connection thread stuck in a read, then join.
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto &conn : connections_)
            conn->sock.shutdownBoth();
    }
    reapConnections(true);
    for (auto &shard : shards_)
        shard->session->drain();
    {
        std::lock_guard<std::mutex> lock(shutdownMutex_);
        shutdownRequested_ = true;
    }
    shutdownCv_.notify_all();
}

bool
Server::shutdownRequested() const
{
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    return shutdownRequested_;
}

void
Server::waitForShutdownRequest()
{
    std::unique_lock<std::mutex> lock(shutdownMutex_);
    shutdownCv_.wait(lock, [this] { return shutdownRequested_; });
}

void
Server::reapConnections(bool all)
{
    std::vector<std::unique_ptr<Connection>> finished;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        auto it = connections_.begin();
        while (it != connections_.end()) {
            if (all || (*it)->done.load()) {
                finished.push_back(std::move(*it));
                it = connections_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &conn : finished)
        if (conn->thread.joinable())
            conn->thread.join();
}

void
Server::watchdogLoop()
{
    // Per-shard wedge latch: one watchdog trip per wedge EVENT, not
    // per poll tick that observes it.
    std::vector<bool> latched(shards_.size(), false);
    std::unique_lock<std::mutex> lock(watchdogMutex_);
    while (!stopping_.load()) {
        watchdogCv_.wait_for(
            lock, std::chrono::milliseconds(options_.watchdogMillis),
            [this] { return stopping_.load(); });
        if (stopping_.load())
            return;
        lock.unlock();
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            Shard &shard = *shards_[i];
            const std::int64_t pass_micros =
                shard.session->currentPassMicros();
            if (pass_micros >
                options_.wedgedAfterMillis * 1000) {
                // The pass has blown far past any sane duration: the
                // shard thread is stuck inside the engine and cannot
                // be interrupted — route around it until the pass
                // finally completes.
                if (!latched[i]) {
                    latched[i] = true;
                    watchdogTrips_.fetch_add(1);
                }
                shard.health.store(
                    static_cast<int>(ShardHealth::Wedged));
                continue;
            }
            latched[i] = false;
            auto health =
                static_cast<ShardHealth>(shard.health.load());
            if (health == ShardHealth::Wedged)
                health = ShardHealth::Healthy; // pass completed
            if (options_.brownout) {
                const double depth = static_cast<double>(
                    shard.inflight.load());
                const double cap = static_cast<double>(
                    options_.queueCapacity);
                if (health != ShardHealth::Degraded &&
                    depth >= options_.brownoutEnterFraction * cap)
                    health = ShardHealth::Degraded;
                else if (health == ShardHealth::Degraded &&
                         depth <=
                             options_.brownoutExitFraction * cap)
                    health = ShardHealth::Healthy;
            }
            shard.health.store(static_cast<int>(health));
        }
        lock.lock();
    }
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        std::string error;
        net::Socket client = acceptTcp(listener_, error);
        if (!client.valid()) {
            if (stopping_.load())
                break;
            // acceptTcp already retried EINTR, so this is a real
            // error — possibly a persistent one (EMFILE/ENFILE under
            // fd exhaustion). Back off briefly so the accept thread
            // cannot spin a core, and say so once.
            if (!acceptFailureLogged_.exchange(true))
                warn("serve::Server: accept failed (" + error +
                     "); backing off");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
            continue;
        }
        if (VIBNN_FAULT("serve.accept.fail")) {
            // Injected accept failure: the connection is accepted by
            // the kernel and immediately dropped — the client sees an
            // instant EOF, the accept loop keeps serving.
            continue;
        }
        reapConnections(false);
        std::size_t active;
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            active = connections_.size();
        }
        if (active >= options_.maxConnections) {
            sendError(client, 0, net::ErrorCode::Overloaded,
                      "connection limit reached");
            continue; // client destructor closes the socket
        }
        auto conn = std::make_unique<Connection>();
        conn->sock = std::move(client);
        Connection *raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            connections_.push_back(std::move(conn));
        }
        raw->thread = std::thread([this, raw] {
            serveConnection(*raw);
            // The Connection object is reaped lazily (next accept or
            // shutdown); shut the socket down NOW so the peer sees
            // EOF the moment service ends, not when the reaper runs.
            raw->sock.shutdownBoth();
            raw->done.store(true);
        });
    }
}

bool
Server::sendError(const net::Socket &sock, std::uint64_t id,
                  net::ErrorCode code, const std::string &message)
{
    net::WireError err;
    err.id = id;
    err.code = code;
    err.message = message;
    const std::vector<std::uint8_t> frame = net::encodeError(err);
    return net::writeAll(sock, frame.data(), frame.size());
}

Server::Shard &
Server::pickShard()
{
    // Two-pass routing: least-loaded among the non-Wedged shards; if
    // EVERY shard is wedged there is nothing to route around, so fall
    // back to plain least-loaded (the request queues behind the
    // stuck pass rather than being dropped).
    std::size_t best = shards_.size();
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i]->health.load() ==
            static_cast<int>(ShardHealth::Wedged))
            continue;
        const std::size_t load = shards_[i]->inflight.load();
        if (load < best_load) {
            best_load = load;
            best = i;
        }
    }
    if (best < shards_.size())
        return *shards_[best];
    best = 0;
    best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const std::size_t load = shards_[i]->inflight.load();
        if (load < best_load) {
            best_load = load;
            best = i;
        }
    }
    return *shards_[best];
}

ShardHealth
Server::shardHealth(std::size_t i) const
{
    return static_cast<ShardHealth>(shards_[i]->health.load());
}

bool
Server::handleClassify(Connection &conn,
                       const std::vector<std::uint8_t> &payload)
{
    const auto received = Clock::now();
    net::WireClassifyRequest wire;
    std::string error;
    if (!net::decodeClassifyRequest(payload.data(), payload.size(),
                                    wire, error)) {
        // The frame boundary was intact (readFrame consumed exactly
        // the declared payload), so the connection survives a bad
        // request body.
        return sendError(conn.sock, wire.id, net::ErrorCode::BadRequest,
                         error);
    }

    if (draining_.load()) {
        // Deterministic refusal during drain: every would-be classify
        // gets an explicit ShuttingDown frame, so a retrying client
        // knows to fail over instead of hammering a dying server.
        return sendError(conn.sock, wire.id,
                         net::ErrorCode::ShuttingDown,
                         "server is draining");
    }

    Shard &shard = pickShard();
    if (wire.retryAttempt > 0)
        shard.retriesObserved.fetch_add(1);
    // Admission control: reserve a slot; over capacity => explicit
    // rejection, never an unbounded queue.
    const std::size_t load = shard.inflight.fetch_add(1) + 1;
    if (load > options_.queueCapacity) {
        shard.inflight.fetch_sub(1);
        shard.rejects.fetch_add(1);
        return sendError(conn.sock, wire.id, net::ErrorCode::Overloaded,
                         "shard queue full");
    }

    InferenceRequest request = InferenceRequest::copy(
        wire.features.data(), wire.count, wire.dim);
    request.mcSamples = static_cast<int>(wire.mcSamples);
    request.deadlineMicros = wire.deadlineMicros;

    // Geometry mismatches must come back as error frames, not a
    // server-side fatal(): pre-validate what validateRequest enforces.
    const InferenceSession &session = *shard.session;
    if (wire.count == 0 || wire.dim != session.inputDim()) {
        shard.inflight.fetch_sub(1);
        std::ostringstream msg;
        msg << "bad request geometry: count=" << wire.count
            << " dim=" << wire.dim << " (program input dim "
            << session.inputDim() << ")";
        return sendError(conn.sock, wire.id, net::ErrorCode::BadRequest,
                         msg.str());
    }
    if (wire.mcSamples > 65536) {
        shard.inflight.fetch_sub(1);
        return sendError(conn.sock, wire.id, net::ErrorCode::BadRequest,
                         "mcSamples too large");
    }
    if (wire.deadlineMicros < 0 ||
        wire.deadlineMicros > net::kMaxDeadlineMicros) {
        // The decoder already rejects out-of-range deadlines; this
        // re-check keeps the admission invariant local — nothing
        // beyond the cap ever reaches a dispatcher's hold loop.
        shard.inflight.fetch_sub(1);
        return sendError(conn.sock, wire.id, net::ErrorCode::BadRequest,
                         "deadlineMicros out of range");
    }

    // Brownout: a Degraded shard degrades service instead of refusing
    // it — the request runs at the reduced ensemble size and the
    // response says so (degraded flag + the T actually achieved in
    // mcSamples). Bit-exactness is per (program, seed, T, images), so
    // a browned-out response is exactly the T=brownoutSamples answer.
    std::uint8_t response_flags = 0;
    if (options_.brownout &&
        shard.health.load() ==
            static_cast<int>(ShardHealth::Degraded)) {
        const int requested =
            wire.mcSamples > 0
                ? static_cast<int>(wire.mcSamples)
                : shard.session->options().mcSamples;
        if (requested > options_.brownoutSamples) {
            request.mcSamples = options_.brownoutSamples;
            response_flags |= net::kResponseFlagDegraded;
            shard.brownoutPasses.fetch_add(1);
        }
    }

    ResultHandle handle = shard.session->submit(std::move(request));
    InferenceResult result = handle.get();
    shard.inflight.fetch_sub(1);

    std::uint64_t rounds = 0;
    for (const Prediction &p : result.predictions)
        rounds += static_cast<std::uint64_t>(
            std::max(p.achievedSamples, 0));
    shard.rounds.fetch_add(rounds);
    const double latency = microsSince(received);
    shard.latency.record(latency);

    net::WireClassifyResponse response;
    response.id = wire.id; // echo the wire id, not the session's
    response.mcSamples = static_cast<std::uint32_t>(result.mcSamples);
    response.outDim =
        static_cast<std::uint32_t>(session.outputDim());
    response.meanRounds = result.meanRounds;
    response.serverMicros = latency;
    response.flags = response_flags;
    response.predictions.reserve(result.predictions.size());
    for (const Prediction &p : result.predictions) {
        net::WirePrediction wp;
        wp.predicted = static_cast<std::uint32_t>(p.predicted);
        wp.achievedSamples =
            static_cast<std::uint32_t>(std::max(p.achievedSamples, 0));
        wp.exitReason = static_cast<std::uint8_t>(p.exitReason);
        wp.confidence = p.confidence;
        wp.entropy = p.entropy;
        wp.mutualInformation = p.mutualInformation;
        wp.probs = p.probs;
        response.predictions.push_back(std::move(wp));
    }
    const std::vector<std::uint8_t> frame =
        net::encodeClassifyResponse(response);
    if (VIBNN_FAULT("serve.response.delay")) {
        // Slow response: the frame goes out intact but late — what a
        // GC pause or an overloaded NIC looks like to the client.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            fault::fireDelayMillis("serve.response.delay", 50)));
    }
    if (VIBNN_FAULT("serve.response.torn")) {
        // Torn response: half the frame, then the connection dies —
        // the client's decoder must reject the stub and its retry
        // path must recover the answer on a fresh connection.
        net::writeAll(conn.sock, frame.data(), frame.size() / 2);
        return false;
    }
    return net::writeAll(conn.sock, frame.data(), frame.size());
}

void
Server::serveConnection(Connection &conn)
{
    while (!stopping_.load()) {
        net::FrameType type;
        std::vector<std::uint8_t> payload;
        std::string error;
        if (!net::readFrame(conn.sock, type, payload, error))
            break; // EOF, garbage header, or shutdown — close quietly
        if (VIBNN_FAULT("serve.conn.drop"))
            break; // injected mid-session disconnect
        bool ok = true;
        switch (type) {
        case net::FrameType::Ping:
            ok = net::writeFrame(conn.sock, net::FrameType::Pong);
            break;
        case net::FrameType::MetricsRequest: {
            const std::vector<std::uint8_t> frame =
                net::encodeMetricsResponse(metricsJson());
            ok = net::writeAll(conn.sock, frame.data(), frame.size());
            break;
        }
        case net::FrameType::ClassifyRequest:
            ok = handleClassify(conn, payload);
            break;
        case net::FrameType::Shutdown:
            // Any connected peer can send this frame, so honor it
            // only under the configured RemoteShutdown policy — on a
            // non-loopback bind it would otherwise be an
            // unauthenticated kill switch.
            if (!shutdownAllowed_) {
                ok = sendError(conn.sock, 0,
                               net::ErrorCode::BadRequest,
                               "remote shutdown disabled on this "
                               "server (RemoteShutdown policy)");
                break;
            }
            // Acknowledge, then wake waitForShutdownRequest(). The
            // owner thread drives the actual stop() — a connection
            // thread cannot join itself.
            net::writeFrame(conn.sock, net::FrameType::ShutdownAck);
            {
                std::lock_guard<std::mutex> lock(shutdownMutex_);
                shutdownRequested_ = true;
            }
            shutdownCv_.notify_all();
            return;
        default:
            ok = sendError(conn.sock, 0, net::ErrorCode::BadRequest,
                           "unexpected frame type");
            break;
        }
        if (!ok)
            break;
    }
}

ServerStats
Server::stats() const
{
    ServerStats out;
    out.shards.reserve(shards_.size());
    LatencyHistogram aggregate;
    for (const auto &shard : shards_) {
        const InferenceSession::Counters counters =
            shard->session->counters();
        ShardStats s;
        s.requests = counters.requests;
        s.images = counters.images;
        s.rejects = shard->rejects.load();
        s.passes = counters.passes;
        s.coalescedPasses = counters.coalescedPasses;
        s.heldPasses = counters.heldPasses;
        s.rounds = shard->rounds.load();
        s.queueDepth = shard->inflight.load();
        if (counters.passes > 0) {
            s.mergeImagesPerPass =
                static_cast<double>(counters.images) /
                static_cast<double>(counters.passes);
            s.mergeRequestsPerPass =
                static_cast<double>(counters.requests) /
                static_cast<double>(counters.passes);
        }
        s.p50Micros = shard->latency.quantileMicros(0.50);
        s.p95Micros = shard->latency.quantileMicros(0.95);
        s.p99Micros = shard->latency.quantileMicros(0.99);
        s.health = static_cast<ShardHealth>(shard->health.load());
        s.brownoutPasses = shard->brownoutPasses.load();
        s.retriesObserved = shard->retriesObserved.load();
        aggregate.merge(shard->latency);
        out.requests += s.requests;
        out.images += s.images;
        out.rejects += s.rejects;
        out.rounds += s.rounds;
        out.brownoutPasses += s.brownoutPasses;
        out.retriesObserved += s.retriesObserved;
        out.shards.push_back(std::move(s));
    }
    out.watchdogTrips = watchdogTrips_.load();
    out.faultFires = fault::totalFires();
    out.draining = draining_.load();
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        out.activeConnections = connections_.size();
    }
    if (running_.load())
        out.uptimeSeconds = microsSince(startTime_) / 1e6;
    if (out.uptimeSeconds > 0.0)
        out.roundsPerSecond =
            static_cast<double>(out.rounds) / out.uptimeSeconds;
    out.p50Micros = aggregate.quantileMicros(0.50);
    out.p95Micros = aggregate.quantileMicros(0.95);
    out.p99Micros = aggregate.quantileMicros(0.99);
    return out;
}

std::string
Server::metricsJson() const
{
    const ServerStats s = stats();
    std::ostringstream os;
    os << "{";
    os << "\"requests\": " << s.requests;
    os << ", \"images\": " << s.images;
    os << ", \"rejects\": " << s.rejects;
    os << ", \"rounds\": " << s.rounds;
    os << ", \"active_connections\": " << s.activeConnections;
    os << ", \"uptime_seconds\": " << jsonNumber(s.uptimeSeconds);
    os << ", \"rounds_per_s\": " << jsonNumber(s.roundsPerSecond);
    os << ", \"p50_us\": " << jsonNumber(s.p50Micros);
    os << ", \"p95_us\": " << jsonNumber(s.p95Micros);
    os << ", \"p99_us\": " << jsonNumber(s.p99Micros);
    os << ", \"brownout_passes\": " << s.brownoutPasses;
    os << ", \"retries_observed\": " << s.retriesObserved;
    os << ", \"watchdog_trips\": " << s.watchdogTrips;
    os << ", \"fault_fires\": " << s.faultFires;
    os << ", \"draining\": " << (s.draining ? 1 : 0);
    // Per-site hit/fire counters of the armed chaos profile; "{}" in
    // every unarmed (production) process.
    os << ", \"faults\": " << fault::faultsJson();
    os << ", \"shards\": [";
    for (std::size_t i = 0; i < s.shards.size(); ++i) {
        const ShardStats &sh = s.shards[i];
        if (i > 0)
            os << ", ";
        os << "{\"shard\": " << i;
        os << ", \"requests\": " << sh.requests;
        os << ", \"images\": " << sh.images;
        os << ", \"rejects\": " << sh.rejects;
        os << ", \"passes\": " << sh.passes;
        os << ", \"coalesced_passes\": " << sh.coalescedPasses;
        os << ", \"held_passes\": " << sh.heldPasses;
        os << ", \"rounds\": " << sh.rounds;
        os << ", \"queue_depth\": " << sh.queueDepth;
        os << ", \"merge_images_per_pass\": "
           << jsonNumber(sh.mergeImagesPerPass);
        os << ", \"merge_requests_per_pass\": "
           << jsonNumber(sh.mergeRequestsPerPass);
        os << ", \"p50_us\": " << jsonNumber(sh.p50Micros);
        os << ", \"p95_us\": " << jsonNumber(sh.p95Micros);
        os << ", \"p99_us\": " << jsonNumber(sh.p99Micros);
        os << ", \"health\": \"" << shardHealthName(sh.health)
           << "\"";
        os << ", \"brownout_passes\": " << sh.brownoutPasses;
        os << ", \"retries_observed\": " << sh.retriesObserved;
        os << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace vibnn::serve
