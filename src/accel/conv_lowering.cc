/**
 * @file
 * Conv-on-accelerator geometry helpers (see conv_lowering.hh).
 */

#include "accel/conv_lowering.hh"

#include "accel/design_space.hh"
#include "accel/program.hh"
#include "common/logging.hh"

namespace vibnn::accel
{

namespace
{

/** Shared body of the raw-grid gathers: the arithmetic is pure
 *  indexing, so the int64 fidelity buffers and the batched executor's
 *  narrowed int32 SoA buffers run the identical code. */
template <typename Raw>
void
im2colRawImpl(const nn::ConvSpec &spec, const Raw *x,
              std::vector<Raw> &patches)
{
    const std::size_t out_h = spec.outHeight();
    const std::size_t out_w = spec.outWidth();
    const std::size_t patch = spec.patchSize();
    patches.resize(out_h * out_w * patch);

    for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
            Raw *row = patches.data() + (oy * out_w + ox) * patch;
            std::size_t k = 0;
            for (std::size_t c = 0; c < spec.inChannels; ++c) {
                const Raw *plane = x + c * spec.inHeight * spec.inWidth;
                for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
                    // Signed arithmetic: the padded coordinate may be
                    // negative at the border.
                    const std::ptrdiff_t iy =
                        static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                        static_cast<std::ptrdiff_t>(spec.pad);
                    for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(ox * spec.stride +
                                                        kx) -
                            static_cast<std::ptrdiff_t>(spec.pad);
                        const bool inside =
                            iy >= 0 &&
                            iy < static_cast<std::ptrdiff_t>(
                                     spec.inHeight) &&
                            ix >= 0 &&
                            ix < static_cast<std::ptrdiff_t>(spec.inWidth);
                        row[k++] =
                            inside ? plane[iy * spec.inWidth + ix] : 0;
                    }
                }
            }
        }
    }
}

template <typename Raw>
void
maxPoolRawImpl(const nn::PoolSpec &spec, const Raw *x, Raw *out)
{
    const std::size_t out_h = spec.outHeight();
    const std::size_t out_w = spec.outWidth();
    for (std::size_t c = 0; c < spec.channels; ++c) {
        const Raw *plane = x + c * spec.inHeight * spec.inWidth;
        Raw *out_plane = out + c * out_h * out_w;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
            for (std::size_t ox = 0; ox < out_w; ++ox) {
                const std::size_t y0 = oy * spec.stride;
                const std::size_t x0 = ox * spec.stride;
                Raw best = plane[y0 * spec.inWidth + x0];
                for (std::size_t wy = 0; wy < spec.window; ++wy) {
                    for (std::size_t wx = 0; wx < spec.window; ++wx) {
                        const Raw v =
                            plane[(y0 + wy) * spec.inWidth + (x0 + wx)];
                        if (v > best)
                            best = v;
                    }
                }
                out_plane[oy * out_w + ox] = best;
            }
        }
    }
}

} // namespace

void
im2colRaw(const nn::ConvSpec &spec, const std::int64_t *x,
          std::vector<std::int64_t> &patches)
{
    im2colRawImpl(spec, x, patches);
}

void
im2colRaw(const nn::ConvSpec &spec, const std::int32_t *x,
          std::vector<std::int32_t> &patches)
{
    im2colRawImpl(spec, x, patches);
}

void
maxPoolRaw(const nn::PoolSpec &spec, const std::int64_t *x,
           std::int64_t *out)
{
    maxPoolRawImpl(spec, x, out);
}

void
maxPoolRaw(const nn::PoolSpec &spec, const std::int32_t *x,
           std::int32_t *out)
{
    maxPoolRawImpl(spec, x, out);
}

QuantizedNetwork
quantizeConvLayer(const bnn::VariationalConv2d &layer,
                  const AcceleratorConfig &config)
{
    QuantizedNetwork q;
    q.activationFormat = config.activationFormat();
    q.weightFormat = config.weightFormat();
    q.epsFormat = config.epsFormat();
    q.layers.push_back(quantizeBank(
        layer.muWeight().data().data(), layer.rhoWeight().data().data(),
        layer.muBias().data(), layer.rhoBias().data(),
        layer.spec().patchSize(), layer.spec().outChannels,
        q.weightFormat));
    return q;
}

ConvLayerRunner::ConvLayerRunner(const bnn::VariationalConv2d &layer,
                                 const AcceleratorConfig &config,
                                 grng::GaussianGenerator *generator,
                                 bool apply_relu)
    : spec_(layer.spec()), config_(config)
{
    VIBNN_ASSERT(spec_.valid(), "invalid conv geometry");

    // A one-op program: the conv layer, then output staging.
    program_.activationFormat = config.activationFormat();
    program_.weightFormat = config.weightFormat();
    program_.epsFormat = config.epsFormat();
    ProgramOp op;
    op.kind = OpKind::ConvLowered;
    op.conv = spec_;
    op.inSize = spec_.inputSize();
    op.outSize = spec_.outputSize();
    op.relu = apply_relu;
    op.bank = quantizeConvLayer(layer, config).layers.front();
    op.label = "conv (single-layer study)";
    program_.ops.push_back(std::move(op));
    ProgramOp out;
    out.kind = OpKind::Output;
    out.inSize = spec_.outputSize();
    out.outSize = spec_.outputSize();
    out.relu = false;
    out.label = "output";
    program_.ops.push_back(std::move(out));

    sim_ = std::make_unique<Simulator>(program_, config_, generator);
}

std::vector<std::int64_t>
ConvLayerRunner::runPass(const float *x)
{
    return sim_->runPass(x);
}

std::vector<float>
ConvLayerRunner::runPassReal(const float *x)
{
    const auto raw = runPass(x);
    std::vector<float> real(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        real[i] = static_cast<float>(
            program_.activationFormat.toReal(raw[i]));
    }
    return real;
}

std::uint64_t
ConvLayerRunner::cyclesPerConvPass() const
{
    const std::vector<std::size_t> sizes{spec_.patchSize(),
                                         spec_.outChannels};
    return spec_.positions() * predictPassCycles(sizes, config_);
}

} // namespace vibnn::accel
