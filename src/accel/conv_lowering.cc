/**
 * @file
 * Conv-on-accelerator lowering (see conv_lowering.hh).
 */

#include "accel/conv_lowering.hh"

#include "accel/design_space.hh"
#include "common/logging.hh"

namespace vibnn::accel
{

QuantizedNetwork
quantizeConvLayer(const bnn::VariationalConv2d &layer,
                  const AcceleratorConfig &config)
{
    QuantizedNetwork q;
    q.activationFormat = config.activationFormat();
    q.weightFormat = config.weightFormat();
    q.epsFormat = config.epsFormat();

    QuantizedLayer ql;
    ql.inDim = layer.spec().patchSize();
    ql.outDim = layer.spec().outChannels;

    const auto &mu = layer.muWeight().data();
    const auto &rho = layer.rhoWeight().data();
    ql.muWeight.resize(mu.size());
    ql.sigmaWeight.resize(mu.size());
    for (std::size_t i = 0; i < mu.size(); ++i) {
        ql.muWeight[i] =
            static_cast<std::int32_t>(q.weightFormat.fromReal(mu[i]));
        ql.sigmaWeight[i] = static_cast<std::int32_t>(
            q.weightFormat.fromReal(
                bnn::VariationalConv2d::sigmaOf(rho[i])));
    }

    ql.muBias.resize(layer.muBias().size());
    ql.sigmaBias.resize(layer.muBias().size());
    for (std::size_t i = 0; i < layer.muBias().size(); ++i) {
        ql.muBias[i] = static_cast<std::int32_t>(
            q.weightFormat.fromReal(layer.muBias()[i]));
        ql.sigmaBias[i] = static_cast<std::int32_t>(
            q.weightFormat.fromReal(
                bnn::VariationalConv2d::sigmaOf(layer.rhoBias()[i])));
    }
    q.layers.push_back(std::move(ql));
    return q;
}

ConvLayerRunner::ConvLayerRunner(const bnn::VariationalConv2d &layer,
                                 const AcceleratorConfig &config,
                                 grng::GaussianGenerator *generator,
                                 bool apply_relu)
    : spec_(layer.spec()), config_(config), applyRelu_(apply_relu),
      lowered_(quantizeConvLayer(layer, config))
{
    VIBNN_ASSERT(spec_.valid(), "invalid conv geometry");
    sim_ = std::make_unique<Simulator>(lowered_, config_, generator);
    patchReal_.resize(spec_.patchSize());
}

std::vector<std::int64_t>
ConvLayerRunner::runPass(const float *x)
{
    nn::im2col(spec_, x, patches_);
    const std::size_t positions = spec_.positions();
    const std::size_t channels = spec_.outChannels;
    std::vector<std::int64_t> out(spec_.outputSize());

    for (std::size_t p = 0; p < positions; ++p) {
        const float *patch = patches_.row(p);
        // One simulator pass per output position: the patch is this
        // position's "image", the filter bank its dense layer.
        const auto raw = sim_->runPass(patch);
        for (std::size_t oc = 0; oc < channels; ++oc) {
            std::int64_t v = raw[oc];
            // The simulator finishes a single-layer network on the
            // no-ReLU output path; clamping after the floor-shift is
            // arithmetically identical to the PE's finishNeuron ReLU
            // (the test suite pins this equality down).
            if (applyRelu_ && v < 0)
                v = 0;
            out[oc * positions + p] = v;
        }
    }
    return out;
}

std::vector<float>
ConvLayerRunner::runPassReal(const float *x)
{
    const auto raw = runPass(x);
    std::vector<float> real(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        real[i] = static_cast<float>(
            lowered_.activationFormat.toReal(raw[i]));
    }
    return real;
}

std::uint64_t
ConvLayerRunner::cyclesPerConvPass() const
{
    const std::vector<std::size_t> sizes{spec_.patchSize(),
                                         spec_.outChannels};
    return spec_.positions() * predictPassCycles(sizes, config_);
}

} // namespace vibnn::accel
