#include "accel/batched_runner.hh"

#include <algorithm>

#include "accel/conv_lowering.hh"
#include "common/logging.hh"

namespace vibnn::accel
{

namespace
{

/** Images per GEMM tile: the weight slab streams through cache once
 *  per tile instead of once per image. */
constexpr std::size_t kImageTile = 16;

} // namespace

BatchedRunner::BatchedRunner(const QuantizedProgram &program,
                             const AcceleratorConfig &config,
                             grng::GaussianGenerator *generator)
    : program_(program), config_(config),
      kernel_(program_.activationFormat, program_.weightFormat,
              program_.epsFormat),
      weightGen_(kernel_, generator)
{
    validateProgram(program_, config_);

    // Arena layout: one contiguous slab of outDim x inDim weights per
    // compute op.
    std::size_t total = 0;
    laneWidth_ = program_.inputDim();
    for (const auto &op : program_.ops) {
        opWeightBase_.push_back(total);
        laneWidth_ = std::max({laneWidth_, op.inSize, op.outSize});
        if (!op.isCompute())
            continue;
        total += op.bank.outDim * op.bank.inDim;
    }
    weightArena_.resize(total);
}

void
BatchedRunner::setGenerator(grng::GaussianGenerator *generator)
{
    weightGen_.setGenerator(generator);
}

void
BatchedRunner::sampleRoundWeights()
{
    // One posterior draw per compute op, in op order: the identical
    // w = mu + sigma * eps updater arithmetic as the fidelity
    // executors, but one eps per *weight* instead of one per lane per
    // chunk cycle (no padding lanes, no per-position redraw).
    for (std::size_t oi = 0; oi < program_.ops.size(); ++oi) {
        const auto &op = program_.ops[oi];
        if (!op.isCompute())
            continue;
        const std::size_t n = op.bank.outDim * op.bank.inDim;
        if (sampleScratch_.size() < n)
            sampleScratch_.resize(n);
        weightGen_.sampleBlock(op.bank.muWeight.data(),
                               op.bank.sigmaWeight.data(),
                               sampleScratch_.data(), n);
        std::int32_t *slab = weightArena_.data() + opWeightBase_[oi];
        for (std::size_t i = 0; i < n; ++i)
            slab[i] = static_cast<std::int32_t>(sampleScratch_[i]);
    }
}

void
BatchedRunner::runDenseBatch(const ProgramOp &op,
                             const std::int32_t *weights,
                             std::size_t count,
                             const std::int64_t *act_in,
                             std::int64_t *act_out)
{
    const std::size_t in_dim = op.bank.inDim;
    const std::size_t out_dim = op.bank.outDim;

    for (std::size_t b0 = 0; b0 < count; b0 += kImageTile) {
        const std::size_t b1 = std::min(b0 + kImageTile, count);
        for (std::size_t o = 0; o < out_dim; ++o) {
            const std::int32_t *w = weights + o * in_dim;
            const std::int64_t bias = op.bank.muBias[o];
            for (std::size_t b = b0; b < b1; ++b) {
                const std::int64_t *x = act_in + b * laneWidth_;
                std::int64_t acc = 0;
                for (std::size_t k = 0; k < in_dim; ++k)
                    acc += w[k] * x[k];
                act_out[b * laneWidth_ + o] =
                    op.relu ? kernel_.finishNeuron(acc, bias)
                            : kernel_.finishOutputNeuron(acc, bias);
            }
        }
    }
    stats_.macs += count * out_dim * in_dim;
}

void
BatchedRunner::runConvBatch(const ProgramOp &op,
                            const std::int32_t *weights,
                            std::size_t count,
                            const std::int64_t *act_in,
                            std::int64_t *act_out)
{
    const std::size_t positions = op.conv.positions();
    const std::size_t patch = op.conv.patchSize();
    const std::size_t out_channels = op.conv.outChannels;

    for (std::size_t b = 0; b < count; ++b) {
        im2colRaw(op.conv, act_in + b * laneWidth_, patches_);
        std::int64_t *out_maps = act_out + b * laneWidth_;
        for (std::size_t oc = 0; oc < out_channels; ++oc) {
            const std::int32_t *w = weights + oc * patch;
            const std::int64_t bias = op.bank.muBias[oc];
            std::int64_t *row = out_maps + oc * positions;
            for (std::size_t p = 0; p < positions; ++p) {
                const std::int64_t *x = patches_.data() + p * patch;
                std::int64_t acc = 0;
                for (std::size_t k = 0; k < patch; ++k)
                    acc += w[k] * x[k];
                row[p] = op.relu
                             ? kernel_.finishNeuron(acc, bias)
                             : kernel_.finishOutputNeuron(acc, bias);
            }
        }
    }
    stats_.macs += count * out_channels * positions * patch;
}

void
BatchedRunner::runRoundBatch(const float *xs, std::size_t count,
                             std::size_t stride, std::int64_t *out)
{
    const std::size_t out_dim = program_.outputDim();
    if (count == 0)
        return;

    sampleRoundWeights();

    // Quantize the batch onto the activation grid, batch-major.
    const auto &act = program_.activationFormat;
    const std::size_t in_dim = program_.inputDim();
    actA_.assign(count * laneWidth_, 0);
    actB_.assign(count * laneWidth_, 0);
    for (std::size_t b = 0; b < count; ++b) {
        std::int64_t *row = actA_.data() + b * laneWidth_;
        const float *x = xs + b * stride;
        for (std::size_t i = 0; i < in_dim; ++i)
            row[i] = act.fromReal(x[i]);
    }

    std::int64_t *in_buf = actA_.data();
    std::int64_t *out_buf = actB_.data();
    for (std::size_t oi = 0; oi < program_.ops.size(); ++oi) {
        const auto &op = program_.ops[oi];
        switch (op.kind) {
          case OpKind::Dense:
            runDenseBatch(op, weightArena_.data() + opWeightBase_[oi],
                          count, in_buf, out_buf);
            std::swap(in_buf, out_buf);
            break;
          case OpKind::ConvLowered:
            runConvBatch(op, weightArena_.data() + opWeightBase_[oi],
                         count, in_buf, out_buf);
            std::swap(in_buf, out_buf);
            break;
          case OpKind::Pool:
            for (std::size_t b = 0; b < count; ++b)
                maxPoolRaw(op.pool, in_buf + b * laneWidth_,
                           out_buf + b * laneWidth_);
            std::swap(in_buf, out_buf);
            break;
          case OpKind::Flatten:
          case OpKind::Output:
            // Pure relabeling / staging.
            break;
        }
    }

    for (std::size_t b = 0; b < count; ++b)
        std::copy(in_buf + b * laneWidth_,
                  in_buf + b * laneWidth_ + out_dim, out + b * out_dim);

    stats_.grnSamples = weightGen_.samplesDrawn();
    stats_.images += count;
}

std::vector<std::int64_t>
BatchedRunner::runPass(const float *x)
{
    std::vector<std::int64_t> out(program_.outputDim());
    runRoundBatch(x, 1, program_.inputDim(), out.data());
    return out;
}

} // namespace vibnn::accel
