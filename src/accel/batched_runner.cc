#include "accel/batched_runner.hh"

#include <algorithm>
#include <cmath>

#include <unistd.h>

#include "accel/conv_lowering.hh"
#include "common/env.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace vibnn::accel
{

namespace
{

/** A cache size from sysconf, or `fallback` when the kernel does not
 *  report one (containers frequently do not). */
long
cacheSize(int name, long fallback)
{
    const long reported = sysconf(name);
    return reported > 0 ? reported : fallback;
}

/**
 * Images per GEMM tile: the weight slab streams through cache once per
 * tile instead of once per image, so the tile should be as large as
 * the activation working set (one int32 in-row plus one out-row per
 * image) allows while staying cache-resident. Derived from the host
 * L2 (fallback: 8x a 32 KiB L1) with a VIBNN_GEMM_TILE override for
 * benchmarking; purely a performance choice — the kernels are
 * tile-order-invariant, so any tile gives bit-identical results.
 */
std::size_t
pickImageTile(std::size_t lane_width)
{
    const std::int64_t forced = envInt("VIBNN_GEMM_TILE", 0);
    if (forced > 0)
        return static_cast<std::size_t>(forced);

#if defined(_SC_LEVEL1_DCACHE_SIZE) && defined(_SC_LEVEL2_CACHE_SIZE)
    const long l1 = cacheSize(_SC_LEVEL1_DCACHE_SIZE, 32 * 1024);
    const long l2 = cacheSize(_SC_LEVEL2_CACHE_SIZE, 8 * l1);
#else
    const long l1 = 32 * 1024;
    const long l2 = 8 * l1;
#endif
    // Half the L2 for activations; the other half keeps the head of
    // the streaming weight slab and the int16 staging warm.
    const std::size_t row_bytes = 2 * lane_width * sizeof(std::int32_t);
    const std::size_t tile =
        static_cast<std::size_t>(l2) / (2 * std::max<std::size_t>(
                                                row_bytes, 1));
    return std::clamp<std::size_t>(tile, 8, 256);
}

} // namespace

BatchedRunner::BatchedRunner(const QuantizedProgram &program,
                             const AcceleratorConfig &config,
                             grng::GaussianGenerator *generator)
    : program_(program), config_(config),
      kernel_(program_.activationFormat, program_.weightFormat,
              program_.epsFormat),
      weightGen_(kernel_, generator)
{
    validateProgram(program_, config_);

    // The narrowed SoA layout stores activations and weights as int32:
    // every admissible fixed-point format (<= 32 bits) fits, and the
    // finish/updater stages saturate onto their grids before any
    // store. Range-check the formats once so a future wider format
    // fails loudly here instead of truncating silently.
    VIBNN_ASSERT(kernel_.activation.rawMax() <= INT32_MAX &&
                     kernel_.activation.rawMin() >= INT32_MIN,
                 "activation format exceeds the int32 SoA layout");
    VIBNN_ASSERT(kernel_.weight.rawMax() <= INT32_MAX &&
                     kernel_.weight.rawMin() >= INT32_MIN,
                 "weight format exceeds the int32 arena layout");

    finishBase_.biasShift = kernel_.activation.fracBits();
    finishBase_.outShift = kernel_.weight.fracBits();
    finishBase_.outMin =
        static_cast<std::int32_t>(kernel_.activation.rawMin());
    finishBase_.outMax =
        static_cast<std::int32_t>(kernel_.activation.rawMax());

    // Arena layout: one contiguous slab of outDim x inDim weights per
    // compute op.
    const std::int64_t w_abs = -kernel_.weight.rawMin();
    const std::int64_t a_abs = -kernel_.activation.rawMin();
    std::size_t total = 0;
    laneWidth_ = program_.inputDim();
    for (const auto &op : program_.ops) {
        opWeightBase_.push_back(total);
        laneWidth_ = std::max({laneWidth_, op.inSize, op.outSize});
        if (!op.isCompute()) {
            opInt16_.push_back(false);
            continue;
        }
        total += op.bank.outDim * op.bank.inDim;
        // madd fast-path eligibility (see GemmArgs::weights16): both
        // operands fit int16 and the int32 pair-sum accumulator
        // provably cannot overflow over this op's reduction depth.
        // Divide instead of multiplying out inDim * w_abs * a_abs:
        // 32-bit formats would overflow the int64 product itself.
        const bool fits16 = w_abs <= INT16_MAX && a_abs <= INT16_MAX &&
            static_cast<std::int64_t>(op.bank.inDim) <=
                INT32_MAX / (w_abs * a_abs);
        opInt16_.push_back(fits16);
    }
    weightArena_.resize(total);
    for (std::size_t oi = 0; oi < program_.ops.size(); ++oi)
        if (program_.ops[oi].isCompute())
            computeOps_.push_back(oi);
    for (const bool eligible : opInt16_)
        anyInt16_ = anyInt16_ || eligible;
    if (anyInt16_)
        weightArena16_.resize(total);
    imageTile_ = pickImageTile(laneWidth_);
    patches_.resize(1);
    patches16_.resize(1);
}

void
BatchedRunner::setGenerator(grng::GaussianGenerator *generator)
{
    weightGen_.setGenerator(generator);
}

namespace
{

/** Eps scratch per shard chunk of the sharded weight draw: bounds the
 *  per-worker footprint (64 KiB) independent of op sizes. */
constexpr std::size_t kEpsShardChunk = 16384;

} // namespace

void
BatchedRunner::setWorkPool(ThreadPool *pool)
{
    workPool_ = pool;
    const std::size_t shards = pool ? pool->parties() : 1;
    patches_.resize(std::max<std::size_t>(shards, 1));
    patches16_.resize(patches_.size());
    epsShard_.resize(patches_.size());
    for (auto &scratch : epsShard_)
        scratch.resize(kEpsShardChunk);
}

template <typename Body>
void
BatchedRunner::forImageShards(std::size_t count, const Body &body)
{
    ThreadPool *pool = workPool_;
    const std::size_t shards =
        pool ? std::min(pool->parties(), count) : 1;
    if (shards <= 1) {
        if (count > 0)
            body(std::size_t{0}, std::size_t{0}, count);
        return;
    }
    // Static contiguous partition; every image's result depends only
    // on the frozen round weights and its own row, so the partition
    // (and the thread count behind it) is invisible in the output.
    pool->parallelFor(shards, [&](std::size_t s) {
        const std::size_t begin = s * count / shards;
        const std::size_t end = (s + 1) * count / shards;
        if (begin < end)
            body(s, begin, end);
    });
}

void
BatchedRunner::sampleWeightRange(std::size_t shard, std::size_t w0,
                                 std::size_t w1, std::uint64_t base)
{
    // Walk the compute ops overlapping global weight indices [w0, w1);
    // weight index base + i consumes eps stream sample base + i, which
    // is exactly the position the sequential op-order draw would hand
    // it — so any partition of the index space yields the identical
    // arena.
    const auto &ops = kernels::activeKernels();
    std::int32_t *eps_scratch = epsShard_[shard].data();
    for (const std::size_t oi : computeOps_) {
        const auto &op = program_.ops[oi];
        const std::size_t op_base = opWeightBase_[oi];
        const std::size_t op_n = op.bank.outDim * op.bank.inDim;
        const std::size_t lo = std::max(w0, op_base);
        const std::size_t hi = std::min(w1, op_base + op_n);
        if (lo >= hi)
            continue;
        for (std::size_t at = lo; at < hi; at += kEpsShardChunk) {
            const std::size_t take =
                std::min(kEpsShardChunk, hi - at);
            const std::size_t off = at - op_base;
            weightGen_.sampleBlockFusedAt(
                op.bank.muWeight.data() + off,
                op.bank.sigmaWeight.data() + off,
                weightArena_.data() + at, take, base + at,
                eps_scratch);
        }
        if (opInt16_[oi])
            ops.packInt16(weightArena_.data() + lo,
                          weightArena16_.data() + lo, hi - lo);
    }
}

void
BatchedRunner::sampleRoundWeights()
{
    // One posterior draw per compute op, in op order: the identical
    // w = mu + sigma * eps updater arithmetic as the fidelity
    // executors, but one eps per *weight* instead of one per lane per
    // chunk cycle (no padding lanes, no per-position redraw), fused
    // straight into the int32 arena by the dispatched kernel.
    const std::size_t total = weightArena_.size();
    ThreadPool *pool = workPool_;
    const std::size_t shards =
        pool ? std::min(pool->parties(), epsShard_.size()) : 1;
    if (weightGen_.splittable() && shards > 1 && total > 0) {
        // Counter-based eps source: the draw itself shards. Each worker
        // produces its slice of the round's eps stream via the
        // random-access path, so weight sampling — the serial cost the
        // weight-reuse schedule leaves behind — parallelizes too.
        const std::uint64_t base = weightGen_.streamPos();
        pool->parallelFor(shards, [&](std::size_t s) {
            const std::size_t w0 = s * total / shards;
            const std::size_t w1 = (s + 1) * total / shards;
            if (w0 < w1)
                sampleWeightRange(s, w0, w1, base);
        });
        weightGen_.finishShardedRound(base + total);
        injectWeightFaults();
        return;
    }

    const auto &ops = kernels::activeKernels();
    for (const std::size_t oi : computeOps_) {
        const auto &op = program_.ops[oi];
        const std::size_t n = op.bank.outDim * op.bank.inDim;
        std::int32_t *slab = weightArena_.data() + opWeightBase_[oi];
        weightGen_.sampleBlockFused(op.bank.muWeight.data(),
                                    op.bank.sigmaWeight.data(), slab, n);
        if (opInt16_[oi])
            ops.packInt16(slab,
                          weightArena16_.data() + opWeightBase_[oi], n);
    }
    injectWeightFaults();
}

void
BatchedRunner::injectWeightFaults()
{
    if (!fault::anyArmed())
        return;
    const double rate = fault::siteRate("accel.weights.bitflip");
    if (rate <= 0.0 || weightArena_.empty())
        return;

    // Seed the flip stream from a content hash of the freshly drawn
    // arena XOR the site seed. The arena is bit-identical per round
    // regardless of thread count or shard assignment (the determinism
    // contract), so the flip pattern is too — a chaos run replays
    // exactly on any machine configuration.
    std::uint64_t hash = 1469598103934665603ull; // FNV-1a basis
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(weightArena_.data());
    const std::size_t nbytes =
        weightArena_.size() * sizeof(std::int32_t);
    for (std::size_t i = 0; i < nbytes; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    std::uint64_t state =
        hash ^ fault::siteSeed("accel.weights.bitflip");

    // Geometric-skip sampling over the (slot x weight-bit) space:
    // each of the arena's total_bits-wide payload bits flips with
    // probability `rate`, independently, without visiting every bit.
    const unsigned total_bits =
        static_cast<unsigned>(kernel_.weight.totalBits());
    const std::uint64_t space_bits =
        static_cast<std::uint64_t>(weightArena_.size()) * total_bits;
    const double log_keep =
        std::log1p(-std::min(rate, 1.0 - 1e-9));
    const unsigned extend_shift = 32 - total_bits;
    std::uint64_t pos = 0;
    std::uint64_t flips = 0;
    for (;;) {
        state = fault::mix64(state);
        const double u =
            std::max(fault::mixToUnit(state), 1e-300);
        const double skip_f = std::log(u) / log_keep;
        if (skip_f >= static_cast<double>(space_bits))
            break;
        pos += static_cast<std::uint64_t>(skip_f) + 1;
        if (pos > space_bits)
            break;
        const std::uint64_t bit_index = pos - 1;
        const std::size_t slot =
            static_cast<std::size_t>(bit_index / total_bits);
        const unsigned bit =
            static_cast<unsigned>(bit_index % total_bits);
        std::uint32_t raw =
            static_cast<std::uint32_t>(weightArena_[slot]);
        raw ^= 1u << bit;
        // Re-sign-extend from the payload width: every total_bits
        // pattern is a valid two's-complement weight, so the flipped
        // value needs no saturation, only a consistent upper half.
        weightArena_[slot] = static_cast<std::int32_t>(
            raw << extend_shift) >> extend_shift;
        ++flips;
    }
    if (flips == 0)
        return;
    fault::recordFires("accel.weights.bitflip", flips);
    // The int16 mirror must match the corrupted arena or the madd
    // fast path would silently serve the uncorrupted weights.
    if (anyInt16_) {
        const auto &ops = kernels::activeKernels();
        for (const std::size_t oi : computeOps_) {
            if (!opInt16_[oi])
                continue;
            const auto &op = program_.ops[oi];
            const std::size_t n = op.bank.outDim * op.bank.inDim;
            ops.packInt16(weightArena_.data() + opWeightBase_[oi],
                          weightArena16_.data() + opWeightBase_[oi],
                          n);
        }
    }
}

void
BatchedRunner::runDenseBatch(const ProgramOp &op, std::size_t op_index,
                             std::size_t begin, std::size_t end,
                             const std::int32_t *act_in,
                             std::int32_t *act_out)
{
    const auto &ops = kernels::activeKernels();
    const std::size_t in_dim = op.bank.inDim;
    const bool use16 = opInt16_[op_index];

    // madd staging: pack this shard's input rows once; the packed row
    // is reused by every output neuron.
    if (use16) {
        for (std::size_t b = begin; b < end; ++b)
            ops.packInt16(act_in + b * laneWidth_,
                          act16_.data() + b * laneWidth_, in_dim);
    }

    kernels::GemmArgs args;
    args.weights = weightArena_.data() + opWeightBase_[op_index];
    args.ldw = in_dim;
    args.lda = laneWidth_;
    args.bias = op.bank.muBias.data();
    args.outNeuronStride = 1;
    args.outImageStride = laneWidth_;
    args.inDim = in_dim;
    args.outDim = op.bank.outDim;
    args.finish = finishBase_;
    args.finish.relu = op.relu;
    if (use16)
        args.weights16 = weightArena16_.data() + opWeightBase_[op_index];

    for (std::size_t b0 = begin; b0 < end; b0 += imageTile_) {
        const std::size_t b1 = std::min(b0 + imageTile_, end);
        args.acts = act_in + b0 * laneWidth_;
        args.acts16 = use16 ? act16_.data() + b0 * laneWidth_ : nullptr;
        args.out = act_out + b0 * laneWidth_;
        args.images = b1 - b0;
        ops.gemmBatch(args);
    }
}

void
BatchedRunner::runConvBatch(const ProgramOp &op, std::size_t op_index,
                            std::size_t shard, std::size_t begin,
                            std::size_t end, const std::int32_t *act_in,
                            std::int32_t *act_out)
{
    const auto &ops = kernels::activeKernels();
    const std::size_t positions = op.conv.positions();
    const std::size_t patch = op.conv.patchSize();
    const bool use16 = opInt16_[op_index];
    auto &patches = patches_[shard];
    auto &patches16 = patches16_[shard];

    kernels::GemmArgs args;
    args.weights = weightArena_.data() + opWeightBase_[op_index];
    args.ldw = patch;
    args.lda = patch;
    args.bias = op.bank.muBias.data();
    // Conv maps are neuron-major: out[oc][position].
    args.outNeuronStride = positions;
    args.outImageStride = 1;
    args.inDim = patch;
    args.outDim = op.conv.outChannels;
    args.finish = finishBase_;
    args.finish.relu = op.relu;
    if (use16)
        args.weights16 = weightArena16_.data() + opWeightBase_[op_index];

    for (std::size_t b = begin; b < end; ++b) {
        im2colRaw(op.conv, act_in + b * laneWidth_, patches);
        if (use16) {
            patches16.resize(patches.size());
            ops.packInt16(patches.data(), patches16.data(),
                          patches.size());
        }
        args.acts = patches.data();
        args.acts16 = use16 ? patches16.data() : nullptr;
        args.out = act_out + b * laneWidth_;
        args.images = positions; // the GEMM batch axis is positions
        ops.gemmBatch(args);
    }
}

void
BatchedRunner::runRoundImpl(const float *xs, std::size_t stride,
                            const std::uint32_t *indices,
                            std::size_t count, std::int64_t *out)
{
    const std::size_t out_dim = program_.outputDim();
    if (count == 0)
        return;

    sampleRoundWeights();

    // Quantize the batch onto the activation grid, batch-major. With an
    // index set (adaptive active-set compaction) the gather happens
    // right here — image slot b of the round reads source row
    // indices[b] — so retired images cost nothing downstream and no
    // staging copy of the float rows is ever made.
    const auto &ops = kernels::activeKernels();
    const auto &act = program_.activationFormat;
    const int act_frac = act.fracBits();
    const auto act_min = static_cast<std::int32_t>(act.rawMin());
    const auto act_max = static_cast<std::int32_t>(act.rawMax());
    const std::size_t in_dim = program_.inputDim();
    actA_.assign(count * laneWidth_, 0);
    actB_.assign(count * laneWidth_, 0);
    if (anyInt16_)
        act16_.resize(count * laneWidth_);
    forImageShards(count, [&](std::size_t, std::size_t begin,
                              std::size_t end) {
        for (std::size_t b = begin; b < end; ++b) {
            const std::size_t src = indices ? indices[b] : b;
            ops.quantizeFloat(xs + src * stride,
                              actA_.data() + b * laneWidth_, in_dim,
                              act_frac, act_min, act_max);
        }
    });

    std::int32_t *in_buf = actA_.data();
    std::int32_t *out_buf = actB_.data();
    for (std::size_t oi = 0; oi < program_.ops.size(); ++oi) {
        const auto &op = program_.ops[oi];
        switch (op.kind) {
          case OpKind::Dense:
            forImageShards(count, [&](std::size_t, std::size_t begin,
                                      std::size_t end) {
                runDenseBatch(op, oi, begin, end, in_buf, out_buf);
            });
            stats_.macs += count * op.bank.outDim * op.bank.inDim;
            std::swap(in_buf, out_buf);
            break;
          case OpKind::ConvLowered:
            forImageShards(count, [&](std::size_t shard,
                                      std::size_t begin,
                                      std::size_t end) {
                runConvBatch(op, oi, shard, begin, end, in_buf,
                             out_buf);
            });
            stats_.macs += count * op.conv.outChannels *
                op.conv.positions() * op.conv.patchSize();
            std::swap(in_buf, out_buf);
            break;
          case OpKind::Pool:
            forImageShards(count, [&](std::size_t, std::size_t begin,
                                      std::size_t end) {
                for (std::size_t b = begin; b < end; ++b)
                    maxPoolRaw(op.pool, in_buf + b * laneWidth_,
                               out_buf + b * laneWidth_);
            });
            std::swap(in_buf, out_buf);
            break;
          case OpKind::Flatten:
          case OpKind::Output:
            // Pure relabeling / staging.
            break;
        }
    }

    for (std::size_t b = 0; b < count; ++b) {
        const std::int32_t *row = in_buf + b * laneWidth_;
        std::int64_t *out_row = out + b * out_dim;
        for (std::size_t i = 0; i < out_dim; ++i)
            out_row[i] = row[i];
    }

    stats_.grnSamples = weightGen_.samplesDrawn();
    stats_.images += count;
}

void
BatchedRunner::runRoundBatch(const float *xs, std::size_t count,
                             std::size_t stride, std::int64_t *out)
{
    runRoundImpl(xs, stride, /*indices=*/nullptr, count, out);
}

void
BatchedRunner::runRoundBatchGather(const float *xs, std::size_t stride,
                                   const std::uint32_t *indices,
                                   std::size_t count, std::int64_t *out)
{
    runRoundImpl(xs, stride, indices, count, out);
}

std::vector<std::int64_t>
BatchedRunner::runPass(const float *x)
{
    std::vector<std::int64_t> out(program_.outputDim());
    runRoundBatch(x, 1, program_.inputDim(), out.data());
    return out;
}

} // namespace vibnn::accel
