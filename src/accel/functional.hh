/**
 * @file
 * Fast functional model of the accelerator datapath, driven by the
 * QuantizedProgram IR.
 *
 * Bit-exact with the cycle-level Simulator (a ctest asserts this on
 * both MLP and CNN programs): it consumes GRNG samples in the identical
 * canonical (op, position, round, chunk, set, pe, lane) order and runs
 * the identical DatapathKernel arithmetic, but skips the memory
 * modeling and cycle accounting. Accuracy benches (Tables 6/7, Figure
 * 18, the CNN extension) evaluate thousands of images x MC samples;
 * this path makes that feasible while the Simulator provides the
 * timing on a sample of images.
 */

#ifndef VIBNN_ACCEL_FUNCTIONAL_HH
#define VIBNN_ACCEL_FUNCTIONAL_HH

#include <cstdint>
#include <vector>

#include "accel/config.hh"
#include "accel/executor.hh"
#include "accel/program.hh"
#include "accel/weight_generator.hh"

namespace vibnn::accel
{

/** Functional (untimed) quantized inference engine — the "functional"
 *  executor backend. */
class FunctionalRunner : public Executor
{
  public:
    FunctionalRunner(const QuantizedProgram &program,
                     const AcceleratorConfig &config,
                     grng::GaussianGenerator *generator);

    /** Legacy front-end: lift a flat QuantizedNetwork into a program
     *  (one Dense op per layer) and run that. */
    FunctionalRunner(const QuantizedNetwork &network,
                     const AcceleratorConfig &config,
                     grng::GaussianGenerator *generator);

    /** Untimed; per-pass fresh weight samples. */
    ExecutorCaps
    caps() const override
    {
        return {/*cycleAccurate=*/false, /*batchedRounds=*/false};
    }

    /** One forward pass; raw outputs on the activation grid. */
    std::vector<std::int64_t> runPass(const float *x) override;

    /** Swap the eps source (round/unit scheduling). Not owned. */
    void setGenerator(grng::GaussianGenerator *generator) override;

    /** Pass/sample counters only (caps().cycleAccurate is false, so
     *  the cycle and port fields stay zero). */
    const CycleStats &stats() const override { return stats_; }

    const QuantizedProgram &program() const override { return program_; }
    const AcceleratorConfig &config() const override { return config_; }

  private:
    /** One bank schedule (rounds of M neurons) over a word-padded
     *  input window — the Dense op body and each ConvLowered position
     *  pass. Consumes eps for every lane of every chunk cycle, real
     *  neuron or not, exactly like the simulator. */
    void runBank(const QuantizedLayer &bank, bool relu,
                 const std::int64_t *in, std::int64_t *out);

    QuantizedProgram program_;
    AcceleratorConfig config_;
    DatapathKernel kernel_;
    WeightGenerator weightGen_;
    CycleStats stats_;
    std::vector<std::int64_t> bufferA_, bufferB_;
    std::vector<std::int64_t> patches_, patchBuf_, bankOut_;
    std::vector<std::int64_t> acc_;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_FUNCTIONAL_HH
