/**
 * @file
 * Fast functional model of the accelerator datapath.
 *
 * Bit-exact with the cycle-level Simulator (a ctest asserts this): it
 * consumes GRNG samples in the identical (layer, round, chunk, set, pe,
 * lane) order and runs the identical DatapathKernel arithmetic, but
 * skips the memory modeling and cycle accounting. Accuracy benches
 * (Tables 6/7, Figure 18) evaluate thousands of images x MC samples;
 * this path makes that feasible while the Simulator provides the
 * timing for Table 5 on a sample of images.
 */

#ifndef VIBNN_ACCEL_FUNCTIONAL_HH
#define VIBNN_ACCEL_FUNCTIONAL_HH

#include <cstdint>
#include <vector>

#include "accel/config.hh"
#include "accel/weight_generator.hh"

namespace vibnn::accel
{

/** Functional (untimed) quantized inference engine. */
class FunctionalRunner
{
  public:
    FunctionalRunner(const QuantizedNetwork &network,
                     const AcceleratorConfig &config,
                     grng::GaussianGenerator *generator);

    /** One forward pass; raw outputs on the activation grid. */
    std::vector<std::int64_t> runPass(const float *x);

    /** MC-ensemble classification (equation (6)). */
    std::size_t classify(const float *x, float *probs = nullptr);

    const QuantizedNetwork &network() const { return network_; }

  private:
    QuantizedNetwork network_;
    AcceleratorConfig config_;
    DatapathKernel kernel_;
    WeightGenerator weightGen_;
    std::vector<std::int64_t> bufferA_, bufferB_;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_FUNCTIONAL_HH
