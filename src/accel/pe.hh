/**
 * @file
 * Processing element (paper Figure 11): an N-input MAC (multipliers +
 * adder tree) feeding an accumulator, bias adder and ReLU, organized as
 * a three-stage pipeline. The arithmetic lives in DatapathKernel; this
 * class adds the accumulator state and the MAC statistics.
 */

#ifndef VIBNN_ACCEL_PE_HH
#define VIBNN_ACCEL_PE_HH

#include <cstdint>
#include <vector>

#include "accel/config.hh"

namespace vibnn::accel
{

/** One time-multiplexed neuron processor. */
class Pe
{
  public:
    explicit Pe(const DatapathKernel &kernel) : kernel_(kernel) {}

    /** Reset the accumulator for a new neuron. */
    void
    startNeuron()
    {
        accumulator_ = 0;
    }

    /**
     * One MAC chunk: multiply `count` sampled weights with inputs and
     * fold into the accumulator (stage 1 + stage 2 of the pipeline).
     */
    void
    macChunk(const std::int64_t *weights, const std::int32_t *inputs,
             int count)
    {
        std::int64_t sum = 0;
        for (int i = 0; i < count; ++i)
            sum += weights[i] * inputs[i];
        accumulator_ += sum;
        macs_ += static_cast<std::uint64_t>(count);
    }

    /** Stage 3: bias + ReLU + requantize (hidden layers). */
    std::int64_t
    finish(std::int64_t bias_raw, bool output_layer) const
    {
        return output_layer
                   ? kernel_.finishOutputNeuron(accumulator_, bias_raw)
                   : kernel_.finishNeuron(accumulator_, bias_raw);
    }

    /** Pipeline latency in cycles: multiply, accumulate, activate. */
    static constexpr int pipelineDepth = 3;

    std::int64_t accumulator() const { return accumulator_; }
    std::uint64_t macCount() const { return macs_; }

  private:
    DatapathKernel kernel_;
    std::int64_t accumulator_ = 0;
    std::uint64_t macs_ = 0;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_PE_HH
