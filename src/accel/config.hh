/**
 * @file
 * Accelerator configuration and network quantization.
 *
 * AcceleratorConfig captures the paper's architectural parameters — T
 * PE-sets of S PEs with N inputs each (S = N by design, Section 5.4),
 * operand bit-length B — and derives the fixed-point formats used along
 * the datapath:
 *
 *   - activations: Q(B, B-4) (inputs are [0,1] pixels / ReLU outputs)
 *   - weights (mu, sigma, bias): Q(B, B-2) (weights live in [-2, 2))
 *   - eps: Q(8, 5) (the GRNGs produce 8-bit unit Gaussians)
 *
 * QuantizedNetwork is a trained BayesianMlp lowered onto those grids:
 * raw integer mu/sigma planes per layer, ready to be loaded into the
 * simulator's WPMems or run through the fast functional path.
 */

#ifndef VIBNN_ACCEL_CONFIG_HH
#define VIBNN_ACCEL_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bnn/bayesian_mlp.hh"
#include "fixed/fixed_point.hh"

namespace vibnn::accel
{

/** Architectural + numeric configuration. */
struct AcceleratorConfig
{
    /** Number of PE sets (paper: 16). */
    int peSets = 16;
    /** PEs per set == inputs per PE (paper: 8). */
    int pesPerSet = 8;
    /** Operand bit-length B (paper settles on 8). */
    int bits = 8;
    /** Monte-Carlo passes per classified image. */
    int mcSamples = 8;

    /** Total PEs (M = T * S). */
    int totalPes() const { return peSets * pesPerSet; }
    /** Inputs per PE (N = S). */
    int peInputs() const { return pesPerSet; }

    fixed::FixedPointFormat activationFormat() const;
    fixed::FixedPointFormat weightFormat() const;
    fixed::FixedPointFormat epsFormat() const;

    /**
     * Validate against the paper's constraint system (equations (15)):
     * word widths within MaxWS and the write-drain feasibility
     * condition T <= ceil(min layer input / N). fatal() on violation.
     */
    void validate(const std::vector<std::size_t> &layer_sizes) const;
};

/** One quantized layer: raw integer parameter planes. */
struct QuantizedLayer
{
    std::size_t inDim = 0;
    std::size_t outDim = 0;
    /** Row-major outDim x inDim planes. */
    std::vector<std::int32_t> muWeight;
    std::vector<std::int32_t> sigmaWeight;
    std::vector<std::int32_t> muBias;
    std::vector<std::int32_t> sigmaBias;
};

/** A BNN lowered to fixed point. */
struct QuantizedNetwork
{
    std::vector<QuantizedLayer> layers;
    fixed::FixedPointFormat activationFormat{8, 4};
    fixed::FixedPointFormat weightFormat{8, 6};
    fixed::FixedPointFormat epsFormat{8, 5};

    /** Input width. fatal() on an empty network. */
    std::size_t inputDim() const;
    /** Output width. fatal() on an empty network. */
    std::size_t outputDim() const;
    std::vector<std::size_t> layerSizes() const;
};

/** Lower a trained BNN onto the config's fixed-point grids. */
QuantizedNetwork quantizeNetwork(const bnn::BayesianMlp &net,
                                 const AcceleratorConfig &config);

/**
 * The shared datapath arithmetic — used identically by the cycle
 * simulator and the fast functional path so the two are bit-exact by
 * construction.
 */
struct DatapathKernel
{
    fixed::FixedPointFormat activation;
    fixed::FixedPointFormat weight;
    fixed::FixedPointFormat eps;

    explicit DatapathKernel(const QuantizedNetwork &net)
        : activation(net.activationFormat), weight(net.weightFormat),
          eps(net.epsFormat)
    {
    }

    DatapathKernel(const fixed::FixedPointFormat &activation_format,
                   const fixed::FixedPointFormat &weight_format,
                   const fixed::FixedPointFormat &eps_format)
        : activation(activation_format), weight(weight_format),
          eps(eps_format)
    {
    }

    /** Weight updater: w = mu + sigma * eps (floor-truncated product,
     *  saturated to the weight grid) — Figure 12's datapath. */
    std::int64_t
    sampleWeight(std::int64_t mu_raw, std::int64_t sigma_raw,
                 std::int64_t eps_raw) const
    {
        const std::int64_t scaled =
            (sigma_raw * eps_raw) >> eps.fracBits();
        return weight.saturate(mu_raw + scaled);
    }

    /** Accumulator frac bits: products carry weight+activation frac. */
    int accFracBits() const
    {
        return weight.fracBits() + activation.fracBits();
    }

    /** Bias aligned to the accumulator grid. */
    std::int64_t
    alignBias(std::int64_t bias_raw) const
    {
        return bias_raw << activation.fracBits();
    }

    /** Bias add + ReLU + requantize to the activation grid. */
    std::int64_t
    finishNeuron(std::int64_t acc, std::int64_t bias_raw) const
    {
        std::int64_t v = acc + alignBias(bias_raw);
        if (v < 0)
            v = 0; // ReLU before requantization
        return activation.saturate(v >> weight.fracBits());
    }

    /** Same, but without ReLU (output layer). */
    std::int64_t
    finishOutputNeuron(std::int64_t acc, std::int64_t bias_raw) const
    {
        const std::int64_t v = acc + alignBias(bias_raw);
        // Arithmetic shift floors negative values too.
        return activation.saturate(v >> weight.fracBits());
    }
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_CONFIG_HH
