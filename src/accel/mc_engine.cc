#include "accel/mc_engine.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "grng/registry.hh"
#include "nn/activations.hh"
#include "nn/tensor.hh"

namespace vibnn::accel
{

McEngine::McEngine(const QuantizedProgram &program,
                   const AcceleratorConfig &config,
                   const McEngineConfig &mc)
    : program_(program), config_(config), mc_(mc)
{
    validateProgram(program_, config_);
    VIBNN_ASSERT(config_.mcSamples >= 1, "need at least one MC sample");

    if (mc_.threads == 0) {
        executors_ = ThreadPool::global().workerCount() + 1;
    } else {
        executors_ = mc_.threads;
        if (mc_.threads > 1)
            ownPool_ = std::make_unique<ThreadPool>(mc_.threads - 1);
    }
}

McEngine::McEngine(const QuantizedNetwork &network,
                   const AcceleratorConfig &config,
                   const McEngineConfig &mc)
    : McEngine(programFromNetwork(network), config, mc)
{
}

McEngine::~McEngine() = default;

std::uint64_t
McEngine::streamSeed(std::uint64_t seed_base, std::uint64_t image,
                     std::uint64_t sample)
{
    // splitmix64 over a linear combination of the unit coordinates:
    // distinct (image, sample) pairs land on decorrelated streams, and
    // the mapping is schedule-free — it depends only on the unit.
    std::uint64_t state = seed_base +
        0x9E3779B97F4A7C15ULL * (image + 1) +
        0xBF58476D1CE4E5B9ULL * (sample + 1);
    return splitmix64Next(state);
}

std::uint64_t
McEngine::roundSeed(std::uint64_t seed_base, std::uint64_t round)
{
    // Its own multiplier keeps round streams off the per-unit seed
    // lattice; like streamSeed the mapping depends only on the unit
    // (the round), never on the schedule.
    std::uint64_t state = seed_base +
        0x94D049BB133111EBULL * (round + 1) + 0xD6E8FEB86659FD93ULL;
    return splitmix64Next(state);
}

void
McEngine::ensureReplicas(std::size_t n)
{
    while (replicas_.size() < n) {
        Replica replica;
        // Placeholder stream; every unit swaps in its own before use.
        replica.idleGenerator =
            grng::makeGenerator(mc_.generatorId, mc_.seedBase);
        replica.executor =
            makeExecutor(mc_.backendId, program_, config_,
                         replica.idleGenerator.get());
        replicas_.push_back(std::move(replica));
    }
}

std::vector<std::int64_t>
McEngine::runUnit(Replica &replica, const float *x, std::uint64_t image,
                  std::uint64_t sample)
{
    const std::uint64_t seed = streamSeed(mc_.seedBase, image, sample);
    // Counter-based generators rekey in place (two register writes):
    // the per-unit stream switch then skips the heap construction. The
    // setGenerator call still runs to reset the executor's eps ring.
    if (replica.idleGenerator->reseed(seed)) {
        replica.executor->setGenerator(replica.idleGenerator.get());
        return replica.executor->runPass(x);
    }
    auto generator = grng::makeGenerator(mc_.generatorId, seed);
    replica.executor->setGenerator(generator.get());
    auto raw = replica.executor->runPass(x);
    // Leave the replica pointing at its own long-lived stream before
    // the unit's generator goes out of scope.
    replica.executor->setGenerator(replica.idleGenerator.get());
    return raw;
}

std::vector<std::vector<std::int64_t>>
McEngine::runUnits(const float *xs, std::size_t count, std::size_t stride)
{
    const std::size_t samples =
        static_cast<std::size_t>(config_.mcSamples);
    const std::size_t units = count * samples;
    std::vector<std::vector<std::int64_t>> raw(units);
    if (units == 0)
        return raw;

    const std::size_t replica_count =
        std::max<std::size_t>(1, std::min(executors_, units));
    ensureReplicas(replica_count);
    // Unit-level scheduling owns the pool here; revoke any intra-pass
    // grant so a backend cannot fan out underneath it.
    for (auto &replica : replicas_)
        replica.executor->setWorkPool(nullptr);

    // Static unit assignment: replica r owns units r, r+R, r+2R, ...
    // Outputs depend only on the unit (seeded stream + pure pass), so
    // the partition is a performance choice, not a semantic one.
    auto run_replica = [&](std::size_t r) {
        Replica &replica = replicas_[r];
        for (std::size_t u = r; u < units; u += replica_count) {
            const std::size_t image = u / samples;
            const std::size_t sample = u % samples;
            raw[u] =
                runUnit(replica, xs + image * stride, image, sample);
        }
    };

    ThreadPool *pool =
        mc_.threads == 0 ? &ThreadPool::global() : ownPool_.get();
    if (pool && replica_count > 1)
        pool->parallelFor(replica_count, run_replica);
    else
        for (std::size_t r = 0; r < replica_count; ++r)
            run_replica(r);
    return raw;
}

std::vector<std::vector<std::int64_t>>
McEngine::runRoundsBatch(const float *xs, std::size_t count,
                         std::size_t stride)
{
    const std::size_t rounds =
        static_cast<std::size_t>(config_.mcSamples);
    const std::size_t out_dim = program_.outputDim();
    std::vector<std::vector<std::int64_t>> raw(rounds);
    if (count == 0)
        return raw;

    const std::size_t replica_count =
        std::max<std::size_t>(1, std::min(executors_, rounds));
    ensureReplicas(replica_count);

    // Oversubscription guard: when round-level scheduling fans the
    // rounds over the pool (replica_count > 1), backends must not
    // also fan the image dimension over the same workers. With a
    // single replica the rounds run serially, so the pool is free —
    // hand it to the backend for intra-pass (image-dim) parallelism;
    // weights are frozen per round, so results stay bit-identical
    // either way.
    ThreadPool *pool =
        mc_.threads == 0 ? &ThreadPool::global() : ownPool_.get();
    const bool round_level = pool != nullptr && replica_count > 1;
    for (auto &replica : replicas_)
        replica.executor->setWorkPool(round_level ? nullptr : pool);

    // Static round assignment, mirroring runUnits: replica r owns
    // rounds r, r+R, r+2R, ... A round's output depends only on its
    // seeded stream and the batch, so the partition is a performance
    // choice, not a semantic one.
    auto run_replica = [&](std::size_t r) {
        Replica &replica = replicas_[r];
        for (std::size_t u = r; u < rounds; u += replica_count) {
            const std::uint64_t seed = roundSeed(mc_.seedBase, u);
            raw[u].resize(count * out_dim);
            // Counter-based generators rekey in place — the per-round
            // stream switch costs two register writes instead of a
            // heap construction per round.
            if (replica.idleGenerator->reseed(seed)) {
                replica.executor->setGenerator(
                    replica.idleGenerator.get());
                replica.executor->runRoundBatch(xs, count, stride,
                                                raw[u].data());
                continue;
            }
            auto generator = grng::makeGenerator(mc_.generatorId, seed);
            replica.executor->setGenerator(generator.get());
            replica.executor->runRoundBatch(xs, count, stride,
                                            raw[u].data());
            replica.executor->setGenerator(
                replica.idleGenerator.get());
        }
    };

    if (round_level)
        pool->parallelFor(replica_count, run_replica);
    else
        for (std::size_t r = 0; r < replica_count; ++r)
            run_replica(r);
    return raw;
}

namespace
{

/**
 * The one softmax-average ensemble reduction (equation (6)): sample
 * s's raw outputs come from raw_of(s). Serial, in sample order — the
 * same fixed accumulation sequence Executor::classify performs,
 * regardless of thread count. A non-null sample_probs captures each
 * sample's softmax distribution as a side channel; the mean is
 * accumulated identically either way.
 */
template <typename RawOf>
void
reduceEnsemble(std::size_t samples, std::size_t out_dim,
               const fixed::FixedPointFormat &act, RawOf raw_of,
               float *probs, float *sample_probs)
{
    std::vector<float> logits(out_dim);
    std::fill(probs, probs + out_dim, 0.0f);
    for (std::size_t s = 0; s < samples; ++s) {
        const std::int64_t *raw = raw_of(s);
        for (std::size_t i = 0; i < out_dim; ++i)
            logits[i] = static_cast<float>(act.toReal(raw[i]));
        nn::softmax(logits.data(), out_dim);
        if (sample_probs)
            std::copy(logits.begin(), logits.end(),
                      sample_probs + s * out_dim);
        for (std::size_t i = 0; i < out_dim; ++i)
            probs[i] += logits[i];
    }
    const float inv = 1.0f / static_cast<float>(samples);
    for (std::size_t i = 0; i < out_dim; ++i)
        probs[i] *= inv;
}

} // namespace

void
McEngine::reduceProbs(const std::vector<std::int64_t> *raw_samples,
                      std::size_t samples, float *probs,
                      float *sample_probs) const
{
    reduceEnsemble(samples, program_.outputDim(),
                   program_.activationFormat,
                   [&](std::size_t s) { return raw_samples[s].data(); },
                   probs, sample_probs);
}

void
McEngine::reduceRoundProbs(
    const std::vector<std::vector<std::int64_t>> &rounds,
    std::size_t image, float *probs, float *sample_probs) const
{
    const std::size_t out_dim = program_.outputDim();
    reduceEnsemble(rounds.size(), out_dim, program_.activationFormat,
                   [&](std::size_t s) {
                       return rounds[s].data() + image * out_dim;
                   },
                   probs, sample_probs);
}

std::vector<std::size_t>
McEngine::classifyBatchImpl(const float *xs, std::size_t count,
                            std::size_t stride, float *probs,
                            float *sample_probs)
{
    const std::size_t out_dim = program_.outputDim();
    const std::size_t samples =
        static_cast<std::size_t>(config_.mcSamples);
    std::vector<std::size_t> predictions(count, 0);
    if (count == 0)
        return predictions;

    std::vector<float> acc(out_dim);
    const auto image_samples = [&](std::size_t image) {
        return sample_probs ? sample_probs + image * samples * out_dim
                            : nullptr;
    };
    if (mc_.schedule == McSchedule::PerRound) {
        const auto rounds = runRoundsBatch(xs, count, stride);
        for (std::size_t image = 0; image < count; ++image) {
            reduceRoundProbs(rounds, image, acc.data(),
                             image_samples(image));
            if (probs)
                std::copy(acc.begin(), acc.end(),
                          probs + image * out_dim);
            predictions[image] = nn::argmax(acc.data(), acc.size());
        }
        return predictions;
    }

    const auto raw = runUnits(xs, count, stride);
    for (std::size_t image = 0; image < count; ++image) {
        reduceProbs(raw.data() + image * samples, samples, acc.data(),
                    image_samples(image));
        if (probs)
            std::copy(acc.begin(), acc.end(), probs + image * out_dim);
        predictions[image] = nn::argmax(acc.data(), acc.size());
    }
    return predictions;
}

std::vector<std::size_t>
McEngine::classifyBatch(const float *xs, std::size_t count,
                        std::size_t stride, float *probs)
{
    return classifyBatchImpl(xs, count, stride, probs, nullptr);
}

McBatchResult
McEngine::classifyBatchDetailed(const float *xs, std::size_t count,
                                std::size_t stride,
                                bool keep_sample_probs)
{
    const std::size_t out_dim = program_.outputDim();
    const std::size_t samples =
        static_cast<std::size_t>(config_.mcSamples);
    McBatchResult result;
    result.probs.resize(count * out_dim);
    if (keep_sample_probs)
        result.sampleProbs.resize(count * samples * out_dim);
    result.predicted = classifyBatchImpl(
        xs, count, stride, result.probs.data(),
        keep_sample_probs ? result.sampleProbs.data() : nullptr);
    return result;
}

void
McEngine::runRoundRange(const float *xs, std::size_t stride,
                        const std::uint32_t *indices, std::size_t count,
                        int r_begin, int r_end,
                        std::vector<std::int64_t> &raw)
{
    const std::size_t out_dim = program_.outputDim();
    const std::size_t rounds = static_cast<std::size_t>(r_end - r_begin);
    raw.resize(rounds * count * out_dim);
    if (rounds == 0 || count == 0)
        return;

    const std::size_t replica_count =
        std::max<std::size_t>(1, std::min(executors_, rounds));
    ensureReplicas(replica_count);

    // Same oversubscription policy as runRoundsBatch: round-level
    // fan-out owns the pool when several rounds run at once; a lone
    // replica (tail chunks shrink to one round) hands the pool down
    // for image-dimension parallelism instead.
    ThreadPool *pool =
        mc_.threads == 0 ? &ThreadPool::global() : ownPool_.get();
    const bool round_level = pool != nullptr && replica_count > 1;
    for (auto &replica : replicas_)
        replica.executor->setWorkPool(round_level ? nullptr : pool);

    auto run_replica = [&](std::size_t r) {
        Replica &replica = replicas_[r];
        for (std::size_t u = r; u < rounds; u += replica_count) {
            // Seed by the GLOBAL round index: the stream of round
            // r_begin + u is the one the fixed-T run uses for that same
            // round, so surviving images' samples are bit-identical to
            // it regardless of chunking or who else is still active.
            const std::uint64_t seed =
                roundSeed(mc_.seedBase,
                          static_cast<std::uint64_t>(r_begin) + u);
            std::int64_t *out = raw.data() + u * count * out_dim;
            if (replica.idleGenerator->reseed(seed)) {
                replica.executor->setGenerator(
                    replica.idleGenerator.get());
                replica.executor->runRoundBatchGather(xs, stride,
                                                      indices, count,
                                                      out);
                continue;
            }
            auto generator = grng::makeGenerator(mc_.generatorId, seed);
            replica.executor->setGenerator(generator.get());
            replica.executor->runRoundBatchGather(xs, stride, indices,
                                                  count, out);
            replica.executor->setGenerator(replica.idleGenerator.get());
        }
    };

    if (round_level)
        pool->parallelFor(replica_count, run_replica);
    else
        for (std::size_t r = 0; r < replica_count; ++r)
            run_replica(r);
}

McAdaptiveBatchResult
McEngine::classifyBatchAdaptive(const float *xs, std::size_t count,
                                std::size_t stride,
                                const McAdaptiveOptions &options,
                                bool keep_sample_probs)
{
    const std::size_t out_dim = program_.outputDim();
    const int budget =
        options.budget > 0 ? options.budget : config_.mcSamples;
    VIBNN_ASSERT(budget >= 1, "adaptive MC needs a positive budget");

    McAdaptiveBatchResult result;
    result.predicted.assign(count, 0);
    result.probs.assign(count * out_dim, 0.0f);
    result.achieved.assign(count, 0);
    result.exitReason.assign(count, McExitReason::Budget);
    if (keep_sample_probs)
        result.sampleProbs.assign(
            count * static_cast<std::size_t>(budget) * out_dim, 0.0f);
    if (count == 0)
        return result;

    if (!options.enabled) {
        // threshold=off contract: byte-for-byte today's fixed-T path
        // (same float reduction, same code), with the adaptive
        // bookkeeping reporting "ran the whole budget".
        VIBNN_ASSERT(budget == config_.mcSamples,
                     "threshold=off adaptive MC must use the engine's "
                     "configured round budget");
        result.predicted = classifyBatchImpl(
            xs, count, stride, result.probs.data(),
            keep_sample_probs ? result.sampleProbs.data() : nullptr);
        std::fill(result.achieved.begin(), result.achieved.end(),
                  budget);
        result.meanRounds = static_cast<double>(budget);
        return result;
    }

    // The sequential per-image fallback stream of non-batched backends
    // makes image i's eps depend on how many images precede it in the
    // round — batch-composition-dependent, which adaptive compaction
    // would expose. Only the weight-reuse path has the per-image
    // independence the determinism contract needs.
    if (!executorCaps(mc_.backendId).batchedRounds)
        fatal("adaptive early-exit MC requires a batched-rounds "
              "backend (got '" + mc_.backendId + "')");

    const int chunk = std::max(options.chunk, 1);
    const auto &act = program_.activationFormat;
    std::vector<stats::SequentialPosteriorTest> tests(count);
    for (auto &test : tests)
        test.reset(out_dim);
    std::vector<std::uint32_t> active(count);
    std::iota(active.begin(), active.end(), 0u);

    const bool timed = options.deadlineSeconds > 0.0;
    const auto t_start = std::chrono::steady_clock::now();

    std::vector<std::int64_t> raw;
    std::vector<float> logits(out_dim);
    int done = 0;
    while (done < budget && !active.empty()) {
        const int next = std::min(done + chunk, budget);
        runRoundRange(xs, stride, active.data(), active.size(), done,
                      next, raw);

        // Serial per-image accumulation in global round order: every
        // image's running statistics are a pure function of its own
        // sample sequence, independent of schedule and neighbours.
        for (std::size_t a = 0; a < active.size(); ++a) {
            const std::uint32_t image = active[a];
            for (int r = done; r < next; ++r) {
                const std::int64_t *row = raw.data() +
                    (static_cast<std::size_t>(r - done) * active.size() +
                     a) *
                        out_dim;
                for (std::size_t i = 0; i < out_dim; ++i)
                    logits[i] =
                        static_cast<float>(act.toReal(row[i]));
                nn::softmax(logits.data(), out_dim);
                if (keep_sample_probs)
                    std::copy(
                        logits.begin(), logits.end(),
                        result.sampleProbs.data() +
                            (static_cast<std::size_t>(image) * budget +
                             tests[image].samples()) *
                                out_dim);
                tests[image].add(logits.data());
            }
        }
        done = next;

        // Retire converged/decided images; compact the survivors.
        // This runs before the deadline check so images that settled
        // during this chunk report their true exit reason even when
        // the chunk also blew the deadline.
        std::vector<std::uint32_t> survivors;
        survivors.reserve(active.size());
        for (const std::uint32_t image : active) {
            if (done >= budget)
                break; // everyone left exits as Budget below
            const auto decision =
                tests[image].decide(options.test, budget);
            if (decision == stats::SequentialDecision::Converged)
                result.exitReason[image] = McExitReason::Converged;
            else if (decision == stats::SequentialDecision::Decided)
                result.exitReason[image] = McExitReason::Decided;
            else
                survivors.push_back(image);
        }
        if (done < budget)
            active.swap(survivors);

        // Anytime deadline (wall clock, chunk granularity): whatever
        // is still active keeps its running mean as the best answer by
        // the deadline. Images that just exhausted the budget keep
        // their Budget reason — the deadline only cuts rounds short.
        if (timed && done < budget && !active.empty()) {
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t_start)
                    .count();
            if (elapsed >= options.deadlineSeconds) {
                for (const std::uint32_t image : active)
                    result.exitReason[image] = McExitReason::Deadline;
                active.clear();
                break;
            }
        }
    }

    double total_rounds = 0.0;
    for (std::size_t image = 0; image < count; ++image) {
        result.achieved[image] = tests[image].samples();
        total_rounds += result.achieved[image];
        tests[image].mean(result.probs.data() + image * out_dim);
        result.predicted[image] = tests[image].predicted();
    }
    result.meanRounds = total_rounds / static_cast<double>(count);
    return result;
}

std::size_t
McEngine::classify(const float *x, float *probs)
{
    return classifyBatch(x, 1, program_.inputDim(), probs).front();
}

McResult
McEngine::classifyDetailed(const float *x)
{
    McResult result;
    // For a one-image batch a PerRound round IS one per-sample pass,
    // so both schedules fill rawSamples with mcSamples raw outputs.
    result.rawSamples = mc_.schedule == McSchedule::PerRound
                            ? runRoundsBatch(x, 1, program_.inputDim())
                            : runUnits(x, 1, program_.inputDim());
    result.probs.assign(program_.outputDim(), 0.0f);
    reduceProbs(result.rawSamples.data(), result.rawSamples.size(),
                result.probs.data());
    result.predicted = nn::argmax(result.probs.data(),
                                  result.probs.size());
    return result;
}

CycleStats
McEngine::stats() const
{
    CycleStats merged;
    for (const auto &replica : replicas_)
        merged += replica.executor->stats();
    return merged;
}

} // namespace vibnn::accel
