/**
 * @file
 * Quantized program IR: compiler front-ends and validation (see
 * program.hh).
 */

#include "accel/program.hh"

#include <algorithm>

#include "bnn/bayesian_cnn.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace vibnn::accel
{

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Dense:
        return "dense";
      case OpKind::ConvLowered:
        return "conv";
      case OpKind::Pool:
        return "pool";
      case OpKind::Flatten:
        return "flatten";
      case OpKind::Output:
        return "output";
    }
    return "?";
}

std::size_t
QuantizedProgram::inputDim() const
{
    if (ops.empty())
        fatal("QuantizedProgram::inputDim(): program has no ops "
              "(compile a network first)");
    return ops.front().inSize;
}

std::size_t
QuantizedProgram::outputDim() const
{
    if (ops.empty())
        fatal("QuantizedProgram::outputDim(): program has no ops "
              "(compile a network first)");
    return ops.back().outSize;
}

std::vector<std::size_t>
QuantizedProgram::bankInputSizes() const
{
    std::vector<std::size_t> sizes;
    for (const auto &op : ops) {
        if (op.isCompute())
            sizes.push_back(op.bank.inDim);
    }
    return sizes;
}

void
validateProgram(const QuantizedProgram &program,
                const AcceleratorConfig &config)
{
    if (program.ops.empty())
        fatal("validateProgram: program has no ops");

    std::size_t flowing = program.ops.front().inSize;
    bool seen_compute = false;
    for (std::size_t i = 0; i < program.ops.size(); ++i) {
        const auto &op = program.ops[i];
        if (op.inSize != flowing) {
            fatal(strfmt("program op %zu (%s): inSize %zu does not chain "
                         "with previous outSize %zu",
                         i, opKindName(op.kind), op.inSize, flowing));
        }
        switch (op.kind) {
          case OpKind::Dense:
            if (op.bank.inDim != op.inSize ||
                op.bank.outDim != op.outSize) {
                fatal(strfmt("program op %zu (dense): bank %zux%zu does "
                             "not match op sizes %zu->%zu",
                             i, op.bank.outDim, op.bank.inDim, op.inSize,
                             op.outSize));
            }
            seen_compute = true;
            break;
          case OpKind::ConvLowered:
            if (!op.conv.valid())
                fatal(strfmt("program op %zu (conv): invalid geometry",
                             i));
            if (op.inSize != op.conv.inputSize() ||
                op.outSize != op.conv.outputSize() ||
                op.bank.inDim != op.conv.patchSize() ||
                op.bank.outDim != op.conv.outChannels) {
                fatal(strfmt("program op %zu (conv): bank/geometry "
                             "mismatch",
                             i));
            }
            seen_compute = true;
            break;
          case OpKind::Pool:
            if (!op.pool.valid())
                fatal(strfmt("program op %zu (pool): invalid geometry",
                             i));
            if (op.inSize != op.pool.inputSize() ||
                op.outSize != op.pool.outputSize()) {
                fatal(strfmt("program op %zu (pool): geometry does not "
                             "match op sizes",
                             i));
            }
            break;
          case OpKind::Flatten:
          case OpKind::Output:
            if (op.outSize != op.inSize)
                fatal(strfmt("program op %zu (%s): must be identity-"
                             "sized",
                             i, opKindName(op.kind)));
            break;
        }
        flowing = op.outSize;
    }
    if (!seen_compute)
        fatal("validateProgram: program has no compute ops");
    if (program.ops.back().kind != OpKind::Output)
        fatal("validateProgram: program must end in an Output staging op");

    // Equation-(15) constraint system, applied once over the whole
    // program: the write-drain condition ranges over every compute
    // op's bank input (AcceleratorConfig::validate takes the min over
    // all entries but the last, so append the output width).
    std::vector<std::size_t> sizes = program.bankInputSizes();
    sizes.push_back(program.outputDim());
    config.validate(sizes);
}

QuantizedLayer
quantizeBank(const float *mu_weight, const float *rho_weight,
             const float *mu_bias, const float *rho_bias,
             std::size_t in_dim, std::size_t out_dim,
             const fixed::FixedPointFormat &weight_format)
{
    QuantizedLayer bank;
    bank.inDim = in_dim;
    bank.outDim = out_dim;

    const std::size_t weights = in_dim * out_dim;
    bank.muWeight.resize(weights);
    bank.sigmaWeight.resize(weights);
    for (std::size_t i = 0; i < weights; ++i) {
        bank.muWeight[i] = static_cast<std::int32_t>(
            weight_format.fromReal(mu_weight[i]));
        bank.sigmaWeight[i] = static_cast<std::int32_t>(
            weight_format.fromReal(
                bnn::VariationalDense::sigmaOf(rho_weight[i])));
    }

    bank.muBias.resize(out_dim);
    bank.sigmaBias.resize(out_dim);
    for (std::size_t i = 0; i < out_dim; ++i) {
        bank.muBias[i] = static_cast<std::int32_t>(
            weight_format.fromReal(mu_bias[i]));
        bank.sigmaBias[i] = static_cast<std::int32_t>(
            weight_format.fromReal(
                bnn::VariationalDense::sigmaOf(rho_bias[i])));
    }
    return bank;
}

namespace
{

void
applyFormats(QuantizedProgram &program, const AcceleratorConfig &config)
{
    program.activationFormat = config.activationFormat();
    program.weightFormat = config.weightFormat();
    program.epsFormat = config.epsFormat();
}

ProgramOp
makeDenseOp(const bnn::VariationalDense &layer, bool relu,
            const fixed::FixedPointFormat &weight_format,
            std::size_t index)
{
    ProgramOp op;
    op.kind = OpKind::Dense;
    op.inSize = layer.inDim();
    op.outSize = layer.outDim();
    op.relu = relu;
    op.bank = quantizeBank(
        layer.muWeight().data().data(), layer.rhoWeight().data().data(),
        layer.muBias().data(), layer.rhoBias().data(), layer.inDim(),
        layer.outDim(), weight_format);
    op.label = strfmt("dense%zu %zu->%zu", index, op.inSize, op.outSize);
    return op;
}

ProgramOp
makeOutputOp(std::size_t dim)
{
    ProgramOp op;
    op.kind = OpKind::Output;
    op.inSize = dim;
    op.outSize = dim;
    op.relu = false;
    op.label = strfmt("output %zu", dim);
    return op;
}

} // namespace

QuantizedProgram
compile(const bnn::BayesianMlp &net, const AcceleratorConfig &config)
{
    QuantizedProgram program;
    applyFormats(program, config);

    const auto &layers = net.layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
        program.ops.push_back(makeDenseOp(
            layers[i], /*relu=*/i + 1 < layers.size(),
            program.weightFormat, i));
    }
    if (!program.ops.empty())
        program.ops.push_back(makeOutputOp(program.ops.back().outSize));

    validateProgram(program, config);
    return program;
}

QuantizedProgram
compile(const bnn::BayesianConvNet &net, const AcceleratorConfig &config)
{
    QuantizedProgram program;
    applyFormats(program, config);

    // Conv(+pool) stages: the block list is the authoritative stage
    // order; each conv layer carries its own geometry.
    const auto &blocks = net.config().blocks;
    const auto &convs = net.convLayers();
    VIBNN_ASSERT(blocks.size() == convs.size(),
                 "conv block/layer count mismatch");
    for (std::size_t i = 0; i < convs.size(); ++i) {
        const auto &spec = convs[i].spec();
        ProgramOp op;
        op.kind = OpKind::ConvLowered;
        op.conv = spec;
        op.inSize = spec.inputSize();
        op.outSize = spec.outputSize();
        op.relu = true;
        op.bank = quantizeBank(convs[i].muWeight().data().data(),
                               convs[i].rhoWeight().data().data(),
                               convs[i].muBias().data(),
                               convs[i].rhoBias().data(),
                               spec.patchSize(), spec.outChannels,
                               program.weightFormat);
        op.label = strfmt("conv%zu %zu->%zu %zux%zu @%zux%zu", i,
                          spec.inChannels, spec.outChannels, spec.kernel,
                          spec.kernel, spec.inHeight, spec.inWidth);
        program.ops.push_back(std::move(op));

        if (blocks[i].pool) {
            nn::PoolSpec pool;
            pool.channels = spec.outChannels;
            pool.inHeight = spec.outHeight();
            pool.inWidth = spec.outWidth();
            pool.window = blocks[i].poolWindow;
            pool.stride = blocks[i].poolWindow;
            ProgramOp pop;
            pop.kind = OpKind::Pool;
            pop.pool = pool;
            pop.inSize = pool.inputSize();
            pop.outSize = pool.outputSize();
            pop.relu = false;
            pop.label = strfmt("pool%zu %zux%zu", i, pool.window,
                               pool.window);
            program.ops.push_back(std::move(pop));
        }
    }

    // CHW -> flat boundary before the dense head.
    {
        ProgramOp op;
        op.kind = OpKind::Flatten;
        op.inSize = program.ops.back().outSize;
        op.outSize = op.inSize;
        op.relu = false;
        op.label = strfmt("flatten %zu", op.inSize);
        program.ops.push_back(std::move(op));
    }

    const auto &dense = net.denseLayers();
    for (std::size_t i = 0; i < dense.size(); ++i) {
        program.ops.push_back(makeDenseOp(
            dense[i], /*relu=*/i + 1 < dense.size(),
            program.weightFormat, i));
    }
    program.ops.push_back(makeOutputOp(net.outputDim()));

    validateProgram(program, config);
    return program;
}

QuantizedProgram
programFromNetwork(const QuantizedNetwork &network)
{
    QuantizedProgram program;
    program.activationFormat = network.activationFormat;
    program.weightFormat = network.weightFormat;
    program.epsFormat = network.epsFormat;

    for (std::size_t i = 0; i < network.layers.size(); ++i) {
        const auto &layer = network.layers[i];
        ProgramOp op;
        op.kind = OpKind::Dense;
        op.inSize = layer.inDim;
        op.outSize = layer.outDim;
        op.relu = i + 1 < network.layers.size();
        op.bank = layer;
        op.label = strfmt("dense%zu %zu->%zu", i, op.inSize, op.outSize);
        program.ops.push_back(std::move(op));
    }
    if (!program.ops.empty())
        program.ops.push_back(makeOutputOp(program.ops.back().outSize));
    return program;
}

} // namespace vibnn::accel
