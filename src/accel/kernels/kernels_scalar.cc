/**
 * @file
 * Portable scalar tier — the semantic reference every SIMD tier is
 * tested bit-exact against. Compiled everywhere, no ISA assumptions.
 */

#include "accel/kernels/kernels.hh"
#include "accel/kernels/kernels_detail.hh"

namespace vibnn::accel::kernels
{

namespace
{

void
quantizeDoubleScalar(const double *in, std::int32_t *out, std::size_t n,
                     int frac_bits, std::int32_t raw_min,
                     std::int32_t raw_max)
{
    const double scale = std::ldexp(1.0, frac_bits);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = detail::quantizeOne(in[i], scale, raw_min, raw_max);
}

void
quantizeFloatScalar(const float *in, std::int32_t *out, std::size_t n,
                    int frac_bits, std::int32_t raw_min,
                    std::int32_t raw_max)
{
    const double scale = std::ldexp(1.0, frac_bits);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = detail::quantizeOne(static_cast<double>(in[i]), scale,
                                     raw_min, raw_max);
}

void
sampleWeightsScalar(const std::int32_t *mu, const std::int32_t *sigma,
                    const std::int32_t *eps, std::int32_t *out,
                    std::size_t n, const SampleParams &params)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = detail::sampleOne(mu[i], sigma[i], eps[i], params);
}

void
packInt16Scalar(const std::int32_t *in, std::int16_t *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::int16_t>(in[i]);
}

void
rlfCycleCountsScalar(RlfState &st, std::size_t cycles,
                     std::int32_t *counts)
{
    const std::size_t stride = static_cast<std::size_t>(st.groups) * 8;
    for (int g = 0; g < st.groups; ++g)
        detail::rlfCycleCountsGroup(st.planes + g * st.length, st.length,
                                    st.head, st.sums + g * 8, cycles,
                                    counts + g * 8, stride);
    st.head = static_cast<int>(
        (static_cast<std::size_t>(st.head) + 2 * cycles) %
        static_cast<std::size_t>(st.length));
}

void
wallacePassScalarTier(double *pool, std::size_t pool_size,
                      std::size_t offset, std::size_t stride, double *out)
{
    detail::wallacePassScalar(pool, pool_size, offset, stride, out);
}

void
gemmBatchScalar(const GemmArgs &a)
{
    for (std::size_t o = 0; o < a.outDim; ++o) {
        const std::int32_t *w = a.weights + o * a.ldw;
        const std::int64_t bias = a.bias[o];
        std::int32_t *out_row = a.out + o * a.outNeuronStride;
        for (std::size_t b = 0; b < a.images; ++b) {
            const std::int32_t *x = a.acts + b * a.lda;
            const std::int64_t acc = detail::dotTail(w, x, 0, a.inDim);
            out_row[b * a.outImageStride] =
                gemmFinish(acc, bias, a.finish);
        }
    }
}

void
gemmBatchF32Scalar(const GemmF32Args &g)
{
    for (std::size_t i = 0; i < g.m; ++i) {
        const float *arow = g.a + i * g.lda;
        float *crow = g.c + i * g.ldc;
        for (std::size_t j = 0; j < g.n; ++j) {
            const float dot =
                detail::dotLanes8F32(arow, g.b + j * g.ldb, g.k);
            crow[j] = g.bias ? dot + g.bias[j] : dot;
        }
    }
}

void
gemmAtBF32Scalar(const GemmF32Args &g)
{
    for (std::size_t i = 0; i < g.m; ++i) {
        const float *arow = g.a + i * g.lda;
        const float *brow = g.b + i * g.ldb;
        for (std::size_t j = 0; j < g.n; ++j) {
            const float aij = arow[j];
            if (g.colSums)
                g.colSums[j] += aij;
            detail::axpyTailF32(g.c + j * g.ldc, aij, brow, 0, g.k);
        }
    }
}

void
gemmABF32Scalar(const GemmF32Args &g)
{
    for (std::size_t i = 0; i < g.m; ++i) {
        const float *arow = g.a + i * g.lda;
        float *crow = g.c + i * g.ldc;
        for (std::size_t t = 0; t < g.k; ++t)
            crow[t] = 0.0f;
        for (std::size_t j = 0; j < g.n; ++j)
            detail::axpyTailF32(crow, arow[j], g.b + j * g.ldb, 0, g.k);
    }
}

void
adamStepF32Scalar(float *params, const float *grads, float *m, float *v,
                  std::size_t n, const AdamStepArgs &args)
{
    for (std::size_t i = 0; i < n; ++i)
        detail::adamOneF32(params[i], grads[i], m[i], v[i], args);
}

} // namespace

const KernelOps &
scalarKernels()
{
    static const KernelOps ops = {
        "scalar",          &quantizeDoubleScalar, &quantizeFloatScalar,
        &sampleWeightsScalar, &packInt16Scalar,   &gemmBatchScalar,
        &rlfCycleCountsScalar, &wallacePassScalarTier,
        &gemmBatchF32Scalar, &gemmAtBF32Scalar,   &gemmABF32Scalar,
        &adamStepF32Scalar,
    };
    return ops;
}

} // namespace vibnn::accel::kernels
