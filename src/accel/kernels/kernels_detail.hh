/**
 * @file
 * Shared scalar bodies of the kernel layer — the single definition of
 * each element-wise operation, used by the scalar tier wholesale and by
 * the SIMD tiers for tail lanes and ineligible-format fallbacks, so
 * "bit-exact against the scalar reference" holds by construction
 * everywhere a tier drops out of its vector loop.
 */

#ifndef VIBNN_ACCEL_KERNELS_KERNELS_DETAIL_HH
#define VIBNN_ACCEL_KERNELS_KERNELS_DETAIL_HH

#include <cmath>
#include <cstdint>

#include "accel/kernels/kernels.hh"

namespace vibnn::accel::kernels::detail
{

/** fromReal(value, RoundMode::Nearest) on a grid with 2^-frac
 *  resolution: scale (an exact power of two, so the scaling never
 *  rounds), round half away from zero, saturate in the double domain
 *  exactly like FixedPointFormat::fromReal. `scale` is 2^fracBits. */
inline std::int32_t
quantizeOne(double value, double scale, std::int32_t raw_min,
            std::int32_t raw_max)
{
    const double scaled = value * scale;
    const double rounded = std::round(scaled);
    if (rounded >= static_cast<double>(raw_max))
        return raw_max;
    if (rounded <= static_cast<double>(raw_min))
        return raw_min;
    return static_cast<std::int32_t>(rounded);
}

/** DatapathKernel::sampleWeight: w = mu + ((sigma * eps) >> epsShift),
 *  saturated to the weight grid. */
inline std::int32_t
sampleOne(std::int64_t mu, std::int64_t sigma, std::int64_t eps,
          const SampleParams &p)
{
    const std::int64_t scaled = (sigma * eps) >> p.epsShift;
    std::int64_t w = mu + scaled;
    if (w > p.wMax)
        w = p.wMax;
    if (w < p.wMin)
        w = p.wMin;
    return static_cast<std::int32_t>(w);
}

/** Scalar int64-accumulate dot product over [k0, n). */
inline std::int64_t
dotTail(const std::int32_t *w, const std::int32_t *x, std::size_t k0,
        std::size_t n)
{
    std::int64_t acc = 0;
    for (std::size_t k = k0; k < n; ++k)
        acc += static_cast<std::int64_t>(w[k]) * x[k];
    return acc;
}

} // namespace vibnn::accel::kernels::detail

#endif // VIBNN_ACCEL_KERNELS_KERNELS_DETAIL_HH
