/**
 * @file
 * Shared scalar bodies of the kernel layer — the single definition of
 * each element-wise operation, used by the scalar tier wholesale and by
 * the SIMD tiers for tail lanes and ineligible-format fallbacks, so
 * "bit-exact against the scalar reference" holds by construction
 * everywhere a tier drops out of its vector loop.
 */

#ifndef VIBNN_ACCEL_KERNELS_KERNELS_DETAIL_HH
#define VIBNN_ACCEL_KERNELS_KERNELS_DETAIL_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "accel/kernels/kernels.hh"

namespace vibnn::accel::kernels::detail
{

/** fromReal(value, RoundMode::Nearest) on a grid with 2^-frac
 *  resolution: scale (an exact power of two, so the scaling never
 *  rounds), round half away from zero, saturate in the double domain
 *  exactly like FixedPointFormat::fromReal. `scale` is 2^fracBits. */
inline std::int32_t
quantizeOne(double value, double scale, std::int32_t raw_min,
            std::int32_t raw_max)
{
    const double scaled = value * scale;
    const double rounded = std::round(scaled);
    if (rounded >= static_cast<double>(raw_max))
        return raw_max;
    if (rounded <= static_cast<double>(raw_min))
        return raw_min;
    return static_cast<std::int32_t>(rounded);
}

/** DatapathKernel::sampleWeight: w = mu + ((sigma * eps) >> epsShift),
 *  saturated to the weight grid. */
inline std::int32_t
sampleOne(std::int64_t mu, std::int64_t sigma, std::int64_t eps,
          const SampleParams &p)
{
    const std::int64_t scaled = (sigma * eps) >> p.epsShift;
    std::int64_t w = mu + scaled;
    if (w > p.wMax)
        w = p.wMax;
    if (w < p.wMin)
        w = p.wMin;
    return static_cast<std::int32_t>(w);
}

/** Scalar int64-accumulate dot product over [k0, n). */
inline std::int64_t
dotTail(const std::int32_t *w, const std::int32_t *x, std::size_t k0,
        std::size_t n)
{
    std::int64_t acc = 0;
    for (std::size_t k = k0; k < n; ++k)
        acc += static_cast<std::int64_t>(w[k]) * x[k];
    return acc;
}

/** laneExpand()[b]: byte j of the result is bit j of b — one lookup
 *  turns a flipped-bits byte into eight per-lane 0/1 counters, so a
 *  u64 accumulator sums flip counts for all 8 lanes of a plane group
 *  at once (each lane's count stays < 256, no carry between bytes). */
constexpr std::array<std::uint64_t, 256>
makeLaneExpand()
{
    std::array<std::uint64_t, 256> table{};
    for (int b = 0; b < 256; ++b) {
        std::uint64_t v = 0;
        for (int j = 0; j < 8; ++j)
            if (b & (1 << j))
                v |= std::uint64_t{1} << (8 * j);
        table[static_cast<std::size_t>(b)] = v;
    }
    return table;
}

inline constexpr std::array<std::uint64_t, 256> kLaneExpand =
    makeLaneExpand();

/**
 * One combined-update RLF iteration on one bit-plane group of 8 lanes:
 * reads the two head bytes, XOR-updates the five trailing positions
 * (offsets n-5..n-1 from the head get masks {h0, h1, h0, h0^h1, h1} —
 * the fused equation (12) pattern for taps {n-5, n-3, n-2}), and
 * accumulates the per-lane popcount deltas into packed set/clear
 * counters. Returns nothing; `up`/`down` gain at most 5 per lane.
 */
inline void
rlfStepGroup(std::uint8_t *plane, int n, int head, std::uint64_t &up,
             std::uint64_t &down)
{
    const int h1 = head + 1 >= n ? 0 : head + 1;
    const std::uint8_t head0 = plane[head];
    const std::uint8_t head1 = plane[h1];
    const std::uint8_t mask[5] = {
        head0, head1, head0, static_cast<std::uint8_t>(head0 ^ head1),
        head1};
    int p = head + n - 5;
    if (p >= n)
        p -= n;
    for (int k = 0; k < 5; ++k) {
        const std::uint8_t old = plane[p];
        plane[p] = old ^ mask[k];
        up += kLaneExpand[mask[k] & static_cast<std::uint8_t>(~old)];
        down += kLaneExpand[mask[k] & old];
        ++p;
        if (p >= n)
            p = 0;
    }
}

/** Scalar reference for rlfCycleCounts on one plane group: `counts`
 *  points at this group's first lane in cycle 0's row; rows are
 *  `countsStride` apart. Leaves the caller to advance the shared
 *  head. */
inline void
rlfCycleCountsGroup(std::uint8_t *plane, int n, int head,
                    std::int32_t *sums, std::size_t cycles,
                    std::int32_t *counts, std::size_t counts_stride)
{
    std::int32_t sum[8];
    for (int j = 0; j < 8; ++j)
        sum[j] = sums[j];
    for (std::size_t c = 0; c < cycles; ++c) {
        std::uint64_t up = 0, down = 0;
        rlfStepGroup(plane, n, head, up, down);
        std::int32_t *row = counts + c * counts_stride;
        for (int j = 0; j < 8; ++j) {
            sum[j] += static_cast<std::int32_t>((up >> (8 * j)) & 0xFF) -
                static_cast<std::int32_t>((down >> (8 * j)) & 0xFF);
            row[j] = sum[j];
        }
        head += 2;
        if (head >= n)
            head -= n;
    }
    for (int j = 0; j < 8; ++j)
        sums[j] = sum[j];
}

/** The Wallace 4-point transform exactly as WallaceGrng applies it:
 *  t = 0.5 * (x0 + x1 + x2 + x3) with left-to-right association, then
 *  {t - x0, t - x1, x2 - t, x3 - t}. */
inline void
wallaceQuad(double *pool, const std::size_t idx[4], double *out4)
{
    const double x0 = pool[idx[0]];
    const double x1 = pool[idx[1]];
    const double x2 = pool[idx[2]];
    const double x3 = pool[idx[3]];
    const double t = 0.5 * (x0 + x1 + x2 + x3);
    const double y0 = t - x0;
    const double y1 = t - x1;
    const double y2 = x2 - t;
    const double y3 = x3 - t;
    pool[idx[0]] = y0;
    pool[idx[1]] = y1;
    pool[idx[2]] = y2;
    pool[idx[3]] = y3;
    if (out4) {
        out4[0] = y0;
        out4[1] = y1;
        out4[2] = y2;
        out4[3] = y3;
    }
}

/** The canonical lane-8 reduction tree of gemmBatchF32: every tier
 *  ends its dot product with exactly this association, whether the
 *  lanes were accumulated by AVX2 registers or the scalar loop. */
inline float
reduceLanes8F32(const float lanes[8])
{
    const float m0 = lanes[0] + lanes[4];
    const float m1 = lanes[1] + lanes[5];
    const float m2 = lanes[2] + lanes[6];
    const float m3 = lanes[3] + lanes[7];
    return (m0 + m2) + (m1 + m3);
}

/** Scalar continuation of the lane-8 dot product over [k0, n): element
 *  k lands in lane k mod 8, matching one 8-wide vector register (or
 *  the lo/hi SSE pair) walking the same range. */
inline void
dotLanes8TailF32(float lanes[8], const float *a, const float *b,
                 std::size_t k0, std::size_t n)
{
    for (std::size_t k = k0; k < n; ++k) {
        const float p = a[k] * b[k];
        lanes[k & 7] += p;
    }
}

/** Full scalar lane-8 dot product — the gemmBatchF32 reference body. */
inline float
dotLanes8F32(const float *a, const float *b, std::size_t n)
{
    float lanes[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
    dotLanes8TailF32(lanes, a, b, 0, n);
    return reduceLanes8F32(lanes);
}

/** Scalar axpy continuation over [k0, n): dst[k] += s * src[k] with
 *  the explicit two-rounding (multiply then add) every tier uses. */
inline void
axpyTailF32(float *dst, float s, const float *src, std::size_t k0,
            std::size_t n)
{
    for (std::size_t k = k0; k < n; ++k) {
        const float p = s * src[k];
        dst[k] += p;
    }
}

/** One Adam element update (see AdamStepArgs) — mul/add/div/sqrt are
 *  all correctly rounded in IEEE single, so the SIMD tiers match this
 *  bit for bit without any ordering care. */
inline void
adamOneF32(float &p, float g, float &m, float &v, const AdamStepArgs &a)
{
    // Association mirrors the historical AdamOptimizer::step loop
    // (((1-b2)*g)*g, (lr*mh)/(sqrt+eps)) so stepping layer storage in
    // place through this kernel reproduces the old gather/step/scatter
    // trajectory bit for bit.
    const float gs = g * a.gradScale;
    m = a.beta1 * m + (1.0f - a.beta1) * gs;
    v = a.beta2 * v + ((1.0f - a.beta2) * gs) * gs;
    const float mh = m / a.bc1;
    const float vh = v / a.bc2;
    p -= (a.lr * mh) / (std::sqrt(vh) + a.epsilon);
}

/** Scalar reference for wallacePass (see KernelOps::wallacePass). */
inline void
wallacePassScalar(double *pool, std::size_t pool_size, std::size_t offset,
                  std::size_t stride, double *out)
{
    const std::size_t quads = pool_size / 4;
    std::size_t pos = offset;
    auto advance = [&pos, stride, pool_size]() {
        const std::size_t at = pos;
        pos += stride;
        if (pos >= pool_size)
            pos -= pool_size;
        return at;
    };
    for (std::size_t q = 0; q < quads; ++q) {
        const std::size_t idx[4] = {advance(), advance(), advance(),
                                    advance()};
        wallaceQuad(pool, idx, out ? out + 4 * q : nullptr);
    }
}

} // namespace vibnn::accel::kernels::detail

#endif // VIBNN_ACCEL_KERNELS_KERNELS_DETAIL_HH
