/**
 * @file
 * SSE4.1 tier: 128-bit fallback for x86 CPUs without AVX2. Same
 * structure as the AVX2 tier at half the width, minus the int16 madd
 * fast path (pre-AVX2 hosts are not the throughput target; the s32
 * path keeps them bit-exact and still ~4x the scalar inner loop).
 * Compiled with -msse4.1 on x86 hosts only; runtime dispatch keeps it
 * off CPUs that lack SSE4.1.
 */

#if defined(__x86_64__) || defined(__i386__)

#include <smmintrin.h>

#include "accel/kernels/kernels.hh"
#include "accel/kernels/kernels_detail.hh"

namespace vibnn::accel::kernels
{

namespace
{

inline std::int64_t
hsum64(__m128i v)
{
    return _mm_cvtsi128_si64(v) + _mm_extract_epi64(v, 1);
}

inline __m128i
quantize2(__m128d v, __m128d dmin, __m128d dmax, __m128d half,
          __m128d one)
{
    const __m128d t =
        _mm_round_pd(v, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    const __m128d d = _mm_sub_pd(v, t);
    const __m128d inc_pos =
        _mm_and_pd(_mm_cmpge_pd(d, half), one);
    const __m128d inc_neg = _mm_and_pd(
        _mm_cmpge_pd(_mm_sub_pd(_mm_setzero_pd(), d), half), one);
    __m128d r = _mm_add_pd(t, _mm_sub_pd(inc_pos, inc_neg));
    r = _mm_min_pd(_mm_max_pd(r, dmin), dmax);
    return _mm_cvttpd_epi32(r); // 2 int32 in the low half
}

void
quantizeDoubleSse4(const double *in, std::int32_t *out, std::size_t n,
                   int frac_bits, std::int32_t raw_min,
                   std::int32_t raw_max)
{
    const double scale = std::ldexp(1.0, frac_bits);
    const __m128d vscale = _mm_set1_pd(scale);
    const __m128d dmin = _mm_set1_pd(static_cast<double>(raw_min));
    const __m128d dmax = _mm_set1_pd(static_cast<double>(raw_max));
    const __m128d half = _mm_set1_pd(0.5);
    const __m128d one = _mm_set1_pd(1.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d v = _mm_mul_pd(_mm_loadu_pd(in + i), vscale);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(out + i),
                         quantize2(v, dmin, dmax, half, one));
    }
    for (; i < n; ++i)
        out[i] = detail::quantizeOne(in[i], scale, raw_min, raw_max);
}

void
quantizeFloatSse4(const float *in, std::int32_t *out, std::size_t n,
                  int frac_bits, std::int32_t raw_min,
                  std::int32_t raw_max)
{
    const double scale = std::ldexp(1.0, frac_bits);
    const __m128d vscale = _mm_set1_pd(scale);
    const __m128d dmin = _mm_set1_pd(static_cast<double>(raw_min));
    const __m128d dmax = _mm_set1_pd(static_cast<double>(raw_max));
    const __m128d half = _mm_set1_pd(0.5);
    const __m128d one = _mm_set1_pd(1.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d v = _mm_mul_pd(
            _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(in + i)))),
            vscale);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(out + i),
                         quantize2(v, dmin, dmax, half, one));
    }
    for (; i < n; ++i)
        out[i] = detail::quantizeOne(static_cast<double>(in[i]), scale,
                                     raw_min, raw_max);
}

void
sampleWeightsSse4(const std::int32_t *mu, const std::int32_t *sigma,
                  const std::int32_t *eps, std::int32_t *out,
                  std::size_t n, const SampleParams &p)
{
    constexpr std::int64_t kI32Max = 2147483647;
    const std::int64_t prod_max = p.sigmaAbsMax * p.epsAbsMax;
    const std::int64_t sum_max =
        -static_cast<std::int64_t>(p.wMin) + (prod_max >> p.epsShift);
    if (prod_max > kI32Max || sum_max > kI32Max) {
        scalarKernels().sampleWeights(mu, sigma, eps, out, n, p);
        return;
    }

    const __m128i shift = _mm_cvtsi32_si128(p.epsShift);
    const __m128i wmin = _mm_set1_epi32(p.wMin);
    const __m128i wmax = _mm_set1_epi32(p.wMax);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i sv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(sigma + i));
        const __m128i ev = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(eps + i));
        const __m128i mv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(mu + i));
        const __m128i scaled =
            _mm_sra_epi32(_mm_mullo_epi32(sv, ev), shift);
        __m128i w = _mm_add_epi32(mv, scaled);
        w = _mm_min_epi32(_mm_max_epi32(w, wmin), wmax);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i), w);
    }
    for (; i < n; ++i)
        out[i] = detail::sampleOne(mu[i], sigma[i], eps[i], p);
}

void
packInt16Sse4(const std::int32_t *in, std::int16_t *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + i));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + i + 4));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_packs_epi32(a, b));
    }
    for (; i < n; ++i)
        out[i] = static_cast<std::int16_t>(in[i]);
}

inline std::int64_t
gemmRowS32x1(const std::int32_t *w, const std::int32_t *x,
             std::size_t n)
{
    __m128i acc = _mm_setzero_si128();
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m128i wv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(w + k));
        const __m128i xv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(x + k));
        acc = _mm_add_epi64(acc, _mm_mul_epi32(wv, xv));
        acc = _mm_add_epi64(acc,
                            _mm_mul_epi32(_mm_srli_epi64(wv, 32),
                                          _mm_srli_epi64(xv, 32)));
    }
    return hsum64(acc) + detail::dotTail(w, x, k, n);
}

void
rlfCycleCountsSse4(RlfState &st, std::size_t cycles,
                   std::int32_t *counts)
{
    if (st.length > INT16_MAX) { // int16 lane sums would overflow
        scalarKernels().rlfCycleCounts(st, cycles, counts);
        return;
    }
    const std::size_t stride = static_cast<std::size_t>(st.groups) * 8;
    const int n = st.length;
    for (int g = 0; g < st.groups; ++g) {
        std::uint8_t *plane = st.planes + g * st.length;
        std::int32_t *sums = st.sums + g * 8;
        int head = st.head;
        // Per-lane sums live in one 8 x int16 register across the whole
        // burst (popcounts <= length <= 32767); the byte-update stage
        // stays scalar (it is five byte ops), the delta/extract stage
        // is where the scalar reference spends half its time.
        __m128i sum16 = _mm_packs_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(sums)),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(sums + 4)));
        for (std::size_t c = 0; c < cycles; ++c) {
            std::uint64_t up = 0, down = 0;
            detail::rlfStepGroup(plane, n, head, up, down);
            const __m128i up16 = _mm_cvtepu8_epi16(_mm_cvtsi64_si128(
                static_cast<long long>(up)));
            const __m128i dn16 = _mm_cvtepu8_epi16(_mm_cvtsi64_si128(
                static_cast<long long>(down)));
            sum16 = _mm_add_epi16(sum16, _mm_sub_epi16(up16, dn16));
            std::int32_t *row = counts + c * stride + g * 8;
            _mm_storeu_si128(reinterpret_cast<__m128i *>(row),
                             _mm_cvtepi16_epi32(sum16));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(row + 4),
                             _mm_cvtepi16_epi32(
                                 _mm_srli_si128(sum16, 8)));
            head += 2;
            if (head >= n)
                head -= n;
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(sums),
                         _mm_cvtepi16_epi32(sum16));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(sums + 4),
                         _mm_cvtepi16_epi32(_mm_srli_si128(sum16, 8)));
    }
    st.head = static_cast<int>(
        (static_cast<std::size_t>(st.head) + 2 * cycles) %
        static_cast<std::size_t>(st.length));
}

void
wallacePassSse4(double *pool, std::size_t pool_size, std::size_t offset,
                std::size_t stride, double *out)
{
    // The pass is memory-permutation-bound; the 128-bit tier keeps the
    // shared scalar body (the AVX2 tier carries the 4-wide version).
    detail::wallacePassScalar(pool, pool_size, offset, stride, out);
}

void
gemmBatchSse4(const GemmArgs &a)
{
    for (std::size_t o = 0; o < a.outDim; ++o) {
        const std::int32_t *w = a.weights + o * a.ldw;
        const std::int64_t bias = a.bias[o];
        std::int32_t *out_row = a.out + o * a.outNeuronStride;
        for (std::size_t b = 0; b < a.images; ++b) {
            const std::int64_t acc =
                gemmRowS32x1(w, a.acts + b * a.lda, a.inDim);
            out_row[b * a.outImageStride] =
                gemmFinish(acc, bias, a.finish);
        }
    }
}

/** One lane-8 dot product as a lo/hi __m128 pair: lo carries lanes
 *  k mod 8 in 0..3, hi lanes 4..7 — the same lane decomposition as the
 *  scalar reference and one AVX2 register. */
inline float
dotLanes8Sse4(const float *a, const float *b, std::size_t n)
{
    __m128 lo = _mm_setzero_ps();
    __m128 hi = _mm_setzero_ps();
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        lo = _mm_add_ps(lo, _mm_mul_ps(_mm_loadu_ps(a + k),
                                       _mm_loadu_ps(b + k)));
        hi = _mm_add_ps(hi, _mm_mul_ps(_mm_loadu_ps(a + k + 4),
                                       _mm_loadu_ps(b + k + 4)));
    }
    alignas(16) float lanes[8];
    _mm_store_ps(lanes, lo);
    _mm_store_ps(lanes + 4, hi);
    detail::dotLanes8TailF32(lanes, a, b, k, n);
    return detail::reduceLanes8F32(lanes);
}

void
gemmBatchF32Sse4(const GemmF32Args &g)
{
    for (std::size_t i = 0; i < g.m; ++i) {
        const float *arow = g.a + i * g.lda;
        float *crow = g.c + i * g.ldc;
        for (std::size_t j = 0; j < g.n; ++j) {
            const float dot = dotLanes8Sse4(arow, g.b + j * g.ldb, g.k);
            crow[j] = g.bias ? dot + g.bias[j] : dot;
        }
    }
}

/** crow[t] += s * brow[t]: each element is an independent sequential
 *  chain, so vector width never reorders the accumulation. */
inline void
axpySse4(float *crow, float s, const float *brow, std::size_t n)
{
    const __m128 sv = _mm_set1_ps(s);
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4)
        _mm_storeu_ps(crow + t,
                      _mm_add_ps(_mm_loadu_ps(crow + t),
                                 _mm_mul_ps(sv, _mm_loadu_ps(brow + t))));
    detail::axpyTailF32(crow, s, brow, t, n);
}

void
gemmAtBF32Sse4(const GemmF32Args &g)
{
    for (std::size_t i = 0; i < g.m; ++i) {
        const float *arow = g.a + i * g.lda;
        const float *brow = g.b + i * g.ldb;
        for (std::size_t j = 0; j < g.n; ++j) {
            const float aij = arow[j];
            if (g.colSums)
                g.colSums[j] += aij;
            axpySse4(g.c + j * g.ldc, aij, brow, g.k);
        }
    }
}

void
gemmABF32Sse4(const GemmF32Args &g)
{
    for (std::size_t i = 0; i < g.m; ++i) {
        const float *arow = g.a + i * g.lda;
        float *crow = g.c + i * g.ldc;
        for (std::size_t t = 0; t < g.k; ++t)
            crow[t] = 0.0f;
        for (std::size_t j = 0; j < g.n; ++j)
            axpySse4(crow, arow[j], g.b + j * g.ldb, g.k);
    }
}

void
adamStepF32Sse4(float *params, const float *grads, float *m, float *v,
                std::size_t n, const AdamStepArgs &a)
{
    const __m128 lr = _mm_set1_ps(a.lr);
    const __m128 b1 = _mm_set1_ps(a.beta1);
    const __m128 b2 = _mm_set1_ps(a.beta2);
    const __m128 ob1 = _mm_set1_ps(1.0f - a.beta1);
    const __m128 ob2 = _mm_set1_ps(1.0f - a.beta2);
    const __m128 bc1 = _mm_set1_ps(a.bc1);
    const __m128 bc2 = _mm_set1_ps(a.bc2);
    const __m128 eps = _mm_set1_ps(a.epsilon);
    const __m128 gs = _mm_set1_ps(a.gradScale);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 g = _mm_mul_ps(_mm_loadu_ps(grads + i), gs);
        __m128 mv = _mm_loadu_ps(m + i);
        __m128 vv = _mm_loadu_ps(v + i);
        mv = _mm_add_ps(_mm_mul_ps(b1, mv), _mm_mul_ps(ob1, g));
        vv = _mm_add_ps(_mm_mul_ps(b2, vv),
                        _mm_mul_ps(_mm_mul_ps(ob2, g), g));
        _mm_storeu_ps(m + i, mv);
        _mm_storeu_ps(v + i, vv);
        const __m128 mh = _mm_div_ps(mv, bc1);
        const __m128 vh = _mm_div_ps(vv, bc2);
        const __m128 upd = _mm_div_ps(
            _mm_mul_ps(lr, mh), _mm_add_ps(_mm_sqrt_ps(vh), eps));
        _mm_storeu_ps(params + i,
                      _mm_sub_ps(_mm_loadu_ps(params + i), upd));
    }
    for (; i < n; ++i)
        detail::adamOneF32(params[i], grads[i], m[i], v[i], a);
}

} // namespace

const KernelOps &
sse4Kernels()
{
    static const KernelOps ops = {
        "sse4",           &quantizeDoubleSse4, &quantizeFloatSse4,
        &sampleWeightsSse4, &packInt16Sse4,    &gemmBatchSse4,
        &rlfCycleCountsSse4, &wallacePassSse4,
        &gemmBatchF32Sse4, &gemmAtBF32Sse4,    &gemmABF32Sse4,
        &adamStepF32Sse4,
    };
    return ops;
}

} // namespace vibnn::accel::kernels

#endif // x86
