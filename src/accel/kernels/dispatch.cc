/**
 * @file
 * Runtime kernel-tier dispatch. The decision is made once per process,
 * in order:
 *
 *   1. VIBNN_FORCE_SCALAR=1           -> the scalar reference tier
 *   2. VIBNN_KERNELS=<name>           -> that tier, fatal() if it is
 *                                        not compiled in / supported
 *   3. widest tier the CPU supports   -> avx2 > sse4 > scalar
 *
 * Because every tier is ctest-pinned bit-exact against the scalar
 * reference, the choice is invisible in program output — it only moves
 * throughput.
 */

#include "accel/kernels/kernels.hh"

#include "common/env.hh"
#include "common/logging.hh"

namespace vibnn::accel::kernels
{

#if defined(__x86_64__) || defined(__i386__)
const KernelOps &sse4Kernels();
const KernelOps &avx2Kernels();
#endif

namespace
{

bool
cpuHasSse41()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    return __builtin_cpu_supports("sse4.1");
#else
    return false;
#endif
}

bool
cpuHasAvx2()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

/** Tiers compiled in AND usable on this CPU, widest last. */
std::vector<const KernelOps *>
probeKernels()
{
    std::vector<const KernelOps *> tiers;
    tiers.push_back(&scalarKernels());
#if defined(__x86_64__) || defined(__i386__)
    if (cpuHasSse41())
        tiers.push_back(&sse4Kernels());
    if (cpuHasAvx2())
        tiers.push_back(&avx2Kernels());
#endif
    return tiers;
}

const KernelOps &
pickKernels()
{
    const auto tiers = probeKernels();
    if (envInt("VIBNN_FORCE_SCALAR", 0) != 0)
        return scalarKernels();
    const std::string requested = envString("VIBNN_KERNELS", "");
    if (!requested.empty()) {
        for (const auto *tier : tiers) {
            if (requested == tier->name)
                return *tier;
        }
        std::string names;
        for (const auto *tier : tiers)
            names += std::string(names.empty() ? "" : ", ") + tier->name;
        fatal("VIBNN_KERNELS='" + requested +
              "' is not available on this build/CPU (available: " +
              names + ")");
    }
    return *tiers.back();
}

} // namespace

const KernelOps &
activeKernels()
{
    static const KernelOps &selected = pickKernels();
    return selected;
}

const char *
activeKernelName()
{
    return activeKernels().name;
}

std::vector<const KernelOps *>
availableKernels()
{
    return probeKernels();
}

const KernelOps *
kernelsByName(const std::string &name)
{
    for (const auto *tier : probeKernels()) {
        if (name == tier->name)
            return tier;
    }
    return nullptr;
}

} // namespace vibnn::accel::kernels
