/**
 * @file
 * AVX2 tier: 256-bit versions of the kernel-layer entry points.
 *
 * GEMM runs 32x32->64 multiplies (mul_epi32 over even/odd dword
 * pairs) with int64 accumulators — exact for every admissible format —
 * and a 4-image register tile so one weight load serves four
 * activation rows. When the caller provides int16-packed operands
 * (GemmArgs::weights16/acts16, with the no-overflow guarantee that
 * implies) the inner loop switches to madd_epi16: 16 MACs per
 * instruction with 32-bit pair sums, widened to int64 at reduction.
 * Tail lanes and ineligible formats drop to the shared scalar bodies
 * in kernels_detail.hh, so every path is bit-exact with the scalar
 * tier by construction; integer dot products are order-invariant, so
 * the reordered SIMD accumulation changes nothing.
 *
 * Rounding in the quantize kernels reproduces std::round (half away
 * from zero) exactly: truncate, take the exact fractional remainder
 * (Sterbenz — t and v are within a factor of two), and bump by the
 * remainder's comparison against 0.5. Saturation happens in the double
 * domain against the same bounds as FixedPointFormat::fromReal.
 *
 * This TU is compiled with -mavx2 on x86 hosts only (CMake per-file
 * flags); runtime dispatch guarantees nothing here executes on a CPU
 * without AVX2.
 */

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "accel/kernels/kernels.hh"
#include "accel/kernels/kernels_detail.hh"

namespace vibnn::accel::kernels
{

namespace
{

inline std::int64_t
hsum64(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i s = _mm_add_epi64(lo, hi);
    return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
}

/** Sum 8 int32 lanes into one int64 (each lane widened first, so the
 *  reduction itself cannot overflow). */
inline std::int64_t
hsum32to64(__m256i v)
{
    const __m256i lo =
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v));
    const __m256i hi =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1));
    return hsum64(_mm256_add_epi64(lo, hi));
}

// ------------------------------------------------------------- quantize

/** Round-half-away-from-zero + saturate + narrow for 4 doubles. */
inline __m128i
quantize4(__m256d v, __m256d dmin, __m256d dmax, __m256d half,
          __m256d one)
{
    const __m256d t =
        _mm256_round_pd(v, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    const __m256d d = _mm256_sub_pd(v, t); // exact remainder
    const __m256d inc_pos =
        _mm256_and_pd(_mm256_cmp_pd(d, half, _CMP_GE_OQ), one);
    const __m256d inc_neg = _mm256_and_pd(
        _mm256_cmp_pd(_mm256_sub_pd(_mm256_setzero_pd(), d), half,
                      _CMP_GE_OQ),
        one);
    __m256d r = _mm256_add_pd(t, _mm256_sub_pd(inc_pos, inc_neg));
    r = _mm256_min_pd(_mm256_max_pd(r, dmin), dmax);
    return _mm256_cvttpd_epi32(r); // integral and in range: exact
}

void
quantizeDoubleAvx2(const double *in, std::int32_t *out, std::size_t n,
                   int frac_bits, std::int32_t raw_min,
                   std::int32_t raw_max)
{
    const double scale = std::ldexp(1.0, frac_bits);
    const __m256d vscale = _mm256_set1_pd(scale);
    const __m256d dmin = _mm256_set1_pd(static_cast<double>(raw_min));
    const __m256d dmax = _mm256_set1_pd(static_cast<double>(raw_max));
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d one = _mm256_set1_pd(1.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v =
            _mm256_mul_pd(_mm256_loadu_pd(in + i), vscale);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         quantize4(v, dmin, dmax, half, one));
    }
    for (; i < n; ++i)
        out[i] = detail::quantizeOne(in[i], scale, raw_min, raw_max);
}

void
quantizeFloatAvx2(const float *in, std::int32_t *out, std::size_t n,
                  int frac_bits, std::int32_t raw_min,
                  std::int32_t raw_max)
{
    const double scale = std::ldexp(1.0, frac_bits);
    const __m256d vscale = _mm256_set1_pd(scale);
    const __m256d dmin = _mm256_set1_pd(static_cast<double>(raw_min));
    const __m256d dmax = _mm256_set1_pd(static_cast<double>(raw_max));
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d one = _mm256_set1_pd(1.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_mul_pd(
            _mm256_cvtps_pd(
                _mm_loadu_ps(in + i)),
            vscale);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         quantize4(v, dmin, dmax, half, one));
    }
    for (; i < n; ++i)
        out[i] = detail::quantizeOne(static_cast<double>(in[i]), scale,
                                     raw_min, raw_max);
}

// ------------------------------------------------------- weight sampling

void
sampleWeightsAvx2(const std::int32_t *mu, const std::int32_t *sigma,
                  const std::int32_t *eps, std::int32_t *out,
                  std::size_t n, const SampleParams &p)
{
    // 32-bit fast-path eligibility: the mullo product and the mu +
    // scaled sum must both provably fit int32. |mu| is bounded by the
    // weight grid it was saturated onto (wMin is the negative extreme).
    constexpr std::int64_t kI32Max = 2147483647;
    const std::int64_t prod_max = p.sigmaAbsMax * p.epsAbsMax;
    const std::int64_t sum_max =
        -static_cast<std::int64_t>(p.wMin) + (prod_max >> p.epsShift);
    if (prod_max > kI32Max || sum_max > kI32Max) {
        scalarKernels().sampleWeights(mu, sigma, eps, out, n, p);
        return;
    }

    const __m128i shift = _mm_cvtsi32_si128(p.epsShift);
    const __m256i wmin = _mm256_set1_epi32(p.wMin);
    const __m256i wmax = _mm256_set1_epi32(p.wMax);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i sv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(sigma + i));
        const __m256i ev = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(eps + i));
        const __m256i mv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(mu + i));
        const __m256i scaled =
            _mm256_sra_epi32(_mm256_mullo_epi32(sv, ev), shift);
        __m256i w = _mm256_add_epi32(mv, scaled);
        w = _mm256_min_epi32(_mm256_max_epi32(w, wmin), wmax);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i), w);
    }
    for (; i < n; ++i)
        out[i] = detail::sampleOne(mu[i], sigma[i], eps[i], p);
}

// ----------------------------------------------------------------- pack

void
packInt16Avx2(const std::int32_t *in, std::int16_t *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + i + 8));
        // packs interleaves 128-bit halves; permute restores order.
        // Saturation never fires: the caller guarantees the values fit.
        const __m256i p = _mm256_permute4x64_epi64(
            _mm256_packs_epi32(a, b), _MM_SHUFFLE(3, 1, 2, 0));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i), p);
    }
    for (; i < n; ++i)
        out[i] = static_cast<std::int16_t>(in[i]);
}

// ----------------------------------------------------------------- GEMM

/** One weight row against four activation rows, 32x32->64 products. */
inline void
gemmRowS32x4(const std::int32_t *w, const std::int32_t *const x[4],
             std::size_t n, std::int64_t acc_out[4])
{
    __m256i acc[4];
    for (int i = 0; i < 4; ++i)
        acc[i] = _mm256_setzero_si256();
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        const __m256i wv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + k));
        const __m256i wo = _mm256_srli_epi64(wv, 32);
        for (int i = 0; i < 4; ++i) {
            const __m256i xv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x[i] + k));
            const __m256i xo = _mm256_srli_epi64(xv, 32);
            acc[i] = _mm256_add_epi64(acc[i],
                                      _mm256_mul_epi32(wv, xv));
            acc[i] = _mm256_add_epi64(acc[i],
                                      _mm256_mul_epi32(wo, xo));
        }
    }
    for (int i = 0; i < 4; ++i)
        acc_out[i] = hsum64(acc[i]) + detail::dotTail(w, x[i], k, n);
}

inline std::int64_t
gemmRowS32x1(const std::int32_t *w, const std::int32_t *x,
             std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        const __m256i wv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + k));
        const __m256i xv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(x + k));
        acc = _mm256_add_epi64(acc, _mm256_mul_epi32(wv, xv));
        acc = _mm256_add_epi64(
            acc, _mm256_mul_epi32(_mm256_srli_epi64(wv, 32),
                                  _mm256_srli_epi64(xv, 32)));
    }
    return hsum64(acc) + detail::dotTail(w, x, k, n);
}

/** madd path: one int16 weight row against four int16 activation
 *  rows; the caller's GemmArgs contract makes 32-bit pair-sum
 *  accumulation overflow-free. Tails read the int32 originals. */
inline void
gemmRowS16x4(const std::int16_t *w16, const std::int16_t *const x16[4],
             const std::int32_t *w, const std::int32_t *const x[4],
             std::size_t n, std::int64_t acc_out[4])
{
    __m256i acc[4];
    for (int i = 0; i < 4; ++i)
        acc[i] = _mm256_setzero_si256();
    std::size_t k = 0;
    for (; k + 16 <= n; k += 16) {
        const __m256i wv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w16 + k));
        for (int i = 0; i < 4; ++i) {
            const __m256i xv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x16[i] + k));
            acc[i] = _mm256_add_epi32(acc[i],
                                      _mm256_madd_epi16(wv, xv));
        }
    }
    for (int i = 0; i < 4; ++i)
        acc_out[i] =
            hsum32to64(acc[i]) + detail::dotTail(w, x[i], k, n);
}

inline std::int64_t
gemmRowS16x1(const std::int16_t *w16, const std::int16_t *x16,
             const std::int32_t *w, const std::int32_t *x,
             std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t k = 0;
    for (; k + 16 <= n; k += 16) {
        const __m256i wv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w16 + k));
        const __m256i xv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(x16 + k));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wv, xv));
    }
    return hsum32to64(acc) + detail::dotTail(w, x, k, n);
}

void
gemmBatchAvx2(const GemmArgs &a)
{
    const bool use16 = a.weights16 != nullptr && a.acts16 != nullptr;
    for (std::size_t o = 0; o < a.outDim; ++o) {
        const std::int32_t *w = a.weights + o * a.ldw;
        const std::int16_t *w16 =
            use16 ? a.weights16 + o * a.ldw : nullptr;
        const std::int64_t bias = a.bias[o];
        std::int32_t *out_row = a.out + o * a.outNeuronStride;

        std::size_t b = 0;
        for (; b + 4 <= a.images; b += 4) {
            const std::int32_t *x[4];
            for (int i = 0; i < 4; ++i)
                x[i] = a.acts + (b + i) * a.lda;
            std::int64_t acc[4];
            if (use16) {
                const std::int16_t *x16[4];
                for (int i = 0; i < 4; ++i)
                    x16[i] = a.acts16 + (b + i) * a.lda;
                gemmRowS16x4(w16, x16, w, x, a.inDim, acc);
            } else {
                gemmRowS32x4(w, x, a.inDim, acc);
            }
            for (int i = 0; i < 4; ++i)
                out_row[(b + i) * a.outImageStride] =
                    gemmFinish(acc[i], bias, a.finish);
        }
        for (; b < a.images; ++b) {
            const std::int32_t *x = a.acts + b * a.lda;
            const std::int64_t acc =
                use16 ? gemmRowS16x1(w16, a.acts16 + b * a.lda, w, x,
                                     a.inDim)
                      : gemmRowS32x1(w, x, a.inDim);
            out_row[b * a.outImageStride] =
                gemmFinish(acc, bias, a.finish);
        }
    }
}

// ------------------------------------------------------ eps generation

void
rlfCycleCountsAvx2(RlfState &st, std::size_t cycles,
                   std::int32_t *counts)
{
    if (st.length > INT16_MAX) { // int16 lane sums would overflow
        scalarKernels().rlfCycleCounts(st, cycles, counts);
        return;
    }
    const std::size_t stride = static_cast<std::size_t>(st.groups) * 8;
    const int n = st.length;
    for (int g = 0; g < st.groups; ++g) {
        std::uint8_t *plane = st.planes + g * st.length;
        std::int32_t *sums = st.sums + g * 8;
        int head = st.head;
        // All eight lane sums ride in one 8 x int16 register for the
        // whole burst (popcounts <= length <= 32767); per cycle the
        // flipped-bit deltas widen from the packed byte counters and
        // the row lands with a single 256-bit convert + store.
        __m128i sum16 = _mm_packs_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(sums)),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(sums + 4)));
        for (std::size_t c = 0; c < cycles; ++c) {
            std::uint64_t up = 0, down = 0;
            detail::rlfStepGroup(plane, n, head, up, down);
            const __m128i up16 = _mm_cvtepu8_epi16(_mm_cvtsi64_si128(
                static_cast<long long>(up)));
            const __m128i dn16 = _mm_cvtepu8_epi16(_mm_cvtsi64_si128(
                static_cast<long long>(down)));
            sum16 = _mm_add_epi16(sum16, _mm_sub_epi16(up16, dn16));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(counts + c * stride + g * 8),
                _mm256_cvtepi16_epi32(sum16));
            head += 2;
            if (head >= n)
                head -= n;
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(sums),
                            _mm256_cvtepi16_epi32(sum16));
    }
    st.head = static_cast<int>(
        (static_cast<std::size_t>(st.head) + 2 * cycles) %
        static_cast<std::size_t>(st.length));
}

void
wallacePassAvx2(double *pool, std::size_t pool_size, std::size_t offset,
                std::size_t stride, double *out)
{
    const std::size_t quads = pool_size / 4;
    std::size_t pos = offset;
    auto advance = [&pos, stride, pool_size]() {
        const std::size_t at = pos;
        pos += stride;
        if (pos >= pool_size)
            pos -= pool_size;
        return at;
    };

    std::size_t q = 0;
    // Four quadruples in flight: their 16 permutation slots are
    // distinct whenever the pool holds >= 16 entries (stride is coprime
    // to the pool size), so the block's reads never see the block's
    // writes — exactly the scalar order's semantics. Per-lane
    // arithmetic matches detail::wallaceQuad, so the tier is bit-exact.
    if (pool_size >= 16) {
        const __m256d half = _mm256_set1_pd(0.5);
        for (; q + 4 <= quads; q += 4) {
            std::size_t idx[16];
            for (int i = 0; i < 16; ++i)
                idx[i] = advance();
            const __m256d x0 = _mm256_set_pd(
                pool[idx[12]], pool[idx[8]], pool[idx[4]], pool[idx[0]]);
            const __m256d x1 = _mm256_set_pd(
                pool[idx[13]], pool[idx[9]], pool[idx[5]], pool[idx[1]]);
            const __m256d x2 = _mm256_set_pd(pool[idx[14]],
                                             pool[idx[10]],
                                             pool[idx[6]],
                                             pool[idx[2]]);
            const __m256d x3 = _mm256_set_pd(pool[idx[15]],
                                             pool[idx[11]],
                                             pool[idx[7]],
                                             pool[idx[3]]);
            const __m256d t = _mm256_mul_pd(
                half, _mm256_add_pd(
                          _mm256_add_pd(_mm256_add_pd(x0, x1), x2),
                          x3));
            alignas(32) double ys[4][4];
            _mm256_store_pd(ys[0], _mm256_sub_pd(t, x0));
            _mm256_store_pd(ys[1], _mm256_sub_pd(t, x1));
            _mm256_store_pd(ys[2], _mm256_sub_pd(x2, t));
            _mm256_store_pd(ys[3], _mm256_sub_pd(x3, t));
            for (int l = 0; l < 4; ++l)
                for (int j = 0; j < 4; ++j)
                    pool[idx[4 * l + j]] = ys[j][l];
            if (out)
                for (int l = 0; l < 4; ++l)
                    for (int j = 0; j < 4; ++j)
                        out[4 * (q + l) + j] = ys[j][l];
        }
    }
    for (; q < quads; ++q) {
        const std::size_t idx[4] = {advance(), advance(), advance(),
                                    advance()};
        detail::wallaceQuad(pool, idx, out ? out + 4 * q : nullptr);
    }
}

/** Finish one lane-8 accumulator: spill, run the scalar tail over
 *  [k, n), reduce with the canonical tree. Spilling keeps the tail and
 *  reduction literally the scalar reference — bit-exact for free. */
inline float
finishDotLanes8(__m256 acc, const float *a, const float *b,
                std::size_t k, std::size_t n)
{
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, acc);
    detail::dotLanes8TailF32(lanes, a, b, k, n);
    return detail::reduceLanes8F32(lanes);
}

void
gemmBatchF32Avx2(const GemmF32Args &g)
{
    for (std::size_t i = 0; i < g.m; ++i) {
        const float *arow = g.a + i * g.lda;
        float *crow = g.c + i * g.ldc;
        std::size_t j = 0;
        // 4 weight rows per activation load: the row register feeds
        // four independent lane-8 accumulators (each one keeps the
        // scalar lane decomposition, so the tile is purely ILP).
        for (; j + 4 <= g.n; j += 4) {
            const float *b0 = g.b + j * g.ldb;
            const float *b1 = b0 + g.ldb;
            const float *b2 = b1 + g.ldb;
            const float *b3 = b2 + g.ldb;
            __m256 acc0 = _mm256_setzero_ps();
            __m256 acc1 = _mm256_setzero_ps();
            __m256 acc2 = _mm256_setzero_ps();
            __m256 acc3 = _mm256_setzero_ps();
            std::size_t k = 0;
            for (; k + 8 <= g.k; k += 8) {
                const __m256 av = _mm256_loadu_ps(arow + k);
                acc0 = _mm256_add_ps(
                    acc0, _mm256_mul_ps(av, _mm256_loadu_ps(b0 + k)));
                acc1 = _mm256_add_ps(
                    acc1, _mm256_mul_ps(av, _mm256_loadu_ps(b1 + k)));
                acc2 = _mm256_add_ps(
                    acc2, _mm256_mul_ps(av, _mm256_loadu_ps(b2 + k)));
                acc3 = _mm256_add_ps(
                    acc3, _mm256_mul_ps(av, _mm256_loadu_ps(b3 + k)));
            }
            const float d0 = finishDotLanes8(acc0, arow, b0, k, g.k);
            const float d1 = finishDotLanes8(acc1, arow, b1, k, g.k);
            const float d2 = finishDotLanes8(acc2, arow, b2, k, g.k);
            const float d3 = finishDotLanes8(acc3, arow, b3, k, g.k);
            if (g.bias) {
                crow[j + 0] = d0 + g.bias[j + 0];
                crow[j + 1] = d1 + g.bias[j + 1];
                crow[j + 2] = d2 + g.bias[j + 2];
                crow[j + 3] = d3 + g.bias[j + 3];
            } else {
                crow[j + 0] = d0;
                crow[j + 1] = d1;
                crow[j + 2] = d2;
                crow[j + 3] = d3;
            }
        }
        for (; j < g.n; ++j) {
            const float *brow = g.b + j * g.ldb;
            __m256 acc = _mm256_setzero_ps();
            std::size_t k = 0;
            for (; k + 8 <= g.k; k += 8)
                acc = _mm256_add_ps(
                    acc, _mm256_mul_ps(_mm256_loadu_ps(arow + k),
                                       _mm256_loadu_ps(brow + k)));
            const float dot = finishDotLanes8(acc, arow, brow, k, g.k);
            crow[j] = g.bias ? dot + g.bias[j] : dot;
        }
    }
}

inline void
axpyAvx2(float *crow, float s, const float *brow, std::size_t n)
{
    const __m256 sv = _mm256_set1_ps(s);
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8)
        _mm256_storeu_ps(
            crow + t,
            _mm256_add_ps(_mm256_loadu_ps(crow + t),
                          _mm256_mul_ps(sv, _mm256_loadu_ps(brow + t))));
    detail::axpyTailF32(crow, s, brow, t, n);
}

void
gemmAtBF32Avx2(const GemmF32Args &g)
{
    for (std::size_t i = 0; i < g.m; ++i) {
        const float *arow = g.a + i * g.lda;
        const float *brow = g.b + i * g.ldb;
        for (std::size_t j = 0; j < g.n; ++j) {
            const float aij = arow[j];
            if (g.colSums)
                g.colSums[j] += aij;
            axpyAvx2(g.c + j * g.ldc, aij, brow, g.k);
        }
    }
}

void
gemmABF32Avx2(const GemmF32Args &g)
{
    for (std::size_t i = 0; i < g.m; ++i) {
        const float *arow = g.a + i * g.lda;
        float *crow = g.c + i * g.ldc;
        for (std::size_t t = 0; t < g.k; ++t)
            crow[t] = 0.0f;
        for (std::size_t j = 0; j < g.n; ++j)
            axpyAvx2(crow, arow[j], g.b + j * g.ldb, g.k);
    }
}

void
adamStepF32Avx2(float *params, const float *grads, float *m, float *v,
                std::size_t n, const AdamStepArgs &a)
{
    const __m256 lr = _mm256_set1_ps(a.lr);
    const __m256 b1 = _mm256_set1_ps(a.beta1);
    const __m256 b2 = _mm256_set1_ps(a.beta2);
    const __m256 ob1 = _mm256_set1_ps(1.0f - a.beta1);
    const __m256 ob2 = _mm256_set1_ps(1.0f - a.beta2);
    const __m256 bc1 = _mm256_set1_ps(a.bc1);
    const __m256 bc2 = _mm256_set1_ps(a.bc2);
    const __m256 eps = _mm256_set1_ps(a.epsilon);
    const __m256 gs = _mm256_set1_ps(a.gradScale);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 g = _mm256_mul_ps(_mm256_loadu_ps(grads + i), gs);
        __m256 mv = _mm256_loadu_ps(m + i);
        __m256 vv = _mm256_loadu_ps(v + i);
        mv = _mm256_add_ps(_mm256_mul_ps(b1, mv), _mm256_mul_ps(ob1, g));
        vv = _mm256_add_ps(_mm256_mul_ps(b2, vv),
                           _mm256_mul_ps(_mm256_mul_ps(ob2, g), g));
        _mm256_storeu_ps(m + i, mv);
        _mm256_storeu_ps(v + i, vv);
        const __m256 mh = _mm256_div_ps(mv, bc1);
        const __m256 vh = _mm256_div_ps(vv, bc2);
        const __m256 upd = _mm256_div_ps(
            _mm256_mul_ps(lr, mh),
            _mm256_add_ps(_mm256_sqrt_ps(vh), eps));
        _mm256_storeu_ps(params + i,
                         _mm256_sub_ps(_mm256_loadu_ps(params + i), upd));
    }
    for (; i < n; ++i)
        detail::adamOneF32(params[i], grads[i], m[i], v[i], a);
}

} // namespace

const KernelOps &
avx2Kernels()
{
    static const KernelOps ops = {
        "avx2",           &quantizeDoubleAvx2, &quantizeFloatAvx2,
        &sampleWeightsAvx2, &packInt16Avx2,    &gemmBatchAvx2,
        &rlfCycleCountsAvx2, &wallacePassAvx2,
        &gemmBatchF32Avx2, &gemmAtBF32Avx2,    &gemmABF32Avx2,
        &adamStepF32Avx2,
    };
    return ops;
}

} // namespace vibnn::accel::kernels

#endif // x86
