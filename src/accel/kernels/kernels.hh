/**
 * @file
 * SIMD kernel layer with runtime dispatch — the vectorized inner loops
 * of the throughput inference path.
 *
 * The hot arithmetic of the batched weight-reuse executor is four flat
 * loops: quantizing real inputs onto the activation grid, converting
 * GRNG eps samples onto the eps grid, the fused weight draw
 * w = mu + (sigma * eps >> epsFrac), and the batched fixed-point GEMM
 * with the bias/ReLU/requantize finish stage. This layer packages each
 * of them as a free function behind a per-tier function table
 * (KernelOps) with three implementations:
 *
 *   "scalar"  portable reference — the semantic ground truth, compiled
 *             everywhere, and the definition every other tier must
 *             match bit for bit,
 *   "sse4"    128-bit x86 (SSE4.1),
 *   "avx2"    256-bit x86 (AVX2), with an additional int16 madd GEMM
 *             fast path when the operand formats allow it.
 *
 * activeKernels() picks the widest tier the running CPU supports once
 * per process; VIBNN_FORCE_SCALAR=1 pins the scalar tier and
 * VIBNN_KERNELS=<name> selects one explicitly (fatal if that tier is
 * not available on this CPU/build). Tests iterate availableKernels()
 * and assert bit-exactness of every tier against scalarKernels() —
 * including saturation and odd-size tail lanes — so the dispatch
 * decision is a pure performance choice, never a semantic one
 * (docs/ARCHITECTURE.md documents the contract).
 *
 * Integer dot products are order-invariant (64-bit accumulation never
 * overflows for any format the datapath admits, and saturation happens
 * only in the finish stage), which is what makes wide/reordered SIMD
 * accumulation bit-compatible with the sequential scalar loop. The
 * int16 madd path additionally needs the caller's guarantee that every
 * 32-bit partial fits (see GemmArgs::weights16).
 */

#ifndef VIBNN_ACCEL_KERNELS_KERNELS_HH
#define VIBNN_ACCEL_KERNELS_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

namespace vibnn::accel::kernels
{

/** Minimal 64-byte-aligning allocator: SIMD tiers may use aligned
 *  loads on arena data, and cache-line alignment keeps tile edges off
 *  shared lines when image shards run on different threads. */
template <typename T>
struct AlignedAllocator
{
    using value_type = T;
    static constexpr std::size_t alignment = 64;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n == 0)
            return nullptr;
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(alignment)));
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, std::align_val_t(alignment));
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U> &) const
    {
        return true;
    }
};

/** 64-byte-aligned vector for weight/activation arenas. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/** Finish-stage parameters of the GEMM kernels — the exact arithmetic
 *  of DatapathKernel::finishNeuron / finishOutputNeuron. */
struct GemmFinish
{
    /** Bias alignment shift onto the accumulator grid
     *  (activation fracBits). */
    int biasShift = 0;
    /** Requantization shift back to the activation grid
     *  (weight fracBits). */
    int outShift = 0;
    /** Activation-grid saturation bounds. */
    std::int32_t outMin = 0;
    std::int32_t outMax = 0;
    /** ReLU before requantization (hidden layers). */
    bool relu = true;
};

/**
 * One batched GEMM call: out[o, b] = finish(sum_k w[o, k] * x[b, k],
 * bias[o]) for o in [0, outDim), b in [0, images). The two output
 * strides express both activation layouts the executors use:
 * image-major Dense buffers (outNeuronStride = 1, outImageStride =
 * laneWidth) and neuron-major conv maps (outNeuronStride = positions,
 * outImageStride = 1).
 */
struct GemmArgs
{
    /** Weight slab, outDim rows of stride ldw (>= inDim). */
    const std::int32_t *weights = nullptr;
    std::size_t ldw = 0;
    /** Activations, images rows of stride lda (>= inDim). */
    const std::int32_t *acts = nullptr;
    std::size_t lda = 0;
    /** Raw mu-bias values, outDim entries. */
    const std::int32_t *bias = nullptr;
    /** Output, written at out[o * outNeuronStride + b * outImageStride]. */
    std::int32_t *out = nullptr;
    std::size_t outNeuronStride = 1;
    std::size_t outImageStride = 0;
    std::size_t inDim = 0;
    std::size_t outDim = 0;
    std::size_t images = 0;
    GemmFinish finish;

    /**
     * Optional int16-packed copies of weights/acts (same strides).
     * Setting BOTH non-null is the caller's guarantee that (a) every
     * weight and activation raw value fits int16 and (b)
     * inDim * max|w| * max|x| < 2^31, so 32-bit madd partials cannot
     * overflow. Tiers without an int16 path ignore them.
     */
    const std::int16_t *weights16 = nullptr;
    const std::int16_t *acts16 = nullptr;
};

/**
 * Transposed lane-parallel RLF state — the eps-generation kernel's view
 * of a whole RLF-GRNG (all lanes of rlf_grng.hh's RlfGrng at once).
 *
 * Instead of one byte-per-bit state vector per lane, lanes are packed
 * eight to a bit-plane group: `planes` holds `groups` planes of
 * `length` bytes each, and bit j of byte p in plane g is the state bit
 * of lane (8 g + j) at position p. All lanes share one head index (the
 * hardware's shared indexer), so one combined-update iteration is five
 * byte-wide XOR/mask operations per group — every lane advances in the
 * same pass, and the per-lane popcounts update incrementally from the
 * flipped bits. Only the paper's combined update with the
 * {n-5, n-3, n-2} tap pattern (true for length 255) is expressible in
 * this layout; RlfGrng falls back to its per-lane RlfLogic path for
 * anything else.
 */
struct RlfState
{
    /** Bit-plane state: groups planes of `length` bytes (see above). */
    std::uint8_t *planes = nullptr;
    /** Per-lane popcounts, groups * 8 entries, updated in place. */
    std::int32_t *sums = nullptr;
    /** State bits per lane (255 in the paper). */
    int length = 0;
    /** ceil(lanes / 8) bit-plane groups. */
    int groups = 0;
    /** Shared head position in [0, length); advanced by the kernel. */
    int head = 0;
};

/** Parameters of the fused weight-sampling kernel — the arithmetic of
 *  DatapathKernel::sampleWeight. */
struct SampleParams
{
    /** Product requantization shift (eps fracBits). */
    int epsShift = 0;
    /** Weight-grid saturation bounds. */
    std::int32_t wMin = 0;
    std::int32_t wMax = 0;
    /**
     * Conservative operand magnitude bounds implied by the formats
     * (|sigma| <= sigmaAbsMax, |eps| <= epsAbsMax). SIMD tiers use
     * them to prove the 32-bit product/sum fast path safe; when the
     * bounds do not fit they fall back to the scalar reference.
     */
    std::int64_t sigmaAbsMax = 0;
    std::int64_t epsAbsMax = 0;
};

/**
 * One float32 batched GEMM call for the training path. The same
 * argument block serves three contraction shapes (the fields are
 * interpreted per entry point, see the KernelOps members):
 *
 *   gemmBatchF32  c[i][j]  = dot(aRow i, bRow j, k) + bias[j]
 *                 (forward: activations (m x k) times weight rows
 *                 (n x k) — both operands contiguous in the reduction
 *                 index)
 *   gemmAtBF32    c[j][:k] += sum_i a[i][j] * b[i][:k], and
 *                 colSums[j] += a[i][j]
 *                 (backward weight grads dW = dyT . X with the bias
 *                 grad — the column sum of dy — folded in)
 *   gemmABF32     c[i][:k]  = sum_j a[i][j] * b[j][:k]
 *                 (backward delta dx = dy . W; overwrites c)
 *
 * Unlike the integer GEMM, float accumulation is order-sensitive, so
 * each entry point fixes a canonical accumulation order that every
 * tier reproduces bit for bit: gemmBatchF32 accumulates into eight
 * strided lanes (lane k mod 8) reduced by a fixed tree
 * (reduceLanes8F32), and the two backward shapes keep the reduction
 * index sequential per output element (vectorizing across independent
 * output elements only). Kernel translation units are compiled with
 * -ffp-contract=off so no tier silently fuses the multiply-add.
 */
struct GemmF32Args
{
    /** A, m rows of stride lda. */
    const float *a = nullptr;
    std::size_t lda = 0;
    /** B, rows of stride ldb (n rows for gemmBatchF32/gemmABF32,
     *  m rows for gemmAtBF32). */
    const float *b = nullptr;
    std::size_t ldb = 0;
    /** C, rows of stride ldc (m rows of n for gemmBatchF32, n rows of
     *  k for gemmAtBF32, m rows of k for gemmABF32). */
    float *c = nullptr;
    std::size_t ldc = 0;
    std::size_t m = 0;
    std::size_t n = 0;
    std::size_t k = 0;
    /** gemmBatchF32 only: optional bias, n entries, added once per
     *  output (out = dot + bias[j], a single rounding). */
    const float *bias = nullptr;
    /** gemmAtBF32 only: optional column-sum accumulator, n entries
     *  (the bias gradient), accumulated in the same i order as c. */
    float *colSums = nullptr;
};

/** One fused Adam step over a parameter segment. The caller owns the
 *  timestep and passes the bias corrections explicitly so a segmented
 *  sweep over many tensors shares one logical step. Arithmetic per
 *  element (IEEE single, no contraction — identical on every tier):
 *    g = grad * gradScale
 *    m = beta1 * m + (1 - beta1) * g
 *    v = beta2 * v + (1 - beta2) * g * g
 *    p -= lr * (m / bc1) / (sqrt(v / bc2) + epsilon)
 */
struct AdamStepArgs
{
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    /** Bias corrections 1 - beta^t for the current step. */
    float bc1 = 1.0f;
    float bc2 = 1.0f;
    /** Applied to every gradient before the moment updates (minibatch
     *  1/N scaling without a separate pass). */
    float gradScale = 1.0f;
};

/** One dispatch tier: a named table of kernel entry points. */
struct KernelOps
{
    const char *name;

    /** Quantize doubles onto a fixed-point grid: round to nearest,
     *  ties away from zero, saturating — bit-identical to
     *  FixedPointFormat::fromReal(value, RoundMode::Nearest). */
    void (*quantizeDouble)(const double *in, std::int32_t *out,
                           std::size_t n, int fracBits,
                           std::int32_t rawMin, std::int32_t rawMax);

    /** Same grid mapping for float inputs (batch activation
     *  quantization; floats go through the identical double path). */
    void (*quantizeFloat)(const float *in, std::int32_t *out,
                          std::size_t n, int fracBits,
                          std::int32_t rawMin, std::int32_t rawMax);

    /** Fused weight draw: out[i] = sat(mu[i] +
     *  ((sigma[i] * eps[i]) >> epsShift)) on the weight grid. */
    void (*sampleWeights)(const std::int32_t *mu,
                          const std::int32_t *sigma,
                          const std::int32_t *eps, std::int32_t *out,
                          std::size_t n, const SampleParams &params);

    /** Narrow int32 -> int16 (caller guarantees the values fit). */
    void (*packInt16)(const std::int32_t *in, std::int16_t *out,
                      std::size_t n);

    /** Batched GEMM + finish stage (see GemmArgs). */
    void (*gemmBatch)(const GemmArgs &args);

    /**
     * Advance `cycles` combined-update RLF iterations on every lane at
     * once and record the post-iteration per-lane popcounts:
     * counts[c * groups * 8 + lane] is lane's popcount after cycle c,
     * in raw (pre-output-mux) lane order. Semantically identical to
     * stepping `groups * 8` RlfLogic lanes (Combined mode,
     * {n-5, n-3, n-2} taps) `cycles` times each — ctest-pinned
     * bit-exact against exactly that. Updates st.planes, st.sums and
     * st.head in place.
     */
    void (*rlfCycleCounts)(RlfState &st, std::size_t cycles,
                           std::int32_t *counts);

    /**
     * One Wallace transform pass over the pool (WallaceGrng's hot
     * loop): walk poolSize/4 quadruples of the stride permutation
     * offset + m * stride (mod poolSize), Hadamard-transform each in
     * place, and optionally stream the transformed values to `out`
     * (4 * (poolSize / 4) entries, quadruple-major). The caller
     * guarantees gcd(stride, poolSize) == 1, so every slot is distinct
     * and vector tiers may process several quadruples concurrently;
     * per-lane arithmetic order matches the scalar reference, so every
     * tier is bit-exact.
     */
    void (*wallacePass)(double *pool, std::size_t poolSize,
                        std::size_t offset, std::size_t stride,
                        double *out);

    /** Batched f32 forward GEMM: c[i][j] = lane-8 dot(aRow i, bRow j)
     *  + bias[j] (see GemmF32Args). */
    void (*gemmBatchF32)(const GemmF32Args &args);

    /** f32 AT.B accumulation (weight grads + bias-grad column sums,
     *  see GemmF32Args). */
    void (*gemmAtBF32)(const GemmF32Args &args);

    /** f32 A.B overwrite (delta backprop, see GemmF32Args). */
    void (*gemmABF32)(const GemmF32Args &args);

    /** Fused Adam update over a contiguous segment: params, grads and
     *  both moment vectors advance element-wise per AdamStepArgs. */
    void (*adamStepF32)(float *params, const float *grads, float *m,
                        float *v, std::size_t n,
                        const AdamStepArgs &args);
};

/** The shared finish stage: bias add on the accumulator grid, optional
 *  ReLU, arithmetic-shift requantization, activation-grid saturation.
 *  Inline so every tier compiles the identical arithmetic. */
inline std::int32_t
gemmFinish(std::int64_t acc, std::int64_t bias_raw, const GemmFinish &f)
{
    std::int64_t v = acc + (bias_raw << f.biasShift);
    if (f.relu && v < 0)
        v = 0;
    v >>= f.outShift; // arithmetic shift floors negative values
    if (v > f.outMax)
        return f.outMax;
    if (v < f.outMin)
        return f.outMin;
    return static_cast<std::int32_t>(v);
}

/** The portable reference tier (always available). */
const KernelOps &scalarKernels();

/** The tier activeKernels() selected for this process (sticky: the
 *  first call reads VIBNN_FORCE_SCALAR / VIBNN_KERNELS and probes the
 *  CPU once). */
const KernelOps &activeKernels();

/** Name of the active tier ("scalar", "sse4", "avx2"). */
const char *activeKernelName();

/** Every tier compiled into this binary AND supported by the running
 *  CPU, widest last — what the bit-exactness tests iterate. */
std::vector<const KernelOps *> availableKernels();

/** Look up an available tier by name; nullptr when that tier is not
 *  compiled in or the CPU lacks it. */
const KernelOps *kernelsByName(const std::string &name);

} // namespace vibnn::accel::kernels

#endif // VIBNN_ACCEL_KERNELS_KERNELS_HH
