#include "accel/pe.hh"

// Pe is header-only arithmetic plus statistics; this translation unit
// anchors the class for the library.
