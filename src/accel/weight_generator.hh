/**
 * @file
 * Weight generator: GRNG + weight updater (paper Figure 12).
 *
 * Per weight lane and cycle, the updater receives an 8-bit unit-Gaussian
 * eps from the GRNG, reads (mu, sigma) from the WPMem word, and emits
 * w = mu + sigma * eps on the weight grid. A DFF tier between the GRNG
 * and the updater and a register tier holding the sampled weights
 * (Figure 14) give it a two-stage pipeline, modeled as latency in the
 * simulator's cycle accounting.
 */

#ifndef VIBNN_ACCEL_WEIGHT_GENERATOR_HH
#define VIBNN_ACCEL_WEIGHT_GENERATOR_HH

#include <cstdint>
#include <memory>

#include "accel/config.hh"
#include "grng/generator.hh"

namespace vibnn::accel
{

/** GRNG + weight updater for a bank of weight lanes. */
class WeightGenerator
{
  public:
    /**
     * @param kernel Shared datapath arithmetic.
     * @param generator The eps source (RLF, BNNWallace, or any
     *        GaussianGenerator). Not owned.
     */
    WeightGenerator(const DatapathKernel &kernel,
                    grng::GaussianGenerator *generator);

    /** Draw one eps on the eps grid (8-bit). */
    std::int64_t nextEpsRaw();

    /** Produce one sampled weight. */
    std::int64_t
    sample(std::int64_t mu_raw, std::int64_t sigma_raw)
    {
        return kernel_.sampleWeight(mu_raw, sigma_raw, nextEpsRaw());
    }

    /** Pipeline depth in cycles (GRNG DFF tier + weight tier). */
    static constexpr int pipelineDepth = 2;

    /** Samples drawn so far. */
    std::uint64_t samplesDrawn() const { return samplesDrawn_; }

  private:
    DatapathKernel kernel_;
    grng::GaussianGenerator *generator_;
    std::uint64_t samplesDrawn_ = 0;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_WEIGHT_GENERATOR_HH
