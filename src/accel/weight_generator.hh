/**
 * @file
 * Weight generator: GRNG + weight updater (paper Figure 12).
 *
 * Per weight lane and cycle, the updater receives an 8-bit unit-Gaussian
 * eps from the GRNG, reads (mu, sigma) from the WPMem word, and emits
 * w = mu + sigma * eps on the weight grid. A DFF tier between the GRNG
 * and the updater and a register tier holding the sampled weights
 * (Figure 14) give it a two-stage pipeline, modeled as latency in the
 * simulator's cycle accounting.
 *
 * The eps stream is produced in blocks: the GRNG's block fill() API
 * refills a ring of pre-converted fixed-point eps values, and the
 * float->fixed conversion runs through the SIMD kernel layer's
 * quantizeDouble once per refill (eps formats are <= 32 bits, so the
 * ring holds int32). Consumers either draw scalars (nextEpsRaw),
 * sample whole WPMem words at once (sampleBlock), or use the fused
 * sampleBlockFused path that emits int32 arena weights straight from
 * the vectorized mu + sigma * eps kernel; all observe the identical
 * stream a per-sample next() implementation would, because fill() is
 * bit-compatible with next() by contract and the kernel tiers are
 * bit-exact against the scalar reference.
 */

#ifndef VIBNN_ACCEL_WEIGHT_GENERATOR_HH
#define VIBNN_ACCEL_WEIGHT_GENERATOR_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "accel/config.hh"
#include "accel/kernels/kernels.hh"
#include "grng/generator.hh"

namespace vibnn::accel
{

/** GRNG + weight updater for a bank of weight lanes. */
class WeightGenerator
{
  public:
    /** Eps values prefetched per GRNG block refill. */
    static constexpr std::size_t epsBlock = 4096;

    /**
     * @param kernel Shared datapath arithmetic.
     * @param generator The eps source (RLF, BNNWallace, or any
     *        GaussianGenerator). Not owned.
     */
    WeightGenerator(const DatapathKernel &kernel,
                    grng::GaussianGenerator *generator);

    /** Draw one eps on the eps grid (8-bit). */
    std::int64_t
    nextEpsRaw()
    {
        if (epsPos_ >= epsFill_)
            refill();
        ++samplesDrawn_;
        return epsRaw_[epsPos_++];
    }

    /** Produce one sampled weight. */
    std::int64_t
    sample(std::int64_t mu_raw, std::int64_t sigma_raw)
    {
        return kernel_.sampleWeight(mu_raw, sigma_raw, nextEpsRaw());
    }

    /**
     * Sample `count` weights in one call: w[i] = mu[i] + sigma[i] *
     * eps, consuming `count` consecutive eps from the stream. This is
     * the per-chunk-cycle path of the simulator — one call covers a
     * whole WPMem word (all lanes of a PE set).
     */
    void
    sampleBlock(const std::int32_t *mu_raw, const std::int32_t *sigma_raw,
                std::int64_t *weights, std::size_t count)
    {
        std::size_t i = 0;
        while (i < count) {
            if (epsPos_ >= epsFill_)
                refill();
            const std::size_t take =
                std::min(count - i, epsFill_ - epsPos_);
            const std::int32_t *eps = epsRaw_.data() + epsPos_;
            for (std::size_t j = 0; j < take; ++j)
                weights[i + j] = kernel_.sampleWeight(
                    mu_raw[i + j], sigma_raw[i + j], eps[j]);
            epsPos_ += take;
            i += take;
        }
        samplesDrawn_ += count;
    }

    /**
     * The fused arena path: identical eps consumption and updater
     * arithmetic as sampleBlock (bit-exact, ctest-pinned), but the
     * sampled weights land directly in an int32 destination through
     * the dispatched SIMD kernel — no int64 staging, no second
     * narrowing pass. Weight grids are <= 32 bits, so the narrowing is
     * lossless by construction (the updater saturates on the weight
     * grid before the store).
     */
    void
    sampleBlockFused(const std::int32_t *mu_raw,
                     const std::int32_t *sigma_raw,
                     std::int32_t *weights, std::size_t count)
    {
        const auto &ops = kernels::activeKernels();
        std::size_t i = 0;
        while (i < count) {
            if (epsPos_ >= epsFill_)
                refill();
            const std::size_t take =
                std::min(count - i, epsFill_ - epsPos_);
            ops.sampleWeights(mu_raw + i, sigma_raw + i,
                              epsRaw_.data() + epsPos_, weights + i,
                              take, sampleParams_);
            epsPos_ += take;
            i += take;
        }
        samplesDrawn_ += count;
    }

    /**
     * Sharded fast path: sample `count` weights using eps samples
     * `offset .. offset + count` of the generator's stream, bypassing
     * the ring and leaving the sequential cursor untouched. Requires
     * splittable(); `eps_scratch` must hold `count` entries and belong
     * to the calling shard, so shards covering disjoint offset ranges
     * may run concurrently on one WeightGenerator. The weights are
     * bit-identical to sampleBlockFused consuming the same stream
     * positions sequentially (fillFixedAt contract + the same
     * dispatched sampling kernel). Call finishShardedRound() once all
     * shards complete to re-align the sequential stream.
     */
    void
    sampleBlockFusedAt(const std::int32_t *mu_raw,
                       const std::int32_t *sigma_raw,
                       std::int32_t *weights, std::size_t count,
                       std::uint64_t offset, std::int32_t *eps_scratch)
    {
        generator_->fillFixedAt(offset, eps_scratch, count,
                                kernel_.eps);
        kernels::activeKernels().sampleWeights(mu_raw, sigma_raw,
                                               eps_scratch, weights,
                                               count, sampleParams_);
    }

    /** True when the eps source supports the sharded random-access
     *  path (counter-based generators). */
    bool splittable() const { return generator_->splittable(); }

    /**
     * Absolute stream position of the next eps the sequential path
     * would consume (prefetched-but-unconsumed ring entries included).
     * This is where a sharded round must start its offsets.
     */
    std::uint64_t
    streamPos() const
    {
        return fetched_ - (epsFill_ - epsPos_);
    }

    /**
     * Complete a sharded round that consumed eps samples
     * streamPos() .. end_pos: repositions the sequential cursor past
     * the shard ranges, drops ring contents that predate the jump, and
     * books the consumed eps into samplesDrawn().
     */
    void finishShardedRound(std::uint64_t end_pos);

    /**
     * Swap the eps source. Prefetched-but-unconsumed eps from the old
     * stream are discarded, so the next draw comes from the new
     * generator's stream start. samplesDrawn() (consumed eps) is
     * unaffected.
     */
    void setGenerator(grng::GaussianGenerator *generator);

    /** Pipeline depth in cycles (GRNG DFF tier + weight tier). */
    static constexpr int pipelineDepth = 2;

    /** Eps samples consumed so far. */
    std::uint64_t samplesDrawn() const { return samplesDrawn_; }

  private:
    /** Block-refill the ring: the generator's fused fillFixed() when it
     *  has one, else one GRNG fill() plus one batch float->fixed
     *  conversion pass (bit-identical either way). */
    void refill();

    DatapathKernel kernel_;
    grng::GaussianGenerator *generator_;
    /** Precomputed fused-sampling kernel parameters (from kernel_). */
    kernels::SampleParams sampleParams_;
    std::uint64_t samplesDrawn_ = 0;
    /** Eps pulled from the generator so far (consumed + ring). */
    std::uint64_t fetched_ = 0;

    /** Real-valued staging for the GRNG block fill. */
    std::vector<double> epsReal_;
    /** The fixed-point eps ring (eps grids are <= 32 bits; aligned for
     *  the SIMD tiers). */
    kernels::AlignedVector<std::int32_t> epsRaw_;
    std::size_t epsPos_ = 0;
    std::size_t epsFill_ = 0;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_WEIGHT_GENERATOR_HH
