#include "accel/ram.hh"

#include "common/logging.hh"

namespace vibnn::accel
{

DualPortRam::DualPortRam(std::string name, std::size_t depth,
                         std::size_t lanes)
    : name_(std::move(name)), lanes_(lanes),
      words_(depth, RamWord(lanes, 0))
{
    VIBNN_ASSERT(depth > 0 && lanes > 0, "degenerate RAM " << name_);
}

void
DualPortRam::beginCycle()
{
    readsThisCycle_ = 0;
    writesThisCycle_ = 0;
}

const RamWord &
DualPortRam::read(std::size_t address)
{
    VIBNN_ASSERT(address < words_.size(),
                 name_ << ": read address " << address << " out of range");
    VIBNN_ASSERT(++readsThisCycle_ <= 1,
                 name_ << ": read port oversubscribed in one cycle");
    ++totalReads_;
    return words_[address];
}

void
DualPortRam::write(std::size_t address, const RamWord &word)
{
    VIBNN_ASSERT(address < words_.size(),
                 name_ << ": write address " << address
                       << " out of range");
    VIBNN_ASSERT(word.size() == lanes_, name_ << ": word width mismatch");
    VIBNN_ASSERT(++writesThisCycle_ <= 1,
                 name_ << ": write port oversubscribed in one cycle");
    ++totalWrites_;
    words_[address] = word;
}

RamWord &
DualPortRam::backdoor(std::size_t address)
{
    VIBNN_ASSERT(address < words_.size(),
                 name_ << ": backdoor address out of range");
    return words_[address];
}

} // namespace vibnn::accel
