/**
 * @file
 * Design-space exploration (see design_space.hh).
 */

#include "accel/design_space.hh"

#include <algorithm>

#include "accel/pe.hh"
#include "accel/weight_generator.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "hwmodel/cyclonev.hh"

namespace vibnn::accel
{

namespace
{

/** One bank schedule (rounds of M neurons) plus the boundary sync —
 *  the cost of a Dense op or of one ConvLowered position pass. */
std::uint64_t
bankPassCycles(std::uint64_t in, std::uint64_t out,
               const AcceleratorConfig &config)
{
    const std::uint64_t m = config.totalPes();
    const std::uint64_t s = config.pesPerSet;
    const std::uint64_t n = config.peInputs();
    constexpr std::uint64_t drain =
        WeightGenerator::pipelineDepth + Pe::pipelineDepth;

    const std::uint64_t rounds = (out + m - 1) / m;
    const std::uint64_t chunks = (in + n - 1) / n;

    std::uint64_t cycles = rounds * (chunks + drain);
    // Tail write-back: the final round's words cannot overlap the
    // next round; one cycle per PE-set that produced any neuron.
    const std::uint64_t last = out - (rounds - 1) * m;
    cycles += (last + s - 1) / s;
    cycles += 2; // boundary controller sync
    return cycles;
}

} // namespace

std::uint64_t
predictPassCycles(const std::vector<std::size_t> &layer_sizes,
                  const AcceleratorConfig &config)
{
    VIBNN_ASSERT(layer_sizes.size() >= 2, "need at least one layer");
    std::uint64_t total = 0;
    for (std::size_t li = 0; li + 1 < layer_sizes.size(); ++li)
        total += bankPassCycles(layer_sizes[li], layer_sizes[li + 1],
                                config);
    return total;
}

std::uint64_t
predictProgramCycles(const QuantizedProgram &program,
                     const AcceleratorConfig &config)
{
    const std::uint64_t n = config.peInputs();
    std::uint64_t total = 0;
    for (const auto &op : program.ops) {
        switch (op.kind) {
          case OpKind::Dense:
            total += bankPassCycles(op.bank.inDim, op.bank.outDim,
                                    config);
            break;
          case OpKind::ConvLowered:
            total += op.conv.positions() *
                bankPassCycles(op.conv.patchSize(), op.conv.outChannels,
                               config);
            break;
          case OpKind::Pool:
            // One word read + one word written per cycle through the
            // distributor, plus the boundary sync.
            total += (op.inSize + n - 1) / n + (op.outSize + n - 1) / n +
                2;
            break;
          case OpKind::Flatten:
          case OpKind::Output:
            break; // free relabeling / staging
        }
    }
    return total;
}

std::string
checkConstraints(const AcceleratorConfig &config,
                 const std::vector<std::size_t> &layer_sizes,
                 const hw::DesignEstimate *estimate)
{
    if (config.peSets < 1 || config.pesPerSet < 1)
        return "degenerate geometry";
    if (config.bits < 2 || config.bits > 16)
        return "operand width out of range [2, 16]";

    // Equation (15b): per-set WPMem word B*N*S within MaxWS.
    constexpr int max_ws = 1024;
    const int word = config.bits * config.peInputs() * config.pesPerSet;
    if (word > max_ws) {
        return strfmt("WPMem word %d exceeds MaxWS %d (equation 15b)",
                      word, max_ws);
    }

    // Write-drain feasibility (the corrected equation (14a); see
    // AcceleratorConfig::validate for the discrepancy discussion).
    std::size_t min_in = layer_sizes.front();
    for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i)
        min_in = std::min(min_in, layer_sizes[i]);
    const std::size_t chunks =
        (min_in + config.peInputs() - 1) / config.peInputs();
    if (static_cast<std::size_t>(config.peSets) > chunks) {
        return strfmt("PE sets (%d) exceed min chunks-per-layer (%zu); "
                      "IFMem write-back cannot drain (equation 14a)",
                      config.peSets, chunks);
    }

    if (estimate) {
        const auto total = estimate->total();
        using Dev = hw::CycloneVDevice;
        if (total.alms > Dev::totalAlms) {
            return strfmt("ALMs %.0f exceed device capacity %d",
                          total.alms, Dev::totalAlms);
        }
        if (total.memoryBits > Dev::totalMemoryBits) {
            return strfmt("memory bits %lld exceed device capacity %lld",
                          static_cast<long long>(total.memoryBits),
                          static_cast<long long>(Dev::totalMemoryBits));
        }
        if (total.ramBlocks > Dev::totalRamBlocks) {
            return strfmt("RAM blocks %d exceed device capacity %d",
                          total.ramBlocks, Dev::totalRamBlocks);
        }
        // DSP overflow spills multipliers into soft logic (the
        // estimate already prices that), so it is not a hard failure.
    }
    return "";
}

std::vector<DesignPoint>
exploreDesignSpace(const std::vector<std::size_t> &layer_sizes,
                   const ExplorerOptions &options)
{
    std::vector<DesignPoint> points;

    // Useful MACs of one pass, for the utilization figure.
    double useful_macs = 0.0;
    for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
        useful_macs += static_cast<double>(layer_sizes[i]) *
            static_cast<double>(layer_sizes[i + 1]);
    }

    for (int t : options.peSetChoices) {
        for (int s : options.peSizeChoices) {
            for (int b : options.bitChoices) {
                DesignPoint point;
                point.config.peSets = t;
                point.config.pesPerSet = s;
                point.config.bits = b;
                point.config.mcSamples = options.mcSamples;

                hw::NetworkHwConfig hw_cfg;
                hw_cfg.layerSizes.assign(layer_sizes.begin(),
                                         layer_sizes.end());
                hw_cfg.peSets = t;
                hw_cfg.pesPerSet = s;
                hw_cfg.peInputs = s;
                hw_cfg.bits = b;
                hw_cfg.grng = options.grng;
                point.estimate = hw::networkEstimate(hw_cfg);

                point.reason = checkConstraints(point.config, layer_sizes,
                                                &point.estimate);
                point.feasible = point.reason.empty();
                if (point.feasible) {
                    point.cyclesPerPass =
                        predictPassCycles(layer_sizes, point.config);
                    const double cycles_per_image =
                        static_cast<double>(point.cyclesPerPass) *
                        options.mcSamples;
                    point.imagesPerSecond =
                        point.estimate.fmaxMhz * 1e6 / cycles_per_image;
                    point.imagesPerJoule = point.imagesPerSecond /
                        (point.estimate.powerMw * 1e-3);
                    const double peak =
                        static_cast<double>(point.cyclesPerPass) *
                        point.config.totalPes() * point.config.peInputs();
                    point.utilization = useful_macs / peak;
                }
                points.push_back(std::move(point));
            }
        }
    }
    return points;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<DesignPoint> &points)
{
    // A feasible point is dominated if another feasible point has
    // >= throughput and <= ALMs, strictly better in at least one.
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!points[i].feasible)
            continue;
        const double ti = points[i].imagesPerSecond;
        const double ai = points[i].estimate.total().alms;
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
            if (j == i || !points[j].feasible)
                continue;
            const double tj = points[j].imagesPerSecond;
            const double aj = points[j].estimate.total().alms;
            if (tj >= ti && aj <= ai && (tj > ti || aj < ai))
                dominated = true;
        }
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&](std::size_t a, std::size_t b) {
                  return points[a].estimate.total().alms <
                      points[b].estimate.total().alms;
              });
    return frontier;
}

} // namespace vibnn::accel
