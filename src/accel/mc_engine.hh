/**
 * @file
 * Parallel Monte-Carlo inference engine.
 *
 * VIBNN's ensemble estimate (equation (6)) averages the softmax of
 * config.mcSamples independent forward passes. The engine schedules
 * that estimate over ThreadPool workers, each owning a full executor
 * backend replica (any id registered with accel::makeExecutor), at one
 * of two granularities:
 *
 *  - PerUnit (fidelity): the work unit is one (image, MC sample) pass.
 *    Every unit draws fresh weights — the paper's per-pass sampling
 *    contract — and runs with a generator freshly seeded from
 *    streamSeed(seedBase, i, s).
 *  - PerRound (throughput): the work unit is one MC round over the
 *    WHOLE batch, seeded from roundSeed(seedBase, r). On a backend
 *    with caps().batchedRounds (the "batched" weight-reuse path) one
 *    weight sample per compute op serves every image of the round, so
 *    the batch costs T rounds instead of T x B passes. When only one
 *    replica runs (rounds execute serially), the engine instead hands
 *    the pool to the backend via Executor::setWorkPool so it can
 *    parallelize the image dimension inside each round; with multiple
 *    replicas the grant is revoked — round-level scheduling owns the
 *    workers, and intra-pass fan-out underneath it would oversubscribe
 *    them.
 *
 * Determinism is by construction schedule-independent in both modes:
 * a unit's output is a pure function of (input(s), seeded eps stream),
 * so which replica executes it cannot change the result, outputs are
 * bit-identical for any thread count, and the per-image probability
 * reduction runs serially in sample order so the float accumulation
 * order is fixed too. Aggregate CycleStats are merged by summation
 * over replicas, which is also schedule-independent.
 */

#ifndef VIBNN_ACCEL_MC_ENGINE_HH
#define VIBNN_ACCEL_MC_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/executor.hh"
#include "accel/program.hh"
#include "common/thread_pool.hh"
#include "grng/generator.hh"
#include "stats/sequential_test.hh"

namespace vibnn::accel
{

/** Work-unit granularity for the Monte-Carlo fan-out. */
enum class McSchedule
{
    /** One (image, MC sample) pass per unit — fresh weight samples
     *  every pass (the paper's fidelity semantics). */
    PerUnit,
    /** One MC round over the whole batch per unit — one weight draw
     *  per compute op per round on weight-reuse backends. */
    PerRound,
};

/** Parallelization / seeding policy for McEngine. */
struct McEngineConfig
{
    /**
     * Worker parallelism. 0 sizes the engine from ThreadPool::global()
     * (workers + caller); an explicit value N runs on a private pool of
     * N executors (N == 1 means fully inline, no pool).
     */
    std::size_t threads = 0;
    /** Generator registry id used for every eps stream. */
    std::string generatorId = "rlf";
    /** Master seed; every (image, sample) stream derives from it. */
    std::uint64_t seedBase = 1;
    /** Executor backend registry id the replicas run on. */
    std::string backendId = "simulator";
    /** Fan-out granularity. */
    McSchedule schedule = McSchedule::PerUnit;
};

/** Per-image result with the per-sample detail kept. */
struct McResult
{
    std::size_t predicted = 0;
    /** Averaged class probabilities (outputDim). */
    std::vector<float> probs;
    /** Raw output-layer values of each MC pass (mcSamples x outputDim),
     *  on the activation grid — bit-comparable across runs. */
    std::vector<std::vector<std::int64_t>> rawSamples;
};

/**
 * Batched classification with the per-sample softmax distributions
 * kept — the probability hook the serving layer's uncertainty
 * decomposition (predictive entropy vs. mutual information) needs.
 */
struct McBatchResult
{
    /** Predicted class per image (count). */
    std::vector<std::size_t> predicted;
    /** Ensemble-mean probabilities, count x outputDim — bit-identical
     *  with what classifyBatch reports (same serial reduction). */
    std::vector<float> probs;
    /** Per-sample softmax distributions,
     *  count x mcSamples x outputDim row-major. */
    std::vector<float> sampleProbs;
};

/** Why an image's adaptive Monte-Carlo sampling stopped. */
enum class McExitReason
{
    /** Ran the full round budget (the hard images — and every image
     *  when the early-exit test is disabled). */
    Budget,
    /** The sequential CI test settled the argmax early. */
    Converged,
    /** The vote gap exceeded the remaining budget: mathematically
     *  frozen. */
    Decided,
    /** The wall-clock deadline expired (anytime mode): the running
     *  mean at that point is the best answer by the deadline. */
    Deadline,
};

/** Policy of classifyBatchAdaptive. */
struct McAdaptiveOptions
{
    /** Round budget per image; 0 uses config.mcSamples. */
    int budget = 0;
    /** Rounds per increment between convergence checkpoints. Small
     *  chunks exit earlier; larger ones amortize round dispatch. */
    int chunk = 4;
    /** The sequential convergence test (confidence, minSamples). */
    stats::SequentialTestConfig test;
    /** false disables early exit entirely: every image runs the full
     *  budget through the EXACT fixed-T code path (bit-identical to
     *  classifyBatchDetailed — the threshold=off contract). */
    bool enabled = true;
    /** Anytime deadline in seconds from call entry, checked at chunk
     *  boundaries; <= 0 means none. Wall-clock-dependent by nature, so
     *  the bit-determinism contract applies to runs without one. */
    double deadlineSeconds = 0.0;
};

/** classifyBatchAdaptive output: per-image posterior plus how many
 *  rounds each image actually consumed and why it stopped. */
struct McAdaptiveBatchResult
{
    /** Predicted class per image (count). */
    std::vector<std::size_t> predicted;
    /** Running ensemble-mean probabilities at exit, count x outputDim
     *  (double-accumulated in round order, then narrowed). */
    std::vector<float> probs;
    /** Per-sample softmax distributions, count x budget x outputDim
     *  row-major, zero-filled past each image's achieved rounds (the
     *  serving layer reads achieved[i] rows). Empty unless
     *  keep_sample_probs. */
    std::vector<float> sampleProbs;
    /** Rounds actually consumed per image. */
    std::vector<int> achieved;
    /** Why each image stopped. */
    std::vector<McExitReason> exitReason;
    /** Mean of achieved over the batch — the effective T. */
    double meanRounds = 0.0;
};

/** Parallel Monte-Carlo classification over executor-backend
 *  replicas. */
class McEngine
{
  public:
    McEngine(const QuantizedProgram &program,
             const AcceleratorConfig &config,
             const McEngineConfig &mc = McEngineConfig{});

    /** Legacy front-end: lift a flat QuantizedNetwork into a program
     *  (one Dense op per layer). */
    McEngine(const QuantizedNetwork &network,
             const AcceleratorConfig &config,
             const McEngineConfig &mc = McEngineConfig{});
    ~McEngine();

    McEngine(const McEngine &) = delete;
    McEngine &operator=(const McEngine &) = delete;

    /** Classify one image (config.mcSamples parallel passes). */
    std::size_t classify(const float *x, float *probs = nullptr);

    /** Classify with per-sample raw outputs retained. */
    McResult classifyDetailed(const float *x);

    /**
     * Classify a batch: `count` images of `stride` floats each,
     * row-major. Returns the predicted class per image; if `probs` is
     * non-null it receives count * outputDim averaged probabilities.
     */
    std::vector<std::size_t> classifyBatch(const float *xs,
                                           std::size_t count,
                                           std::size_t stride,
                                           float *probs = nullptr);

    /**
     * Classify a batch and keep the per-sample softmax distributions
     * (for mutual-information / BALD style uncertainty decomposition).
     * The mean probabilities are reduced in the exact same serial
     * sample order as classifyBatch, so `probs` is bit-identical to
     * what classifyBatch would report at the same seeds. With
     * keep_sample_probs false the count x T x outputDim buffer is
     * never materialized (sampleProbs stays empty) — for large
     * prediction-only batches.
     */
    McBatchResult classifyBatchDetailed(const float *xs,
                                        std::size_t count,
                                        std::size_t stride,
                                        bool keep_sample_probs = true);

    /**
     * Adaptive early-exit classification: run MC rounds in increments
     * of options.chunk, feed each image's per-round softmax into its
     * own SequentialPosteriorTest, and retire images from the active
     * set as soon as the test says more rounds cannot change the
     * decision — the easy images finish after minSamples rounds while
     * the hard ones run to the budget. Retired images leave the round
     * via active-set compaction (Executor::runRoundBatchGather), so
     * they stop occupying GEMM tiles immediately.
     *
     * Determinism: round r is always seeded roundSeed(seedBase, r) and
     * the batched weight draw is batch-independent, so a retained
     * image's eps stream — and therefore its sample sequence — is
     * bit-identical to the fixed-T run no matter which neighbours have
     * already retired; decisions and running means are serial per-image
     * double-precision reductions in round order. Results are therefore
     * bit-identical across thread counts AND batch compositions
     * (ctest-pinned). With options.enabled == false the call routes
     * through the exact fixed-T path and reproduces
     * classifyBatchDetailed byte for byte.
     *
     * Requires a backend with caps().batchedRounds (the sequential
     * per-image fallback stream would make per-image outputs depend on
     * batch composition); fatal() otherwise.
     */
    McAdaptiveBatchResult
    classifyBatchAdaptive(const float *xs, std::size_t count,
                          std::size_t stride,
                          const McAdaptiveOptions &options,
                          bool keep_sample_probs = true);

    /** Aggregate statistics merged (summed) over all replicas. */
    CycleStats stats() const;

    /** Replicas instantiated so far (grows up to the executor count). */
    std::size_t replicaCount() const { return replicas_.size(); }

    /** Executor parallelism the engine schedules for. */
    std::size_t executorCount() const { return executors_; }

    const AcceleratorConfig &config() const { return config_; }
    const QuantizedProgram &program() const { return program_; }

    /**
     * Seed of the eps stream for (image, sample) under `seed_base` —
     * exposed so tests can reproduce any single pass serially.
     */
    static std::uint64_t streamSeed(std::uint64_t seed_base,
                                    std::uint64_t image,
                                    std::uint64_t sample);

    /**
     * Seed of the eps stream of MC round `round` in PerRound mode —
     * exposed so tests can reproduce any single round serially.
     */
    static std::uint64_t roundSeed(std::uint64_t seed_base,
                                   std::uint64_t round);

  private:
    struct Replica
    {
        std::unique_ptr<grng::GaussianGenerator> idleGenerator;
        std::unique_ptr<Executor> executor;
    };

    /** Ensure replicas [0, n) exist. */
    void ensureReplicas(std::size_t n);

    /** Run one (image, sample) unit on a replica; returns raw pass
     *  outputs. */
    std::vector<std::int64_t> runUnit(Replica &replica, const float *x,
                                      std::uint64_t image,
                                      std::uint64_t sample);

    /**
     * The PerUnit parallel fan-out: run every (image, sample) unit of
     * the batch, returning count * mcSamples raw pass outputs indexed
     * by unit. Partitioning is replica-static; results depend only on
     * the unit, so the schedule is invisible in the output.
     */
    std::vector<std::vector<std::int64_t>> runUnits(const float *xs,
                                                    std::size_t count,
                                                    std::size_t stride);

    /**
     * The PerRound parallel fan-out: run every MC round over the whole
     * batch, returning mcSamples buffers of count * outputDim raw
     * values. Round r runs with the stream seeded by
     * roundSeed(seedBase, r), so the partition is invisible in the
     * output exactly like runUnits.
     */
    std::vector<std::vector<std::int64_t>> runRoundsBatch(
        const float *xs, std::size_t count, std::size_t stride);

    /**
     * Run global MC rounds [r_begin, r_end) over the active subset
     * `indices[0..count)` of the batch (gather rounds), fanned over
     * replicas like runRoundsBatch. `raw` is resized to
     * (r_end - r_begin) x count x outputDim, round-major. Round r is
     * seeded roundSeed(seedBase, r) — the GLOBAL index — so the stream
     * any surviving image sees is independent of chunking and of which
     * images remain.
     */
    void runRoundRange(const float *xs, std::size_t stride,
                       const std::uint32_t *indices, std::size_t count,
                       int r_begin, int r_end,
                       std::vector<std::int64_t> &raw);

    /** Softmax-average `samples` raw pass outputs (in sample order)
     *  into `probs` — the same reduction Executor::classify runs. A
     *  non-null `sample_probs` also receives the samples x outputDim
     *  per-sample distributions (without changing the mean). */
    void reduceProbs(const std::vector<std::int64_t> *raw_samples,
                     std::size_t samples, float *probs,
                     float *sample_probs = nullptr) const;

    /** The same reduction over PerRound buffers: sample s of `image`
     *  lives at rounds[s][image * outputDim ...]. */
    void reduceRoundProbs(
        const std::vector<std::vector<std::int64_t>> &rounds,
        std::size_t image, float *probs,
        float *sample_probs = nullptr) const;

    /** Shared body of classifyBatch / classifyBatchDetailed; either
     *  output pointer may be null. */
    std::vector<std::size_t> classifyBatchImpl(const float *xs,
                                               std::size_t count,
                                               std::size_t stride,
                                               float *probs,
                                               float *sample_probs);

    QuantizedProgram program_;
    AcceleratorConfig config_;
    McEngineConfig mc_;
    std::size_t executors_;
    /** Private pool when an explicit thread count was requested. */
    std::unique_ptr<ThreadPool> ownPool_;
    std::vector<Replica> replicas_;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_MC_ENGINE_HH
