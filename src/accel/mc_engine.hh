/**
 * @file
 * Parallel Monte-Carlo inference engine.
 *
 * VIBNN's ensemble estimate (equation (6)) averages the softmax of
 * config.mcSamples independent forward passes. The passes are
 * embarrassingly parallel — each one only needs the quantized network,
 * an input image, and its own eps stream — so the engine fans the
 * (image, sample) grid out over ThreadPool workers, each owning a full
 * Simulator replica.
 *
 * Determinism is by construction schedule-independent: every work unit
 * (image i, MC sample s) runs with a generator freshly seeded from
 * streamSeed(seedBase, i, s), and a simulator pass is a pure function
 * of (input, eps stream). Which replica executes a unit therefore
 * cannot change its output, per-sample results are bit-identical for
 * any thread count, and the per-image probability reduction runs
 * serially in sample order so the float accumulation order is fixed
 * too. Aggregate CycleStats are merged by summation over replicas,
 * which is also schedule-independent.
 */

#ifndef VIBNN_ACCEL_MC_ENGINE_HH
#define VIBNN_ACCEL_MC_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/program.hh"
#include "accel/simulator.hh"
#include "common/thread_pool.hh"
#include "grng/generator.hh"

namespace vibnn::accel
{

/** Parallelization / seeding policy for McEngine. */
struct McEngineConfig
{
    /**
     * Worker parallelism. 0 sizes the engine from ThreadPool::global()
     * (workers + caller); an explicit value N runs on a private pool of
     * N executors (N == 1 means fully inline, no pool).
     */
    std::size_t threads = 0;
    /** Generator registry id used for every eps stream. */
    std::string generatorId = "rlf";
    /** Master seed; every (image, sample) stream derives from it. */
    std::uint64_t seedBase = 1;
};

/** Per-image result with the per-sample detail kept. */
struct McResult
{
    std::size_t predicted = 0;
    /** Averaged class probabilities (outputDim). */
    std::vector<float> probs;
    /** Raw output-layer values of each MC pass (mcSamples x outputDim),
     *  on the activation grid — bit-comparable across runs. */
    std::vector<std::vector<std::int64_t>> rawSamples;
};

/** Parallel Monte-Carlo classification over Simulator replicas. */
class McEngine
{
  public:
    McEngine(const QuantizedProgram &program,
             const AcceleratorConfig &config,
             const McEngineConfig &mc = McEngineConfig{});

    /** Legacy front-end: lift a flat QuantizedNetwork into a program
     *  (one Dense op per layer). */
    McEngine(const QuantizedNetwork &network,
             const AcceleratorConfig &config,
             const McEngineConfig &mc = McEngineConfig{});
    ~McEngine();

    McEngine(const McEngine &) = delete;
    McEngine &operator=(const McEngine &) = delete;

    /** Classify one image (config.mcSamples parallel passes). */
    std::size_t classify(const float *x, float *probs = nullptr);

    /** Classify with per-sample raw outputs retained. */
    McResult classifyDetailed(const float *x);

    /**
     * Classify a batch: `count` images of `stride` floats each,
     * row-major. Returns the predicted class per image; if `probs` is
     * non-null it receives count * outputDim averaged probabilities.
     */
    std::vector<std::size_t> classifyBatch(const float *xs,
                                           std::size_t count,
                                           std::size_t stride,
                                           float *probs = nullptr);

    /** Aggregate statistics merged (summed) over all replicas. */
    CycleStats stats() const;

    /** Replicas instantiated so far (grows up to the executor count). */
    std::size_t replicaCount() const { return replicas_.size(); }

    /** Executor parallelism the engine schedules for. */
    std::size_t executorCount() const { return executors_; }

    const AcceleratorConfig &config() const { return config_; }
    const QuantizedProgram &program() const { return program_; }

    /**
     * Seed of the eps stream for (image, sample) under `seed_base` —
     * exposed so tests can reproduce any single pass serially.
     */
    static std::uint64_t streamSeed(std::uint64_t seed_base,
                                    std::uint64_t image,
                                    std::uint64_t sample);

  private:
    struct Replica
    {
        std::unique_ptr<grng::GaussianGenerator> idleGenerator;
        std::unique_ptr<Simulator> simulator;
    };

    /** Ensure replicas [0, n) exist. */
    void ensureReplicas(std::size_t n);

    /** Run one (image, sample) unit on a replica; returns raw pass
     *  outputs. */
    std::vector<std::int64_t> runUnit(Replica &replica, const float *x,
                                      std::uint64_t image,
                                      std::uint64_t sample);

    /**
     * The one parallel fan-out: run every (image, sample) unit of the
     * batch, returning count * mcSamples raw pass outputs indexed by
     * unit. Partitioning is replica-static; results depend only on the
     * unit, so the schedule is invisible in the output.
     */
    std::vector<std::vector<std::int64_t>> runUnits(const float *xs,
                                                    std::size_t count,
                                                    std::size_t stride);

    /** Softmax-average `samples` raw pass outputs (in sample order)
     *  into `probs` — the same reduction Simulator::classify runs. */
    void reduceProbs(const std::vector<std::int64_t> *raw_samples,
                     std::size_t samples, float *probs) const;

    QuantizedProgram program_;
    AcceleratorConfig config_;
    McEngineConfig mc_;
    std::size_t executors_;
    /** Private pool when an explicit thread count was requested. */
    std::unique_ptr<ThreadPool> ownPool_;
    std::vector<Replica> replicas_;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_MC_ENGINE_HH
