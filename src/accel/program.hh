/**
 * @file
 * Quantized program IR — the single compile-and-execute pipeline for
 * every workload that runs on the modeled accelerator.
 *
 * A QuantizedProgram is an ordered list of typed ops:
 *
 *   - Dense:       one fully-connected layer (a round-scheduled bank of
 *                  outDim neurons with inDim inputs),
 *   - ConvLowered: one convolution layer lowered via im2col — a filter
 *                  bank of outChannels neurons with patchSize inputs,
 *                  time-multiplexed over the conv's output positions,
 *                  drawing a *fresh* weight sample per position from the
 *                  same WPMem parameter planes,
 *   - Pool:        max pooling over CHW maps on the activation grid
 *                  (max is monotone on the grid, so pooling raw values
 *                  is exact),
 *   - Flatten:     the CHW -> flat-vector boundary (pure relabeling;
 *                  the buffers are already flat),
 *   - Output:      terminal staging — marks where the final activation
 *                  window is collected from the IFMem.
 *
 * Programs are produced by the compiler front-end compile(), which
 * lowers a trained BayesianMlp or BayesianConvNet onto the config's
 * fixed-point grids and validates the whole program against the
 * paper's equation-(15) constraint system once. Both executors — the
 * fast FunctionalRunner and the cycle-level Simulator — execute
 * programs, consuming GRNG eps in one canonical
 * (op, position, round, chunk, set, pe, lane) order, so the two are
 * bit-exact by construction for any program (a ctest asserts this on
 * multi-op CNN programs). See docs/ARCHITECTURE.md for the op
 * semantics, the eps-consumption contract, and how to add a new op.
 */

#ifndef VIBNN_ACCEL_PROGRAM_HH
#define VIBNN_ACCEL_PROGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/config.hh"
#include "nn/conv.hh"

namespace vibnn::bnn
{
class BayesianConvNet;
}

namespace vibnn::accel
{

/** Kinds of program ops the executors understand. */
enum class OpKind
{
    /** Fully-connected neuron bank (round-scheduled on the PE array). */
    Dense,
    /** im2col-lowered convolution: the filter bank runs once per output
     *  position with fresh weight samples each time. */
    ConvLowered,
    /** Max pool over CHW maps (memory-distributor datapath). */
    Pool,
    /** CHW -> flat relabeling (no data movement, no cycles). */
    Flatten,
    /** Terminal staging: collect the final activation window. */
    Output,
};

/** Human-readable op kind name (reports, per-op cycle tables). */
const char *opKindName(OpKind kind);

/** One typed op of a quantized program. */
struct ProgramOp
{
    OpKind kind = OpKind::Dense;
    /** Diagnostic label ("conv1 1->8 5x5", "dense 784->64", ...). */
    std::string label;
    /** Element count flowing into / out of the op. */
    std::size_t inSize = 0;
    std::size_t outSize = 0;
    /** Dense/ConvLowered: ReLU on the PE output stage (finishNeuron)
     *  vs. pass-through (finishOutputNeuron, terminal classifier). */
    bool relu = true;
    /** Dense/ConvLowered: the quantized parameter bank. Dense uses the
     *  whole layer (outSize x inSize); ConvLowered uses the filter bank
     *  (outChannels x patchSize). */
    QuantizedLayer bank;
    /** ConvLowered only: the im2col geometry. */
    nn::ConvSpec conv;
    /** Pool only: the pooling geometry. */
    nn::PoolSpec pool;

    /** True for ops that run neuron banks on the PE array (and
     *  therefore consume eps and occupy WPMem). */
    bool isCompute() const
    {
        return kind == OpKind::Dense || kind == OpKind::ConvLowered;
    }
};

/** A whole network lowered to an executable fixed-point program. */
struct QuantizedProgram
{
    std::vector<ProgramOp> ops;
    fixed::FixedPointFormat activationFormat{8, 4};
    fixed::FixedPointFormat weightFormat{8, 6};
    fixed::FixedPointFormat epsFormat{8, 5};

    /** Program input width. fatal() on an empty program. */
    std::size_t inputDim() const;
    /** Program output width. fatal() on an empty program. */
    std::size_t outputDim() const;

    /** Input widths of every compute op (the quantities the write-drain
     *  constraint of equation (14a) ranges over). */
    std::vector<std::size_t> bankInputSizes() const;
};

/**
 * Structural + architectural validation, run once per program: op
 * chaining, bank shapes, and the paper's equation-(15) constraint
 * system (WPMem word width, IFMem write-drain feasibility) for the
 * given accelerator geometry. fatal() on violation.
 */
void validateProgram(const QuantizedProgram &program,
                     const AcceleratorConfig &config);

/**
 * Quantize one variational neuron bank onto the program's grids —
 * the shared lowering core behind every compiler front-end (absorbs
 * what quantizeNetwork and quantizeConvLayer used to duplicate).
 * Weight planes are row-major outDim x inDim of (mu, rho); sigma =
 * softplus(rho) is quantized on the weight grid.
 */
QuantizedLayer quantizeBank(const float *mu_weight, const float *rho_weight,
                            const float *mu_bias, const float *rho_bias,
                            std::size_t in_dim, std::size_t out_dim,
                            const fixed::FixedPointFormat &weight_format);

/** Compile a trained Bayesian MLP into a validated program. */
QuantizedProgram compile(const bnn::BayesianMlp &net,
                         const AcceleratorConfig &config);

/** Compile a trained Bayesian CNN into a validated program:
 *  (ConvLowered [Pool])* Flatten Dense* Output. */
QuantizedProgram compile(const bnn::BayesianConvNet &net,
                         const AcceleratorConfig &config);

/** Lift a legacy flat QuantizedNetwork into a program (one Dense op
 *  per layer plus Output staging). Not validated here — the executors
 *  validate against their config, as they always did. */
QuantizedProgram programFromNetwork(const QuantizedNetwork &network);

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_PROGRAM_HH
