/**
 * @file
 * Design-space explorer for the accelerator geometry — the executable
 * form of the paper's Section 5.4 "Joint Optimization of PE Size/Number
 * and Memory Access".
 *
 * The paper argues that computation parallelism (T PE-sets of S = N-input
 * PEs) and memory traffic (IFMem word B*N, per-set WPMem word B*N*S)
 * cannot be chosen independently: equations (15a)-(15d) couple them
 * through the maximum on-chip word size and the write-drain condition.
 * This module enumerates candidate (T, S=N, B) points, applies the
 * constraint system, predicts the exact per-pass cycle count with an
 * analytic model (tested cycle-exact against the simulator), attaches
 * the Cyclone V resource/frequency/power estimate, and reports the
 * throughput/resource Pareto frontier.
 */

#ifndef VIBNN_ACCEL_DESIGN_SPACE_HH
#define VIBNN_ACCEL_DESIGN_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "accel/config.hh"
#include "accel/program.hh"
#include "hwmodel/network_hw.hh"

namespace vibnn::accel
{

/** One evaluated candidate configuration. */
struct DesignPoint
{
    AcceleratorConfig config;
    /** False when a constraint or device capacity is violated. */
    bool feasible = false;
    /** Human-readable violation description (empty when feasible). */
    std::string reason;
    /** Resource / fmax / power estimate (feasible points only). */
    hw::DesignEstimate estimate;
    /** Analytic cycles for one forward pass (one MC sample). */
    std::uint64_t cyclesPerPass = 0;
    /** Images/s at fmax with config.mcSamples passes per image. */
    double imagesPerSecond = 0.0;
    /** Images/J at the modeled power. */
    double imagesPerJoule = 0.0;
    /** Useful MACs / peak MAC slots over a pass. */
    double utilization = 0.0;
};

/** Candidate axes for the sweep. */
struct ExplorerOptions
{
    std::vector<int> peSetChoices{2, 4, 8, 16, 32, 64};
    std::vector<int> peSizeChoices{4, 8, 16};
    std::vector<int> bitChoices{8};
    hw::GrngKind grng = hw::GrngKind::Rlf;
    /** Monte-Carlo passes per classified image. */
    int mcSamples = 8;
};

/**
 * Analytic per-pass cycle count for a layer-sizes vector on a given
 * geometry. Reproduces the cycle simulator's accounting exactly:
 * per layer, rounds * (chunks + pipeline drain) + tail write-back +
 * controller sync. A gtest asserts equality with Simulator::stats().
 */
std::uint64_t predictPassCycles(const std::vector<std::size_t> &layer_sizes,
                                const AcceleratorConfig &config);

/**
 * Analytic per-pass cycle count for a QuantizedProgram on a given
 * geometry — the program-IR generalization of predictPassCycles.
 * Dense ops cost one bank schedule, ConvLowered ops cost positions()
 * bank schedules, Pool ops stream in+out words through the distributor,
 * Flatten/Output are free. A gtest asserts equality with
 * Simulator::stats() on multi-op CNN programs.
 */
std::uint64_t predictProgramCycles(const QuantizedProgram &program,
                                   const AcceleratorConfig &config);

/**
 * Non-fatal version of AcceleratorConfig::validate plus device-capacity
 * checks against the Cyclone V totals.
 * @return Empty string when feasible, else the first violated
 *         constraint.
 */
std::string checkConstraints(const AcceleratorConfig &config,
                             const std::vector<std::size_t> &layer_sizes,
                             const hw::DesignEstimate *estimate = nullptr);

/**
 * Enumerate and evaluate every candidate point (including infeasible
 * ones, flagged, so reports can show *why* the space is constrained).
 */
std::vector<DesignPoint>
exploreDesignSpace(const std::vector<std::size_t> &layer_sizes,
                   const ExplorerOptions &options);

/**
 * Indices of feasible points on the (maximize images/s, minimize ALMs)
 * Pareto frontier, sorted by ascending ALMs.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<DesignPoint> &points);

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_DESIGN_SPACE_HH
