/**
 * @file
 * Word-addressable simple-dual-port RAM model.
 *
 * Models the on-chip memories of the accelerator (IFMems, WPMems) at
 * word granularity: one read port and one write port, each usable at
 * most once per cycle — the budget the paper's banking schemes are
 * designed around. beginCycle() opens a new accounting window; reads
 * and writes outside the budget trip a VIBNN_ASSERT, so scheduling bugs
 * in the controller fail loudly in tests instead of silently producing
 * impossible hardware.
 */

#ifndef VIBNN_ACCEL_RAM_HH
#define VIBNN_ACCEL_RAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vibnn::accel
{

/** A word of raw fixed-point values. */
using RamWord = std::vector<std::int32_t>;

/** Simple dual-port RAM of `depth` words x `lanes` values. */
class DualPortRam
{
  public:
    /**
     * @param name Diagnostic label.
     * @param depth Word count.
     * @param lanes Values per word.
     */
    DualPortRam(std::string name, std::size_t depth, std::size_t lanes);

    /** Open a new cycle window (resets the per-cycle port budget). */
    void beginCycle();

    /** Read the word at `address` through the read port. */
    const RamWord &read(std::size_t address);

    /** Write the word at `address` through the write port. */
    void write(std::size_t address, const RamWord &word);

    /** Backdoor access (initialization / checking), no port charge. */
    RamWord &backdoor(std::size_t address);

    std::size_t depth() const { return words_.size(); }
    std::size_t lanes() const { return lanes_; }
    const std::string &name() const { return name_; }

    std::uint64_t totalReads() const { return totalReads_; }
    std::uint64_t totalWrites() const { return totalWrites_; }

  private:
    std::string name_;
    std::size_t lanes_;
    std::vector<RamWord> words_;
    int readsThisCycle_ = 0;
    int writesThisCycle_ = 0;
    std::uint64_t totalReads_ = 0;
    std::uint64_t totalWrites_ = 0;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_RAM_HH
