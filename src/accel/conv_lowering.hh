/**
 * @file
 * Convolution-on-accelerator lowering: geometry helpers.
 *
 * The paper's Section 1 claims VIBNN's design principles "are
 * orthogonal to the optimization techniques on convolutional layers"
 * — i.e. the PE array + weight generator serve CNNs too. The standard
 * im2col mapping makes that concrete: one output *position* of a conv
 * layer is a dense neuron bank (outChannels neurons of patchSize
 * inputs), so a conv layer executes as positions() time-multiplexed
 * bank schedules on the unmodified datapath. The weight generator
 * samples a fresh w = mu + sigma*eps per position-pass from the same
 * WPMem planes — the hardware analogue of drawing an independent
 * filter sample per receptive field (a *local* reparameterization in
 * hardware terms; the software direct estimator shares one filter
 * sample across positions, and the tests pin down both semantics).
 *
 * Since the QuantizedProgram IR refactor, the lowering itself lives in
 * the compiler front-end (accel/program.hh: compile(BayesianConvNet)
 * emits ConvLowered ops) and both executors run it natively. This
 * module keeps the raw-grid geometry helpers the executors share
 * (im2colRaw, maxPoolRaw), the single-layer quantizer, and
 * ConvLayerRunner — now a thin wrapper that compiles a one-op program
 * for a single conv layer, kept for layer-level studies and benches.
 */

#ifndef VIBNN_ACCEL_CONV_LOWERING_HH
#define VIBNN_ACCEL_CONV_LOWERING_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/config.hh"
#include "accel/simulator.hh"
#include "bnn/variational_conv.hh"
#include "grng/generator.hh"
#include "nn/conv.hh"

namespace vibnn::accel
{

/**
 * im2col on raw activation-grid values: patches is resized to
 * positions() x patchSize() row-major; row p holds the receptive field
 * of output position p (channel-major, then kernel row, then kernel
 * column), with zeros where the field overhangs the padded border —
 * the exact integer mirror of nn::im2col (gather commutes with
 * element-wise quantization, and the padding zero is fromReal(0)).
 */
void im2colRaw(const nn::ConvSpec &spec, const std::int64_t *x,
               std::vector<std::int64_t> &patches);

/** The same gather on the batched executor's narrowed int32 SoA
 *  buffers (identical indexing code, instantiated per width). */
void im2colRaw(const nn::ConvSpec &spec, const std::int32_t *x,
               std::vector<std::int32_t> &patches);

/**
 * Max pooling on raw activation-grid values (CHW in, CHW out). Max is
 * monotone on the fixed-point grid, so pooling raw values is exactly
 * the quantization of pooling real values.
 */
void maxPoolRaw(const nn::PoolSpec &spec, const std::int64_t *x,
                std::int64_t *out);

/** int32 variant for the batched executor's activation buffers. */
void maxPoolRaw(const nn::PoolSpec &spec, const std::int32_t *x,
                std::int32_t *out);

/**
 * Lower one variational conv layer to a single-layer quantized dense
 * network: outDim = outChannels, inDim = patchSize, with the filter
 * (mu, sigma) planes quantized on the config's grids.
 */
QuantizedNetwork quantizeConvLayer(const bnn::VariationalConv2d &layer,
                                   const AcceleratorConfig &config);

/** One conv layer running on the cycle simulator (a one-op program). */
class ConvLayerRunner
{
  public:
    /**
     * @param layer The trained variational conv layer (quantized here).
     * @param config Accelerator geometry (validated against the
     *        lowered layer).
     * @param generator GRNG feeding the weight generator (not owned).
     * @param apply_relu Apply the PE output stage's ReLU (hidden conv
     *        layers); false for a terminal layer.
     */
    ConvLayerRunner(const bnn::VariationalConv2d &layer,
                    const AcceleratorConfig &config,
                    grng::GaussianGenerator *generator,
                    bool apply_relu = true);

    /**
     * Run one sampled pass over a CHW input image; outputs collected
     * into CHW maps on the activation grid.
     * @param x Input maps, spec().inputSize() floats.
     * @return Raw activation-grid values, spec().outputSize() entries.
     */
    std::vector<std::int64_t> runPass(const float *x);

    /** Real-valued view of runPass (activation grid -> floats). */
    std::vector<float> runPassReal(const float *x);

    /** Simulator statistics (cycles accumulate across passes). */
    const CycleStats &stats() const { return sim_->stats(); }

    const nn::ConvSpec &spec() const { return spec_; }

    /** Cycles one full conv pass costs: positions x bank-pass cost. */
    std::uint64_t cyclesPerConvPass() const;

  private:
    nn::ConvSpec spec_;
    AcceleratorConfig config_;
    QuantizedProgram program_;
    std::unique_ptr<Simulator> sim_;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_CONV_LOWERING_HH
