/**
 * @file
 * Convolution-on-accelerator lowering.
 *
 * The paper's Section 1 claims VIBNN's design principles "are
 * orthogonal to the optimization techniques on convolutional layers"
 * — i.e. the PE array + weight generator serve CNNs too. This module
 * makes that concrete with the standard im2col mapping: one output
 * *position* of a conv layer is a dense neuron bank (outChannels
 * neurons of patchSize inputs), so a conv layer executes as
 * positions() time-multiplexed passes of a single-layer dense network
 * on the unmodified cycle simulator. The weight generator samples a
 * fresh w = mu + sigma*eps per position-pass from the same WPMem
 * planes — the hardware analogue of drawing an independent filter
 * sample per receptive field (a *local* reparameterization in hardware
 * terms; the software direct estimator shares one filter sample across
 * positions, and the tests pin down both semantics).
 *
 * The host-side im2col gather plays the memory distributor's role;
 * everything from the IFMem word reads to the PE accumulate/ReLU runs
 * in the simulator, so cycle counts and arithmetic are the machine's.
 */

#ifndef VIBNN_ACCEL_CONV_LOWERING_HH
#define VIBNN_ACCEL_CONV_LOWERING_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/config.hh"
#include "accel/simulator.hh"
#include "bnn/variational_conv.hh"
#include "grng/generator.hh"
#include "nn/conv.hh"

namespace vibnn::accel
{

/**
 * Lower one variational conv layer to a single-layer quantized dense
 * network: outDim = outChannels, inDim = patchSize, with the filter
 * (mu, sigma) planes quantized on the config's grids.
 */
QuantizedNetwork quantizeConvLayer(const bnn::VariationalConv2d &layer,
                                   const AcceleratorConfig &config);

/** One conv layer running on the cycle simulator. */
class ConvLayerRunner
{
  public:
    /**
     * @param layer The trained variational conv layer (quantized here).
     * @param config Accelerator geometry (validated against the
     *        lowered layer).
     * @param generator GRNG feeding the weight generator (not owned).
     * @param apply_relu Apply the PE output stage's ReLU (hidden conv
     *        layers); false for a terminal layer.
     */
    ConvLayerRunner(const bnn::VariationalConv2d &layer,
                    const AcceleratorConfig &config,
                    grng::GaussianGenerator *generator,
                    bool apply_relu = true);

    /**
     * Run one sampled pass over a CHW input image: im2col on the host,
     * one simulator pass per output position, outputs collected into
     * CHW maps on the activation grid.
     * @param x Input maps, spec().inputSize() floats.
     * @return Raw activation-grid values, spec().outputSize() entries.
     */
    std::vector<std::int64_t> runPass(const float *x);

    /** Real-valued view of runPass (activation grid -> floats). */
    std::vector<float> runPassReal(const float *x);

    /** Simulator statistics (cycles accumulate across passes). */
    const CycleStats &stats() const { return sim_->stats(); }

    const nn::ConvSpec &spec() const { return spec_; }

    /** Cycles one full conv pass costs: positions x dense-pass cost. */
    std::uint64_t cyclesPerConvPass() const;

  private:
    nn::ConvSpec spec_;
    AcceleratorConfig config_;
    bool applyRelu_;
    QuantizedNetwork lowered_;
    std::unique_ptr<Simulator> sim_;
    nn::Matrix patches_;
    std::vector<float> patchReal_;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_CONV_LOWERING_HH
