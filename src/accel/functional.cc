#include "accel/functional.hh"

#include <cmath>

#include "common/logging.hh"
#include "nn/activations.hh"
#include "nn/tensor.hh"

namespace vibnn::accel
{

FunctionalRunner::FunctionalRunner(const QuantizedNetwork &network,
                                   const AcceleratorConfig &config,
                                   grng::GaussianGenerator *generator)
    : network_(network), config_(config), kernel_(network),
      weightGen_(kernel_, generator)
{
    config_.validate(network_.layerSizes());
}

std::vector<std::int64_t>
FunctionalRunner::runPass(const float *x)
{
    const int t_sets = config_.peSets;
    const int s_pes = config_.pesPerSet;
    const int n = config_.peInputs();
    const int m = config_.totalPes();
    const auto &act = network_.activationFormat;

    // Quantize the input onto the activation grid, padded to a whole
    // number of N-wide words (as the IFMem stores it).
    const std::size_t in_dim = network_.inputDim();
    const std::size_t padded =
        (in_dim + n - 1) / n * static_cast<std::size_t>(n);
    bufferA_.assign(padded, 0);
    for (std::size_t i = 0; i < in_dim; ++i)
        bufferA_[i] = act.fromReal(x[i]);

    for (std::size_t li = 0; li < network_.layers.size(); ++li) {
        const auto &layer = network_.layers[li];
        const bool output_layer = li + 1 == network_.layers.size();
        const std::size_t rounds = (layer.outDim + m - 1) / m;
        const std::size_t chunks = (layer.inDim + n - 1) / n;
        const std::size_t out_padded =
            (layer.outDim + n - 1) / n * static_cast<std::size_t>(n);
        bufferB_.assign(std::max<std::size_t>(out_padded, n), 0);

        // Accumulators for the M in-flight neurons of a round.
        std::vector<std::int64_t> acc(m);

        for (std::size_t r = 0; r < rounds; ++r) {
            std::fill(acc.begin(), acc.end(), 0);
            for (std::size_t c = 0; c < chunks; ++c) {
                const std::int64_t *inputs = bufferA_.data() + c * n;
                for (int t = 0; t < t_sets; ++t) {
                    for (int s = 0; s < s_pes; ++s) {
                        const std::size_t pe =
                            static_cast<std::size_t>(t) * s_pes + s;
                        const std::size_t neuron = r * m + pe;
                        std::int64_t sum = 0;
                        for (int k = 0; k < n; ++k) {
                            // eps is consumed for every lane every
                            // chunk — identical order to the cycle
                            // simulator.
                            std::int64_t mu = 0, sg = 0;
                            const std::size_t input =
                                c * static_cast<std::size_t>(n) + k;
                            if (neuron < layer.outDim &&
                                input < layer.inDim) {
                                const std::size_t idx =
                                    neuron * layer.inDim + input;
                                mu = layer.muWeight[idx];
                                sg = layer.sigmaWeight[idx];
                            }
                            const std::int64_t w =
                                weightGen_.sample(mu, sg);
                            sum += w * inputs[k];
                        }
                        acc[pe] += sum;
                    }
                }
            }
            for (int pe = 0; pe < m; ++pe) {
                const std::size_t neuron = r * m + pe;
                if (neuron >= layer.outDim)
                    continue;
                const std::int64_t value =
                    output_layer
                        ? kernel_.finishOutputNeuron(
                              acc[pe], layer.muBias[neuron])
                        : kernel_.finishNeuron(acc[pe],
                                               layer.muBias[neuron]);
                bufferB_[neuron] = value;
            }
        }
        bufferA_.swap(bufferB_);
    }

    bufferA_.resize(network_.outputDim());
    return bufferA_;
}

std::size_t
FunctionalRunner::classify(const float *x, float *probs)
{
    const std::size_t out_dim = network_.outputDim();
    std::vector<float> acc(out_dim, 0.0f);
    std::vector<float> logits(out_dim);
    const auto &act = network_.activationFormat;

    for (int s = 0; s < config_.mcSamples; ++s) {
        const auto raw = runPass(x);
        for (std::size_t i = 0; i < out_dim; ++i)
            logits[i] = static_cast<float>(act.toReal(raw[i]));
        nn::softmax(logits.data(), out_dim);
        for (std::size_t i = 0; i < out_dim; ++i)
            acc[i] += logits[i];
    }
    const float inv = 1.0f / static_cast<float>(config_.mcSamples);
    for (auto &p : acc)
        p *= inv;
    if (probs)
        std::copy(acc.begin(), acc.end(), probs);
    return nn::argmax(acc.data(), acc.size());
}

} // namespace vibnn::accel
