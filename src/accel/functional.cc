#include "accel/functional.hh"

#include <algorithm>

#include "accel/conv_lowering.hh"
#include "common/logging.hh"

namespace vibnn::accel
{

namespace
{

/** Elements padded up to whole N-wide IFMem words. */
std::size_t
paddedWords(std::size_t elements, int n)
{
    return (elements + n - 1) / n * static_cast<std::size_t>(n);
}

} // namespace

FunctionalRunner::FunctionalRunner(const QuantizedProgram &program,
                                   const AcceleratorConfig &config,
                                   grng::GaussianGenerator *generator)
    : program_(program), config_(config),
      kernel_(program_.activationFormat, program_.weightFormat,
              program_.epsFormat),
      weightGen_(kernel_, generator)
{
    validateProgram(program_, config_);
}

FunctionalRunner::FunctionalRunner(const QuantizedNetwork &network,
                                   const AcceleratorConfig &config,
                                   grng::GaussianGenerator *generator)
    : FunctionalRunner(programFromNetwork(network), config, generator)
{
}

void
FunctionalRunner::setGenerator(grng::GaussianGenerator *generator)
{
    weightGen_.setGenerator(generator);
}

void
FunctionalRunner::runBank(const QuantizedLayer &bank, bool relu,
                          const std::int64_t *in, std::int64_t *out)
{
    const int t_sets = config_.peSets;
    const int s_pes = config_.pesPerSet;
    const int n = config_.peInputs();
    const int m = config_.totalPes();

    const std::size_t rounds = (bank.outDim + m - 1) / m;
    const std::size_t chunks = (bank.inDim + n - 1) / n;

    // Accumulators for the M in-flight neurons of a round.
    acc_.assign(m, 0);

    for (std::size_t r = 0; r < rounds; ++r) {
        std::fill(acc_.begin(), acc_.end(), 0);
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::int64_t *inputs = in + c * n;
            for (int t = 0; t < t_sets; ++t) {
                for (int s = 0; s < s_pes; ++s) {
                    const std::size_t pe =
                        static_cast<std::size_t>(t) * s_pes + s;
                    const std::size_t neuron = r * m + pe;
                    std::int64_t sum = 0;
                    for (int k = 0; k < n; ++k) {
                        // eps is consumed for every lane every chunk —
                        // identical order to the cycle simulator.
                        std::int64_t mu = 0, sg = 0;
                        const std::size_t input =
                            c * static_cast<std::size_t>(n) + k;
                        if (neuron < bank.outDim &&
                            input < bank.inDim) {
                            const std::size_t idx =
                                neuron * bank.inDim + input;
                            mu = bank.muWeight[idx];
                            sg = bank.sigmaWeight[idx];
                        }
                        const std::int64_t w =
                            weightGen_.sample(mu, sg);
                        sum += w * inputs[k];
                    }
                    acc_[pe] += sum;
                }
            }
        }
        for (int pe = 0; pe < m; ++pe) {
            const std::size_t neuron = r * m + pe;
            if (neuron >= bank.outDim)
                continue;
            out[neuron] =
                relu ? kernel_.finishNeuron(acc_[pe],
                                            bank.muBias[neuron])
                     : kernel_.finishOutputNeuron(acc_[pe],
                                                  bank.muBias[neuron]);
        }
    }
}

std::vector<std::int64_t>
FunctionalRunner::runPass(const float *x)
{
    const int n = config_.peInputs();
    const auto &act = program_.activationFormat;

    // Quantize the input onto the activation grid, padded to a whole
    // number of N-wide words (as the IFMem stores it).
    const std::size_t in_dim = program_.inputDim();
    bufferA_.assign(paddedWords(in_dim, n), 0);
    for (std::size_t i = 0; i < in_dim; ++i)
        bufferA_[i] = act.fromReal(x[i]);

    for (const auto &op : program_.ops) {
        switch (op.kind) {
          case OpKind::Dense: {
            bufferB_.assign(
                std::max<std::size_t>(paddedWords(op.outSize, n), n), 0);
            runBank(op.bank, op.relu, bufferA_.data(), bufferB_.data());
            bufferA_.swap(bufferB_);
            break;
          }
          case OpKind::ConvLowered: {
            im2colRaw(op.conv, bufferA_.data(), patches_);
            const std::size_t positions = op.conv.positions();
            const std::size_t patch = op.conv.patchSize();
            const std::size_t patch_padded = paddedWords(patch, n);
            bufferB_.assign(
                std::max<std::size_t>(paddedWords(op.outSize, n), n), 0);
            bankOut_.assign(op.conv.outChannels, 0);
            for (std::size_t p = 0; p < positions; ++p) {
                // Pad this position's patch to whole words and run the
                // filter bank — fresh weight samples per position.
                patchBuf_.assign(patch_padded, 0);
                std::copy(patches_.begin() + p * patch,
                          patches_.begin() + (p + 1) * patch,
                          patchBuf_.begin());
                runBank(op.bank, op.relu, patchBuf_.data(),
                        bankOut_.data());
                for (std::size_t oc = 0; oc < op.conv.outChannels; ++oc)
                    bufferB_[oc * positions + p] = bankOut_[oc];
            }
            bufferA_.swap(bufferB_);
            break;
          }
          case OpKind::Pool: {
            bufferB_.assign(
                std::max<std::size_t>(paddedWords(op.outSize, n), n), 0);
            maxPoolRaw(op.pool, bufferA_.data(), bufferB_.data());
            bufferA_.swap(bufferB_);
            break;
          }
          case OpKind::Flatten:
          case OpKind::Output:
            // Pure relabeling / staging.
            break;
        }
    }

    // Pass/sample accounting (no cycles on the untimed path).
    stats_.grnSamples = weightGen_.samplesDrawn();
    ++stats_.images;

    bufferA_.resize(program_.outputDim());
    return bufferA_;
}

} // namespace vibnn::accel
