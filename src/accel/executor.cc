#include "accel/executor.hh"

#include <algorithm>

#include "accel/batched_runner.hh"
#include "accel/functional.hh"
#include "accel/simulator.hh"
#include "common/logging.hh"
#include "nn/activations.hh"

namespace vibnn::accel
{

double
CycleStats::utilization(int total_pes, int pe_inputs) const
{
    if (totalCycles == 0)
        return 0.0;
    const double peak = static_cast<double>(totalCycles) * total_pes *
        pe_inputs;
    return static_cast<double>(macs) / peak;
}

double
CycleStats::cyclesPerPass() const
{
    if (images == 0)
        return 0.0;
    return static_cast<double>(totalCycles) /
        static_cast<double>(images);
}

CycleStats &
CycleStats::operator+=(const CycleStats &other)
{
    totalCycles += other.totalCycles;
    if (opCycles.size() < other.opCycles.size())
        opCycles.resize(other.opCycles.size(), 0);
    for (std::size_t i = 0; i < other.opCycles.size(); ++i)
        opCycles[i] += other.opCycles[i];
    ifmemReads += other.ifmemReads;
    ifmemWrites += other.ifmemWrites;
    wpmemReads += other.wpmemReads;
    grnSamples += other.grnSamples;
    macs += other.macs;
    images += other.images;
    return *this;
}

void
Executor::runRoundBatch(const float *xs, std::size_t count,
                        std::size_t stride, std::int64_t *out)
{
    // Per-pass fallback: one fresh-sample pass per image of the round.
    // Correct on every backend (the round then simply contains B
    // independent weight draws instead of one shared one); backends
    // with caps().batchedRounds override this with true weight reuse.
    const std::size_t out_dim = program().outputDim();
    for (std::size_t i = 0; i < count; ++i) {
        const auto raw = runPass(xs + i * stride);
        std::copy(raw.begin(), raw.end(), out + i * out_dim);
    }
}

void
Executor::runRoundBatchGather(const float *xs, std::size_t stride,
                              const std::uint32_t *indices,
                              std::size_t count, std::int64_t *out)
{
    // Gather-to-scratch fallback: stage the selected rows contiguously
    // and run a plain round over them. Backends with their own input
    // staging (the batched runner quantizes per image anyway) override
    // this to fold the gather into that step and skip the copy.
    std::vector<float> gathered(count * stride);
    for (std::size_t i = 0; i < count; ++i)
        std::copy(xs + indices[i] * stride,
                  xs + indices[i] * stride + stride,
                  gathered.begin() +
                      static_cast<std::ptrdiff_t>(i * stride));
    runRoundBatch(gathered.data(), count, stride, out);
}

std::size_t
Executor::classify(const float *x, float *probs)
{
    const std::size_t out_dim = program().outputDim();
    std::vector<float> acc(out_dim, 0.0f);
    std::vector<float> logits(out_dim);
    const auto &act = program().activationFormat;

    for (int s = 0; s < config().mcSamples; ++s) {
        const auto raw = runPass(x);
        for (std::size_t i = 0; i < out_dim; ++i)
            logits[i] = static_cast<float>(act.toReal(raw[i]));
        nn::softmax(logits.data(), out_dim);
        for (std::size_t i = 0; i < out_dim; ++i)
            acc[i] += logits[i];
    }
    const float inv = 1.0f / static_cast<float>(config().mcSamples);
    for (auto &p : acc)
        p *= inv;
    if (probs)
        std::copy(acc.begin(), acc.end(), probs);
    return nn::argmax(acc.data(), acc.size());
}

namespace
{

/** Backend subclass owning its eps stream: inherits every override of
 *  `Backend`, so nothing is forwarded (or forgotten). */
template <typename Backend>
std::unique_ptr<Executor>
makeOwning(const QuantizedProgram &program,
           const AcceleratorConfig &config,
           std::unique_ptr<grng::GaussianGenerator> generator)
{
    struct Owning : Backend
    {
        Owning(const QuantizedProgram &p, const AcceleratorConfig &c,
               std::unique_ptr<grng::GaussianGenerator> g)
            : Backend(p, c, g.get()), owned(std::move(g))
        {
        }
        std::unique_ptr<grng::GaussianGenerator> owned;
    };
    return std::make_unique<Owning>(program, config,
                                    std::move(generator));
}

template <typename Backend>
std::unique_ptr<Executor>
makeBorrowing(const QuantizedProgram &program,
              const AcceleratorConfig &config,
              grng::GaussianGenerator *generator)
{
    return std::make_unique<Backend>(program, config, generator);
}

/** The one registry row per backend — id, flags, both construction
 *  styles. Every public registry function derives from this table, so
 *  a new backend is exactly one added row (plus its caps() staying in
 *  sync with the flags here, which the registry ctest pins). */
struct BackendEntry
{
    const char *id;
    ExecutorCaps caps;
    std::unique_ptr<Executor> (*make)(const QuantizedProgram &,
                                      const AcceleratorConfig &,
                                      grng::GaussianGenerator *);
    std::unique_ptr<Executor> (*makeOwningStream)(
        const QuantizedProgram &, const AcceleratorConfig &,
        std::unique_ptr<grng::GaussianGenerator>);
};

const BackendEntry kBackends[] = {
    {"simulator", {/*cycleAccurate=*/true, /*batchedRounds=*/false},
     &makeBorrowing<Simulator>, &makeOwning<Simulator>},
    {"functional", {/*cycleAccurate=*/false, /*batchedRounds=*/false},
     &makeBorrowing<FunctionalRunner>, &makeOwning<FunctionalRunner>},
    {"batched", {/*cycleAccurate=*/false, /*batchedRounds=*/true},
     &makeBorrowing<BatchedRunner>, &makeOwning<BatchedRunner>},
};

/** The entry for `id`, or fatal() with the registered ids listed. */
const BackendEntry &
findBackend(const std::string &id)
{
    for (const auto &entry : kBackends) {
        if (id == entry.id)
            return entry;
    }
    fatal("unknown executor id '" + id + "' (registered: " +
          joinStrings(registeredExecutorIds()) + ")");
}

} // namespace

std::unique_ptr<Executor>
makeExecutor(const std::string &id, const QuantizedProgram &program,
             const AcceleratorConfig &config,
             grng::GaussianGenerator *generator)
{
    return findBackend(id).make(program, config, generator);
}

std::unique_ptr<Executor>
makeExecutor(const std::string &id, const QuantizedProgram &program,
             const AcceleratorConfig &config,
             std::unique_ptr<grng::GaussianGenerator> generator)
{
    return findBackend(id).makeOwningStream(program, config,
                                            std::move(generator));
}

std::vector<std::string>
registeredExecutorIds()
{
    std::vector<std::string> ids;
    for (const auto &entry : kBackends)
        ids.emplace_back(entry.id);
    return ids;
}

ExecutorCaps
executorCaps(const std::string &id)
{
    return findBackend(id).caps;
}

} // namespace vibnn::accel
