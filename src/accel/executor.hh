/**
 * @file
 * Executor backend layer — the one seam every consumer of the
 * QuantizedProgram IR executes through.
 *
 * An Executor runs programs: `runPass(input) -> raw outputs` for one
 * Monte-Carlo sample, `runRoundBatch(batch) -> raw outputs` for one MC
 * round over a whole image batch, and `classify()` for the full
 * ensemble estimate (equation (6)). Backends advertise what they are
 * via ExecutorCaps and register under a string id (mirroring
 * grng::makeGenerator), so McEngine, VibnnSystem, benches and tests
 * construct them declaratively:
 *
 *   "simulator"   the cycle-level machine (accel/simulator.hh) —
 *                 cycle-accurate, bit-exact canonical eps order
 *   "functional"  the fast untimed datapath (accel/functional.hh) —
 *                 bit-exact with "simulator" by construction
 *   "batched"     the throughput-first weight-reuse path
 *                 (accel/batched_runner.hh) — one weight sample per
 *                 compute op per MC round, shared across the whole
 *                 batch (and across conv positions), executed as
 *                 batch-vectorized GEMM against a sampled-weight
 *                 arena; statistically equivalent, not bit-exact
 *
 * The round-batch API is what makes weight-reuse batching expressible:
 * a backend with caps().batchedRounds == true draws ONE weight sample
 * per compute op and amortizes it over every image of the batch, so an
 * MC-ensemble classification costs T rounds instead of T x B passes
 * (the dominant serving win of Fan et al.'s FPGA BNN accelerator,
 * arXiv:2105.09163). Backends without the capability fall back to one
 * fresh-sample pass per image, which keeps round scheduling correct —
 * just not cheaper — on every backend.
 */

#ifndef VIBNN_ACCEL_EXECUTOR_HH
#define VIBNN_ACCEL_EXECUTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/config.hh"
#include "accel/program.hh"
#include "grng/generator.hh"

namespace vibnn
{
class ThreadPool;
}

namespace vibnn::accel
{

/** Execution statistics for one or more inference passes. */
struct CycleStats
{
    std::uint64_t totalCycles = 0;
    /** Per-op cycle accounting, indexed like QuantizedProgram::ops
     *  (staging ops — Flatten, Output — read 0). */
    std::vector<std::uint64_t> opCycles;
    std::uint64_t ifmemReads = 0;
    std::uint64_t ifmemWrites = 0;
    std::uint64_t wpmemReads = 0;
    std::uint64_t grnSamples = 0;
    std::uint64_t macs = 0;
    std::uint64_t images = 0;

    /** PE-array utilization: useful MACs / peak MAC slots. */
    double utilization(int total_pes, int pe_inputs) const;

    /** Cycles per single forward pass (one MC sample). */
    double cyclesPerPass() const;

    /** Merge another run's counters into this one (McEngine replica
     *  aggregation). Lives next to the fields so a new counter cannot
     *  be forgotten in the merge. */
    CycleStats &operator+=(const CycleStats &other);
};

/** What an executor backend provides. */
struct ExecutorCaps
{
    /** stats() carries real cycle/port accounting (the paper's timing
     *  model); false means only pass/sample counters are meaningful. */
    bool cycleAccurate = false;
    /** runRoundBatch() reuses one weight sample per compute op across
     *  the whole batch (the throughput path); false means the default
     *  per-image fresh-sample fallback runs. */
    bool batchedRounds = false;
};

/** A program-executing backend. */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** The loaded program / the geometry it was validated against. */
    virtual const QuantizedProgram &program() const = 0;
    virtual const AcceleratorConfig &config() const = 0;

    /** Backend capability flags. */
    virtual ExecutorCaps caps() const = 0;

    /** Swap the eps source (round/unit scheduling gives every work
     *  unit an independently seeded stream). Not owned. */
    virtual void setGenerator(grng::GaussianGenerator *generator) = 0;

    /**
     * Offer the backend a worker pool (not owned; nullptr revokes) for
     * intra-pass parallelism — e.g. the batched runner fans the image
     * dimension of a round over it. Purely a performance hint: results
     * must stay bit-identical with any pool or none, and callers that
     * already parallelize ABOVE the executor (round- or unit-level
     * scheduling) must revoke it so one fan-out does not oversubscribe
     * the other's threads. Default: ignored (backends without
     * intra-pass parallelism).
     */
    virtual void setWorkPool(ThreadPool *pool) { (void)pool; }

    /** One forward pass (one MC sample); raw output-layer values on
     *  the activation grid. */
    virtual std::vector<std::int64_t> runPass(const float *x) = 0;

    /**
     * One Monte-Carlo round over a batch: `count` images of `stride`
     * floats each, row-major; `out` receives count * outputDim raw
     * values. Backends with caps().batchedRounds draw one weight
     * sample per compute op for the whole round; the base fallback
     * runs one fresh-sample runPass per image.
     */
    virtual void runRoundBatch(const float *xs, std::size_t count,
                               std::size_t stride, std::int64_t *out);

    /**
     * One Monte-Carlo round over an ACTIVE SUBSET of a batch: image i
     * of the round is row `indices[i]` of `xs` (count indices, rows of
     * `stride` floats); `out` receives count * outputDim raw values in
     * index order. This is the active-set compaction hook of the
     * adaptive early-exit path: retired images simply stop appearing
     * in `indices`, so they no longer occupy GEMM tiles. The weight
     * draw is identical to runRoundBatch (one sample per compute op
     * for the whole round, off the same stream positions), and each
     * selected image's output is bit-identical to the row it would get
     * from runRoundBatch over any superset — per-image results never
     * depend on which neighbours share the round. The base fallback
     * gathers the selected rows and delegates to runRoundBatch;
     * batched backends override it to gather during input
     * quantization instead (no staging copy).
     */
    virtual void runRoundBatchGather(const float *xs, std::size_t stride,
                                     const std::uint32_t *indices,
                                     std::size_t count,
                                     std::int64_t *out);

    /** Execution statistics accumulated so far. */
    virtual const CycleStats &stats() const = 0;

    /**
     * Full Monte-Carlo classification (config().mcSamples passes with
     * softmax averaging, equation (6)) — the shared ensemble reduction
     * every backend inherits.
     * @param probs Optional: receives the averaged class probabilities.
     * @return The predicted class.
     */
    std::size_t classify(const float *x, float *probs = nullptr);
};

/**
 * Create an executor backend by registry id ("simulator", "functional",
 * "batched"). The generator is not owned. fatal() on unknown ids, with
 * the registered ids listed in the message.
 */
std::unique_ptr<Executor> makeExecutor(const std::string &id,
                                       const QuantizedProgram &program,
                                       const AcceleratorConfig &config,
                                       grng::GaussianGenerator *generator);

/**
 * Same, but the executor takes ownership of its eps stream (the
 * long-lived-backend case: facade handles, caches). Implemented by
 * deriving from the concrete backend, so every override — present and
 * future — is inherited rather than forwarded.
 */
std::unique_ptr<Executor>
makeExecutor(const std::string &id, const QuantizedProgram &program,
             const AcceleratorConfig &config,
             std::unique_ptr<grng::GaussianGenerator> generator);

/** All ids accepted by makeExecutor, in presentation order — the
 *  registry introspection facades and error messages build on. */
std::vector<std::string> registeredExecutorIds();

/** A backend's capability flags by registry id, without constructing
 *  it (scheduling policy — e.g. whether round coalescing is sound —
 *  is decided before any engine exists). fatal() on unknown ids.
 *  ctest-enforced equal to the constructed backend's caps(). */
ExecutorCaps executorCaps(const std::string &id);

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_EXECUTOR_HH
