#include "accel/config.hh"

#include <algorithm>

#include "accel/program.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace vibnn::accel
{

fixed::FixedPointFormat
AcceleratorConfig::activationFormat() const
{
    return {bits, std::max(1, bits - 4)};
}

fixed::FixedPointFormat
AcceleratorConfig::weightFormat() const
{
    return {bits, std::max(1, bits - 2)};
}

fixed::FixedPointFormat
AcceleratorConfig::epsFormat() const
{
    return {8, 5};
}

void
AcceleratorConfig::validate(
    const std::vector<std::size_t> &layer_sizes) const
{
    VIBNN_ASSERT(peSets >= 1 && pesPerSet >= 1, "degenerate geometry");
    VIBNN_ASSERT(bits >= 2 && bits <= 16, "operand width out of range");

    // Equation (15b): the per-set WPMem word B*N*S must fit the
    // device's maximum word size (we take MaxWS = 1024 bits, a
    // realistic striped-M10K word).
    constexpr int max_ws = 1024;
    const int word = bits * peInputs() * pesPerSet;
    if (word > max_ws) {
        fatal(strfmt("WPMem word %d exceeds MaxWS %d (equation 15b)",
                     word, max_ws));
    }

    // Write-drain feasibility: each round produces T words for the
    // idle IFMem, drained one per cycle while the next round computes
    // for ceil(in/N) cycles. (The paper's equation (14a) prints this
    // with an extra factor S; as written it would reject the paper's
    // own 16x8x8 configuration, so we implement the version that
    // matches the architecture's intent.)
    std::size_t min_in = layer_sizes.front();
    for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i)
        min_in = std::min(min_in, layer_sizes[i]);
    const std::size_t chunks =
        (min_in + peInputs() - 1) / peInputs();
    if (static_cast<std::size_t>(peSets) > chunks) {
        fatal(strfmt("PE sets (%d) exceed min rounds-per-layer (%zu); "
                     "IFMem write-back cannot drain (equation 14a)",
                     peSets, chunks));
    }
}

std::size_t
QuantizedNetwork::inputDim() const
{
    if (layers.empty())
        fatal("QuantizedNetwork::inputDim(): network has no layers "
              "(quantize a trained model first)");
    return layers.front().inDim;
}

std::size_t
QuantizedNetwork::outputDim() const
{
    if (layers.empty())
        fatal("QuantizedNetwork::outputDim(): network has no layers "
              "(quantize a trained model first)");
    return layers.back().outDim;
}

std::vector<std::size_t>
QuantizedNetwork::layerSizes() const
{
    std::vector<std::size_t> sizes;
    sizes.push_back(layers.front().inDim);
    for (const auto &layer : layers)
        sizes.push_back(layer.outDim);
    return sizes;
}

QuantizedNetwork
quantizeNetwork(const bnn::BayesianMlp &net,
                const AcceleratorConfig &config)
{
    QuantizedNetwork q;
    q.activationFormat = config.activationFormat();
    q.weightFormat = config.weightFormat();
    q.epsFormat = config.epsFormat();

    for (const auto &layer : net.layers()) {
        q.layers.push_back(quantizeBank(
            layer.muWeight().data().data(),
            layer.rhoWeight().data().data(), layer.muBias().data(),
            layer.rhoBias().data(), layer.inDim(), layer.outDim(),
            q.weightFormat));
    }
    return q;
}

} // namespace vibnn::accel
