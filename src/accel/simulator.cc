#include "accel/simulator.hh"

#include <cmath>

#include "common/logging.hh"
#include "nn/activations.hh"
#include "nn/tensor.hh"

namespace vibnn::accel
{

double
CycleStats::utilization(int total_pes, int pe_inputs) const
{
    if (totalCycles == 0)
        return 0.0;
    const double peak = static_cast<double>(totalCycles) * total_pes *
        pe_inputs;
    return static_cast<double>(macs) / peak;
}

double
CycleStats::cyclesPerPass() const
{
    if (images == 0)
        return 0.0;
    return static_cast<double>(totalCycles) /
        static_cast<double>(images);
}

CycleStats &
CycleStats::operator+=(const CycleStats &other)
{
    totalCycles += other.totalCycles;
    if (layerCycles.size() < other.layerCycles.size())
        layerCycles.resize(other.layerCycles.size(), 0);
    for (std::size_t i = 0; i < other.layerCycles.size(); ++i)
        layerCycles[i] += other.layerCycles[i];
    ifmemReads += other.ifmemReads;
    ifmemWrites += other.ifmemWrites;
    wpmemReads += other.wpmemReads;
    grnSamples += other.grnSamples;
    macs += other.macs;
    images += other.images;
    return *this;
}

Simulator::Simulator(const QuantizedNetwork &network,
                     const AcceleratorConfig &config,
                     grng::GaussianGenerator *generator)
    : network_(network), config_(config), kernel_(network),
      weightGen_(kernel_, generator)
{
    config_.validate(network_.layerSizes());

    const int n = config_.peInputs();
    for (int p = 0; p < config_.totalPes(); ++p)
        pes_.emplace_back(kernel_);

    // IFMems sized for the widest layer.
    std::size_t widest = 0;
    for (std::size_t w : network_.layerSizes())
        widest = std::max(widest, w);
    const std::size_t if_depth = (widest + n - 1) / n;
    ifmems_[0] =
        std::make_unique<DualPortRam>("IFMem1", if_depth, n);
    ifmems_[1] =
        std::make_unique<DualPortRam>("IFMem2", if_depth, n);

    weights_.resize(static_cast<std::size_t>(config_.pesPerSet) * n);

    packWpmems();
}

void
Simulator::setGenerator(grng::GaussianGenerator *generator)
{
    weightGen_.setGenerator(generator);
}

void
Simulator::packWpmems()
{
    const int t_sets = config_.peSets;
    const int s_pes = config_.pesPerSet;
    const int n = config_.peInputs();
    const int m = config_.totalPes();

    // Total words per WPMem across all layers.
    std::size_t depth = 0;
    layerWpBase_.clear();
    for (const auto &layer : network_.layers) {
        layerWpBase_.push_back(depth);
        const std::size_t rounds = (layer.outDim + m - 1) / m;
        const std::size_t chunks = (layer.inDim + n - 1) / n;
        depth += rounds * chunks;
    }

    const std::size_t lanes = static_cast<std::size_t>(s_pes) * n;
    for (int t = 0; t < t_sets; ++t) {
        wpmemMu_.push_back(std::make_unique<DualPortRam>(
            "WPMem" + std::to_string(t + 1) + ".mu", depth, lanes));
        wpmemSigma_.push_back(std::make_unique<DualPortRam>(
            "WPMem" + std::to_string(t + 1) + ".sigma", depth, lanes));
    }

    // Pack: word (layer, round, chunk) for set t holds, for each PE s
    // in the set, the N parameters of neuron round*M + t*S + s over
    // inputs [chunk*N, chunk*N + N).
    for (std::size_t li = 0; li < network_.layers.size(); ++li) {
        const auto &layer = network_.layers[li];
        const std::size_t rounds = (layer.outDim + m - 1) / m;
        const std::size_t chunks = (layer.inDim + n - 1) / n;
        for (std::size_t r = 0; r < rounds; ++r) {
            for (std::size_t c = 0; c < chunks; ++c) {
                const std::size_t addr =
                    layerWpBase_[li] + r * chunks + c;
                for (int t = 0; t < t_sets; ++t) {
                    RamWord &mu = wpmemMu_[t]->backdoor(addr);
                    RamWord &sg = wpmemSigma_[t]->backdoor(addr);
                    for (int s = 0; s < s_pes; ++s) {
                        const std::size_t neuron =
                            r * m + static_cast<std::size_t>(t) * s_pes +
                            s;
                        for (int k = 0; k < n; ++k) {
                            const std::size_t input = c * n + k;
                            std::int32_t mv = 0, sv = 0;
                            if (neuron < layer.outDim &&
                                input < layer.inDim) {
                                const std::size_t idx =
                                    neuron * layer.inDim + input;
                                mv = layer.muWeight[idx];
                                sv = layer.sigmaWeight[idx];
                            }
                            mu[s * n + k] = mv;
                            sg[s * n + k] = sv;
                        }
                    }
                }
            }
        }
    }
}

void
Simulator::runLayer(std::size_t layer_index, bool output_layer)
{
    const auto &layer = network_.layers[layer_index];
    const int t_sets = config_.peSets;
    const int s_pes = config_.pesPerSet;
    const int n = config_.peInputs();
    const int m = config_.totalPes();

    DualPortRam &ifmem_in = *ifmems_[activeIfmem_];
    DualPortRam &ifmem_out = *ifmems_[1 - activeIfmem_];

    const std::size_t rounds = (layer.outDim + m - 1) / m;
    const std::size_t chunks = (layer.inDim + n - 1) / n;
    const std::size_t lanes = static_cast<std::size_t>(s_pes) * n;
    std::uint64_t cycles = 0;

    for (std::size_t r = 0; r < rounds; ++r) {
        for (auto &pe : pes_)
            pe.startNeuron();

        for (std::size_t c = 0; c < chunks; ++c) {
            // ---- one chunk cycle ----
            ifmem_in.beginCycle();
            const RamWord &inputs = ifmem_in.read(c);
            ++stats_.ifmemReads;

            const std::size_t addr =
                layerWpBase_[layer_index] + r * chunks + c;
            for (int t = 0; t < t_sets; ++t) {
                wpmemMu_[t]->beginCycle();
                wpmemSigma_[t]->beginCycle();
                const RamWord &mu = wpmemMu_[t]->read(addr);
                const RamWord &sg = wpmemSigma_[t]->read(addr);
                stats_.wpmemReads += 2;

                // Every lane consumes an eps each cycle — the GRNG
                // free-runs — whether or not the neuron is real. The
                // whole WPMem word (all S*N lanes of the set) is
                // sampled in one block call against the eps ring.
                weightGen_.sampleBlock(mu.data(), sg.data(),
                                       weights_.data(), lanes);
                for (int s = 0; s < s_pes; ++s) {
                    pes_[static_cast<std::size_t>(t) * s_pes + s]
                        .macChunk(weights_.data() + s * n,
                                  inputs.data(), n);
                }
            }
            ++cycles;
        }

        // Pipeline drain: weight-generator tier + PE stages.
        cycles += WeightGenerator::pipelineDepth + Pe::pipelineDepth;

        // Memory distributor: finish neurons, pack one word per set,
        // write into the idle IFMem. Writes overlap the next round's
        // compute (the validate() drain condition guarantees the write
        // port keeps up); only the final round's writes extend the
        // layer's critical path.
        for (int t = 0; t < t_sets; ++t) {
            RamWord &word = distWord_;
            word.assign(n, 0);
            bool any = false;
            for (int s = 0; s < s_pes; ++s) {
                const std::size_t neuron =
                    r * m + static_cast<std::size_t>(t) * s_pes + s;
                if (neuron >= layer.outDim)
                    continue;
                any = true;
                const std::int64_t value = pes_[static_cast<std::size_t>(
                                                    t) * s_pes + s]
                                               .finish(
                                                   layer.muBias[neuron],
                                                   output_layer);
                word[s] = static_cast<std::int32_t>(value);
            }
            if (any) {
                ifmem_out.beginCycle();
                ifmem_out.write(r * t_sets + t, word);
                ++stats_.ifmemWrites;
                if (r + 1 == rounds)
                    ++cycles; // non-overlapped tail writes
            }
        }
    }

    cycles += 2; // layer-boundary controller sync
    stats_.layerCycles[layer_index] += cycles;
    stats_.totalCycles += cycles;
    activeIfmem_ = 1 - activeIfmem_;
}

std::vector<std::int64_t>
Simulator::runPass(const float *x)
{
    const int n = config_.peInputs();
    const auto &act = network_.activationFormat;

    if (stats_.layerCycles.size() != network_.layers.size())
        stats_.layerCycles.assign(network_.layers.size(), 0);

    // Load the quantized image into the active IFMem (backdoor: the
    // external-memory transfer is pipelined with compute and is not
    // part of the per-image cycle count; see EXPERIMENTS.md).
    activeIfmem_ = 0;
    const std::size_t in_dim = network_.inputDim();
    for (std::size_t w = 0; w * n < in_dim; ++w) {
        RamWord &word = ifmems_[0]->backdoor(w);
        for (int k = 0; k < n; ++k) {
            const std::size_t i = w * n + k;
            word[k] = i < in_dim
                          ? static_cast<std::int32_t>(act.fromReal(x[i]))
                          : 0;
        }
    }

    for (std::size_t li = 0; li < network_.layers.size(); ++li)
        runLayer(li, li + 1 == network_.layers.size());

    // Collect the output layer from the now-active IFMem.
    const std::size_t out_dim = network_.outputDim();
    std::vector<std::int64_t> out(out_dim);
    for (std::size_t i = 0; i < out_dim; ++i) {
        const RamWord &word = ifmems_[activeIfmem_]->backdoor(i / n);
        out[i] = word[i % n];
    }

    // Refresh aggregate counters.
    stats_.grnSamples = weightGen_.samplesDrawn();
    std::uint64_t macs = 0;
    for (const auto &pe : pes_)
        macs += pe.macCount();
    stats_.macs = macs;
    ++stats_.images;
    return out;
}

std::size_t
Simulator::classify(const float *x, float *probs)
{
    const std::size_t out_dim = network_.outputDim();
    std::vector<float> acc(out_dim, 0.0f);
    std::vector<float> logits(out_dim);
    const auto &act = network_.activationFormat;

    for (int s = 0; s < config_.mcSamples; ++s) {
        const auto raw = runPass(x);
        for (std::size_t i = 0; i < out_dim; ++i)
            logits[i] = static_cast<float>(act.toReal(raw[i]));
        nn::softmax(logits.data(), out_dim);
        for (std::size_t i = 0; i < out_dim; ++i)
            acc[i] += logits[i];
    }
    const float inv = 1.0f / static_cast<float>(config_.mcSamples);
    for (auto &p : acc)
        p *= inv;
    if (probs)
        std::copy(acc.begin(), acc.end(), probs);
    return nn::argmax(acc.data(), acc.size());
}

} // namespace vibnn::accel
