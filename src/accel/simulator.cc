#include "accel/simulator.hh"

#include <algorithm>

#include "accel/conv_lowering.hh"
#include "common/logging.hh"

namespace vibnn::accel
{

Simulator::Simulator(const QuantizedProgram &program,
                     const AcceleratorConfig &config,
                     grng::GaussianGenerator *generator)
    : program_(program), config_(config),
      kernel_(program_.activationFormat, program_.weightFormat,
              program_.epsFormat),
      weightGen_(kernel_, generator)
{
    validateProgram(program_, config_);

    const int n = config_.peInputs();
    for (int p = 0; p < config_.totalPes(); ++p)
        pes_.emplace_back(kernel_);

    // IFMems sized for the widest window any op stages: every op
    // boundary plus conv patches (a patch can exceed the input maps
    // when the kernel overhangs a small padded input).
    std::size_t widest = program_.inputDim();
    for (const auto &op : program_.ops) {
        widest = std::max({widest, op.inSize, op.outSize});
        if (op.kind == OpKind::ConvLowered)
            widest = std::max(widest, op.conv.patchSize());
    }
    const std::size_t if_depth = (widest + n - 1) / n;
    ifmems_[0] =
        std::make_unique<DualPortRam>("IFMem1", if_depth, n);
    ifmems_[1] =
        std::make_unique<DualPortRam>("IFMem2", if_depth, n);

    weights_.resize(static_cast<std::size_t>(config_.pesPerSet) * n);

    packWpmems();
}

Simulator::Simulator(const QuantizedNetwork &network,
                     const AcceleratorConfig &config,
                     grng::GaussianGenerator *generator)
    : Simulator(programFromNetwork(network), config, generator)
{
}

void
Simulator::setGenerator(grng::GaussianGenerator *generator)
{
    weightGen_.setGenerator(generator);
}

void
Simulator::packWpmems()
{
    const int t_sets = config_.peSets;
    const int s_pes = config_.pesPerSet;
    const int n = config_.peInputs();
    const int m = config_.totalPes();

    // Total words per WPMem across all compute ops.
    std::size_t depth = 0;
    opWpBase_.clear();
    for (const auto &op : program_.ops) {
        opWpBase_.push_back(depth);
        if (!op.isCompute())
            continue;
        const std::size_t rounds = (op.bank.outDim + m - 1) / m;
        const std::size_t chunks = (op.bank.inDim + n - 1) / n;
        depth += rounds * chunks;
    }

    const std::size_t lanes = static_cast<std::size_t>(s_pes) * n;
    for (int t = 0; t < t_sets; ++t) {
        wpmemMu_.push_back(std::make_unique<DualPortRam>(
            "WPMem" + std::to_string(t + 1) + ".mu", depth, lanes));
        wpmemSigma_.push_back(std::make_unique<DualPortRam>(
            "WPMem" + std::to_string(t + 1) + ".sigma", depth, lanes));
    }

    // Pack: word (op, round, chunk) for set t holds, for each PE s in
    // the set, the N parameters of neuron round*M + t*S + s over
    // inputs [chunk*N, chunk*N + N). A ConvLowered op packs its filter
    // bank once; every position pass re-reads the same words.
    for (std::size_t oi = 0; oi < program_.ops.size(); ++oi) {
        const auto &op = program_.ops[oi];
        if (!op.isCompute())
            continue;
        const auto &bank = op.bank;
        const std::size_t rounds = (bank.outDim + m - 1) / m;
        const std::size_t chunks = (bank.inDim + n - 1) / n;
        for (std::size_t r = 0; r < rounds; ++r) {
            for (std::size_t c = 0; c < chunks; ++c) {
                const std::size_t addr =
                    opWpBase_[oi] + r * chunks + c;
                for (int t = 0; t < t_sets; ++t) {
                    RamWord &mu = wpmemMu_[t]->backdoor(addr);
                    RamWord &sg = wpmemSigma_[t]->backdoor(addr);
                    for (int s = 0; s < s_pes; ++s) {
                        const std::size_t neuron =
                            r * m + static_cast<std::size_t>(t) * s_pes +
                            s;
                        for (int k = 0; k < n; ++k) {
                            const std::size_t input = c * n + k;
                            std::int32_t mv = 0, sv = 0;
                            if (neuron < bank.outDim &&
                                input < bank.inDim) {
                                const std::size_t idx =
                                    neuron * bank.inDim + input;
                                mv = bank.muWeight[idx];
                                sv = bank.sigmaWeight[idx];
                            }
                            mu[s * n + k] = mv;
                            sg[s * n + k] = sv;
                        }
                    }
                }
            }
        }
    }
}

std::uint64_t
Simulator::runBankRounds(std::size_t wp_index, const QuantizedLayer &bank,
                         bool relu, DualPortRam &ifmem_in,
                         DualPortRam &ifmem_out)
{
    const int t_sets = config_.peSets;
    const int s_pes = config_.pesPerSet;
    const int n = config_.peInputs();
    const int m = config_.totalPes();

    const std::size_t rounds = (bank.outDim + m - 1) / m;
    const std::size_t chunks = (bank.inDim + n - 1) / n;
    const std::size_t lanes = static_cast<std::size_t>(s_pes) * n;
    std::uint64_t cycles = 0;

    for (std::size_t r = 0; r < rounds; ++r) {
        for (auto &pe : pes_)
            pe.startNeuron();

        for (std::size_t c = 0; c < chunks; ++c) {
            // ---- one chunk cycle ----
            ifmem_in.beginCycle();
            const RamWord &inputs = ifmem_in.read(c);
            ++stats_.ifmemReads;

            const std::size_t addr =
                opWpBase_[wp_index] + r * chunks + c;
            for (int t = 0; t < t_sets; ++t) {
                wpmemMu_[t]->beginCycle();
                wpmemSigma_[t]->beginCycle();
                const RamWord &mu = wpmemMu_[t]->read(addr);
                const RamWord &sg = wpmemSigma_[t]->read(addr);
                stats_.wpmemReads += 2;

                // Every lane consumes an eps each cycle — the GRNG
                // free-runs — whether or not the neuron is real. The
                // whole WPMem word (all S*N lanes of the set) is
                // sampled in one block call against the eps ring.
                weightGen_.sampleBlock(mu.data(), sg.data(),
                                       weights_.data(), lanes);
                for (int s = 0; s < s_pes; ++s) {
                    pes_[static_cast<std::size_t>(t) * s_pes + s]
                        .macChunk(weights_.data() + s * n,
                                  inputs.data(), n);
                }
            }
            ++cycles;
        }

        // Pipeline drain: weight-generator tier + PE stages.
        cycles += WeightGenerator::pipelineDepth + Pe::pipelineDepth;

        // Memory distributor: finish neurons, pack one word per set,
        // write into the idle IFMem. Writes overlap the next round's
        // compute (the validate() drain condition guarantees the write
        // port keeps up); only the final round's writes extend the
        // bank's critical path.
        for (int t = 0; t < t_sets; ++t) {
            RamWord &word = distWord_;
            word.assign(n, 0);
            bool any = false;
            for (int s = 0; s < s_pes; ++s) {
                const std::size_t neuron =
                    r * m + static_cast<std::size_t>(t) * s_pes + s;
                if (neuron >= bank.outDim)
                    continue;
                any = true;
                const std::int64_t value = pes_[static_cast<std::size_t>(
                                                    t) * s_pes + s]
                                               .finish(
                                                   bank.muBias[neuron],
                                                   /*output_layer=*/!relu);
                word[s] = static_cast<std::int32_t>(value);
            }
            if (any) {
                ifmem_out.beginCycle();
                ifmem_out.write(r * t_sets + t, word);
                ++stats_.ifmemWrites;
                if (r + 1 == rounds)
                    ++cycles; // non-overlapped tail writes
            }
        }
    }
    return cycles;
}

void
Simulator::runDenseOp(std::size_t op_index)
{
    const auto &op = program_.ops[op_index];
    std::uint64_t cycles =
        runBankRounds(op_index, op.bank, op.relu, *ifmems_[activeIfmem_],
                      *ifmems_[1 - activeIfmem_]);
    cycles += 2; // op-boundary controller sync
    stats_.opCycles[op_index] += cycles;
    stats_.totalCycles += cycles;
    activeIfmem_ = 1 - activeIfmem_;
}

void
Simulator::runConvOp(std::size_t op_index)
{
    const auto &op = program_.ops[op_index];
    const int n = config_.peInputs();
    DualPortRam &ifmem_in = *ifmems_[activeIfmem_];
    DualPortRam &ifmem_out = *ifmems_[1 - activeIfmem_];

    // Host-side gather (the memory distributor's external role): pull
    // the CHW input maps out of the active IFMem and im2col them. The
    // transfer is pipelined with compute and not charged cycles, like
    // the image load in runPass.
    mapStage_.resize(op.inSize);
    for (std::size_t i = 0; i < op.inSize; ++i)
        mapStage_[i] = ifmem_in.backdoor(i / n)[i % n];
    im2colRaw(op.conv, mapStage_.data(), patchStage_);

    const std::size_t positions = op.conv.positions();
    const std::size_t patch = op.conv.patchSize();
    const std::size_t chunks = (patch + n - 1) / n;
    outStage_.assign(op.outSize, 0);

    std::uint64_t cycles = 0;
    for (std::size_t p = 0; p < positions; ++p) {
        // Stage this position's patch into the active IFMem, padded to
        // whole N-wide words.
        const std::int64_t *row = patchStage_.data() + p * patch;
        for (std::size_t w = 0; w < chunks; ++w) {
            RamWord &word = ifmem_in.backdoor(w);
            for (int k = 0; k < n; ++k) {
                const std::size_t i = w * n + k;
                word[k] = i < patch
                              ? static_cast<std::int32_t>(row[i])
                              : 0;
            }
        }

        // One bank schedule per output position — fresh weight samples
        // from the same WPMem planes each time.
        cycles += runBankRounds(op_index, op.bank, op.relu, ifmem_in,
                                ifmem_out) +
            2; // position-boundary controller sync

        // Collect the position's channel column into the CHW staging.
        for (std::size_t oc = 0; oc < op.conv.outChannels; ++oc) {
            outStage_[oc * positions + p] =
                ifmem_out.backdoor(oc / n)[oc % n];
        }
    }

    // Re-stage the CHW output maps into the idle IFMem (distributor
    // write-back, overlapped with the final position's drain).
    for (std::size_t w = 0; w * n < op.outSize; ++w) {
        RamWord &word = ifmem_out.backdoor(w);
        for (int k = 0; k < n; ++k) {
            const std::size_t i = w * n + k;
            word[k] = i < op.outSize
                          ? static_cast<std::int32_t>(outStage_[i])
                          : 0;
        }
    }

    stats_.opCycles[op_index] += cycles;
    stats_.totalCycles += cycles;
    activeIfmem_ = 1 - activeIfmem_;
}

void
Simulator::runPoolOp(std::size_t op_index)
{
    const auto &op = program_.ops[op_index];
    const int n = config_.peInputs();
    DualPortRam &ifmem_in = *ifmems_[activeIfmem_];
    DualPortRam &ifmem_out = *ifmems_[1 - activeIfmem_];

    // Stream the maps through the distributor datapath: one word read
    // per cycle into the comparator line buffer...
    const std::size_t in_words = (op.inSize + n - 1) / n;
    mapStage_.resize(op.inSize);
    std::uint64_t cycles = 0;
    for (std::size_t w = 0; w < in_words; ++w) {
        ifmem_in.beginCycle();
        const RamWord &word = ifmem_in.read(w);
        ++stats_.ifmemReads;
        for (int k = 0; k < n; ++k) {
            const std::size_t i = w * n + k;
            if (i < op.inSize)
                mapStage_[i] = word[k];
        }
        ++cycles;
    }

    // ...max over each window (monotone on the activation grid, so raw
    // comparison is exact)...
    outStage_.assign(op.outSize, 0);
    maxPoolRaw(op.pool, mapStage_.data(), outStage_.data());

    // ...and one word written per cycle into the idle IFMem.
    const std::size_t out_words = (op.outSize + n - 1) / n;
    RamWord &word = distWord_;
    for (std::size_t w = 0; w < out_words; ++w) {
        word.assign(n, 0);
        for (int k = 0; k < n; ++k) {
            const std::size_t i = w * n + k;
            if (i < op.outSize)
                word[k] = static_cast<std::int32_t>(outStage_[i]);
        }
        ifmem_out.beginCycle();
        ifmem_out.write(w, word);
        ++stats_.ifmemWrites;
        ++cycles;
    }

    cycles += 2; // op-boundary controller sync
    stats_.opCycles[op_index] += cycles;
    stats_.totalCycles += cycles;
    activeIfmem_ = 1 - activeIfmem_;
}

std::vector<std::int64_t>
Simulator::runPass(const float *x)
{
    const int n = config_.peInputs();
    const auto &act = program_.activationFormat;

    if (stats_.opCycles.size() != program_.ops.size())
        stats_.opCycles.assign(program_.ops.size(), 0);

    // Load the quantized image into the active IFMem (backdoor: the
    // external-memory transfer is pipelined with compute and is not
    // part of the per-image cycle count; see EXPERIMENTS.md).
    activeIfmem_ = 0;
    const std::size_t in_dim = program_.inputDim();
    for (std::size_t w = 0; w * n < in_dim; ++w) {
        RamWord &word = ifmems_[0]->backdoor(w);
        for (int k = 0; k < n; ++k) {
            const std::size_t i = w * n + k;
            word[k] = i < in_dim
                          ? static_cast<std::int32_t>(act.fromReal(x[i]))
                          : 0;
        }
    }

    for (std::size_t oi = 0; oi < program_.ops.size(); ++oi) {
        switch (program_.ops[oi].kind) {
          case OpKind::Dense:
            runDenseOp(oi);
            break;
          case OpKind::ConvLowered:
            runConvOp(oi);
            break;
          case OpKind::Pool:
            runPoolOp(oi);
            break;
          case OpKind::Flatten:
          case OpKind::Output:
            // Pure relabeling / staging: the activation window stays
            // where it is, no cycles.
            break;
        }
    }

    // Collect the output window from the now-active IFMem.
    const std::size_t out_dim = program_.outputDim();
    std::vector<std::int64_t> out(out_dim);
    for (std::size_t i = 0; i < out_dim; ++i) {
        const RamWord &word = ifmems_[activeIfmem_]->backdoor(i / n);
        out[i] = word[i % n];
    }

    // Refresh aggregate counters.
    stats_.grnSamples = weightGen_.samplesDrawn();
    std::uint64_t macs = 0;
    for (const auto &pe : pes_)
        macs += pe.macCount();
    stats_.macs = macs;
    ++stats_.images;
    return out;
}

} // namespace vibnn::accel
