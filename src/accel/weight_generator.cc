#include "accel/weight_generator.hh"

#include "common/logging.hh"

namespace vibnn::accel
{

WeightGenerator::WeightGenerator(const DatapathKernel &kernel,
                                 grng::GaussianGenerator *generator)
    : kernel_(kernel), generator_(generator)
{
    VIBNN_ASSERT(generator != nullptr, "weight generator needs a GRNG");
}

std::int64_t
WeightGenerator::nextEpsRaw()
{
    ++samplesDrawn_;
    return kernel_.eps.fromReal(generator_->next(),
                                fixed::RoundMode::Nearest);
}

} // namespace vibnn::accel
