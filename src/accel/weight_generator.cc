#include "accel/weight_generator.hh"

#include "common/logging.hh"

namespace vibnn::accel
{

WeightGenerator::WeightGenerator(const DatapathKernel &kernel,
                                 grng::GaussianGenerator *generator)
    : kernel_(kernel), generator_(generator)
{
    VIBNN_ASSERT(generator != nullptr, "weight generator needs a GRNG");
    epsReal_.resize(epsBlock);
    epsRaw_.resize(epsBlock);
}

void
WeightGenerator::refill()
{
    generator_->fill(epsReal_.data(), epsBlock);
    // Batch float->fixed conversion: one tight loop per block instead
    // of one call per consumed sample.
    for (std::size_t i = 0; i < epsBlock; ++i)
        epsRaw_[i] =
            kernel_.eps.fromReal(epsReal_[i], fixed::RoundMode::Nearest);
    epsPos_ = 0;
    epsFill_ = epsBlock;
}

void
WeightGenerator::setGenerator(grng::GaussianGenerator *generator)
{
    VIBNN_ASSERT(generator != nullptr, "weight generator needs a GRNG");
    generator_ = generator;
    epsPos_ = 0;
    epsFill_ = 0; // discard prefetched eps from the old stream
}

} // namespace vibnn::accel
