#include "accel/weight_generator.hh"

#include "common/logging.hh"

namespace vibnn::accel
{

WeightGenerator::WeightGenerator(const DatapathKernel &kernel,
                                 grng::GaussianGenerator *generator)
    : kernel_(kernel), generator_(generator)
{
    VIBNN_ASSERT(generator != nullptr, "weight generator needs a GRNG");
    epsReal_.resize(epsBlock);
    epsRaw_.resize(epsBlock);

    // Fixed-point formats cap at 32 bits, so the raw ranges always fit
    // the int32 kernel parameters.
    sampleParams_.epsShift = kernel_.eps.fracBits();
    sampleParams_.wMin =
        static_cast<std::int32_t>(kernel_.weight.rawMin());
    sampleParams_.wMax =
        static_cast<std::int32_t>(kernel_.weight.rawMax());
    // |sigma| is bounded by the weight grid it was quantized onto and
    // |eps| by the eps grid (both rawMin magnitudes, the larger side).
    sampleParams_.sigmaAbsMax = -kernel_.weight.rawMin();
    sampleParams_.epsAbsMax = -kernel_.eps.rawMin();
}

void
WeightGenerator::refill()
{
    // Fused generation + quantization when the generator has it (RLF
    // count LUT, Philox counter stream): the eps land on the grid in
    // one pass and the double staging block is never touched.
    if (!generator_->fillFixed(epsRaw_.data(), epsBlock, kernel_.eps)) {
        generator_->fill(epsReal_.data(), epsBlock);
        // Batch float->fixed conversion through the dispatched SIMD
        // tier: one vectorized pass per block instead of one fromReal
        // call per consumed sample.
        kernels::activeKernels().quantizeDouble(
            epsReal_.data(), epsRaw_.data(), epsBlock,
            kernel_.eps.fracBits(),
            static_cast<std::int32_t>(kernel_.eps.rawMin()),
            static_cast<std::int32_t>(kernel_.eps.rawMax()));
    }
    fetched_ += epsBlock;
    epsPos_ = 0;
    epsFill_ = epsBlock;
}

void
WeightGenerator::finishShardedRound(std::uint64_t end_pos)
{
    VIBNN_ASSERT(end_pos >= streamPos(),
                 "sharded round cannot end before it started");
    samplesDrawn_ += end_pos - streamPos();
    generator_->seekTo(end_pos);
    fetched_ = end_pos;
    epsPos_ = 0;
    epsFill_ = 0; // ring contents predate the jump
}

void
WeightGenerator::setGenerator(grng::GaussianGenerator *generator)
{
    VIBNN_ASSERT(generator != nullptr, "weight generator needs a GRNG");
    generator_ = generator;
    epsPos_ = 0;
    epsFill_ = 0; // discard prefetched eps from the old stream
    fetched_ = 0; // the new generator starts at stream position 0
}

} // namespace vibnn::accel
