/**
 * @file
 * Cycle-level simulator of the VIBNN accelerator (paper Figures 2, 13,
 * 14).
 *
 * The simulated machine executes one fully-connected layer at a time in
 * "rounds" of M = T*S neurons. Within a round, every cycle:
 *
 *  - the active IFMem's read port delivers one word of N input features
 *    (broadcast to all PEs — the word-size insight of Section 5.4.1),
 *  - every PE-set's WPMem delivers one mu word and one sigma word
 *    (B*N*S bits each, equation (15b)),
 *  - the weight generator turns each (mu, sigma) pair plus a GRNG eps
 *    into a sampled weight, and
 *  - each PE multiplies its N weights with the broadcast inputs and
 *    accumulates.
 *
 * After ceil(in/N) chunk cycles plus the pipeline drain (2-stage weight
 * generator + 3-stage PE, Figure 14), the round's outputs pass through
 * bias/ReLU and the memory distributor writes them — one S-wide word
 * per PE-set — into the *other* IFMem (the ping-pong of Section 5.4.1),
 * overlapped with the next round's compute. Port-budget violations trip
 * assertions inside DualPortRam.
 *
 * The datapath arithmetic is shared with the fast functional path
 * (functional.hh), so `ctest` enforces bit-exact agreement between the
 * two.
 */

#ifndef VIBNN_ACCEL_SIMULATOR_HH
#define VIBNN_ACCEL_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/config.hh"
#include "accel/pe.hh"
#include "accel/ram.hh"
#include "accel/weight_generator.hh"

namespace vibnn::accel
{

/** Execution statistics for one or more inference passes. */
struct CycleStats
{
    std::uint64_t totalCycles = 0;
    std::vector<std::uint64_t> layerCycles;
    std::uint64_t ifmemReads = 0;
    std::uint64_t ifmemWrites = 0;
    std::uint64_t wpmemReads = 0;
    std::uint64_t grnSamples = 0;
    std::uint64_t macs = 0;
    std::uint64_t images = 0;

    /** PE-array utilization: useful MACs / peak MAC slots. */
    double utilization(int total_pes, int pe_inputs) const;

    /** Cycles per single forward pass (one MC sample). */
    double cyclesPerPass() const;

    /** Merge another run's counters into this one (McEngine replica
     *  aggregation). Lives next to the fields so a new counter cannot
     *  be forgotten in the merge. */
    CycleStats &operator+=(const CycleStats &other);
};

/** The cycle-level accelerator. */
class Simulator
{
  public:
    /**
     * @param network Quantized network to load (WPMems are packed at
     *        construction).
     * @param config Architecture geometry; validated against the
     *        network here.
     * @param generator The GRNG instance (not owned).
     */
    Simulator(const QuantizedNetwork &network,
              const AcceleratorConfig &config,
              grng::GaussianGenerator *generator);

    /**
     * Run one forward pass (one MC sample) for an image given as real
     * features; returns raw output-layer values on the activation grid.
     */
    std::vector<std::int64_t> runPass(const float *x);

    /**
     * Full Monte-Carlo classification (config.mcSamples passes with
     * softmax averaging, equation (6)).
     * @param probs Optional: receives the averaged class probabilities.
     * @return The predicted class.
     */
    std::size_t classify(const float *x, float *probs = nullptr);

    /**
     * Swap the eps source (used by McEngine to give each Monte-Carlo
     * work unit an independently seeded stream). Not owned.
     */
    void setGenerator(grng::GaussianGenerator *generator);

    const CycleStats &stats() const { return stats_; }
    const AcceleratorConfig &config() const { return config_; }
    const QuantizedNetwork &network() const { return network_; }

  private:
    /** Execute one layer; input lives in ifmems_[active], output goes
     *  to ifmems_[1 - active]. */
    void runLayer(std::size_t layer_index, bool output_layer);

    /** Pack a layer's parameters into the per-set WPMems. */
    void packWpmems();

    QuantizedNetwork network_;
    AcceleratorConfig config_;
    DatapathKernel kernel_;
    WeightGenerator weightGen_;
    std::vector<Pe> pes_;

    /** Ping-pong input-feature memories. */
    std::unique_ptr<DualPortRam> ifmems_[2];
    int activeIfmem_ = 0;

    /**
     * Per PE-set weight memories, mu and sigma planes. Address layout:
     * sequential words in (layer, round, chunk) order; each word holds
     * S * N values (N per PE in the set).
     */
    std::vector<std::unique_ptr<DualPortRam>> wpmemMu_;
    std::vector<std::unique_ptr<DualPortRam>> wpmemSigma_;
    /** First WPMem word of each layer. */
    std::vector<std::size_t> layerWpBase_;

    /** Sampled weights of one WPMem word (all lanes of a PE set),
     *  reused across chunks/rounds/layers/passes. */
    std::vector<std::int64_t> weights_;
    /** Memory-distributor word staging, reused across rounds. */
    RamWord distWord_;

    CycleStats stats_;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_SIMULATOR_HH
