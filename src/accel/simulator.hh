/**
 * @file
 * Cycle-level simulator of the VIBNN accelerator (paper Figures 2, 13,
 * 14), driven by the QuantizedProgram IR.
 *
 * The simulated machine executes one program op at a time:
 *
 *  - Dense ops run the neuron bank in "rounds" of M = T*S neurons.
 *    Within a round, every cycle the active IFMem's read port delivers
 *    one word of N input features (broadcast to all PEs — the word-size
 *    insight of Section 5.4.1), every PE-set's WPMem delivers one mu
 *    word and one sigma word (B*N*S bits each, equation (15b)), the
 *    weight generator turns each (mu, sigma) pair plus a GRNG eps into
 *    a sampled weight, and each PE multiplies its N weights with the
 *    broadcast inputs and accumulates. After ceil(in/N) chunk cycles
 *    plus the pipeline drain (2-stage weight generator + 3-stage PE,
 *    Figure 14), the round's outputs pass through bias/ReLU and the
 *    memory distributor writes them — one S-wide word per PE-set —
 *    into the *other* IFMem (the ping-pong of Section 5.4.1),
 *    overlapped with the next round's compute.
 *
 *  - ConvLowered ops time-multiplex the same bank machinery over the
 *    conv's output positions: the host-side im2col gather (playing the
 *    memory distributor's role) stages one receptive-field patch per
 *    position into the active IFMem, the filter bank runs exactly like
 *    a dense op, and the outputs are re-staged as CHW maps. Each
 *    position pass draws *fresh* weight samples from the same WPMem
 *    planes — the hardware analogue of per-receptive-field sampling.
 *
 *  - Pool ops stream the maps through the distributor datapath: one
 *    word read per cycle, comparator tree, one word written per cycle.
 *    Max is monotone on the activation grid, so pooling raw values is
 *    exact.
 *
 *  - Flatten and Output ops are free relabeling / staging.
 *
 * Port-budget violations trip assertions inside DualPortRam. The
 * datapath arithmetic is shared with the fast functional path
 * (functional.hh) and eps is consumed in the canonical
 * (op, position, round, chunk, set, pe, lane) order, so `ctest`
 * enforces bit-exact agreement between the two executors on both MLP
 * and CNN programs.
 */

#ifndef VIBNN_ACCEL_SIMULATOR_HH
#define VIBNN_ACCEL_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/config.hh"
#include "accel/executor.hh"
#include "accel/pe.hh"
#include "accel/program.hh"
#include "accel/ram.hh"
#include "accel/weight_generator.hh"

namespace vibnn::accel
{

/** The cycle-level accelerator — the "simulator" executor backend. */
class Simulator : public Executor
{
  public:
    /**
     * @param program Quantized program to load (WPMems are packed per
     *        compute op at construction).
     * @param config Architecture geometry; the program is validated
     *        against it here.
     * @param generator The GRNG instance (not owned).
     */
    Simulator(const QuantizedProgram &program,
              const AcceleratorConfig &config,
              grng::GaussianGenerator *generator);

    /** Legacy front-end: lift a flat QuantizedNetwork into a program
     *  (one Dense op per layer) and load that. */
    Simulator(const QuantizedNetwork &network,
              const AcceleratorConfig &config,
              grng::GaussianGenerator *generator);

    /** Cycle-accurate; per-pass fresh weight samples (no batched
     *  weight reuse). */
    ExecutorCaps
    caps() const override
    {
        return {/*cycleAccurate=*/true, /*batchedRounds=*/false};
    }

    /**
     * Run one forward pass (one MC sample) for an image given as real
     * features; returns raw output-layer values on the activation grid.
     */
    std::vector<std::int64_t> runPass(const float *x) override;

    /**
     * Swap the eps source (used by McEngine to give each Monte-Carlo
     * work unit an independently seeded stream). Not owned.
     */
    void setGenerator(grng::GaussianGenerator *generator) override;

    const CycleStats &stats() const override { return stats_; }
    const AcceleratorConfig &config() const override { return config_; }
    const QuantizedProgram &program() const override { return program_; }

  private:
    /**
     * Run one bank schedule (rounds of M neurons over the PE array):
     * the shared engine behind Dense ops and each ConvLowered position
     * pass. Input is read from `ifmem_in` words [0, chunks); outputs
     * are distributed into `ifmem_out` in neuron order.
     * @return Cycles consumed (chunk cycles, pipeline drain, and the
     *         final round's non-overlapped tail writes).
     */
    std::uint64_t runBankRounds(std::size_t wp_index,
                                const QuantizedLayer &bank, bool relu,
                                DualPortRam &ifmem_in,
                                DualPortRam &ifmem_out);

    void runDenseOp(std::size_t op_index);
    void runConvOp(std::size_t op_index);
    void runPoolOp(std::size_t op_index);

    /** Pack every compute op's parameters into the per-set WPMems. */
    void packWpmems();

    QuantizedProgram program_;
    AcceleratorConfig config_;
    DatapathKernel kernel_;
    WeightGenerator weightGen_;
    std::vector<Pe> pes_;

    /** Ping-pong input-feature memories. */
    std::unique_ptr<DualPortRam> ifmems_[2];
    int activeIfmem_ = 0;

    /**
     * Per PE-set weight memories, mu and sigma planes. Address layout:
     * sequential words in (compute op, round, chunk) order; each word
     * holds S * N values (N per PE in the set).
     */
    std::vector<std::unique_ptr<DualPortRam>> wpmemMu_;
    std::vector<std::unique_ptr<DualPortRam>> wpmemSigma_;
    /** First WPMem word of each op (staging ops share the next base). */
    std::vector<std::size_t> opWpBase_;

    /** Sampled weights of one WPMem word (all lanes of a PE set),
     *  reused across chunks/rounds/ops/passes. */
    std::vector<std::int64_t> weights_;
    /** Memory-distributor word staging, reused across rounds. */
    RamWord distWord_;
    /** Host-gather staging for conv/pool ops (the external im2col /
     *  line-buffer role), reused across ops and passes. */
    std::vector<std::int64_t> mapStage_;
    std::vector<std::int64_t> patchStage_;
    std::vector<std::int64_t> outStage_;

    CycleStats stats_;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_SIMULATOR_HH
