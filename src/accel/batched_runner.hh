/**
 * @file
 * Batched weight-reuse inference path — the "batched" executor backend.
 *
 * The fidelity executors (Simulator, FunctionalRunner) draw a fresh
 * weight sample for every MAC lane of every pass: an MC-ensemble
 * classification of B images at T samples costs T x B full
 * sample-and-compute passes. Fan et al.'s FPGA BNN accelerator
 * (PAPERS.md, arXiv:2105.09163) shows the dominant serving win is to
 * reuse ONE sampled weight set across a whole input batch per
 * Monte-Carlo round: the ensemble estimate then costs T blocked-GEMM
 * rounds, and the per-round weight draw amortizes over B images.
 *
 * Per runRoundBatch call this backend:
 *
 *   1. draws one weight sample per compute op — the bank's (mu, sigma)
 *      planes go through the fused WeightGenerator::sampleBlockFused
 *      path (w = mu + sigma * eps on the weight grid, eps from the
 *      block GRNG fill() ring, identical stream and arithmetic as the
 *      fidelity executors' per-lane draws) straight into a reusable,
 *      64-byte-aligned int32 SoA arena — no staging copy;
 *   2. walks the op list over batch-major int32 activation buffers
 *      (count x width on the activation grid — every admissible
 *      format is <= 32 bits, so the narrowing is lossless; products
 *      still accumulate in int64): Dense runs as image-tiled GEMM
 *      against the arena through the dispatched SIMD kernel layer
 *      (accel/kernels/), ConvLowered as per-image im2col + an
 *      (outChannels x patchSize) GEMM over positions, and Pool/
 *      Flatten per image. The image tile is cache-aware (sized from
 *      the host L1/L2, VIBNN_GEMM_TILE overrides), and when the
 *      operand formats fit int16 the arena keeps a packed copy so the
 *      AVX2 tier can run its madd fast path.
 *
 * The datapath arithmetic (DatapathKernel: sampleWeight, finishNeuron,
 * finishOutputNeuron) is compiled into the kernel layer's scalar
 * reference and every SIMD tier is ctest-pinned bit-exact against it,
 * so each neuron evaluation is exact fixed point regardless of the
 * dispatched tier; what changes is the *sampling schedule*: one weight
 * draw per op per round, shared across the batch and across conv
 * positions (the software direct estimator's semantics) instead of
 * fresh draws per pass and per position. Results are therefore
 * statistically equivalent — the per-round weights come from the same
 * variational posterior — but not bit-identical to the canonical eps
 * order (with sigma = 0 the two paths coincide exactly; a ctest pins
 * that down). VIBNN's per-pass sampling contract holds per round:
 * every round is one independent posterior draw.
 *
 * Intra-pass parallelism: setWorkPool() hands the runner a ThreadPool;
 * rounds then shard the image dimension across it. Weights are frozen
 * for the whole round and every image's pipeline is independent, so
 * outputs are bit-identical for any shard count (ctest-pinned across
 * 1/2/5 threads). McEngine revokes the pool whenever its round-level
 * scheduling already owns the workers (oversubscription guard).
 */

#ifndef VIBNN_ACCEL_BATCHED_RUNNER_HH
#define VIBNN_ACCEL_BATCHED_RUNNER_HH

#include <cstdint>
#include <vector>

#include "accel/config.hh"
#include "accel/executor.hh"
#include "accel/kernels/kernels.hh"
#include "accel/program.hh"
#include "accel/weight_generator.hh"

namespace vibnn::accel
{

/** Throughput-first weight-reuse executor backend. */
class BatchedRunner : public Executor
{
  public:
    BatchedRunner(const QuantizedProgram &program,
                  const AcceleratorConfig &config,
                  grng::GaussianGenerator *generator);

    /** Untimed; true batched weight reuse. */
    ExecutorCaps
    caps() const override
    {
        return {/*cycleAccurate=*/false, /*batchedRounds=*/true};
    }

    /** One forward pass == a one-image round (the weight sample is
     *  still shared across conv positions — this backend's sampling
     *  semantics, not the canonical per-position order). */
    std::vector<std::int64_t> runPass(const float *x) override;

    /** One MC round: one weight sample per compute op, reused across
     *  all `count` images (and across conv positions). */
    void runRoundBatch(const float *xs, std::size_t count,
                       std::size_t stride, std::int64_t *out) override;

    /** Active-subset round (adaptive early-exit compaction): the
     *  gather folds into input quantization — image slot b quantizes
     *  source row indices[b] directly — so no float-row staging copy.
     *  The weight draw and per-image arithmetic are those of
     *  runRoundBatch exactly. */
    void runRoundBatchGather(const float *xs, std::size_t stride,
                             const std::uint32_t *indices,
                             std::size_t count,
                             std::int64_t *out) override;

    /** Swap the eps source (round scheduling). Not owned. */
    void setGenerator(grng::GaussianGenerator *generator) override;

    /** Intra-pass image-dimension parallelism (see file comment).
     *  Not owned; nullptr (the default) runs rounds serially. */
    void setWorkPool(ThreadPool *pool) override;

    /** Pass/sample counters only (untimed backend). */
    const CycleStats &stats() const override { return stats_; }

    const QuantizedProgram &program() const override { return program_; }
    const AcceleratorConfig &config() const override { return config_; }

    /** The GEMM image-tile in effect (cache-derived or
     *  VIBNN_GEMM_TILE) — introspection for benches/tests. */
    std::size_t imageTile() const { return imageTile_; }

  private:
    /** Shared round body: slot b of the round reads source row
     *  (indices ? indices[b] : b) of `xs`. Both public round entry
     *  points funnel here. */
    void runRoundImpl(const float *xs, std::size_t stride,
                      const std::uint32_t *indices, std::size_t count,
                      std::int64_t *out);

    /** Draw this round's weight set into the arena (op order). With a
     *  work pool and a splittable eps source (philox), the draw itself
     *  shards across workers via the counter-based random-access path —
     *  bit-identical to the sequential draw for any shard count. */
    void sampleRoundWeights();

    /** Sharded body of sampleRoundWeights: sample global weight indices
     *  [w0, w1) using eps stream offsets base + index. */
    void sampleWeightRange(std::size_t shard, std::size_t w0,
                           std::size_t w1, std::uint64_t base);

    /** Chaos-only bit-flip injection over the freshly drawn weight
     *  arena (the "accel.weights.bitflip" fault site, p = per-bit
     *  flip rate). No-op unless the fault registry is armed. The flip
     *  pattern is seeded from a content hash of the arena itself, so
     *  it is deterministic across thread counts and shard assignments
     *  (the drawn arena is bit-identical by contract); flips do not
     *  accumulate — every round draws fresh weights first. */
    void injectWeightFaults();

    /** Run body(shard, begin, end) over a static partition of
     *  [0, count) — parallel when a work pool is set, serial (one
     *  shard) otherwise. Outputs are per-image, so the partition is
     *  invisible in the results. */
    template <typename Body>
    void forImageShards(std::size_t count, const Body &body);

    /** Dense bank over images [begin, end): image-tiled GEMM through
     *  the kernel layer. */
    void runDenseBatch(const ProgramOp &op, std::size_t op_index,
                       std::size_t begin, std::size_t end,
                       const std::int32_t *act_in, std::int32_t *act_out);

    /** ConvLowered with the shared filter sample over images
     *  [begin, end): per image im2col + (outChannels x patchSize)
     *  GEMM over positions, using shard-local patch scratch. */
    void runConvBatch(const ProgramOp &op, std::size_t op_index,
                      std::size_t shard, std::size_t begin,
                      std::size_t end, const std::int32_t *act_in,
                      std::int32_t *act_out);

    QuantizedProgram program_;
    AcceleratorConfig config_;
    DatapathKernel kernel_;
    WeightGenerator weightGen_;
    CycleStats stats_;

    /** SoA weight arena: one flat int32 slab per compute op (offsets
     *  indexed like program_.ops; non-compute ops share the next
     *  base), reused across rounds; 64-byte-aligned for the SIMD
     *  tiers. */
    kernels::AlignedVector<std::int32_t> weightArena_;
    std::vector<std::size_t> opWeightBase_;
    /** int16-packed arena mirror for ops eligible for the madd fast
     *  path (same offsets; untouched for ineligible ops). */
    kernels::AlignedVector<std::int16_t> weightArena16_;
    /** Per-op madd-path eligibility: operands fit int16 and
     *  inDim * max|w| * max|x| < 2^31 (see GemmArgs::weights16). */
    std::vector<bool> opInt16_;
    /** Any op eligible? Gates the int16 mirror/staging allocations. */
    bool anyInt16_ = false;
    /** Finish-stage parameters shared by every op (relu varies). */
    kernels::GemmFinish finishBase_;

    /** Widest activation window any op stages (buffer row width). */
    std::size_t laneWidth_ = 0;
    /** GEMM image tile (cache-aware; VIBNN_GEMM_TILE overrides). */
    std::size_t imageTile_ = 16;
    /** Batch-major ping-pong activation buffers (count x laneWidth_),
     *  int32 on the activation grid, 64-byte-aligned. */
    kernels::AlignedVector<std::int32_t> actA_, actB_;
    /** int16-packed staging of the current op's input activations
     *  (madd fast path only). */
    kernels::AlignedVector<std::int16_t> act16_;
    /** Per-shard im2col patch scratch (shard-local so parallel conv
     *  images never share staging). */
    std::vector<std::vector<std::int32_t>> patches_;
    std::vector<std::vector<std::int16_t>> patches16_;
    /** Per-shard eps scratch for the sharded weight draw (sized in
     *  setWorkPool; one chunk per shard, reused across ops). */
    std::vector<kernels::AlignedVector<std::int32_t>> epsShard_;
    /** Compute ops in op order, for the sharded draw's range walk. */
    std::vector<std::size_t> computeOps_;

    /** Intra-pass worker pool (not owned; nullptr = serial). */
    ThreadPool *workPool_ = nullptr;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_BATCHED_RUNNER_HH
