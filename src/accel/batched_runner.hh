/**
 * @file
 * Batched weight-reuse inference path — the "batched" executor backend.
 *
 * The fidelity executors (Simulator, FunctionalRunner) draw a fresh
 * weight sample for every MAC lane of every pass: an MC-ensemble
 * classification of B images at T samples costs T x B full
 * sample-and-compute passes. Fan et al.'s FPGA BNN accelerator
 * (PAPERS.md, arXiv:2105.09163) shows the dominant serving win is to
 * reuse ONE sampled weight set across a whole input batch per
 * Monte-Carlo round: the ensemble estimate then costs T blocked-GEMM
 * rounds, and the per-round weight draw amortizes over B images.
 *
 * Per runRoundBatch call this backend:
 *
 *   1. draws one weight sample per compute op — the bank's (mu, sigma)
 *      planes go through the identical WeightGenerator block path
 *      (w = mu + sigma * eps on the weight grid, eps from the block
 *      GRNG fill() ring) that the fidelity executors use per lane —
 *      and materializes it into a reusable SoA workspace arena
 *      (int32 weights, flat per-op slabs);
 *   2. walks the op list over batch-major activation buffers
 *      (count x width, int64 on the activation grid): Dense runs as
 *      image-tiled GEMM against the arena (the weight slab streams
 *      through cache once per image tile), ConvLowered as a per-image
 *      im2col + (outChannels x patchSize) GEMM over positions — the
 *      filter slab is small enough to stay resident — and Pool/
 *      Flatten vectorized per image.
 *
 * The datapath arithmetic (DatapathKernel: sampleWeight, finishNeuron,
 * finishOutputNeuron) is shared with the fidelity executors, so every
 * individual neuron evaluation is bit-exact fixed point; what changes
 * is the *sampling schedule*: one weight draw per op per round, shared
 * across the batch and across conv positions (the software direct
 * estimator's semantics) instead of fresh draws per pass and per
 * position. Results are therefore statistically equivalent — the
 * per-round weights come from the same variational posterior — but not
 * bit-identical to the canonical eps order (with sigma = 0 the two
 * paths coincide exactly; a ctest pins that down). VIBNN's per-pass
 * sampling contract holds per round: every round is one independent
 * posterior draw.
 */

#ifndef VIBNN_ACCEL_BATCHED_RUNNER_HH
#define VIBNN_ACCEL_BATCHED_RUNNER_HH

#include <cstdint>
#include <vector>

#include "accel/config.hh"
#include "accel/executor.hh"
#include "accel/program.hh"
#include "accel/weight_generator.hh"

namespace vibnn::accel
{

/** Throughput-first weight-reuse executor backend. */
class BatchedRunner : public Executor
{
  public:
    BatchedRunner(const QuantizedProgram &program,
                  const AcceleratorConfig &config,
                  grng::GaussianGenerator *generator);

    /** Untimed; true batched weight reuse. */
    ExecutorCaps
    caps() const override
    {
        return {/*cycleAccurate=*/false, /*batchedRounds=*/true};
    }

    /** One forward pass == a one-image round (the weight sample is
     *  still shared across conv positions — this backend's sampling
     *  semantics, not the canonical per-position order). */
    std::vector<std::int64_t> runPass(const float *x) override;

    /** One MC round: one weight sample per compute op, reused across
     *  all `count` images (and across conv positions). */
    void runRoundBatch(const float *xs, std::size_t count,
                       std::size_t stride, std::int64_t *out) override;

    /** Swap the eps source (round scheduling). Not owned. */
    void setGenerator(grng::GaussianGenerator *generator) override;

    /** Pass/sample counters only (untimed backend). */
    const CycleStats &stats() const override { return stats_; }

    const QuantizedProgram &program() const override { return program_; }
    const AcceleratorConfig &config() const override { return config_; }

  private:
    /** Draw this round's weight set into the arena (op order). */
    void sampleRoundWeights();

    /** Dense bank as image-tiled GEMM: actIn (count x laneWidth_)
     *  -> actOut. */
    void runDenseBatch(const ProgramOp &op, const std::int32_t *weights,
                       std::size_t count, const std::int64_t *act_in,
                       std::int64_t *act_out);

    /** ConvLowered with the shared filter sample: per image im2col +
     *  (outChannels x patchSize) GEMM over positions. */
    void runConvBatch(const ProgramOp &op, const std::int32_t *weights,
                      std::size_t count, const std::int64_t *act_in,
                      std::int64_t *act_out);

    QuantizedProgram program_;
    AcceleratorConfig config_;
    DatapathKernel kernel_;
    WeightGenerator weightGen_;
    CycleStats stats_;

    /** SoA weight arena: one flat int32 slab per compute op (offsets
     *  indexed like program_.ops; non-compute ops share the next
     *  base), reused across rounds. */
    std::vector<std::int32_t> weightArena_;
    std::vector<std::size_t> opWeightBase_;
    /** int64 staging for WeightGenerator::sampleBlock output. */
    std::vector<std::int64_t> sampleScratch_;

    /** Widest activation window any op stages (buffer row width). */
    std::size_t laneWidth_ = 0;
    /** Batch-major ping-pong activation buffers (count x laneWidth_). */
    std::vector<std::int64_t> actA_, actB_;
    /** Per-image im2col patch staging. */
    std::vector<std::int64_t> patches_;
};

} // namespace vibnn::accel

#endif // VIBNN_ACCEL_BATCHED_RUNNER_HH
