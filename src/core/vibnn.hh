/**
 * @file
 * VIBNN public facade — the API a downstream user adopts.
 *
 * A VibnnSystem owns a trained Bayesian network — an MLP *or* a CNN —
 * together with an accelerator configuration and provides the full
 * deployment flow of the paper:
 *
 *   train (host, Bayes-by-Backprop)
 *     -> compile into a QuantizedProgram on the B-bit grids
 *     -> run inference either in software (float, MC ensemble) or on
 *        the modeled hardware (functional fixed-point path, the
 *        cycle-level simulator for timing, or the parallel McEngine
 *        for batched classification)
 *     -> query the FPGA resource / power / throughput estimates.
 *
 * See examples/quickstart.cc (MLP) and examples/bayesian_lenet.cc
 * (CNN-on-accelerator) for the canonical usage.
 */

#ifndef VIBNN_CORE_VIBNN_HH
#define VIBNN_CORE_VIBNN_HH

#include <memory>
#include <string>

#include "accel/functional.hh"
#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "accel/simulator.hh"
#include "bnn/bayesian_cnn.hh"
#include "bnn/bnn_trainer.hh"
#include "data/dataset.hh"
#include "grng/registry.hh"
#include "hwmodel/network_hw.hh"
#include "serve/session.hh"

namespace vibnn::core
{

/** Batched-inference execution mode — now owned by the serving layer;
 *  the facade keeps the name for its pre-session callers. */
using ExecMode = serve::ExecMode;

/** End-to-end VIBNN deployment handle. */
class VibnnSystem
{
  public:
    /**
     * @param net A (typically trained) Bayesian MLP; copied in.
     * @param config Accelerator geometry and bit-length.
     * @param grng_id GRNG design id (see grng::makeGenerator).
     * @param seed Seed for the hardware GRNG instance.
     */
    VibnnSystem(const bnn::BayesianMlp &net,
                const accel::AcceleratorConfig &config,
                std::string grng_id = "rlf", std::uint64_t seed = 1);

    /** Same deployment flow for a Bayesian CNN: the compiler lowers
     *  conv layers via im2col into ConvLowered program ops. */
    VibnnSystem(const bnn::BayesianConvNet &net,
                const accel::AcceleratorConfig &config,
                std::string grng_id = "rlf", std::uint64_t seed = 1);

    /** Train a fresh Bayesian MLP on a dataset and wrap it. */
    static VibnnSystem train(const data::Dataset &dataset,
                             const std::vector<std::size_t> &hidden,
                             const bnn::BnnTrainConfig &train_config,
                             const accel::AcceleratorConfig &accel_config,
                             const std::string &grng_id = "rlf");

    /** True when the wrapped model is a CNN. */
    bool isConvolutional() const { return cnn_ != nullptr; }

    /** The software MLP model (fatal if this system wraps a CNN). */
    const bnn::BayesianMlp &network() const;
    bnn::BayesianMlp &network();

    /** The software CNN model (fatal if this system wraps an MLP). */
    const bnn::BayesianConvNet &convNetwork() const;

    /** The compiled deployment program. */
    const accel::QuantizedProgram &program() const { return program_; }

    /** Legacy flat view of the quantized MLP (fatal for CNN systems —
     *  a CNN program has no flat-layer representation). */
    const accel::QuantizedNetwork &quantized() const;

    const accel::AcceleratorConfig &config() const { return config_; }
    const std::string &grngId() const { return grngId_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * A serving session over this system's program — the request /
     * response surface of serve::InferenceSession (async submit(),
     * micro-batching, per-image uncertainty). The facade's own
     * classifyBatch/hardwareAccuracyBatched are thin wrappers over
     * exactly this.
     */
    std::unique_ptr<serve::InferenceSession>
    makeSession(const serve::SessionOptions &options = {}) const;

    /** Software (float) MC-ensemble accuracy. */
    double softwareAccuracy(const nn::DataView &data,
                            std::size_t mc_samples,
                            std::uint64_t seed) const;

    /** Hardware (fixed-point functional path) MC-ensemble accuracy. */
    double hardwareAccuracy(const nn::DataView &data) const;

    /**
     * Batched MC-ensemble classification on McEngine — the parallel
     * hardware path, so examples/benches stop re-implementing the MC
     * loop. Bit-identical for any thread count in either mode.
     * @param data Images to classify.
     * @param threads Worker parallelism (0 sizes from the global pool).
     * @param probs Optional: count * outputDim averaged probabilities.
     * @param mode Fidelity (per-pass sampling, default) or Throughput
     *        (per-round weight reuse on the batched backend).
     * @return Predicted class per image.
     */
    std::vector<std::size_t>
    classifyBatch(const nn::DataView &data, std::size_t threads = 0,
                  float *probs = nullptr,
                  ExecMode mode = ExecMode::Fidelity) const;

    /** MC-ensemble accuracy via classifyBatch (parallel McEngine). */
    double
    hardwareAccuracyBatched(const nn::DataView &data,
                            std::size_t threads = 0,
                            ExecMode mode = ExecMode::Fidelity) const;

    /** Fresh executor backend by registry id ("simulator",
     *  "functional", "batched"); the eps stream is owned by the
     *  returned object. */
    std::unique_ptr<accel::Executor>
    makeExecutor(const std::string &id) const;

    /**
     * Cycle-accurate timing: simulate `images` single MC passes and
     * return the statistics (cycles per pass feeds Table 5; opCycles
     * breaks the cost down per program op).
     */
    accel::CycleStats simulateTiming(const nn::DataView &data,
                                     std::size_t images) const;

    /** Fresh cycle-level simulator (caller drives it directly). */
    std::unique_ptr<accel::Simulator> makeSimulator() const;

    /** Fresh functional runner. */
    std::unique_ptr<accel::FunctionalRunner> makeFunctionalRunner() const;

    /** FPGA resource/power estimate for this configuration. */
    hw::DesignEstimate resourceEstimate() const;

    /** Table 5 operating point given measured cycles per image pass. */
    hw::PerformanceModel performance(double cycles_per_image) const;

  private:
    std::unique_ptr<bnn::BayesianMlp> net_;
    std::unique_ptr<bnn::BayesianConvNet> cnn_;
    accel::AcceleratorConfig config_;
    /** Flat legacy view, populated for MLP systems only (the program
     *  is derived from it, so the banks are quantized once). */
    accel::QuantizedNetwork quantized_;
    accel::QuantizedProgram program_;
    std::string grngId_;
    std::uint64_t seed_;
};

} // namespace vibnn::core

#endif // VIBNN_CORE_VIBNN_HH
