/**
 * @file
 * VIBNN public facade — the API a downstream user adopts.
 *
 * A VibnnSystem owns a trained Bayesian MLP together with an
 * accelerator configuration and provides the full deployment flow of
 * the paper:
 *
 *   train (host, Bayes-by-Backprop)
 *     -> quantize (mu, sigma) onto the B-bit grids
 *     -> run inference either in software (float, MC ensemble) or on
 *        the modeled hardware (functional fixed-point path, or the
 *        cycle-level simulator for timing)
 *     -> query the FPGA resource / power / throughput estimates.
 *
 * See examples/quickstart.cc for the canonical usage.
 */

#ifndef VIBNN_CORE_VIBNN_HH
#define VIBNN_CORE_VIBNN_HH

#include <memory>
#include <string>

#include "accel/functional.hh"
#include "accel/simulator.hh"
#include "bnn/bnn_trainer.hh"
#include "data/dataset.hh"
#include "grng/registry.hh"
#include "hwmodel/network_hw.hh"

namespace vibnn::core
{

/** End-to-end VIBNN deployment handle. */
class VibnnSystem
{
  public:
    /**
     * @param net A (typically trained) Bayesian network; copied in.
     * @param config Accelerator geometry and bit-length.
     * @param grng_id GRNG design id (see grng::makeGenerator).
     * @param seed Seed for the hardware GRNG instance.
     */
    VibnnSystem(const bnn::BayesianMlp &net,
                const accel::AcceleratorConfig &config,
                std::string grng_id = "rlf", std::uint64_t seed = 1);

    /** Train a fresh BNN on a dataset and wrap it. */
    static VibnnSystem train(const data::Dataset &dataset,
                             const std::vector<std::size_t> &hidden,
                             const bnn::BnnTrainConfig &train_config,
                             const accel::AcceleratorConfig &accel_config,
                             const std::string &grng_id = "rlf");

    /** The software model. */
    const bnn::BayesianMlp &network() const { return *net_; }
    bnn::BayesianMlp &network() { return *net_; }

    /** The quantized deployment image. */
    const accel::QuantizedNetwork &quantized() const { return quantized_; }

    const accel::AcceleratorConfig &config() const { return config_; }
    const std::string &grngId() const { return grngId_; }

    /** Software (float) MC-ensemble accuracy. */
    double softwareAccuracy(const nn::DataView &data,
                            std::size_t mc_samples,
                            std::uint64_t seed) const;

    /** Hardware (fixed-point functional path) MC-ensemble accuracy. */
    double hardwareAccuracy(const nn::DataView &data) const;

    /**
     * Cycle-accurate timing: simulate `images` single MC passes and
     * return the statistics (cycles per pass feeds Table 5).
     */
    accel::CycleStats simulateTiming(const nn::DataView &data,
                                     std::size_t images) const;

    /** Fresh cycle-level simulator (caller drives it directly). */
    std::unique_ptr<accel::Simulator> makeSimulator() const;

    /** Fresh functional runner. */
    std::unique_ptr<accel::FunctionalRunner> makeFunctionalRunner() const;

    /** FPGA resource/power estimate for this configuration. */
    hw::DesignEstimate resourceEstimate() const;

    /** Table 5 operating point given measured cycles per image pass. */
    hw::PerformanceModel performance(double cycles_per_image) const;

  private:
    std::unique_ptr<bnn::BayesianMlp> net_;
    accel::AcceleratorConfig config_;
    accel::QuantizedNetwork quantized_;
    std::string grngId_;
    std::uint64_t seed_;
};

} // namespace vibnn::core

#endif // VIBNN_CORE_VIBNN_HH
