#include "core/vibnn.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vibnn::core
{

VibnnSystem::VibnnSystem(const bnn::BayesianMlp &net,
                         const accel::AcceleratorConfig &config,
                         std::string grng_id, std::uint64_t seed)
    : net_(std::make_unique<bnn::BayesianMlp>(net)), config_(config),
      quantized_(accel::quantizeNetwork(net, config)),
      program_(accel::programFromNetwork(quantized_)),
      grngId_(std::move(grng_id)), seed_(seed)
{
    // programFromNetwork does not validate; fail fast here like
    // compile() would.
    accel::validateProgram(program_, config_);
}

VibnnSystem::VibnnSystem(const bnn::BayesianConvNet &net,
                         const accel::AcceleratorConfig &config,
                         std::string grng_id, std::uint64_t seed)
    : cnn_(std::make_unique<bnn::BayesianConvNet>(net)), config_(config),
      program_(accel::compile(net, config)), grngId_(std::move(grng_id)),
      seed_(seed)
{
}

VibnnSystem
VibnnSystem::train(const data::Dataset &dataset,
                   const std::vector<std::size_t> &hidden,
                   const bnn::BnnTrainConfig &train_config,
                   const accel::AcceleratorConfig &accel_config,
                   const std::string &grng_id)
{
    std::vector<std::size_t> sizes;
    sizes.push_back(dataset.train.dim);
    sizes.insert(sizes.end(), hidden.begin(), hidden.end());
    sizes.push_back(static_cast<std::size_t>(dataset.train.numClasses));

    Rng init_rng(train_config.seed);
    bnn::BayesianMlp net(sizes, init_rng);
    trainBnn(net, dataset.train.view(), train_config);
    return VibnnSystem(net, accel_config, grng_id,
                       train_config.seed + 0xC0FFEE);
}

const bnn::BayesianMlp &
VibnnSystem::network() const
{
    if (!net_)
        fatal("VibnnSystem::network(): this system wraps a CNN; use "
              "convNetwork()");
    return *net_;
}

bnn::BayesianMlp &
VibnnSystem::network()
{
    if (!net_)
        fatal("VibnnSystem::network(): this system wraps a CNN; use "
              "convNetwork()");
    return *net_;
}

const bnn::BayesianConvNet &
VibnnSystem::convNetwork() const
{
    if (!cnn_)
        fatal("VibnnSystem::convNetwork(): this system wraps an MLP; "
              "use network()");
    return *cnn_;
}

const accel::QuantizedNetwork &
VibnnSystem::quantized() const
{
    if (!net_)
        fatal("VibnnSystem::quantized(): a CNN program has no flat "
              "layer view; use program()");
    return quantized_;
}

double
VibnnSystem::softwareAccuracy(const nn::DataView &data,
                              std::size_t mc_samples,
                              std::uint64_t seed) const
{
    if (cnn_)
        return bnn::evaluateBcnnAccuracy(*cnn_, data, mc_samples, seed);
    return bnn::evaluateBnnAccuracy(*net_, data, mc_samples, seed);
}

double
VibnnSystem::hardwareAccuracy(const nn::DataView &data) const
{
    auto generator = grng::makeGenerator(grngId_, seed_);
    accel::FunctionalRunner runner(program_, config_, generator.get());
    if (data.count == 0)
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.count; ++i) {
        if (runner.classify(data.sample(i)) ==
            static_cast<std::size_t>(data.labels[i])) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.count);
}

std::unique_ptr<serve::InferenceSession>
VibnnSystem::makeSession(const serve::SessionOptions &options) const
{
    // An unset grngId/seed in the options inherits this system's
    // (Builder::system() semantics); explicit values win.
    return serve::InferenceSession::Builder()
        .system(*this)
        .options(options)
        .build();
}

std::vector<std::size_t>
VibnnSystem::classifyBatch(const nn::DataView &data, std::size_t threads,
                           float *probs, ExecMode mode) const
{
    if (data.count == 0)
        return {};
    serve::SessionOptions opts;
    opts.threads = threads;
    opts.mode = mode;
    // The facade reports classes + probs only: no top-k, and no
    // per-sample distributions materialized.
    opts.topK = 0;
    opts.uncertainty = false;
    auto session = makeSession(opts);
    const auto result =
        session->run(serve::InferenceRequest::borrow(data));
    if (probs) {
        const std::size_t out_dim = program_.outputDim();
        for (std::size_t i = 0; i < result.predictions.size(); ++i) {
            const auto &p = result.predictions[i].probs;
            std::copy(p.begin(), p.end(), probs + i * out_dim);
        }
    }
    return result.predictedClasses();
}

double
VibnnSystem::hardwareAccuracyBatched(const nn::DataView &data,
                                     std::size_t threads,
                                     ExecMode mode) const
{
    if (data.count == 0)
        return 0.0;
    const auto predictions = classifyBatch(data, threads, nullptr, mode);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.count; ++i) {
        if (predictions[i] == static_cast<std::size_t>(data.labels[i]))
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(data.count);
}

accel::CycleStats
VibnnSystem::simulateTiming(const nn::DataView &data,
                            std::size_t images) const
{
    VIBNN_ASSERT(data.count > 0, "need at least one image");
    auto generator = grng::makeGenerator(grngId_, seed_);
    accel::Simulator sim(program_, config_, generator.get());
    for (std::size_t i = 0; i < images; ++i)
        sim.runPass(data.sample(i % data.count));
    return sim.stats();
}

std::unique_ptr<accel::Simulator>
VibnnSystem::makeSimulator() const
{
    auto generator = grng::makeGenerator(grngId_, seed_);
    // The simulator does not own the generator; keep it alive by
    // binding its lifetime to the returned object via a deleter pair.
    auto *gen_raw = generator.release();
    struct OwningSimulator : accel::Simulator
    {
        OwningSimulator(const accel::QuantizedProgram &p,
                        const accel::AcceleratorConfig &c,
                        grng::GaussianGenerator *g)
            : accel::Simulator(p, c, g), owned(g)
        {
        }
        std::unique_ptr<grng::GaussianGenerator> owned;
    };
    return std::make_unique<OwningSimulator>(program_, config_, gen_raw);
}

std::unique_ptr<accel::FunctionalRunner>
VibnnSystem::makeFunctionalRunner() const
{
    auto generator = grng::makeGenerator(grngId_, seed_);
    auto *gen_raw = generator.release();
    struct OwningRunner : accel::FunctionalRunner
    {
        OwningRunner(const accel::QuantizedProgram &p,
                     const accel::AcceleratorConfig &c,
                     grng::GaussianGenerator *g)
            : accel::FunctionalRunner(p, c, g), owned(g)
        {
        }
        std::unique_ptr<grng::GaussianGenerator> owned;
    };
    return std::make_unique<OwningRunner>(program_, config_, gen_raw);
}

std::unique_ptr<accel::Executor>
VibnnSystem::makeExecutor(const std::string &id) const
{
    return accel::makeExecutor(id, program_, config_,
                               grng::makeGenerator(grngId_, seed_));
}

hw::DesignEstimate
VibnnSystem::resourceEstimate() const
{
    hw::NetworkHwConfig hw_config;
    hw_config.layerSizes.clear();
    // Activation-window chain (reporting) plus direct WPMem/IFMem
    // sizing from the program: conv banks hold outChannels * patchSize
    // parameters — far fewer than a dense map-to-map matrix — and the
    // IFMem must hold the widest window any op stages.
    hw_config.layerSizes.push_back(
        static_cast<int>(program_.inputDim()));
    std::int64_t params = 0;
    std::size_t widest = program_.inputDim();
    for (const auto &op : program_.ops) {
        widest = std::max({widest, op.inSize, op.outSize});
        if (op.kind == accel::OpKind::ConvLowered)
            widest = std::max(widest, op.conv.patchSize());
        if (!op.isCompute())
            continue;
        hw_config.layerSizes.push_back(static_cast<int>(op.outSize));
        params += static_cast<std::int64_t>(op.bank.inDim) *
                op.bank.outDim +
            op.bank.outDim;
    }
    hw_config.paramCountOverride = params;
    hw_config.widestActivationOverride = static_cast<int>(widest);
    hw_config.peSets = config_.peSets;
    hw_config.pesPerSet = config_.pesPerSet;
    hw_config.peInputs = config_.peInputs();
    hw_config.bits = config_.bits;
    hw_config.grng = grngId_ == "bnnwallace" ? hw::GrngKind::BnnWallace
                                             : hw::GrngKind::Rlf;
    return networkEstimate(hw_config);
}

hw::PerformanceModel
VibnnSystem::performance(double cycles_per_image) const
{
    return performanceFromCycles(resourceEstimate(), cycles_per_image);
}

} // namespace vibnn::core
